"""BRAM scratchpad: non-coherent memory local to the soft accelerator.

The synthetic bandwidth benchmark of Sec. V-C has the eFPGA stage data in "a
simple scratchpad memory"; the PDES task scheduler keeps versioned cacheline
copies in its non-coherent memory.  The scratchpad lives entirely in the
eFPGA clock domain: one read or write port access per FPGA cycle.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim import ClockDomain, StatSet


class Scratchpad:
    """A word-addressable BRAM block in the FPGA clock domain."""

    def __init__(
        self,
        domain: ClockDomain,
        size_bytes: int,
        word_bytes: int = 8,
        ports: int = 1,
        name: str = "scratchpad",
    ) -> None:
        if size_bytes <= 0 or word_bytes <= 0:
            raise ValueError("scratchpad geometry must be positive")
        self.domain = domain
        self.size_bytes = size_bytes
        self.word_bytes = word_bytes
        self.ports = ports
        self.name = name
        self._words: Dict[int, int] = {}
        self.stats = StatSet(f"{name}.stats")

    @property
    def capacity_words(self) -> int:
        return self.size_bytes // self.word_bytes

    @property
    def bram_kbits(self) -> int:
        return (self.size_bytes * 8) // 1024

    def _check(self, index: int) -> None:
        if not (0 <= index < self.capacity_words):
            raise IndexError(f"{self.name}: word index {index} out of range")

    # ------------------------------------------------------------------ #
    # Timed access (one FPGA cycle per ``ports`` words)
    # ------------------------------------------------------------------ #
    def read(self, index: int):
        """Timed read of one word (generator)."""
        self._check(index)
        yield self.domain.wait_cycles(1)
        self.stats.counter("reads").increment()
        return self._words.get(index, 0)

    def write(self, index: int, value: int):
        """Timed write of one word (generator)."""
        self._check(index)
        yield self.domain.wait_cycles(1)
        self.stats.counter("writes").increment()
        self._words[index] = value
        return None

    def read_burst(self, start: int, count: int):
        """Timed sequential read of ``count`` words at one word per cycle."""
        values = []
        for offset in range(count):
            value = yield from self.read(start + offset)
            values.append(value)
        return values

    def write_burst(self, start: int, values):
        """Timed sequential write at one word per cycle."""
        for offset, value in enumerate(values):
            yield from self.write(start + offset, value)
        return None

    # ------------------------------------------------------------------ #
    # Untimed access (for checking results after simulation)
    # ------------------------------------------------------------------ #
    def peek(self, index: int) -> int:
        self._check(index)
        return self._words.get(index, 0)

    def poke(self, index: int, value: int) -> None:
        self._check(index)
        self._words[index] = value
