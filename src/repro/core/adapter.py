"""The Duet Adapter: one Control Hub plus one or more Memory Hubs.

The adapter is the non-intrusive glue between the mesh and an embedded
FPGA: it owns the programmable clock generator (and hence the eFPGA clock
domain), composes the hubs, wires the exception handler so that any latched
error deactivates every Memory Hub in the adapter (Sec. II-B), and carries
out accelerator installation — synthesis, bitstream generation, programming,
register-layout configuration and memory-port hookup — the job the paper's
toolchain (Yosys, VTR, PRGA, Catapult) performs offline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.core.control_hub import ControlHub, ControlHubConfig
from repro.core.exceptions import DuetError, ErrorCode, ExceptionHandler
from repro.core.feature_switches import FeatureSwitches
from repro.core.memory_hub import MODE_DUET, MODE_FPSOC, MemoryHub
from repro.core.registers import RegisterLayout, RegisterSpec
from repro.core.soft_cache import SoftCacheConfig
from repro.cpu.mmio import MmioMap
from repro.fpga.accelerator import AcceleratorEnvironment, SoftAccelerator
from repro.fpga.bitstream import Bitstream
from repro.fpga.clocking import ProgrammableClockGenerator
from repro.fpga.scratchpad import Scratchpad
from repro.fpga.synthesis import SynthesisModel, SynthesisResult
from repro.mem.address import AddressMap
from repro.mem.config import MemoryConfig
from repro.mem.dram import MainMemory
from repro.noc import TileRouter
from repro.sim import ClockDomain, Simulator


@dataclass
class AdapterConfig:
    """Static configuration of one Duet Adapter."""

    #: ``duet`` (Proxy Caches + Shadow Registers) or ``fpsoc`` (slow caches,
    #: shadow registers downgraded to normal soft registers).
    mode: str = MODE_DUET
    #: Synchronizer depth of every clock-domain-crossing FIFO.
    sync_stages: int = 2
    #: Initial eFPGA clock frequency (MHz); retuned at installation time.
    initial_fpga_mhz: float = 100.0
    #: BRAM scratchpad available to the accelerator (bytes); 0 disables it.
    scratchpad_bytes: int = 8192
    control_hub: ControlHubConfig = field(default_factory=ControlHubConfig)

    def __post_init__(self) -> None:
        if self.mode not in (MODE_DUET, MODE_FPSOC):
            raise ValueError(f"unknown adapter mode {self.mode!r}")
        if self.mode == MODE_FPSOC:
            # The FPSoC baseline has no fast-domain shadow registers.
            self.control_hub = ControlHubConfig(
                downgrade_shadow=True,
                programming_bits_per_cycle=self.control_hub.programming_bits_per_cycle,
                mmio_service_cycles=self.control_hub.mmio_service_cycles,
            )


class DuetAdapter:
    """Composition of a Control Hub and ``len(memory_tile_routers)+...`` Memory Hubs."""

    def __init__(
        self,
        sim: Simulator,
        sys_domain: ClockDomain,
        control_tile_router: TileRouter,
        memory_tile_routers: Sequence[TileRouter],
        address_map: AddressMap,
        mem_config: MemoryConfig,
        memory: MainMemory,
        mmio_map: MmioMap,
        config: Optional[AdapterConfig] = None,
        name: str = "duet",
        control_tile_has_memory_hub: bool = True,
    ) -> None:
        self.sim = sim
        self.sys_domain = sys_domain
        self.config = config or AdapterConfig()
        self.name = name
        self.memory = memory
        self.address_map = address_map
        self.mem_config = mem_config

        self.clock_generator = ProgrammableClockGenerator(
            sim, sys_domain, initial_mhz=self.config.initial_fpga_mhz, name=f"{name}.clkgen"
        )
        self.exceptions = ExceptionHandler(sim, sys_domain, name=f"{name}.exc")
        self.control_hub = ControlHub(
            sim,
            sys_domain,
            control_tile_router,
            mmio_map,
            self.clock_generator,
            config=self.config.control_hub,
            exceptions=self.exceptions,
            name=f"{name}.ctrl",
        )
        self.memory_hubs: List[MemoryHub] = []
        hub_routers: List[TileRouter] = []
        if control_tile_has_memory_hub:
            hub_routers.append(control_tile_router)
        hub_routers.extend(memory_tile_routers)
        for index, router in enumerate(hub_routers):
            hub = MemoryHub(
                sim,
                sys_domain,
                self.fpga_domain,
                router,
                address_map,
                mem_config,
                memory,
                name=f"{name}.mh{index}",
                target=f"mh{index}",
                mode=self.config.mode,
                sync_stages=self.config.sync_stages,
                exceptions=self.exceptions,
            )
            self.memory_hubs.append(hub)
        # Any latched error deactivates every Memory Hub in this adapter.
        self.exceptions.on_error(self._on_error)
        self.control_hub.set_hub_activation_hook(self._apply_hub_activation_mask)
        self.installed_accelerator: Optional[SoftAccelerator] = None
        self.synthesis_result: Optional[SynthesisResult] = None
        self.scratchpad: Optional[Scratchpad] = None

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def fpga_domain(self) -> ClockDomain:
        return self.clock_generator.fpga_domain

    @property
    def mode(self) -> str:
        return self.config.mode

    @property
    def num_memory_hubs(self) -> int:
        return len(self.memory_hubs)

    def register_addr(self, index: int) -> int:
        """MMIO address of soft register ``index`` (software-driver helper)."""
        return self.control_hub.register_addr(index)

    def control_addr(self, offset: int) -> int:
        return self.control_hub.control_addr(offset)

    # ------------------------------------------------------------------ #
    # Error / activation plumbing
    # ------------------------------------------------------------------ #
    def _on_error(self, code: ErrorCode) -> None:
        for hub in self.memory_hubs:
            hub.deactivate()

    def _apply_hub_activation_mask(self, mask: int) -> None:
        for index, hub in enumerate(self.memory_hubs):
            if mask & (1 << index):
                hub.activate()
            else:
                hub.deactivate()

    def deactivate_hubs(self) -> None:
        for hub in self.memory_hubs:
            hub.deactivate()

    def activate_hubs(self) -> None:
        for hub in self.memory_hubs:
            hub.activate()

    # ------------------------------------------------------------------ #
    # Accelerator installation
    # ------------------------------------------------------------------ #
    def install_accelerator(
        self,
        accelerator: SoftAccelerator,
        registers: Optional[Union[RegisterLayout, Sequence[RegisterSpec]]] = None,
        fpga_mhz: Optional[float] = None,
        soft_cache: Union[bool, SoftCacheConfig, None] = None,
        enable_atomics: bool = False,
        physical_memory_access: bool = True,
        synthesis_model: Optional[SynthesisModel] = None,
    ) -> SynthesisResult:
        """Run the full installation flow and attach ``accelerator``.

        This is the zero-simulated-time variant used by experiments; the
        MMIO-driven programming path is exercised through
        :meth:`ControlHub.program` and the ``REG_PROGRAM`` control register.
        Returns the synthesis result (Fmax, area, utilization) so callers can
        build Table II and the ADP figures.
        """
        model = synthesis_model or SynthesisModel()
        synthesis = model.implement(accelerator.design)
        bitstream = Bitstream.generate(accelerator.design, synthesis.fabric)

        # Programming: hubs must be inactive while the fabric is reconfigured.
        self.deactivate_hubs()
        self.control_hub.program_instantly(bitstream)
        self.activate_hubs()

        # Clocking: never faster than the post-route Fmax.
        self.clock_generator.set_max_frequency(synthesis.fmax_mhz)
        self.clock_generator.set_frequency(fpga_mhz if fpga_mhz is not None else synthesis.fmax_mhz)

        # Software interface.
        if registers is None:
            registers = RegisterLayout([])
        elif not isinstance(registers, RegisterLayout):
            registers = RegisterLayout(list(registers))
        self.control_hub.configure_registers(registers)

        # Memory ports (optionally behind soft caches).
        ports = []
        needed = accelerator.design.mem_ports
        if needed > len(self.memory_hubs):
            raise DuetError(
                f"{accelerator.name} needs {needed} memory hubs, "
                f"adapter {self.name!r} has {len(self.memory_hubs)}"
            )
        soft_cache_config: Optional[SoftCacheConfig]
        if soft_cache is True:
            soft_cache_config = SoftCacheConfig()
        elif isinstance(soft_cache, SoftCacheConfig):
            soft_cache_config = soft_cache
        else:
            soft_cache_config = None
        for hub in self.memory_hubs[:needed]:
            if enable_atomics:
                hub.switches.set(FeatureSwitches.ATOMICS_ENABLED, True)
            if not physical_memory_access:
                hub.switches.set(FeatureSwitches.TLB_ENABLED, True)
            if soft_cache_config is not None and self.mode == MODE_DUET:
                ports.append(hub.soft_cached_port(soft_cache_config))
            else:
                ports.append(hub.fpga_port())

        scratchpad = None
        if self.config.scratchpad_bytes > 0:
            scratchpad = Scratchpad(
                self.fpga_domain, self.config.scratchpad_bytes, name=f"{self.name}.scratchpad"
            )
        environment = AcceleratorEnvironment(
            sim=self.sim,
            domain=self.fpga_domain,
            mem_ports=ports,
            registers=self.control_hub.fpga_registers,
            scratchpad=scratchpad,
            extra={"adapter": self},
        )
        accelerator.attach(environment)
        self.installed_accelerator = accelerator
        self.synthesis_result = synthesis
        self.scratchpad = scratchpad
        return synthesis

    def start_accelerator(self):
        """Release the accelerator's reset; returns its behaviour process."""
        if self.installed_accelerator is None:
            raise DuetError(f"{self.name}: no accelerator installed")
        return self.installed_accelerator.start()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DuetAdapter {self.name} mode={self.mode} hubs={self.num_memory_hubs} "
            f"fpga={self.fpga_domain.freq_mhz:.0f}MHz>"
        )
