"""System composition: Dolly instances and their baselines.

``build_system`` assembles a complete simulated chip from a
:class:`DollyConfig`: the 2D-mesh NoC, per-tile LLC shards and directory
slices, Ariane-like cores with private caches and MMIO ports on the P-tiles,
and — unless the system is processor-only — a Duet Adapter whose Control Hub
sits on the C-tile and whose additional Memory Hubs occupy M-tiles, exactly
like Fig. 8's Dolly-P2M2.  The same builder produces the FPSoC-like baseline
of Sec. V-D by switching the adapter into ``fpsoc`` mode.

The area model (Table I constants, eFPGA area, ADP) lives in
:mod:`repro.platform.area`.
"""

from repro.platform.area import AreaModel, Table1Row, TABLE1_ROWS
from repro.platform.config import DollyConfig, SystemKind
from repro.platform.tiles import TilePlan, TileRole
from repro.platform.dolly import DollySystem, build_system

__all__ = [
    "AreaModel",
    "Table1Row",
    "TABLE1_ROWS",
    "DollyConfig",
    "SystemKind",
    "TilePlan",
    "TileRole",
    "DollySystem",
    "build_system",
]
