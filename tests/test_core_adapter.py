"""Integration tests for the Duet Adapter on full Dolly / FPSoC systems."""

import pytest

from repro.core import DuetError, ErrorCode, FeatureSwitches, RegisterKind, RegisterSpec
from repro.core.control_hub import REG_CLK_MHZ, REG_ERROR, REG_STATUS, REG_TIMEOUT
from repro.core.shadow_registers import BOGUS_VALUE, TOKEN_AVAILABLE, TOKEN_EMPTY
from repro.fpga import AcceleratorDesign, SoftAccelerator
from repro.platform import DollyConfig, SystemKind, build_system


class EchoAccelerator(SoftAccelerator):
    """Pops requests from an FPGA-bound FIFO, pushes value+1 to a CPU-bound FIFO."""

    DESIGN = AcceleratorDesign(name="echo", luts=200, ffs=300, mem_ports=1)
    STOP = 0xFFFF

    def behavior(self):
        count = 0
        while True:
            value = yield from self.regs.pop_request(0)
            if value == self.STOP:
                return count
            yield self.cycles(1)
            yield from self.regs.push_response(1, value + 1)
            count += 1


class MemoryReaderAccelerator(SoftAccelerator):
    """Loads a buffer through its Memory Hub and reports the sum."""

    DESIGN = AcceleratorDesign(name="memreader", luts=500, ffs=600, mem_ports=1)

    def __init__(self, base_addr, count, use_line_loads=False):
        super().__init__()
        self.base_addr = base_addr
        self.count = count
        self.use_line_loads = use_line_loads

    def behavior(self):
        # Wait for the "go" signal (plain shadow register 2 becomes nonzero).
        while True:
            go = yield from self.regs.read(2)
            if go:
                break
        total = 0
        if self.use_line_loads:
            addr = self.base_addr
            while addr < self.base_addr + self.count * 8:
                words = yield from self.mem.load_line(addr)
                total += sum(words)
                addr += 16
        else:
            for index in range(self.count):
                value = yield from self.mem.load(self.base_addr + index * 8)
                total += value
        yield from self.regs.push_response(1, total)
        return total


def echo_registers():
    return [
        RegisterSpec(0, RegisterKind.FPGA_BOUND_FIFO, "requests"),
        RegisterSpec(1, RegisterKind.CPU_BOUND_FIFO, "responses"),
        RegisterSpec(2, RegisterKind.PLAIN, "param"),
        RegisterSpec(3, RegisterKind.TOKEN_FIFO, "tokens"),
        RegisterSpec(4, RegisterKind.NORMAL, "barrier"),
    ]


def build(kind, processors=1, hubs=1, fpga_mhz=100.0):
    if kind is SystemKind.DUET:
        config = DollyConfig.dolly(processors, hubs, fpga_mhz=fpga_mhz)
    elif kind is SystemKind.FPSOC:
        config = DollyConfig.fpsoc(processors, hubs, fpga_mhz=fpga_mhz)
    else:
        config = DollyConfig.cpu_only(processors)
    return build_system(config)


# --------------------------------------------------------------------------- #
# Register round trips
# --------------------------------------------------------------------------- #
def test_echo_roundtrip_through_shadow_fifos():
    system = build(SystemKind.DUET)
    accelerator = EchoAccelerator()
    system.install_accelerator(accelerator, registers=echo_registers(), fpga_mhz=100.0)
    acc_proc = system.start_accelerator()
    adapter = system.adapter

    def program(ctx):
        results = []
        for i in range(5):
            yield from ctx.mmio_write(adapter.register_addr(0), 100 + i)
            results.append((yield from ctx.mmio_read(adapter.register_addr(1))))
        yield from ctx.mmio_write(adapter.register_addr(0), EchoAccelerator.STOP)
        return results

    (results, _) = system.run_single(program)
    assert results == [101, 102, 103, 104, 105]
    assert acc_proc.finished and acc_proc.done.value == 5


def test_plain_shadow_register_syncs_both_directions():
    system = build(SystemKind.DUET)

    class PlainAccelerator(SoftAccelerator):
        DESIGN = AcceleratorDesign(name="plain", luts=50, ffs=50, mem_ports=0)

        def behavior(self):
            # Wait until the CPU writes a nonzero parameter, then double it.
            while True:
                value = yield from self.regs.read(2)
                if value:
                    break
            yield from self.regs.write(2, value * 2)
            return value

    accelerator = PlainAccelerator()
    system.install_accelerator(accelerator, registers=echo_registers(), fpga_mhz=100.0)
    system.start_accelerator()
    adapter = system.adapter

    def program(ctx):
        yield from ctx.mmio_write(adapter.register_addr(2), 21)
        # Poll until the accelerator's doubled value is visible.
        while True:
            value = yield from ctx.mmio_read(adapter.register_addr(2))
            if value == 42:
                return value
            yield from ctx.compute(10)

    value, _ = system.run_single(program)
    assert value == 42


def test_token_fifo_nonblocking_semantics():
    system = build(SystemKind.DUET)

    class TokenAccelerator(SoftAccelerator):
        DESIGN = AcceleratorDesign(name="token", luts=50, ffs=50, mem_ports=0)

        def behavior(self):
            yield self.cycles(5)
            for _ in range(2):
                yield from self.regs.push_response(3, 1)
            return "pushed"

    system.install_accelerator(TokenAccelerator(), registers=echo_registers(), fpga_mhz=100.0)
    system.start_accelerator()
    adapter = system.adapter

    def program(ctx):
        early = yield from ctx.mmio_read(adapter.register_addr(3))
        # Give the accelerator time to produce the tokens.
        yield from ctx.compute(500)
        values = []
        for _ in range(3):
            values.append((yield from ctx.mmio_read(adapter.register_addr(3))))
        return early, values

    (early, values), _ = system.run_single(program)
    assert early == TOKEN_EMPTY
    assert values == [TOKEN_AVAILABLE, TOKEN_AVAILABLE, TOKEN_EMPTY]


def test_normal_register_barrier_between_cpu_and_fpga():
    system = build(SystemKind.DUET)

    class BarrierAccelerator(SoftAccelerator):
        DESIGN = AcceleratorDesign(name="barrier", luts=50, ffs=50, mem_ports=0)

        def behavior(self):
            complete = yield from self.regs.wait_cpu_read(4)
            yield self.cycles(20)  # pretend to work while the CPU is blocked
            complete(0x77)
            return "released"

    system.install_accelerator(BarrierAccelerator(), registers=echo_registers(), fpga_mhz=100.0)
    acc_proc = system.start_accelerator()
    adapter = system.adapter

    def program(ctx):
        start = ctx.now
        value = yield from ctx.mmio_read(adapter.register_addr(4))
        return value, ctx.now - start

    (value, elapsed), _ = system.run_single(program)
    assert value == 0x77
    assert acc_proc.done.value == "released"
    # The CPU was blocked for at least the accelerator's 20 slow cycles.
    assert elapsed >= 20 * system.fpga_domain.period_ns


def test_unmapped_register_returns_bogus_data():
    system = build(SystemKind.DUET)
    system.install_accelerator(EchoAccelerator(), registers=echo_registers(), fpga_mhz=100.0)
    adapter = system.adapter

    def program(ctx):
        value = yield from ctx.mmio_read(adapter.register_addr(55))
        return value

    value, _ = system.run_single(program)
    assert value == BOGUS_VALUE


# --------------------------------------------------------------------------- #
# Shadow registers vs normal registers (the Sec. II-F claim)
# --------------------------------------------------------------------------- #
def test_shadow_registers_are_faster_than_fpsoc_normal_registers():
    def mmio_latency(kind):
        system = build(kind, fpga_mhz=50.0)
        system.install_accelerator(EchoAccelerator(), registers=echo_registers(), fpga_mhz=50.0)
        system.start_accelerator()
        adapter = system.adapter

        def program(ctx):
            start = ctx.now
            for i in range(8):
                yield from ctx.mmio_write(adapter.register_addr(2), i)
            elapsed = ctx.now - start
            yield from ctx.mmio_write(adapter.register_addr(0), EchoAccelerator.STOP)
            return elapsed

        elapsed, _ = system.run_single(program)
        return elapsed

    assert mmio_latency(SystemKind.FPSOC) > 2.0 * mmio_latency(SystemKind.DUET)


# --------------------------------------------------------------------------- #
# Memory hubs: proxy cache vs slow cache
# --------------------------------------------------------------------------- #
def _run_memory_reader(kind, count=16, fpga_mhz=100.0, use_line_loads=False, soft_cache=None):
    system = build(kind, fpga_mhz=fpga_mhz)
    base = system.memory.allocate(count * 8)
    accelerator = MemoryReaderAccelerator(base, count, use_line_loads=use_line_loads)
    system.install_accelerator(
        accelerator, registers=echo_registers(), fpga_mhz=fpga_mhz, soft_cache=soft_cache
    )
    system.start_accelerator()
    adapter = system.adapter

    def program(ctx):
        for index in range(count):
            yield from ctx.store(base + index * 8, index + 1)
        start = ctx.now
        yield from ctx.mmio_write(adapter.register_addr(0), 1)  # ignored by reader
        yield from ctx.mmio_write(adapter.register_addr(2), 1)  # go!
        total = yield from ctx.mmio_read(adapter.register_addr(1))
        return total, ctx.now - start

    (total, elapsed), _ = system.run_single(program)
    expected = sum(range(1, count + 1))
    return total, expected, elapsed


def test_accelerator_reads_cpu_written_data_coherently_duet():
    total, expected, _ = _run_memory_reader(SystemKind.DUET)
    assert total == expected


def test_accelerator_reads_cpu_written_data_coherently_fpsoc():
    total, expected, _ = _run_memory_reader(SystemKind.FPSOC)
    assert total == expected


def test_duet_memory_access_is_faster_than_fpsoc_at_low_fpga_clock():
    _, _, duet_elapsed = _run_memory_reader(SystemKind.DUET, fpga_mhz=50.0)
    _, _, fpsoc_elapsed = _run_memory_reader(SystemKind.FPSOC, fpga_mhz=50.0)
    assert fpsoc_elapsed > duet_elapsed


def test_line_loads_reduce_request_count():
    total, expected, word_elapsed = _run_memory_reader(SystemKind.DUET, count=32)
    total2, expected2, line_elapsed = _run_memory_reader(
        SystemKind.DUET, count=32, use_line_loads=True
    )
    assert total == expected and total2 == expected2
    assert line_elapsed < word_elapsed


def test_soft_cache_exploits_locality():
    class RepeatReader(SoftAccelerator):
        DESIGN = AcceleratorDesign(name="repeat", luts=400, ffs=400, mem_ports=1)

        def __init__(self, base):
            super().__init__()
            self.base = base

        def behavior(self):
            while True:
                go = yield from self.regs.read(2)
                if go:
                    break
            total = 0
            for _ in range(8):            # re-reads the same 4 words repeatedly
                for index in range(4):
                    total += yield from self.mem.load(self.base + index * 8)
            yield from self.regs.push_response(1, total)
            return total

    def run(soft_cache):
        system = build(SystemKind.DUET, fpga_mhz=100.0)
        base = system.memory.allocate(64)
        accelerator = RepeatReader(base)
        system.install_accelerator(
            accelerator, registers=echo_registers(), fpga_mhz=100.0, soft_cache=soft_cache
        )
        system.start_accelerator()
        adapter = system.adapter

        def program(ctx):
            for index in range(4):
                yield from ctx.store(base + index * 8, 1)
            start = ctx.now
            yield from ctx.mmio_write(adapter.register_addr(2), 1)
            total = yield from ctx.mmio_read(adapter.register_addr(1))
            return total, ctx.now - start

        (total, elapsed), _ = system.run_single(program)
        return total, elapsed

    total_plain, elapsed_plain = run(soft_cache=None)
    total_cached, elapsed_cached = run(soft_cache=True)
    assert total_plain == total_cached == 32
    assert elapsed_cached < elapsed_plain


def test_soft_cache_receives_forwarded_invalidations():
    """A CPU store after the accelerator cached the line must not be missed."""
    system = build(SystemKind.DUET, fpga_mhz=200.0)
    base = system.memory.allocate(16)

    class ReadTwice(SoftAccelerator):
        DESIGN = AcceleratorDesign(name="readtwice", luts=100, ffs=100, mem_ports=1)

        def __init__(self):
            super().__init__()
            self.first = None
            self.second = None

        def behavior(self):
            self.first = yield from self.mem.load(base)
            # Tell the CPU we read it, then wait for it to update the value.
            yield from self.regs.push_response(1, self.first)
            while True:
                go = yield from self.regs.read(2)
                if go:
                    break
            self.second = yield from self.mem.load(base)
            yield from self.regs.push_response(1, self.second)
            return self.second

    accelerator = ReadTwice()
    system.install_accelerator(
        accelerator, registers=echo_registers(), fpga_mhz=200.0, soft_cache=True
    )
    system.start_accelerator()
    adapter = system.adapter

    def program(ctx):
        yield from ctx.store(base, 7)
        first = yield from ctx.mmio_read(adapter.register_addr(1))
        yield from ctx.store(base, 9)          # invalidates the proxy + soft cache
        yield from ctx.mmio_write(adapter.register_addr(2), 1)
        second = yield from ctx.mmio_read(adapter.register_addr(1))
        return first, second

    (first, second), _ = system.run_single(program)
    assert first == 7
    assert second == 9


# --------------------------------------------------------------------------- #
# Exceptions, deactivation and the FPGA manager
# --------------------------------------------------------------------------- #
def test_parity_error_deactivates_hubs_but_system_survives():
    system = build(SystemKind.DUET)

    class FaultyAccelerator(SoftAccelerator):
        DESIGN = AcceleratorDesign(name="faulty", luts=100, ffs=100, mem_ports=1)

        def behavior(self):
            port = self.env.mem_ports[0]
            event = yield from port.issue("load", 0x9000, corrupt=True)
            try:
                yield from port.wait(event)
            except DuetError:
                return "caught"
            return "no-error"

    accelerator = FaultyAccelerator()
    system.install_accelerator(accelerator, registers=echo_registers(), fpga_mhz=100.0)
    acc_proc = system.start_accelerator()
    adapter = system.adapter

    def program(ctx):
        # The CPU keeps using memory and MMIO after the accelerator faults.
        yield from ctx.compute(2000)
        yield from ctx.store(0xA000, 1)
        value = yield from ctx.load(0xA000)
        error = yield from ctx.mmio_read(adapter.control_addr(REG_ERROR))
        return value, error

    (value, error), _ = system.run_single(program)
    assert acc_proc.done.value == "caught"
    assert value == 1
    assert error == int(ErrorCode.PARITY)
    assert all(not hub.active for hub in adapter.memory_hubs)


def test_deactivated_hub_rejects_requests_until_reactivated():
    system = build(SystemKind.DUET)

    class OneLoad(SoftAccelerator):
        DESIGN = AcceleratorDesign(name="oneload", luts=100, ffs=100, mem_ports=1)

        def behavior(self):
            try:
                yield from self.mem.load(0x4000)
            except DuetError:
                return "rejected"
            return "ok"

    accelerator = OneLoad()
    system.install_accelerator(accelerator, registers=echo_registers(), fpga_mhz=100.0)
    system.adapter.deactivate_hubs()
    acc_proc = system.start_accelerator()
    system.sim.run()
    assert acc_proc.done.value == "rejected"


def test_control_registers_report_status_clock_and_timeout():
    system = build(SystemKind.DUET)
    system.install_accelerator(EchoAccelerator(), registers=echo_registers(), fpga_mhz=250.0)
    adapter = system.adapter

    def program(ctx):
        status = yield from ctx.mmio_read(adapter.control_addr(REG_STATUS))
        clk = yield from ctx.mmio_read(adapter.control_addr(REG_CLK_MHZ))
        yield from ctx.mmio_write(adapter.control_addr(REG_TIMEOUT), 1234)
        timeout = yield from ctx.mmio_read(adapter.control_addr(REG_TIMEOUT))
        return status, clk, timeout

    (status, clk, timeout), _ = system.run_single(program)
    assert status == 1
    assert clk == 250
    assert timeout == 1234


def test_tlb_protects_virtualized_accelerator():
    system = build(SystemKind.DUET)
    base = system.memory.allocate(4096, align=4096)

    class VirtualReader(SoftAccelerator):
        DESIGN = AcceleratorDesign(name="virt", luts=100, ffs=100, mem_ports=1)

        def behavior(self):
            value = yield from self.mem.load(0x0000_1000)  # virtual address
            return value

    accelerator = VirtualReader()
    system.install_accelerator(
        accelerator, registers=echo_registers(), fpga_mhz=100.0, physical_memory_access=False
    )
    hub = system.adapter.memory_hubs[0]
    assert hub.switches.enabled(FeatureSwitches.TLB_ENABLED)
    hub.tlb.install(vpn=0x1, ppn=base >> 12)
    system.memory.write_word(base, 0x1234)
    acc_proc = system.start_accelerator()
    system.sim.run()
    assert acc_proc.done.value == 0x1234
    assert hub.tlb.stats.counter("hits").value == 1


def test_install_rejects_accelerator_needing_too_many_hubs():
    system = build(SystemKind.DUET, hubs=1)

    class NeedsTwo(SoftAccelerator):
        DESIGN = AcceleratorDesign(name="two", luts=100, ffs=100, mem_ports=2)

        def behavior(self):
            yield self.cycles(1)

    with pytest.raises(DuetError):
        system.install_accelerator(NeedsTwo(), registers=echo_registers())
