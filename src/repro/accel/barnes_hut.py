"""Barnes-Hut force accelerators (Dolly-P4M1, fine-grained acceleration).

Sec. III-A2 and V-D: the two compute-intensive kernels of the Barnes-Hut
N-body algorithm — ``ApproxForce`` (monopole approximation against an
internal tree node) and ``CalcForce`` (exact pairwise force against a leaf
particle) — become pipelined soft accelerators, while the processors keep
the tree traversal, the dynamic control flow and the THRESHOLD test.  Both
kernels live on one eFPGA and are time-multiplexed by several CPU threads
(Fig. 7), so the register interface carries a requester tag with every
invocation and every result.

Fixed-point convention: positions and masses cross the interface scaled by
:data:`SCALE`; forces return scaled the same way.  Node and particle records
live in coherent memory, four 8-byte words each: (x, y, mass, unused).
"""

from __future__ import annotations

from typing import List

from repro.core.registers import RegisterKind, RegisterSpec
from repro.fpga.accelerator import SoftAccelerator
from repro.fpga.synthesis import AcceleratorDesign

SCALE = 1 << 16
STOP_COMMAND = (1 << 62)

#: Register map.  Requests encode (requester << 56) | (target_index << 28) | particle_index.
REG_APPROX_REQ = 0    # FPGA-bound FIFO: ApproxForce invocations
REG_CALC_REQ = 1      # FPGA-bound FIFO: CalcForce invocations
REG_RESULT_BASE = 2   # CPU-bound FIFOs: one per CPU thread (2 + thread id)
MAX_THREADS = 8

REG_NODES_BASE = 10    # plain: base address of the tree-node record array
REG_PARTICLES_BASE = 11  # plain: base address of the particle record array

RECORD_WORDS = 4
RECORD_BYTES = RECORD_WORDS * 8


def register_layout(num_threads: int) -> List[RegisterSpec]:
    specs = [
        RegisterSpec(REG_APPROX_REQ, RegisterKind.FPGA_BOUND_FIFO, "approx_req", depth=32),
        RegisterSpec(REG_CALC_REQ, RegisterKind.FPGA_BOUND_FIFO, "calc_req", depth=32),
        RegisterSpec(REG_NODES_BASE, RegisterKind.PLAIN, "nodes_base"),
        RegisterSpec(REG_PARTICLES_BASE, RegisterKind.PLAIN, "particles_base"),
    ]
    for thread in range(num_threads):
        specs.append(
            RegisterSpec(REG_RESULT_BASE + thread, RegisterKind.CPU_BOUND_FIFO,
                         f"result_t{thread}", depth=16)
        )
    return specs


def encode_request(thread: int, target_index: int, particle_index: int) -> int:
    return (thread << 56) | (target_index << 28) | particle_index


def decode_request(word: int):
    return (word >> 56) & 0xFF, (word >> 28) & 0x0FFF_FFFF, word & 0x0FFF_FFFF


def to_fixed(value: float) -> int:
    return int(round(value * SCALE)) & 0xFFFF_FFFF_FFFF_FFFF


def from_fixed(word: int) -> float:
    if word >= 1 << 63:
        word -= 1 << 64
    return word / SCALE


def gravitational_force(xa, ya, ma, xb, yb, mb, softening=0.05):
    """Scalar magnitude of the pairwise force (2-D, softened)."""
    dx = xb - xa
    dy = yb - ya
    dist_sq = dx * dx + dy * dy + softening
    return (ma * mb) / dist_sq


class BarnesHutForceAccelerator(SoftAccelerator):
    """Hosts both the ApproxForce and CalcForce pipelines on one eFPGA."""

    DESIGN = AcceleratorDesign(
        name="barnes-hut",
        luts=9800,
        ffs=11200,
        bram_kbits=64,
        dsps=24,
        logic_depth=17,
        routing_pressure=0.55,
        mem_ports=1,
        description="ApproxForce + CalcForce HLS pipelines, time-multiplexed by 4 cores",
    )

    #: Initiation intervals (eFPGA cycles) of the two force pipelines.  Both
    #: kernels are fully pipelined HLS datapaths, so back-to-back requests are
    #: limited by the initiation interval, not the end-to-end latency.
    APPROX_CYCLES = 2
    CALC_CYCLES = 2

    def __init__(self, name: str = "barnes-hut") -> None:
        super().__init__(name)
        self.approx_invocations = 0
        self.calc_invocations = 0

    def behavior(self):
        # Two independent pipelines, one per request FIFO, sharing the hub.
        # Both kernels evaluate a force against a tree-node record: ApproxForce
        # against an internal node's monopole, CalcForce against a leaf.
        approx = self.env.sim.process(self._pipeline(REG_APPROX_REQ, REG_NODES_BASE,
                                                     self.APPROX_CYCLES, "approx"),
                                      name=f"{self.name}.approx")
        calc = self.env.sim.process(self._pipeline(REG_CALC_REQ, REG_NODES_BASE,
                                                   self.CALC_CYCLES, "calc"),
                                    name=f"{self.name}.calc")
        done_a = yield approx.done
        done_c = yield calc.done
        return done_a + done_c

    def _pipeline(self, request_register: int, base_register: int, latency: int, label: str):
        served = 0
        # Small register caches: the traversal sends many back-to-back
        # requests for the same particle, and base addresses are constants.
        nodes_base = None
        particles_base = None
        last_particle = None
        particle_words = particle_tail = None
        while True:
            request = yield from self.regs.pop_request(request_register)
            if request == STOP_COMMAND:
                return served
            thread, target_index, particle_index = decode_request(request)
            if nodes_base is None:
                nodes_base = yield from self.regs.read(base_register)
                particles_base = yield from self.regs.read(REG_PARTICLES_BASE)
            target_addr = nodes_base + target_index * RECORD_BYTES
            particle_addr = particles_base + particle_index * RECORD_BYTES
            target_words = yield from self.mem.load_line(target_addr)
            target_tail = yield from self.mem.load_line(target_addr + 16)
            if particle_index != last_particle:
                particle_words = yield from self.mem.load_line(particle_addr)
                particle_tail = yield from self.mem.load_line(particle_addr + 16)
                last_particle = particle_index
            yield self.cycles(latency)
            xa, ya = from_fixed(particle_words[0]), from_fixed(particle_words[1])
            ma = from_fixed(particle_tail[0])
            xb, yb = from_fixed(target_words[0]), from_fixed(target_words[1])
            mb = from_fixed(target_tail[0])
            force = gravitational_force(xa, ya, ma, xb, yb, mb)
            yield from self.regs.push_response(REG_RESULT_BASE + thread, to_fixed(force))
            served += 1
            if label == "approx":
                self.approx_invocations += 1
            else:
                self.calc_invocations += 1
            self.stats.counter(f"{label}_invocations").increment()
