"""NoC message container.

The NoC is payload-agnostic: the memory system and the Duet Adapter define
their own message kinds (coherence requests, MMIO reads, ...) and hand them
to the network as :class:`NocMessage` instances.  The message records
timestamps as it moves through the system so the analysis layer can rebuild
the latency breakdown of Fig. 9 (NoC time vs. cache time vs. CDC time).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

_message_ids = itertools.count()

#: Bytes carried per flit on the P-Mesh-like data path.
FLIT_BYTES = 8


class MessagePlane(enum.IntEnum):
    """Physical NoC planes, mirroring OpenPiton's three-NoC split.

    Separating requests, forwards and responses onto independent planes is
    what makes the blocking directory protocol deadlock-free.
    """

    REQUEST = 0
    FORWARD = 1
    RESPONSE = 2


@dataclass
class NocMessage:
    """A single NoC packet.

    ``kind`` is a free-form string interpreted by the endpoint (for example
    ``"GetS"`` or ``"mmio_read"``); ``payload`` carries the protocol-level
    object.  ``size_bytes`` determines the number of data flits and hence the
    serialization latency on each link.
    """

    src: int
    dst: int
    kind: str
    payload: Any = None
    addr: Optional[int] = None
    size_bytes: int = 0
    plane: MessagePlane = MessagePlane.REQUEST
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    timestamps: Dict[str, float] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def flits(self) -> int:
        """Header flit plus one flit per :data:`FLIT_BYTES` of payload."""
        data_flits = (self.size_bytes + FLIT_BYTES - 1) // FLIT_BYTES
        return 1 + data_flits

    def stamp(self, label: str, time_ns: float) -> None:
        """Record a named timestamp (first occurrence wins)."""
        self.timestamps.setdefault(label, time_ns)

    def noc_latency(self) -> float:
        """Time spent in the network, if both endpoints stamped the message."""
        if "injected" in self.timestamps and "delivered" in self.timestamps:
            return self.timestamps["delivered"] - self.timestamps["injected"]
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        addr = f" addr=0x{self.addr:x}" if self.addr is not None else ""
        return f"<NocMessage #{self.msg_id} {self.kind} {self.src}->{self.dst}{addr}>"
