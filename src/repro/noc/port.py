"""Tile-level dispatch and per-component NoC ports.

A physical tile hosts several NoC clients (the private L2 agent, the LLC
shard / directory slice, and — on C- and M-tiles — the Duet Adapter's hubs).
They share the tile's single mesh attachment point: a :class:`TileRouter`
receives every packet addressed to the tile and dispatches on the packet's
``target`` label, and each component talks to the network through a
:class:`NocPort` bound to its (node, target) identity.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.noc.message import MessagePlane, NocMessage
from repro.noc.network import NocNetwork
from repro.sim import Event


class TileRouter:
    """Demultiplexes packets arriving at one NoC node onto local components."""

    def __init__(self, network: NocNetwork, node: int) -> None:
        self.network = network
        self.node = node
        self._targets: Dict[str, Callable[[NocMessage], None]] = {}
        network.attach(node, self._dispatch)

    def register(self, target: str, handler: Callable[[NocMessage], None]) -> None:
        if target in self._targets:
            raise ValueError(f"target {target!r} already registered on node {self.node}")
        self._targets[target] = handler

    def port(self, target: str, handler: Callable[[NocMessage], None] = None) -> "NocPort":
        """Create a :class:`NocPort` for ``target``, optionally registering a handler."""
        if handler is not None:
            self.register(target, handler)
        return NocPort(self.network, self.node, target)

    def _dispatch(self, message: NocMessage) -> None:
        target = message.meta.get("target")
        handler = self._targets.get(target)
        if handler is None:
            raise RuntimeError(
                f"node {self.node} received message for unknown target {target!r}: {message}"
            )
        handler(message)


class NocPort:
    """A component's handle for sending NoC messages from a fixed (node, target)."""

    def __init__(self, network: NocNetwork, node: int, target: str) -> None:
        self.network = network
        self.node = node
        self.target = target

    def send(
        self,
        dst_node: int,
        dst_target: str,
        kind: str,
        addr: int = None,
        payload=None,
        size_bytes: int = 0,
        plane: MessagePlane = MessagePlane.REQUEST,
        **meta,
    ) -> Event:
        """Build and inject a message; returns the delivery event."""
        message = NocMessage(
            src=self.node,
            dst=dst_node,
            kind=kind,
            addr=addr,
            payload=payload,
            size_bytes=size_bytes,
            plane=plane,
        )
        message_meta = message.meta
        message_meta["target"] = dst_target
        message_meta["reply_node"] = self.node
        message_meta["reply_target"] = self.target
        if meta:
            message_meta.update(meta)
        return self.network.send(message)

    def reply(self, original: NocMessage, kind: str, **kwargs) -> Event:
        """Send a response back to the originator of ``original``."""
        return self.send(
            original.meta["reply_node"],
            original.meta["reply_target"],
            kind,
            addr=original.addr,
            plane=MessagePlane.RESPONSE,
            **kwargs,
        )
