"""The ``latency_decomposition`` experiment and the ``trace`` CLI drivers.

``latency_decomposition`` answers the question the aggregate serve rows
cannot: *where does a request's latency actually go?*  Each cell runs one
traced serving deployment (policy x region count x background fault rate
over the canonical ``duo`` mix), folds the trace through
:mod:`repro.obs.decompose`, and reports per-tenant stage shares
(queue / program / retune / service / blackout — summing to 1.0 by
construction) next to the full latency tail.  The pinned acceptance
point (``affinity``, fault-free) cross-checks the trace-derived program
share against the scheduler's own ``reconfig_overhead`` accounting — two
independent code paths agreeing on the same number.

``trace_experiment`` is the driver behind ``python -m repro trace``: it
re-runs a named experiment's canonical point with a
:class:`~repro.obs.trace.Tracer` attached and returns the tracer, whose
:meth:`~repro.obs.trace.Tracer.to_json` bytes are deterministic for a
given seed.

Cells are module-level and seed-deterministic (picklable for the
process-pool executor).  This module must not import :mod:`repro.api` —
the registry imports *us*.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.chaos.inject import ChaosConfig
from repro.chaos.schedule import FaultSchedule, FaultSpec
from repro.obs.decompose import ALL_TENANTS, STAGES, decompose_rows
from repro.obs.trace import Tracer
from repro.serve.experiments import DEFAULT_SEED, run_serve

#: The canonical decomposition point: the PR 5 serving sweep's contended
#: duo-mix cell, where the affinity-vs-FCFS story lives.
DECOMPOSE_MIX = "duo"
DECOMPOSE_RATE_KRPS = 250.0
DECOMPOSE_DURATION_US = 2_000.0


def noise_schedule(fault_rate: float, seed: int = DEFAULT_SEED) -> FaultSchedule:
    """Background-noise-only chaos: rate-scaled SEUs plus self-repairing
    link faults, *without* the fleet experiment's pinned node kill (a
    single-deployment serve run has nowhere to fail over to)."""
    if fault_rate <= 0:
        raise ValueError(f"fault_rate must be positive, got {fault_rate}")
    return FaultSchedule(seed=seed, specs=(
        FaultSpec(kind="seu", rate_per_epoch=fault_rate, detect_ns=2_000.0),
        FaultSpec(kind="link", rate_per_epoch=fault_rate * 0.5,
                  repair_ns=60_000.0),
    ))


def latency_decomposition_cell(
    policy: str,
    regions: int = 1,
    fault_rate: float = 0.0,
    tenant_mix: str = DECOMPOSE_MIX,
    arrival_rate_krps: float = DECOMPOSE_RATE_KRPS,
    duration_us: float = DECOMPOSE_DURATION_US,
    seed: int = DEFAULT_SEED,
) -> List[Dict[str, Any]]:
    """One traced serve run -> per-tenant stage-share rows.

    ``fault_rate == 0`` runs with no chaos armed at all, so the fault-free
    decomposition is taken from exactly the run the serve goldens pin.
    """
    tracer = Tracer()
    chaos = (ChaosConfig(noise_schedule(fault_rate, seed))
             if fault_rate > 0 else None)
    outcome = run_serve(
        policy, tenant_mix=tenant_mix, arrival_rate_krps=arrival_rate_krps,
        duration_us=duration_us, seed=seed, chaos=chaos, regions=regions,
        tracer=tracer,
    )
    aggregate = next(row for row in outcome["rows"]
                     if row["tenant"] == ALL_TENANTS)
    context = {
        "policy": policy,
        "regions": regions,
        "fault_rate": fault_rate,
        "tenant_mix": tenant_mix,
        "arrival_rate_krps": arrival_rate_krps,
    }
    rows = []
    for stage_row in decompose_rows(tracer):
        row = dict(context)
        row.update(stage_row)
        if row["tenant"] == ALL_TENANTS:
            # The scheduler's own accounting for the same run — lets the
            # summary (and the acceptance test) cross-check the
            # trace-derived program share against an independent path.
            row["reconfig_overhead"] = aggregate["reconfig_overhead"]
            row["completed"] = aggregate["completed"]
        rows.append(row)
    return rows


def latency_decomposition_summary(rows: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Headline stage shares and tails per (policy, regions, fault_rate)."""
    aggregates = [row for row in rows if row.get("tenant") == ALL_TENANTS]
    summary: Dict[str, Any] = {}
    points: List[Tuple[str, int, float]] = sorted(
        {(row["policy"], row["regions"], row["fault_rate"])
         for row in aggregates})
    for policy, regions, fault_rate in points:
        row = next(r for r in aggregates
                   if (r["policy"], r["regions"], r["fault_rate"])
                   == (policy, regions, fault_rate))
        label = f"{policy}/r{regions}@rate{fault_rate:g}"
        for stage in STAGES:
            summary[f"{stage}_share[{label}]"] = row[f"{stage}_share"]
        summary[f"p999_latency_us[{label}]"] = row["p999_latency_us"]
        summary[f"share_under_2x_p50[{label}]"] = row["share_under_2x_p50"]
    return summary


# --------------------------------------------------------------------------- #
# ``python -m repro trace`` drivers
# --------------------------------------------------------------------------- #
def _trace_serve(seed: int, tracer: Tracer, **overrides: Any) -> None:
    params: Dict[str, Any] = dict(
        policy="affinity", tenant_mix=DECOMPOSE_MIX,
        arrival_rate_krps=DECOMPOSE_RATE_KRPS,
        duration_us=DECOMPOSE_DURATION_US)
    params.update(overrides)
    run_serve(params.pop("policy"), seed=seed, tracer=tracer, **params)


def _trace_reconfig(seed: int, tracer: Tracer, **overrides: Any) -> None:
    overrides.setdefault("regions", 4)
    _trace_serve(seed, tracer, **overrides)


def _trace_chaos(seed: int, tracer: Tracer, **overrides: Any) -> None:
    fault_rate = float(overrides.pop("fault_rate", 2.0))
    overrides.setdefault("duration_us", DECOMPOSE_DURATION_US)
    overrides["chaos"] = ChaosConfig(noise_schedule(fault_rate, seed))
    _trace_serve(seed, tracer, **overrides)


def _trace_fleet(seed: int, tracer: Tracer, **overrides: Any) -> None:
    from repro.fleet.cluster import FleetConfig, run_fleet
    from repro.fleet.experiments import FLEET_TENANTS

    rate_krps = float(overrides.pop("rate_krps", 300.0))
    config = FleetConfig(
        nodes=int(overrides.pop("nodes", 3)),
        epochs=int(overrides.pop("epochs", 3)),
        epoch_us=float(overrides.pop("epoch_us", 400.0)),
        placement="affinity",
        **overrides,
    )
    run_fleet(config, FLEET_TENANTS, total_rate_rps=rate_krps * 1000.0,
              seed=seed, tracer=tracer)


def _trace_decomposition(seed: int, tracer: Tracer, **overrides: Any) -> None:
    # The decomposition cell builds its own tracer; the CLI wants *this*
    # one populated, so re-drive the same canonical point directly.
    overrides.setdefault("policy", "affinity")
    _trace_serve(seed, tracer, **overrides)


TRACE_DRIVERS: Dict[str, Callable[..., None]] = {
    "serve_policy": _trace_serve,
    "serve_energy": _trace_serve,
    "reconfig": _trace_reconfig,
    "chaos": _trace_chaos,
    "fleet_scaling": _trace_fleet,
    "latency_decomposition": _trace_decomposition,
}


def trace_experiment(name: str, seed: int = DEFAULT_SEED,
                     overrides: Optional[Dict[str, Any]] = None) -> Tracer:
    """Run ``name``'s canonical point with a tracer attached; return it.

    ``overrides`` forwards ``-p key=value`` CLI parameters to the driver
    (policy, duration_us, regions, fault_rate, ... depending on the
    experiment).  The returned tracer's :meth:`to_json` bytes depend only
    on ``(name, seed, overrides)``.
    """
    try:
        driver = TRACE_DRIVERS[name]
    except KeyError:
        known = ", ".join(sorted(TRACE_DRIVERS))
        raise KeyError(
            f"no trace driver for experiment {name!r}; traceable: {known}"
        ) from None
    tracer = Tracer()
    driver(seed, tracer, **(overrides or {}))
    return tracer
