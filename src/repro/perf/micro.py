"""Microbenchmarks for the simulation kernel's hot paths.

Three of them, matching where the figure experiments spend their event
budget:

* :func:`kernel_throughput` — the canonical *kernel events/sec* number: a
  mixed workload of cooperative yields, event rendezvous (zero-delay
  wakeups through the immediate deque) and timed delays (heap traffic).
  The mix deliberately emphasizes the zero-delay paths (~6:1) because the
  per-event overhead of exactly those hops is what the fast path exists to
  eliminate; :func:`kernel_timed_throughput` tracks the heap path on its
  own, and the end-to-end benches track the realistic blend (the figure
  experiments schedule ~45% of their events at zero delay).
* :func:`channel_handoff` — blocking producer/consumer pairs through a
  capacity-1 :class:`~repro.sim.channel.Channel`, so every item forces a
  real event rendezvous in each direction.
* :func:`noc_message_throughput` — serialized messages across a network
  diameter on any topology, exercising batched link reservation, clock
  alignment and delivery events.  :func:`noc_hop_throughput` is its 4x4
  mesh instantiation kept for baseline continuity; the gated
  ``noc_messages_per_sec`` number runs the 8x8 mesh, with per-topology
  variants alongside (see ``repro.perf.SUITE``).  Passing
  ``power_hooks=True`` attaches a live :class:`~repro.power.PowerProbe`
  — the gated ``noc_messages_per_sec_hooks_on`` variant, which is what
  proves the energy-accounting hooks cost ~nothing on the hot path.
* :func:`energy_sample_rate` — epoch closes per wall second of a busy
  :class:`~repro.power.EnergyModel`: the accounting layer's own overhead,
  published in the ``BENCH_power.json`` CI artifact.
* :func:`serve_request_throughput` — served requests per wall second
  through the :mod:`repro.serve` subsystem on the two-tenant
  reconfiguration-pressure mix: the gated ``serve_requests_per_sec``
  number, published in the ``BENCH_serve.json`` CI artifact.
* :func:`reconfig_request_throughput` — the same serving workload on a
  region-gridded fabric (:mod:`repro.reconfig`): allocator, span hot
  swaps and partial-image programming on the hot path — the gated
  ``reconfig_requests_per_sec`` number, published in the
  ``BENCH_reconfig.json`` CI artifact.
* :func:`fleet_request_throughput` — served requests per wall second
  through the :mod:`repro.fleet` cluster layer (placement, per-node
  simulation, deterministic merge): the gated ``fleet_requests_per_sec``
  number, published in the ``BENCH_fleet.json`` CI artifact.
* :func:`chaos_request_throughput` — the same fleet path under injected
  faults with recovery on (:mod:`repro.chaos`): the gated
  ``chaos_requests_per_sec`` number, published in the
  ``BENCH_chaos.json`` CI artifact.

All of them return a rate (per wall second), so *higher is better* and
regressions show up as ratios < 1 against the recorded baseline.
"""

from __future__ import annotations

import time

from repro.noc import NocMessage, NocNetwork, make_topology
from repro.power.model import EnergyModel, PowerConfig, PowerProbe
from repro.sim import Channel, ClockDomain, Delay, Simulator


def kernel_throughput(iterations: int = 30_000) -> float:
    """Events per wall second on the zero-delay-heavy kernel workload.

    Per iteration: four cooperative yields, one event rendezvous (a
    zero-delay succeed plus the waiter's wakeup) and one timed delay —
    seven events, ~6:1 zero-delay:timed.
    """
    sim = Simulator()

    def pinger():
        for _ in range(iterations):
            yield None                       # cooperative yields
            yield None
            yield None
            yield None
            event = sim.event()
            sim.schedule(0.0, event.succeed, 1)
            yield event                      # zero-delay rendezvous
            yield Delay(1.0)                 # timed wakeup (heap)

    sim.process(pinger())
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return sim.events_executed / elapsed


def kernel_timed_throughput(iterations: int = 30_000, processes: int = 4) -> float:
    """Events per wall second when every wakeup is a timed delay (heap path)."""
    sim = Simulator()

    def ticker():
        for _ in range(iterations):
            yield Delay(1.0)

    for _ in range(processes):
        sim.process(ticker())
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return sim.events_executed / elapsed


def kernel_zero_delay_throughput(iterations: int = 50_000) -> float:
    """Events per wall second when every wakeup is zero-delay."""
    sim = Simulator()

    def pinger():
        for _ in range(iterations):
            yield None
            event = sim.event()
            sim.schedule(0.0, event.succeed, 1)
            yield event

    sim.process(pinger())
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return sim.events_executed / elapsed


def channel_handoff(items: int = 20_000) -> float:
    """Items per wall second through a capacity-1 blocking channel."""
    sim = Simulator()
    channel = Channel(sim, capacity=1)
    received = 0

    def producer():
        for index in range(items):
            yield from channel.put(index)

    def consumer():
        nonlocal received
        for _ in range(items):
            yield from channel.get()
            received += 1

    sim.process(producer())
    sim.process(consumer())
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    if received != items:
        raise RuntimeError(f"channel bench lost items: {received}/{items}")
    return items / elapsed


def noc_message_throughput(messages: int = 2_000, width: int = 8, height: int = 8,
                           topology: str = "mesh", power_hooks: bool = False) -> float:
    """Serialized messages per wall second across a network diameter.

    The destination is the node farthest (in hops) from node 0, so every
    topology is measured over its own longest route — the mesh pays the
    full diagonal, the torus half of it, the crossbar a single hop.
    ``power_hooks=True`` attaches a live power probe, turning every send's
    default-off energy hook into a real counter increment.
    """
    sim = Simulator()
    domain = ClockDomain(sim, 1000.0, "noc-bench")
    network = NocNetwork(sim, domain, topology=make_topology(topology, width, height))
    if power_hooks:
        network.power_probe = PowerProbe()
    fabric = network.topology
    far = max(range(network.node_count), key=lambda node: (fabric.hop_count(0, node), -node))
    network.attach(far, lambda message: None)
    if far != 0:
        network.attach(0, lambda message: None)
    delivered_count = 0

    def sender():
        nonlocal delivered_count
        for index in range(messages):
            yield network.send(NocMessage(src=0, dst=far, kind="bench", addr=index))
            delivered_count += 1

    sim.process(sender())
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    if delivered_count != messages:
        raise RuntimeError(f"noc bench lost messages: {delivered_count}/{messages}")
    return messages / elapsed


def noc_hop_throughput(messages: int = 2_000, width: int = 4, height: int = 4) -> float:
    """The 4x4 mesh-diagonal variant tracked since the PR 2 baseline."""
    return noc_message_throughput(messages=messages, width=width, height=height,
                                  topology="mesh")


def serve_request_throughput(duration_us: float = 4_000.0,
                             arrival_rate_krps: float = 250.0,
                             policy: str = "affinity",
                             tracing: bool = False) -> float:
    """Served requests per wall second through the serving subsystem.

    Runs the canonical two-tenant reconfiguration-pressure mix (``duo``)
    through one fabric under the given policy — every request exercises the
    admission queue, the policy's select, the Control Hub programming
    engine on bitstream switches, and the eFPGA clock-domain wait — so this
    number tracks the serving hot path end to end.  The workload is fully
    deterministic, so only the wall clock varies between repeats.

    ``tracing=True`` attaches a live :class:`~repro.obs.Tracer`, turning
    every request lifecycle into recorded spans/instants — the
    ``serve_requests_per_sec_tracing_on`` twin that gates the hooks-on
    overhead the same way ``noc_messages_per_sec_hooks_on`` gates the
    power probes.
    """
    from repro.serve.experiments import run_serve

    tracer = None
    if tracing:
        from repro.obs import Tracer

        tracer = Tracer()
    start = time.perf_counter()
    outcome = run_serve(policy, tenant_mix="duo",
                        arrival_rate_krps=arrival_rate_krps,
                        duration_us=duration_us, tracer=tracer)
    elapsed = time.perf_counter() - start
    aggregate = [row for row in outcome["rows"] if row["tenant"] == "__all__"][0]
    completed = aggregate["completed"]
    if completed <= 0 or aggregate["shed"] + completed != aggregate["submitted"]:
        raise RuntimeError(
            f"serve bench lost requests: completed={completed} "
            f"shed={aggregate['shed']} submitted={aggregate['submitted']}"
        )
    return completed / elapsed


def reconfig_request_throughput(duration_us: float = 4_000.0,
                                arrival_rate_krps: float = 250.0,
                                policy: str = "affinity",
                                regions: int = 4) -> float:
    """Served requests per wall second through *region-granular* serving.

    The same duo workload as :func:`serve_request_throughput`, but on one
    shared fabric carved into ``regions`` spans (:mod:`repro.reconfig`):
    every request exercises the region allocator (lookup/pin/place), the
    startable-filter worker path and partial-image programming through
    ``Bitstream.for_regions`` — the region layer's end-to-end overhead per
    request.  Fully deterministic; only the wall clock varies between
    repeats (``BENCH_reconfig.json`` CI artifact, gated).
    """
    from repro.serve.experiments import run_serve

    start = time.perf_counter()
    outcome = run_serve(policy, tenant_mix="duo",
                        arrival_rate_krps=arrival_rate_krps,
                        duration_us=duration_us, regions=regions)
    elapsed = time.perf_counter() - start
    aggregate = [row for row in outcome["rows"] if row["tenant"] == "__all__"][0]
    completed = aggregate["completed"]
    if completed <= 0 or aggregate["shed"] + completed != aggregate["submitted"]:
        raise RuntimeError(
            f"reconfig bench lost requests: completed={completed} "
            f"shed={aggregate['shed']} submitted={aggregate['submitted']}"
        )
    return completed / elapsed


def fleet_request_throughput(nodes: int = 4, epochs: int = 3,
                             epoch_us: float = 400.0,
                             rate_krps: float = 400.0,
                             placement: str = "affinity",
                             monitoring: bool = False) -> float:
    """Served requests per wall second through the fleet layer.

    Runs a static (no-autoscaler) fleet of ``nodes`` serially — placement,
    per-node scheduling, the epoch driver and the deterministic merge are
    all on the measured path — under a flat offered rate, so the number
    tracks the cluster layer's end-to-end overhead per request.  The
    workload is fully deterministic; only the wall clock varies between
    repeats (``BENCH_fleet.json`` CI artifact, gated).

    ``monitoring=True`` attaches the live telemetry layer: every node runs
    with a 100us :class:`~repro.obs.TelemetryMonitor` window and the
    cluster evaluates the default :class:`~repro.obs.AlertEngine` rules on
    the merged stream each epoch — the
    ``fleet_requests_per_sec_monitor_on`` twin that gates the monitor-on
    overhead the same way ``serve_requests_per_sec_tracing_on`` gates the
    tracer's.
    """
    from repro.fleet.cluster import FleetConfig, run_fleet
    from repro.fleet.experiments import FLEET_TENANTS

    config = FleetConfig(nodes=nodes, placement=placement, epochs=epochs,
                         epoch_us=epoch_us,
                         telemetry_window_us=100.0 if monitoring else None)
    start = time.perf_counter()
    outcome = run_fleet(config, FLEET_TENANTS, total_rate_rps=rate_krps * 1000.0,
                        rate_profile=(1.0,) * epochs)
    elapsed = time.perf_counter() - start
    aggregate = [row for row in outcome.rows if row["tenant"] == "__all__"][0]
    completed = aggregate["completed"]
    if completed <= 0 or aggregate["shed"] + completed != aggregate["submitted"]:
        raise RuntimeError(
            f"fleet bench lost requests: completed={completed} "
            f"shed={aggregate['shed']} submitted={aggregate['submitted']}"
        )
    return completed / elapsed


def chaos_request_throughput(nodes: int = 3, spares: int = 1,
                             epochs: int = 4, epoch_us: float = 400.0,
                             rate_krps: float = 300.0,
                             fault_rate: float = 2.0) -> float:
    """Served requests per wall second through a fleet *under injected
    faults* — the reliability layer's end-to-end cost.

    The run loses node 0 to a pinned whole-node kill in epoch 1 while
    rate-scaled SEU and transient link noise plays over every node, with
    recovery on: spare promotion, failover re-placement, replay bursts and
    image scrubbing are all on the measured path.  Fault draws resolve in
    the parent before any node simulates, so the workload is fully
    deterministic; only the wall clock varies between repeats
    (``BENCH_chaos.json`` CI artifact, gated).
    """
    from repro.chaos import ChaosConfig
    from repro.chaos.experiments import build_schedule
    from repro.fleet.cluster import FleetConfig, run_fleet
    from repro.fleet.experiments import FLEET_TENANTS

    config = FleetConfig(nodes=nodes, placement="affinity", epochs=epochs,
                         epoch_us=epoch_us,
                         chaos=ChaosConfig(build_schedule(fault_rate),
                                           recovery=True),
                         spares=spares)
    start = time.perf_counter()
    outcome = run_fleet(config, FLEET_TENANTS, total_rate_rps=rate_krps * 1000.0,
                        rate_profile=(1.0,) * epochs)
    elapsed = time.perf_counter() - start
    aggregate = [row for row in outcome.rows if row["tenant"] == "__all__"][0]
    completed = aggregate["completed"]
    if completed <= 0 or aggregate["shed"] + completed != aggregate["submitted"]:
        raise RuntimeError(
            f"chaos bench lost requests: completed={completed} "
            f"shed={aggregate['shed']} submitted={aggregate['submitted']}"
        )
    if aggregate["faults_injected"] <= 0:
        raise RuntimeError("chaos bench injected no faults")
    return completed / elapsed


def energy_sample_rate(samples: int = 20_000) -> float:
    """Epoch closes per wall second of a busy :class:`EnergyModel`.

    A ticking process bumps several probe counters and closes one
    accounting epoch every simulated 10 ns — far more often than any real
    governor would (epochs are normally 250-1000 ns) — so this number
    bounds the accounting layer's overhead from above.
    """
    sim = Simulator()
    domain = ClockDomain(sim, 1000.0, "energy-bench")
    model = EnergyModel(PowerConfig(enabled=True, trace=False), sim, name="bench")
    model.sys_domain = domain
    model.num_tiles = 4
    model.core_area_mm2 = 3.0
    probe = model.probe

    def ticker():
        sample = model.sample
        for _ in range(samples):
            probe.cache_accesses += 3
            probe.core_active_cycles += 8
            probe.noc_flit_hops += 5
            probe.directory_lookups += 1
            yield Delay(10.0)
            sample()

    sim.process(ticker())
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    if model.epochs < samples:
        raise RuntimeError(f"energy bench lost epochs: {model.epochs}/{samples}")
    return samples / elapsed
