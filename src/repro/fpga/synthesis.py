"""Analytic synthesis model: accelerator design -> frequency, area, utilization.

The paper synthesizes each accelerator with Yosys/Catapult, places and
routes it with the PRGA/VTR flow, and reports (Table II) the maximum clock
frequency, the eFPGA silicon area normalized to one Ariane + one P-Mesh
socket, and CLB/BRAM utilization.  Without those tools, this module uses an
analytic timing model — LUT levels on the critical path plus a routing
penalty that grows with device size — and the fabric area model of
:mod:`repro.fpga.fabric`.  Each accelerator in :mod:`repro.accel` carries a
resource descriptor (LUTs, flip-flops, BRAM bits, DSPs, logic depth)
estimated from its structure, so the flow from "design" to "Table II row"
is exercised end to end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.fpga.fabric import FabricInstance, FabricSpec


@dataclass(frozen=True)
class AcceleratorDesign:
    """Post-synthesis resource requirements of one soft accelerator."""

    name: str
    luts: int
    ffs: int
    bram_kbits: int = 0
    dsps: int = 0
    #: LUT levels on the critical path (drives Fmax).
    logic_depth: int = 8
    #: Fraction of nets that are long (routing-dominated) — raises wire delay.
    routing_pressure: float = 0.3
    #: Number of coherent memory ports the accelerator uses (Dolly's "M").
    mem_ports: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        if self.luts < 1:
            raise ValueError(f"{self.name}: a design needs at least one LUT")
        if not (0.0 <= self.routing_pressure <= 1.0):
            raise ValueError(f"{self.name}: routing_pressure must be in [0, 1]")
        if self.logic_depth < 1:
            raise ValueError(f"{self.name}: logic_depth must be >= 1")


@dataclass
class SynthesisResult:
    """What the place-and-route flow reports for one design."""

    design: AcceleratorDesign
    fabric: FabricInstance
    fmax_mhz: float
    clbs_used: int
    bram_tiles_used: int
    dsps_used: int
    area_mm2: float
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def clb_utilization(self) -> float:
        return self.clbs_used / self.fabric.total_clbs if self.fabric.total_clbs else 0.0

    @property
    def bram_utilization(self) -> float:
        total = self.fabric.total_bram_tiles
        return self.bram_tiles_used / total if total else 0.0

    @property
    def tiles_needed(self) -> int:
        """Fabric tiles the placed design occupies (what region packing bins).

        The synthesized fabric is the minimal device for the design
        (:meth:`FabricInstance.minimal_for`, routing slack included), so its
        tile count is the footprint a placement ladder must find room for.
        """
        return self.fabric.total_tiles

    def normalized_area(self, reference_area_mm2: float) -> float:
        """Area normalized to a reference block (Ariane + P-Mesh socket)."""
        return self.area_mm2 / reference_area_mm2


class SynthesisModel:
    """Maps :class:`AcceleratorDesign` onto a fabric and estimates timing."""

    def __init__(
        self,
        spec: Optional[FabricSpec] = None,
        lut_delay_ns: float = 0.18,
        wire_delay_ns: float = 0.45,
        cdc_margin_ns: float = 0.35,
        utilization_slack: float = 1.15,
    ) -> None:
        self.spec = spec or FabricSpec()
        self.lut_delay_ns = lut_delay_ns
        self.wire_delay_ns = wire_delay_ns
        self.cdc_margin_ns = cdc_margin_ns
        self.utilization_slack = utilization_slack

    # ------------------------------------------------------------------ #
    # Resource mapping
    # ------------------------------------------------------------------ #
    def clbs_needed(self, design: AcceleratorDesign) -> int:
        by_luts = math.ceil(design.luts / self.spec.luts_per_clb)
        by_ffs = math.ceil(design.ffs / self.spec.ffs_per_clb)
        return max(by_luts, by_ffs, 1)

    def bram_tiles_needed(self, design: AcceleratorDesign) -> int:
        return math.ceil(design.bram_kbits / self.spec.bram_kbits_per_tile)

    # ------------------------------------------------------------------ #
    # Timing model
    # ------------------------------------------------------------------ #
    def critical_path_ns(self, design: AcceleratorDesign, fabric: FabricInstance) -> float:
        """Logic delay + routing delay; routing grows with device diameter."""
        logic = design.logic_depth * self.lut_delay_ns
        # Average wire length scales with the square root of the used area;
        # routing pressure weights how many critical nets are long.
        diameter = math.sqrt(max(1, fabric.total_tiles))
        routing = (
            design.logic_depth
            * self.wire_delay_ns
            * (0.4 + design.routing_pressure * 0.05 * diameter)
        )
        return logic + routing + self.cdc_margin_ns

    # ------------------------------------------------------------------ #
    # Full flow
    # ------------------------------------------------------------------ #
    def implement(
        self, design: AcceleratorDesign, fabric: Optional[FabricInstance] = None
    ) -> SynthesisResult:
        """Run the "synthesis + place-and-route" flow for ``design``.

        If ``fabric`` is omitted, the smallest fabric that fits the design
        (plus routing slack) is generated, which is how the per-benchmark
        eFPGA areas of Table II are produced.
        """
        clbs = self.clbs_needed(design)
        bram_tiles = self.bram_tiles_needed(design)
        if fabric is None:
            fabric = FabricInstance.minimal_for(
                self.spec,
                clbs,
                design.bram_kbits,
                design.dsps,
                slack=self.utilization_slack,
            )
        elif not fabric.fits(clbs, design.bram_kbits, design.dsps):
            raise ValueError(
                f"design {design.name!r} does not fit fabric {fabric!r} "
                f"(needs {clbs} CLBs, {design.bram_kbits} Kb BRAM, {design.dsps} DSPs)"
            )
        period_ns = self.critical_path_ns(design, fabric)
        fmax_mhz = 1000.0 / period_ns
        return SynthesisResult(
            design=design,
            fabric=fabric,
            fmax_mhz=fmax_mhz,
            clbs_used=clbs,
            bram_tiles_used=bram_tiles,
            dsps_used=design.dsps,
            area_mm2=fabric.area_mm2,
            extra={"critical_path_ns": period_ns},
        )
