"""Fine-grained acceleration example: Barnes-Hut N-body on Dolly-P4M1.

Run with:  python examples/barnes_hut_nbody.py

This reproduces the scenario of Sec. III-A2 / Fig. 7: four processor threads
traverse the quadtree (dynamic control flow stays in software) and
time-multiplex the eFPGA-emulated ApproxForce / CalcForce pipelines for the
compute-heavy force kernels.  The same workload is also run on the
processor-only baseline and on the FPSoC-like baseline for comparison.
"""

from repro.platform import SystemKind
from repro.workloads import barnes_hut
from repro.workloads.common import WorkloadParams


def main():
    params = WorkloadParams(num_processors=4, num_memory_hubs=1)
    print("Barnes-Hut force calculation, 32 particles, 4 processor threads")
    print("-" * 68)
    results = {}
    for kind in (SystemKind.CPU_ONLY, SystemKind.FPSOC, SystemKind.DUET):
        result = barnes_hut.run(kind, WorkloadParams(params.num_processors,
                                                     params.num_memory_hubs))
        results[kind] = result
        fpga = f"eFPGA @ {result.fpga_mhz:.0f} MHz" if result.fpga_mhz else "no eFPGA"
        print(f"{result.system_name:14s} runtime {result.runtime_ns:10.0f} ns   "
              f"correct={result.correct}   {fpga}")
    baseline = results[SystemKind.CPU_ONLY]
    for kind in (SystemKind.FPSOC, SystemKind.DUET):
        result = results[kind]
        print(f"{result.system_name:14s} speedup over CPU-only: "
              f"{result.speedup_over(baseline):.2f}x, "
              f"normalized ADP: {result.normalized_adp(baseline):.2f}")


if __name__ == "__main__":
    main()
