"""Programmable clock generator for the eFPGA clock domain.

The Control Hub "either divides the system clock, or integrates a separate
PLL for finer control over the generation of the FPGA clock" (Sec. II-E);
Dolly exposes the frequency to software.  The generator owns the eFPGA
:class:`~repro.sim.ClockDomain` and retunes it, clamped to the accelerator's
post-route maximum frequency when one is known.
"""

from __future__ import annotations

from typing import Optional

from repro.sim import ClockDomain, Simulator


class ProgrammableClockGenerator:
    """Divides the system clock or synthesizes an arbitrary eFPGA frequency."""

    def __init__(
        self,
        sim: Simulator,
        system_domain: ClockDomain,
        initial_mhz: float = 100.0,
        name: str = "fpga-clkgen",
    ) -> None:
        self.sim = sim
        self.system_domain = system_domain
        self.name = name
        self.fpga_domain = ClockDomain(sim, initial_mhz, name=f"{name}.clk")
        self.max_mhz: Optional[float] = None
        self._divider: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    def set_max_frequency(self, max_mhz: Optional[float]) -> None:
        """Record the accelerator's Fmax; later retunes are clamped to it."""
        self.max_mhz = max_mhz
        if max_mhz is not None and self.fpga_domain.freq_mhz > max_mhz:
            self.fpga_domain.freq_mhz = max_mhz

    def clamp(self, mhz: float) -> float:
        """The frequency :meth:`set_frequency` would actually settle at."""
        if self.max_mhz is not None:
            return min(mhz, self.max_mhz)
        return mhz

    def set_frequency(self, mhz: float) -> float:
        """PLL mode: set an arbitrary frequency (clamped to Fmax); returns it."""
        if mhz <= 0:
            raise ValueError(f"frequency must be positive, got {mhz}")
        mhz = self.clamp(mhz)
        self.fpga_domain.freq_mhz = mhz
        self._divider = None
        return mhz

    def set_divider(self, divider: int) -> float:
        """Divider mode: eFPGA clock = system clock / ``divider``; returns MHz."""
        if divider < 1:
            raise ValueError(f"divider must be >= 1, got {divider}")
        mhz = self.system_domain.freq_mhz / divider
        if self.max_mhz is not None and mhz > self.max_mhz:
            raise ValueError(
                f"divider {divider} gives {mhz:.1f}MHz, above the accelerator "
                f"Fmax of {self.max_mhz:.1f}MHz"
            )
        self.fpga_domain.freq_mhz = mhz
        self._divider = divider
        return mhz

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def frequency_mhz(self) -> float:
        return self.fpga_domain.freq_mhz

    @property
    def ratio_to_system(self) -> float:
        return self.fpga_domain.freq_mhz / self.system_domain.freq_mhz

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ProgrammableClockGenerator {self.frequency_mhz:.1f}MHz>"
