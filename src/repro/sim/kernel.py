"""The discrete-event simulator and its coroutine process model.

Processes are plain Python generators.  They communicate with the kernel by
yielding commands:

* ``Delay(ns)`` or a plain number — suspend for that many nanoseconds.
* an :class:`~repro.sim.event.Event` — suspend until the event fires; the
  event's value is sent back into the generator.
* ``None`` — yield the scheduler without advancing time (cooperative yield).

Sub-behaviours compose with ``yield from``, which is how the memory system,
the NoC and the Duet Adapter are layered without callback spaghetti.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.sim.event import Event


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (negative delays, exhausted run, ...)."""


@dataclass(frozen=True)
class Delay:
    """A relative suspension of ``ns`` nanoseconds."""

    ns: float

    def __post_init__(self) -> None:
        if self.ns < 0:
            raise SimulationError(f"negative delay: {self.ns}")


ProcessGenerator = Generator[Any, Any, Any]


class Process:
    """A running coroutine inside the simulator.

    The process's return value (``return x`` inside the generator) is
    delivered through :attr:`done`, an :class:`Event` other processes can
    wait on.
    """

    __slots__ = ("sim", "generator", "name", "done", "_finished")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = "") -> None:
        self.sim = sim
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.done = Event(sim, name=f"{self.name}.done")
        self._finished = False
        sim.schedule(0.0, self._resume, None)

    @property
    def finished(self) -> bool:
        return self._finished

    def _resume(self, value: Any) -> None:
        if self._finished:
            return
        try:
            command = self.generator.send(value)
        except StopIteration as stop:
            self._finished = True
            self.done.succeed(stop.value)
            return
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if command is None:
            self.sim.schedule(0.0, self._resume, None)
        elif isinstance(command, Delay):
            self.sim.schedule(command.ns, self._resume, None)
        elif isinstance(command, (int, float)):
            self.sim.schedule(float(command), self._resume, None)
        elif isinstance(command, Event):
            command.add_callback(self._resume)
        elif isinstance(command, Process):
            command.done.add_callback(self._resume)
        else:
            self._finished = True
            error = SimulationError(
                f"process {self.name!r} yielded unsupported command {command!r}"
            )
            self.done.succeed(error)
            raise error

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self._finished else "running"
        return f"<Process {self.name} {state} @{self.sim.now:.2f}ns>"


class Simulator:
    """A time-ordered event heap with deterministic tie-breaking.

    Time is measured in nanoseconds (float).  Events scheduled at the same
    instant execute in scheduling order, which gives the point-to-point
    ordering guarantees the NoC and the async FIFOs rely on.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callable[..., None], Tuple[Any, ...]]] = []
        self._sequence = 0
        self.events_executed = 0

    # ------------------------------------------------------------------ #
    # Scheduling primitives
    # ------------------------------------------------------------------ #
    def schedule(self, delay_ns: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay_ns`` nanoseconds."""
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay_ns})")
        self.schedule_at(self.now + delay_ns, callback, *args)

    def schedule_at(self, time_ns: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` at absolute time ``time_ns``."""
        if time_ns < self.now:
            raise SimulationError(
                f"cannot schedule at {time_ns} before current time {self.now}"
            )
        heapq.heappush(self._heap, (time_ns, self._sequence, callback, args))
        self._sequence += 1

    def event(self, name: str = "") -> Event:
        """Create a fresh one-shot event bound to this simulator."""
        return Event(self, name=name)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Register ``generator`` as a process starting at the current time."""
        return Process(self, generator, name=name)

    def timeout(self, ns: float) -> Delay:
        """Convenience constructor for a :class:`Delay` command."""
        return Delay(ns)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Execute queued events.

        ``until`` bounds simulated time (inclusive); ``max_events`` bounds the
        number of callbacks executed, which protects tests against accidental
        livelock; ``stop_when`` is checked after every callback and stops the
        run early when it returns True (used to stop once all measured
        programs have finished even if background hardware keeps ticking).
        Returns the simulation time when execution stopped.
        """
        executed = 0
        while self._heap:
            time_ns, _, callback, args = self._heap[0]
            if until is not None and time_ns > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = time_ns
            callback(*args)
            executed += 1
            self.events_executed += 1
            if stop_when is not None and stop_when():
                return self.now
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"simulation exceeded max_events={max_events} at t={self.now}ns"
                )
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def run_process(
        self,
        generator: ProcessGenerator,
        name: str = "",
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> Any:
        """Run ``generator`` to completion and return its value.

        This is the main entry point used by the experiment runners: build a
        platform, hand the workload's top-level generator to
        :meth:`run_process`, and read off the result.
        """
        process = self.process(generator, name=name)
        self.run(until=until, max_events=max_events)
        if not process.finished:
            raise SimulationError(
                f"process {process.name!r} did not finish (t={self.now}ns)"
            )
        return process.done.value

    @property
    def pending_events(self) -> int:
        """Number of callbacks still waiting on the heap."""
        return len(self._heap)


def wait_all(sim: Simulator, processes: Iterable[Process]) -> ProcessGenerator:
    """A helper process body that waits for every process in ``processes``."""
    results = []
    for process in processes:
        value = yield process.done
        results.append(value)
    return results
