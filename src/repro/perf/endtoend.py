"""End-to-end wall-time benchmarks over the experiment registry.

These measure what a user actually waits for: the wall-clock time of one
``fig9`` latency sweep and one ``fig11`` scalability sweep through the
standard :class:`~repro.api.runner.Runner` (serial executor, caching off).
They are *lower is better* and intentionally not CI-gated — full-figure
wall time is noisy on shared machines — but they anchor the perf trajectory
in BENCH_kernel.json alongside the microbenchmarks.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.api.runner import Runner


def fig9_wall_seconds(mechanisms: Sequence[str] = ("shadow_reg", "cpu_pull_proxy"),
                      frequencies: Sequence[float] = (100.0, 500.0)) -> float:
    """Wall seconds for a fig9 latency sweep subset."""
    runner = Runner()
    start = time.perf_counter()
    runner.run("fig9", use_cache=False,
               mechanism=tuple(mechanisms), fpga_mhz=tuple(frequencies))
    return time.perf_counter() - start


def fig11_wall_seconds(processors: Sequence[int] = (1, 2, 4),
                       accesses_per_processor: int = 16) -> float:
    """Wall seconds for a fig11 scalability sweep subset."""
    runner = Runner()
    start = time.perf_counter()
    runner.run("fig11", use_cache=False,
               num_processors=tuple(processors),
               accesses_per_processor=accesses_per_processor)
    return time.perf_counter() - start
