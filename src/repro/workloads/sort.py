"""Sort benchmark (Dolly-P1M2, fine-grained acceleration).

A larger array is sorted by slicing it into fixed-length chunks: the
accelerator's streaming sorting network sorts each chunk in place (reading
through one Memory Hub and writing through the other), and the processor
merge-sorts the sorted chunks.  The processor-only baseline runs quicksort
over the whole array.  ``slice_size`` selects the sort/32, sort/64 or
sort/128 variant of Table II / Fig. 12.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.accel.sortnet import (
    ELEMENT_BYTES,
    REG_COMMAND,
    REG_DONE,
    REG_DST_BASE,
    REG_SRC_BASE,
    STOP_COMMAND,
    SortingNetworkAccelerator,
    pack_elements,
    register_layout,
    unpack_words,
)
from repro.platform.config import SystemKind
from repro.workloads.common import BenchmarkResult, WorkloadParams, build_benchmark_system, finalize_result

DEFAULT_TOTAL_ELEMENTS = 256
WORD_BYTES = 8
#: Software costs per comparison / swap in the quicksort baseline.
COMPARE_OPS = 3
SWAP_OPS = 4
#: Software cost per element of the final k-way merge pass.
MERGE_OPS = 6


def _make_array(count: int, seed: int) -> List[int]:
    rng = random.Random(seed)
    return [rng.randrange(0, 1 << 31) for _ in range(count)]


def _store_packed(system, base: int, elements: List[int]) -> None:
    for index, word in enumerate(pack_elements(elements)):
        system.memory.write_word(base + index * WORD_BYTES, word)


def _load_packed(system, base: int, count: int) -> List[int]:
    words = [
        system.memory.read_word(base + index * WORD_BYTES)
        for index in range((count + 1) // 2)
    ]
    return unpack_words(words, count)


def run_cpu(params: Optional[WorkloadParams] = None,
            total_elements: int = DEFAULT_TOTAL_ELEMENTS,
            slice_size: int = 32) -> BenchmarkResult:
    params = params or WorkloadParams(num_processors=1)
    system = build_benchmark_system(SystemKind.CPU_ONLY, params)
    data = _make_array(total_elements, params.seed)
    base = system.memory.allocate(total_elements * ELEMENT_BYTES, align=64)
    _store_packed(system, base, data)
    system.warm_cache(0, base, total_elements * ELEMENT_BYTES)
    expected = sorted(data)
    sorted_result: List[int] = []

    def program(ctx):
        # In-memory quicksort: every comparison touches the array through the
        # cache hierarchy; partition swaps write back.
        array = list(data)

        def quicksort(low, high):
            if low >= high:
                return
            pivot = array[(low + high) // 2]
            left, right = low, high
            while left <= right:
                while True:
                    yield from ctx.load(base + (left * ELEMENT_BYTES // WORD_BYTES) * WORD_BYTES)
                    yield from ctx.compute(COMPARE_OPS)
                    if array[left] >= pivot:
                        break
                    left += 1
                while True:
                    yield from ctx.load(base + (right * ELEMENT_BYTES // WORD_BYTES) * WORD_BYTES)
                    yield from ctx.compute(COMPARE_OPS)
                    if array[right] <= pivot:
                        break
                    right -= 1
                if left <= right:
                    array[left], array[right] = array[right], array[left]
                    yield from ctx.store(base + (left * ELEMENT_BYTES // WORD_BYTES) * WORD_BYTES, 0)
                    yield from ctx.compute(SWAP_OPS)
                    left += 1
                    right -= 1
            yield from quicksort(low, right)
            yield from quicksort(left, high)

        yield from quicksort(0, total_elements - 1)
        sorted_result.extend(array)
        return len(array)

    _, elapsed = system.run_single(program)
    return finalize_result(
        f"sort/{slice_size}", SystemKind.CPU_ONLY, system, elapsed,
        correct=sorted_result == expected, checksum=sum(sorted_result[:8]),
    )


def run_accelerated(kind: SystemKind, params: Optional[WorkloadParams] = None,
                    total_elements: int = DEFAULT_TOTAL_ELEMENTS,
                    slice_size: int = 32) -> BenchmarkResult:
    params = params or WorkloadParams(num_processors=1, num_memory_hubs=2)
    params.num_memory_hubs = max(params.num_memory_hubs, 2)
    system = build_benchmark_system(kind, params)
    accelerator = SortingNetworkAccelerator(slice_size)
    synthesis = system.install_accelerator(
        accelerator, registers=register_layout(), fpga_mhz=params.fpga_mhz
    )
    system.start_accelerator()
    adapter = system.adapter
    data = _make_array(total_elements, params.seed)
    src_base = system.memory.allocate(total_elements * ELEMENT_BYTES, align=64)
    dst_base = system.memory.allocate(total_elements * ELEMENT_BYTES, align=64)
    _store_packed(system, src_base, data)
    expected = sorted(data)
    num_slices = total_elements // slice_size
    merged: List[int] = []

    def program(ctx):
        yield from ctx.mmio_write(adapter.register_addr(REG_SRC_BASE), src_base)
        yield from ctx.mmio_write(adapter.register_addr(REG_DST_BASE), dst_base)
        # Software-pipelined: keep a couple of slices in flight.
        issued = 0
        completed = 0
        in_flight = 0
        while completed < num_slices:
            while issued < num_slices and in_flight < 2:
                yield from ctx.mmio_write(adapter.register_addr(REG_COMMAND), issued)
                issued += 1
                in_flight += 1
            yield from ctx.mmio_read(adapter.register_addr(REG_DONE))
            completed += 1
            in_flight -= 1
        yield from ctx.mmio_write(adapter.register_addr(REG_COMMAND), STOP_COMMAND)
        # Merge the sorted slices on the processor.
        slices = [
            _load_packed(system, dst_base + i * slice_size * ELEMENT_BYTES, slice_size)
            for i in range(num_slices)
        ]
        cursors = [0] * num_slices
        for _ in range(total_elements):
            yield from ctx.compute(MERGE_OPS)
            yield from ctx.load(dst_base)
            best = None
            for index, cursor in enumerate(cursors):
                if cursor < slice_size:
                    value = slices[index][cursor]
                    if best is None or value < slices[best][cursors[best]]:
                        best = index
            merged.append(slices[best][cursors[best]])
            cursors[best] += 1
        return len(merged)

    _, elapsed = system.run_single(program, max_events=150_000_000)
    return finalize_result(
        f"sort/{slice_size}", kind, system, elapsed,
        correct=merged == expected, checksum=sum(merged[:8]),
        efpga_area_mm2=synthesis.area_mm2,
        extra={"fmax_mhz": synthesis.fmax_mhz, "slices": num_slices},
    )


def run(kind: SystemKind, params: Optional[WorkloadParams] = None,
        total_elements: int = DEFAULT_TOTAL_ELEMENTS, slice_size: int = 32) -> BenchmarkResult:
    if kind is SystemKind.CPU_ONLY:
        return run_cpu(params, total_elements, slice_size)
    return run_accelerated(kind, params, total_elements, slice_size)
