"""Clock domains.

Every hardware component in the model belongs to a :class:`ClockDomain` and
performs its work on rising edges.  The Duet evaluation sweeps the eFPGA
clock from 20 MHz to 500 MHz against a fixed 1 GHz system clock, so edge
alignment — not just cycle counts — matters: a message that leaves the fast
domain right after a slow-domain edge waits almost a full slow period before
the slow side can even see it.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.sim.kernel import Delay, SimulationError, Simulator

_EDGE_EPSILON = 1e-9


class ClockDomain:
    """A periodic clock with a frequency in MHz and an optional phase offset."""

    __slots__ = ("sim", "name", "_freq_mhz", "_period_ns", "_phase_ns", "_edge_cache")

    def __init__(
        self,
        sim: Simulator,
        freq_mhz: float,
        name: str = "clk",
        phase_ns: float = 0.0,
    ) -> None:
        if freq_mhz <= 0:
            raise SimulationError(f"clock frequency must be positive, got {freq_mhz}")
        self.sim = sim
        self.name = name
        self._freq_mhz = float(freq_mhz)
        self._period_ns = 1000.0 / self._freq_mhz
        self._phase_ns = phase_ns
        # (window_lo, window_hi, edge): the next-edge result for any query
        # strictly inside (window_lo, window_hi).  Invalidated on retune.
        self._edge_cache = (0.0, 0.0, 0.0)

    # ------------------------------------------------------------------ #
    # Static properties
    # ------------------------------------------------------------------ #
    @property
    def freq_mhz(self) -> float:
        return self._freq_mhz

    @freq_mhz.setter
    def freq_mhz(self, value: float) -> None:
        """Retune the clock (used by the programmable clock generator)."""
        if value <= 0:
            raise SimulationError(f"clock frequency must be positive, got {value}")
        self._freq_mhz = float(value)
        self._period_ns = 1000.0 / self._freq_mhz
        self._edge_cache = (0.0, 0.0, 0.0)

    @property
    def freq_ghz(self) -> float:
        return self._freq_mhz / 1000.0

    @property
    def phase_ns(self) -> float:
        return self._phase_ns

    @phase_ns.setter
    def phase_ns(self, value: float) -> None:
        self._phase_ns = value
        self._edge_cache = (0.0, 0.0, 0.0)

    @property
    def period_ns(self) -> float:
        """Cached clock period (recomputed only when the clock is retuned)."""
        return self._period_ns

    def cycles_to_ns(self, cycles: float) -> float:
        """Duration of ``cycles`` clock cycles in nanoseconds."""
        return cycles * self.period_ns

    def ns_to_cycles(self, ns: float) -> float:
        """Number of (fractional) cycles spanned by ``ns`` nanoseconds."""
        return ns / self.period_ns

    # ------------------------------------------------------------------ #
    # Edge arithmetic
    # ------------------------------------------------------------------ #
    def next_edge(self, at: Optional[float] = None) -> float:
        """Absolute time of the first rising edge strictly after ``at``.

        The last answer is cached per domain with a conservative validity
        window: any query strictly inside the same clock period (away from
        the edges by a guard margin) reuses the cached edge instead of
        paying the floor-division — components that align repeatedly within
        one cycle (FIFO pushes, NoC injections) hit the cache.  Queries
        near a period boundary recompute exactly, so cached and uncached
        answers are always bit-identical.
        """
        if at is None:
            at = self.sim.now
        cache = self._edge_cache
        if cache[0] < at < cache[1]:
            return cache[2]
        period = self._period_ns
        phase = self._phase_ns
        ticks = math.floor((at - phase) / period + _EDGE_EPSILON) + 1
        first = phase + ticks * period
        # The exact validity region is [first - (1+eps)*period, first -
        # eps*period); a generous guard keeps the cached window well inside
        # it despite float rounding of the division above.
        guard = period * 1e-6
        self._edge_cache = (first - period + guard, first - guard, first)
        return first

    def edge_after(self, at: Optional[float] = None, cycles: int = 1) -> float:
        """Absolute time of the ``cycles``-th rising edge strictly after ``at``."""
        if cycles < 1:
            raise SimulationError(f"cycles must be >= 1, got {cycles}")
        first = self.next_edge(at)
        return first + (cycles - 1) * self._period_ns

    # ------------------------------------------------------------------ #
    # Process commands
    # ------------------------------------------------------------------ #
    def wait_cycles(self, cycles: int = 1) -> Delay:
        """Command: suspend until the ``cycles``-th rising edge after now."""
        now = self.sim.now
        target = self.edge_after(now, cycles)
        return Delay(max(0.0, target - now))

    def align(self) -> Delay:
        """Command: suspend until the next rising edge (one-cycle alignment)."""
        return self.wait_cycles(1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ClockDomain {self.name} {self._freq_mhz:.1f}MHz>"
