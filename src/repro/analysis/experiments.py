"""Experiment runners: one function per table / figure of the evaluation.

Each runner returns plain data structures (lists of dicts) so the benchmark
harness, the tests and EXPERIMENTS.md generation can all share them.  Paper
numbers are included where the paper states them, so every report shows
paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.accel.barnes_hut import BarnesHutForceAccelerator
from repro.accel.dijkstra import DijkstraRelaxAccelerator
from repro.accel.lockfree_queue import FrontierQueueAccelerator
from repro.accel.pdes_scheduler import PdesSchedulerAccelerator
from repro.accel.popcount import PopcountAccelerator
from repro.accel.sortnet import SortingNetworkAccelerator
from repro.accel.tangent import TangentAccelerator
from repro.fpga.synthesis import SynthesisModel
from repro.platform.area import TABLE1_ROWS, AreaModel
from repro.platform.config import SystemKind
from repro.sim.stats import geometric_mean
from repro.workloads import barnes_hut, bfs, dijkstra, pdes, popcount, sort, tangent
from repro.workloads.common import BenchmarkResult, WorkloadParams
from repro.workloads.synthetic import (
    BANDWIDTH_MECHANISMS,
    LATENCY_MECHANISMS,
    measure_bandwidth,
    measure_latency,
    measure_register_scalability,
)


# --------------------------------------------------------------------------- #
# Table I
# --------------------------------------------------------------------------- #
def run_table1() -> List[Dict[str, object]]:
    """Area and typical frequency of Dolly's hard components."""
    model = AreaModel()
    rows = []
    for row in TABLE1_ROWS:
        rows.append({
            "component": row.component,
            "technology": row.technology,
            "area_mm2": row.area_mm2,
            "freq_mhz": row.freq_mhz,
            "scaled_area_mm2": row.scaled_area_mm2,
            "scaled_freq_mhz": row.scaled_freq_mhz,
        })
    rows.append({
        "component": "Duet Adapter overhead vs 1 core (P1M1)",
        "technology": "derived",
        "area_mm2": model.adapter_area(1),
        "freq_mhz": 0.0,
        "scaled_area_mm2": model.adapter_area(1),
        "scaled_freq_mhz": 0.0,
    })
    return rows


# --------------------------------------------------------------------------- #
# Table II
# --------------------------------------------------------------------------- #
#: Paper-reported (max MHz, normalized area, CLB util, BRAM util) per accelerator.
TABLE2_PAPER = {
    "tangent": (282.0, 0.47, 0.84, 0.0),
    "popcount": (189.0, 2.77, 0.83, 0.56),
    "sort32": (228.0, 6.29, 0.30, 0.76),
    "sort64": (234.0, 8.10, 0.27, 0.92),
    "sort128": (228.0, 10.27, 0.27, 0.92),
    "dijkstra": (127.0, 1.94, 0.96, 0.31),
    "barnes-hut": (85.0, 14.22, 0.99, 0.05),
    "bfs": (208.0, 1.24, 0.61, 0.75),
    "pdes": (126.0, 2.77, 0.47, 0.56),
}


def _table2_accelerators():
    return [
        TangentAccelerator(),
        PopcountAccelerator(),
        SortingNetworkAccelerator(32),
        SortingNetworkAccelerator(64),
        SortingNetworkAccelerator(128),
        DijkstraRelaxAccelerator(),
        BarnesHutForceAccelerator(),
        FrontierQueueAccelerator(),
        PdesSchedulerAccelerator(),
    ]


def run_table2() -> List[Dict[str, object]]:
    """Clock frequency, area and utilization of the soft accelerators."""
    model = SynthesisModel()
    area_model = AreaModel()
    rows = []
    for accelerator in _table2_accelerators():
        result = model.implement(accelerator.design)
        paper = TABLE2_PAPER.get(accelerator.design.name, (None, None, None, None))
        rows.append({
            "benchmark": accelerator.design.name,
            "measured_fmax_mhz": result.fmax_mhz,
            "paper_fmax_mhz": paper[0],
            "measured_norm_area": result.normalized_area(area_model.reference_block_mm2),
            "paper_norm_area": paper[1],
            "measured_clb_util": result.clb_utilization,
            "paper_clb_util": paper[2],
            "measured_bram_util": result.bram_utilization,
            "paper_bram_util": paper[3],
        })
    return rows


# --------------------------------------------------------------------------- #
# Fig. 9: latency
# --------------------------------------------------------------------------- #
#: Paper round-trip latencies (ns) per mechanism at {100, 200, 500} MHz,
#: read off Fig. 9 (sum of the stacked components).
FIG9_PAPER = {
    "shadow_reg": {100: 42, 200: 42, 500: 42},
    "normal_reg": {100: 300, 200: 180, 500: 108},
    "cpu_pull_proxy": {100: 68, 200: 68, 500: 68},
    "cpu_pull_slow": {100: 229, 200: 133, 500: 72},
    "efpga_pull_proxy": {100: 172, 200: 112, 500: 78},
    "efpga_pull_slow": {100: 271, 200: 162, 500: 121},
}


def run_fig9(frequencies: Sequence[float] = (100.0, 200.0, 500.0),
             mechanisms: Sequence[str] = LATENCY_MECHANISMS) -> List[Dict[str, object]]:
    rows = []
    for mechanism in mechanisms:
        for freq in frequencies:
            result = measure_latency(mechanism, freq)
            rows.append({
                "mechanism": mechanism,
                "fpga_mhz": freq,
                "measured_roundtrip_ns": result.roundtrip_ns,
                "paper_roundtrip_ns": FIG9_PAPER.get(mechanism, {}).get(int(freq)),
            })
    return rows


# --------------------------------------------------------------------------- #
# Fig. 10: bandwidth
# --------------------------------------------------------------------------- #
#: Paper peak bandwidths (MB/s) quoted in Sec. V-C.
FIG10_PAPER_PEAKS = {
    "efpga_pull_proxy": 558.0,
    "cpu_pull_proxy": 201.0,
    "efpga_pull_slow": 287.0,
    "cpu_pull_slow": 144.0,
    "shadow_reg": 213.0,
    "normal_reg": 121.0,
}


def run_fig10(frequencies: Sequence[float] = (20.0, 50.0, 100.0, 200.0, 500.0),
              mechanisms: Sequence[str] = BANDWIDTH_MECHANISMS,
              quad_words: int = 128) -> List[Dict[str, object]]:
    """Bandwidth sweep.  ``quad_words`` defaults to 128 (vs the paper's 512)
    to keep pure-Python simulation time reasonable; pass 512 for the full
    experiment."""
    rows = []
    for mechanism in mechanisms:
        for freq in frequencies:
            result = measure_bandwidth(mechanism, freq, quad_words=quad_words)
            rows.append({
                "mechanism": mechanism,
                "fpga_mhz": freq,
                "measured_mbytes_per_s": result.mbytes_per_s,
                "paper_peak_mbytes_per_s": FIG10_PAPER_PEAKS.get(mechanism),
            })
    return rows


# --------------------------------------------------------------------------- #
# Fig. 11: register scalability
# --------------------------------------------------------------------------- #
def run_fig11(processor_counts: Sequence[int] = (1, 2, 4, 8, 16),
              accesses_per_processor: int = 32) -> List[Dict[str, object]]:
    rows = []
    for mechanism in ("normal_reg", "shadow_reg"):
        for operation in ("write", "read"):
            for count in processor_counts:
                result = measure_register_scalability(
                    mechanism, operation, count,
                    accesses_per_processor=accesses_per_processor,
                )
                rows.append({
                    "mechanism": mechanism,
                    "operation": operation,
                    "num_processors": count,
                    "per_processor_mbytes_per_s": result.per_processor_mbytes_per_s,
                })
    return rows


# --------------------------------------------------------------------------- #
# Fig. 12: application benchmarks
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ApplicationConfig:
    """One bar group of Fig. 12."""

    label: str
    runner: Callable[..., BenchmarkResult]
    processors: int
    memory_hubs: int
    kwargs: Dict[str, object]
    paper_duet_speedup: Optional[float]
    paper_fpsoc_speedup: Optional[float]

    def params(self) -> WorkloadParams:
        return WorkloadParams(num_processors=self.processors, num_memory_hubs=self.memory_hubs)


#: The thirteen configurations of Fig. 12 with the paper's speedups where the
#: paper states them explicitly (call-outs in the text / figure labels).
APPLICATION_CONFIGS: List[ApplicationConfig] = [
    ApplicationConfig("tangent", tangent.run, 1, 0, {}, 2.8, 1.6),
    ApplicationConfig("popcount", popcount.run, 1, 1, {}, 1.9, 0.9),
    ApplicationConfig("sort/32", sort.run, 1, 2, {"slice_size": 32}, 9.8, 3.0),
    ApplicationConfig("sort/64", sort.run, 1, 2, {"slice_size": 64}, 12.9, 3.5),
    ApplicationConfig("sort/128", sort.run, 1, 2, {"slice_size": 128}, 16.2, 4.0),
    ApplicationConfig("dijkstra", dijkstra.run, 1, 1, {}, 1.5, 1.2),
    ApplicationConfig("barnes-hut", barnes_hut.run, 4, 1, {}, 3.2, 2.0),
    ApplicationConfig("pdes/4", pdes.run, 4, 1, {}, 2.8, 1.8),
    ApplicationConfig("pdes/8", pdes.run, 8, 1, {}, 4.0, 2.2),
    ApplicationConfig("pdes/16", pdes.run, 16, 1, {}, 15.1, 5.0),
    ApplicationConfig("bfs/4", bfs.run, 4, 0, {}, 3.5, 2.0),
    ApplicationConfig("bfs/8", bfs.run, 8, 0, {}, 9.0, 4.0),
    ApplicationConfig("bfs/16", bfs.run, 16, 0, {}, 24.9, 7.8),
]

#: Geometric means quoted in the paper for Fig. 12.
FIG12_PAPER_GEOMEAN = {"duet": 4.53, "fpsoc": 2.14}
FIG12_PAPER_ADP_GEOMEAN = {"duet": 0.61, "fpsoc": 1.23}


def run_fig12(configs: Optional[Sequence[ApplicationConfig]] = None) -> Dict[str, object]:
    """Run every benchmark on the three systems; returns rows plus geomeans."""
    configs = list(configs) if configs is not None else APPLICATION_CONFIGS
    rows: List[Dict[str, object]] = []
    duet_speedups: List[float] = []
    fpsoc_speedups: List[float] = []
    duet_adps: List[float] = []
    fpsoc_adps: List[float] = []
    for config in configs:
        baseline = config.runner(SystemKind.CPU_ONLY, config.params(), **config.kwargs)
        fpsoc_result = config.runner(SystemKind.FPSOC, config.params(), **config.kwargs)
        duet_result = config.runner(SystemKind.DUET, config.params(), **config.kwargs)
        duet_speedup = duet_result.speedup_over(baseline)
        fpsoc_speedup = fpsoc_result.speedup_over(baseline)
        duet_adp = duet_result.normalized_adp(baseline)
        fpsoc_adp = fpsoc_result.normalized_adp(baseline)
        duet_speedups.append(duet_speedup)
        fpsoc_speedups.append(fpsoc_speedup)
        duet_adps.append(duet_adp)
        fpsoc_adps.append(fpsoc_adp)
        rows.append({
            "benchmark": config.label,
            "cpu_runtime_ns": baseline.runtime_ns,
            "fpsoc_speedup": fpsoc_speedup,
            "duet_speedup": duet_speedup,
            "paper_fpsoc_speedup": config.paper_fpsoc_speedup,
            "paper_duet_speedup": config.paper_duet_speedup,
            "fpsoc_norm_adp": fpsoc_adp,
            "duet_norm_adp": duet_adp,
            "all_correct": baseline.correct and fpsoc_result.correct and duet_result.correct,
        })
    summary = {
        "rows": rows,
        "duet_geomean_speedup": geometric_mean([s for s in duet_speedups if s > 0]),
        "fpsoc_geomean_speedup": geometric_mean([s for s in fpsoc_speedups if s > 0]),
        "duet_geomean_adp": geometric_mean([a for a in duet_adps if a > 0]),
        "fpsoc_geomean_adp": geometric_mean([a for a in fpsoc_adps if a > 0]),
        "paper_geomean_speedup": FIG12_PAPER_GEOMEAN,
        "paper_geomean_adp": FIG12_PAPER_ADP_GEOMEAN,
    }
    return summary
