"""Fig. 9: CPU–eFPGA round-trip communication latency."""

from conftest import FULL

from repro.api import Runner, get_experiment


def test_fig9_communication_latency(benchmark):
    frequencies = (100.0, 200.0, 500.0) if FULL else (100.0, 500.0)
    results = benchmark.pedantic(Runner().run, args=("fig9",),
                                 kwargs={"fpga_mhz": frequencies},
                                 rounds=1, iterations=1)
    print()
    print(results.to_table(
        columns=["mechanism", "fpga_mhz", "measured_roundtrip_ns", "paper_roundtrip_ns"],
        headers=["Mechanism", "eFPGA MHz", "Measured roundtrip (ns)", "Paper roundtrip (ns)"],
        title=get_experiment("fig9").title,
    ))
    by_key = {(r.mechanism, r.fpga_mhz): r.measured_roundtrip_ns for r in results}
    lowest, highest = min(frequencies), max(frequencies)
    # Shape checks mirroring the paper's claims:
    # 1. Shadow registers beat normal soft registers at every frequency.
    for freq in frequencies:
        assert by_key[("shadow_reg", freq)] < by_key[("normal_reg", freq)]
    # 2. The Proxy Cache keeps CPU-pull latency flat across eFPGA clocks,
    #    while the slow cache's latency grows as the eFPGA slows down.
    proxy_spread = by_key[("cpu_pull_proxy", lowest)] - by_key[("cpu_pull_proxy", highest)]
    slow_spread = by_key[("cpu_pull_slow", lowest)] - by_key[("cpu_pull_slow", highest)]
    assert abs(proxy_spread) < 0.5 * slow_spread
    # 3. At the slowest clock, every Duet mechanism beats its FPSoC counterpart.
    assert by_key[("cpu_pull_proxy", lowest)] < by_key[("cpu_pull_slow", lowest)]
    assert by_key[("efpga_pull_proxy", lowest)] < by_key[("efpga_pull_slow", lowest)]
