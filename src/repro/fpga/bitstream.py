"""Bitstream generation and integrity checking.

The Control Hub's programming engine "loads the bitstream into the
configuration memory, and performs integrity checks to detect data
corruption" (Sec. II-E).  The bitstream here is a deterministic pseudo-random
byte string derived from the design (so tests can corrupt and re-check it),
sized from the fabric's configuration bits, with a CRC-32 trailer.

A bitstream may additionally carry a *region grid* (PRGA-style partial
reconfiguration: the fabric as an array of regions, each with its own
configuration chain).  A regioned image records per-region configuration-bit
counts and per-region CRC-32 checksums of the pristine payload slices;
:meth:`Bitstream.for_regions` cuts a partial image covering a subset of
regions, whose ``config_bits`` is exactly what a region-granular reprogram
pays through :meth:`repro.core.control_hub.ControlHub.program`.  Monolithic
bitstreams (``region_bits is None``) behave exactly as before.
"""

from __future__ import annotations

import hashlib
import zlib
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.fpga.fabric import FabricInstance
from repro.fpga.synthesis import AcceleratorDesign


class BitstreamError(RuntimeError):
    """Raised when a bitstream fails its integrity check."""


@dataclass
class Bitstream:
    """A configuration image for one fabric, carrying its own checksum."""

    design_name: str
    data: bytes
    crc: int
    config_bits: int
    meta: dict = field(default_factory=dict)
    #: Per-region configuration-bit counts (``None`` = monolithic image).
    region_bits: Optional[Tuple[int, ...]] = None
    #: CRC-32 of each *pristine* region payload slice, recorded at
    #: generation time so a partial image cut from a corrupted payload
    #: still fails :meth:`verify` (the SEU detection path).
    region_crcs: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if (self.region_bits is None) != (self.region_crcs is None):
            raise BitstreamError(
                "region_bits and region_crcs must be provided together")
        if self.region_bits is not None:
            if len(self.region_bits) != len(self.region_crcs):
                raise BitstreamError(
                    f"{len(self.region_bits)} region sizes but "
                    f"{len(self.region_crcs)} region checksums")
            if sum(self.region_bits) != self.config_bits:
                raise BitstreamError(
                    f"region bits sum to {sum(self.region_bits)}, "
                    f"config_bits says {self.config_bits}")
            if any(bits <= 0 or bits % 8 for bits in self.region_bits):
                raise BitstreamError(
                    f"region bit counts must be positive multiples of 8, "
                    f"got {self.region_bits}")

    @property
    def size_bytes(self) -> int:
        return len(self.data)

    @property
    def regions(self) -> int:
        """Number of regions in the grid (1 for a monolithic image)."""
        return len(self.region_bits) if self.region_bits is not None else 1

    def _region_bounds(self, index: int) -> Tuple[int, int]:
        offset = sum(self.region_bits[:index]) // 8
        return offset, offset + self.region_bits[index] // 8

    def region_slice(self, index: int) -> bytes:
        """The payload bytes of region ``index``."""
        if self.region_bits is None:
            raise BitstreamError(
                f"bitstream {self.design_name!r} carries no region grid")
        if not 0 <= index < len(self.region_bits):
            raise BitstreamError(
                f"region {index} out of range for a "
                f"{len(self.region_bits)}-region image")
        start, end = self._region_bounds(index)
        return self.data[start:end]

    def for_regions(self, indices: Sequence[int]) -> "Bitstream":
        """A partial image covering only the given regions.

        ``config_bits`` of the result is the sum of the selected regions'
        bits — exactly the transfer the programming engine charges for a
        region-granular hot swap.  Region checksums come from the pristine
        recording, so corruption inside a selected region still trips
        :meth:`verify`; corruption confined to unselected regions stays
        latent (it was not transferred).
        """
        if self.region_bits is None:
            raise BitstreamError(
                f"bitstream {self.design_name!r} carries no region grid")
        picked = tuple(indices)
        if not picked:
            raise BitstreamError("for_regions needs at least one region")
        if len(set(picked)) != len(picked):
            raise BitstreamError(f"duplicate region indices: {picked}")
        data = b"".join(self.region_slice(index) for index in picked)
        return Bitstream(
            design_name=self.design_name,
            data=data,
            crc=zlib.crc32(data),
            config_bits=sum(self.region_bits[index] for index in picked),
            meta=dict(self.meta, regions=picked),
            region_bits=tuple(self.region_bits[index] for index in picked),
            region_crcs=tuple(self.region_crcs[index] for index in picked),
        )

    def verify(self) -> bool:
        """Return True when the payload still matches its checksum.

        Regioned images verify every region slice against its pristine
        CRC-32 (the per-region configuration chains each check their own
        transfer); monolithic images check the whole-payload checksum.
        """
        if self.region_crcs is not None:
            offset = 0
            for bits, crc in zip(self.region_bits, self.region_crcs):
                end = offset + bits // 8
                if zlib.crc32(self.data[offset:end]) != crc:
                    return False
                offset = end
            return True
        return zlib.crc32(self.data) == self.crc

    def corrupted(self, offset: int = 0, flip_mask: int = 0xFF) -> "Bitstream":
        """Return a copy with ``flip_mask`` XORed into the payload.

        ``flip_mask`` is interpreted little-endian starting at ``offset``:
        ``0xFF`` flips one byte (the classic single-event upset),
        ``0x0100`` flips bit 0 of ``offset + 1``, ``0xFFFF`` burns two
        consecutive bytes (a multi-bit burst).  Bytes wrap around the end
        of the payload.  Raises :class:`BitstreamError` for empty payloads,
        non-positive masks, and masks whose wrap-around XORs cancel out —
        every successful call returns a copy that fails :meth:`verify`.
        """
        if not self.data:
            raise BitstreamError("cannot corrupt an empty bitstream")
        if flip_mask <= 0:
            raise BitstreamError(
                f"flip_mask must be a positive bit pattern, got {flip_mask}")
        size = len(self.data)
        offset %= size
        mutated = bytearray(self.data)
        span = (flip_mask.bit_length() + 7) // 8
        for index, mask_byte in enumerate(flip_mask.to_bytes(span, "little")):
            mutated[(offset + index) % size] ^= mask_byte
        if bytes(mutated) == self.data:
            raise BitstreamError(
                f"flip_mask 0x{flip_mask:X} at offset {offset} cancels out "
                f"over a {size}-byte payload; corrupted() would return an "
                "uncorrupted copy"
            )
        return Bitstream(
            design_name=self.design_name,
            data=bytes(mutated),
            crc=self.crc,
            config_bits=self.config_bits,
            meta=dict(self.meta),
            region_bits=self.region_bits,
            region_crcs=self.region_crcs,
        )

    @classmethod
    def generate(
        cls, design: AcceleratorDesign, fabric: FabricInstance,
        meta: Optional[dict] = None, regions: Optional[int] = None,
    ) -> "Bitstream":
        """Produce a deterministic bitstream for ``design`` on ``fabric``.

        With ``regions``, the image carries the fabric's region grid
        (:meth:`FabricInstance.region_config_bits`) so
        :meth:`for_regions` can cut partial images; without it the image
        is monolithic, exactly as before.
        """
        config_bits = fabric.config_bits
        size_bytes = max(1, config_bits // 8)
        seed = f"{design.name}:{fabric.columns}x{fabric.rows}".encode()
        chunks = []
        digest = hashlib.sha256(seed).digest()
        while sum(len(chunk) for chunk in chunks) < size_bytes:
            chunks.append(digest)
            digest = hashlib.sha256(digest).digest()
        data = b"".join(chunks)[:size_bytes]
        region_bits = region_crcs = None
        if regions is not None:
            region_bits = fabric.region_config_bits(regions)
            crcs, cursor = [], 0
            for bits in region_bits:
                end = cursor + bits // 8
                crcs.append(zlib.crc32(data[cursor:end]))
                cursor = end
            region_crcs = tuple(crcs)
        return cls(
            design_name=design.name,
            data=data,
            crc=zlib.crc32(data),
            config_bits=config_bits,
            meta=meta or {},
            region_bits=region_bits,
            region_crcs=region_crcs,
        )
