"""Per-request latency decomposition from a recorded trace.

The serving hooks (see ``docs/observability.md``) tag every
request-lifecycle event with ``args = {"t": tenant, "id": request_id}``.
This module folds those events back into *stage* attribution per
request:

* ``queue`` — time between becoming ready (admission or replay) and a
  worker dequeuing the request;
* ``program`` — bitstream/span transfer time paid on behalf of the
  request (the ``ControlHub.program`` walk, whole image or region span);
* ``retune`` — clock retune time (zero in the current model: the
  generator settles instantaneously after programming — the stage is
  kept so the table survives a future retune-latency model);
* ``service`` — cycles on the fabric, including attempts later wasted
  by a mid-service fabric kill;
* ``blackout`` — the residual: fault detection/scrub delays, failed
  transfers, and dead time between a fabric dying and the replay
  re-entering the queue.  Defined as ``latency - sum(other stages)``,
  which is what makes the stage shares sum to exactly 1.

All arithmetic is on the tracer's integer picoseconds, so the
decomposition is as deterministic as the run that produced it.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, List, Sequence, Tuple

from repro.obs.trace import Tracer
from repro.sim.stats import Histogram

#: Stage order used everywhere (tables, shares, docs).
STAGES: Tuple[str, ...] = ("queue", "program", "retune", "service", "blackout")

_STAGE_INDEX = {"queue": 0, "program": 1, "retune": 2, "service": 3}

#: Synthetic row aggregating every tenant (same convention as SloMonitor).
ALL_TENANTS = "__all__"


def cdf_points(values: Sequence[Any]) -> List[Tuple[float, float]]:
    """Sorted ``(value, cumulative_fraction)`` pairs — an empirical CDF.

    Non-numeric entries (and booleans) are skipped, mirroring
    ``ResultSet.percentile``'s ragged-column handling; an empty or fully
    ragged input yields ``[]``.  Duplicate values collapse to one point
    carrying the highest cumulative fraction, so the result is strictly
    increasing in value and ends at fraction 1.0.
    """
    usable = sorted(
        float(value) for value in values
        if isinstance(value, (int, float)) and not isinstance(value, bool))
    if not usable:
        return []
    total = len(usable)
    points: List[Tuple[float, float]] = []
    for index, value in enumerate(usable):
        fraction = (index + 1) / total
        if points and points[-1][0] == value:
            points[-1] = (value, fraction)
        else:
            points.append((value, fraction))
    return points


def fraction_at(points: Sequence[Tuple[float, float]], value: float) -> float:
    """Empirical ``P(X <= value)`` from :func:`cdf_points` output."""
    if not points:
        return 0.0
    index = bisect_right([point[0] for point in points], value)
    return points[index - 1][1] if index else 0.0


def request_stages(tracer: Tracer) -> Dict[Tuple[str, int], Dict[str, Any]]:
    """Fold a trace into per-request stage attributions.

    Returns ``{(tenant, request_id): {"tenant", "latency_ps", and one
    ``<stage>_ps`` int per :data:`STAGES` entry}}`` for every request
    with both an ``arrive`` and a ``complete`` instant (shed and
    still-lost requests have no completion and are excluded — their
    story is the SLO monitor's shed accounting, not a latency).
    """
    arrive: Dict[Tuple[str, int], int] = {}
    complete: Dict[Tuple[str, int], int] = {}
    sums: Dict[Tuple[str, int], List[int]] = {}
    for span in tracer.spans:
        stage = _STAGE_INDEX.get(span.name)
        args = span.args
        if stage is None or not args or "t" not in args or "id" not in args:
            continue
        key = (args["t"], args["id"])
        bucket = sums.get(key)
        if bucket is None:
            bucket = sums[key] = [0, 0, 0, 0]
        bucket[stage] += span.dur_ps
    for inst in tracer.instants:
        args = inst.args
        if not args or "t" not in args or "id" not in args:
            continue
        key = (args["t"], args["id"])
        if inst.name == "arrive":
            arrive.setdefault(key, inst.ts_ps)
        elif inst.name == "complete":
            complete[key] = inst.ts_ps
    stages: Dict[Tuple[str, int], Dict[str, Any]] = {}
    for key in sorted(complete):
        if key not in arrive:
            continue
        latency = complete[key] - arrive[key]
        queue, program, retune, service = sums.get(key, (0, 0, 0, 0))
        stages[key] = {
            "tenant": key[0],
            "latency_ps": latency,
            "queue_ps": queue,
            "program_ps": program,
            "retune_ps": retune,
            "service_ps": service,
            "blackout_ps": latency - queue - program - retune - service,
        }
    return stages


def decompose_rows(tracer: Tracer) -> List[Dict[str, Any]]:
    """Aggregate :func:`request_stages` into per-tenant stage-share rows.

    One row per tenant plus an :data:`ALL_TENANTS` aggregate.  Each row
    carries ``requests``, per-stage totals in microseconds and shares of
    total latency (shares sum to 1.0 by construction), the full latency
    tail (p50/p95/p99/p99.9/max, nearest-rank — the same convention as
    ``Histogram.percentile``), ``jitter_us`` (max − p50) and
    ``share_under_2x_p50`` (the fraction of requests within 2× the
    median, read off the empirical CDF — the "jitter kill shot" number).
    """
    stages = request_stages(tracer)
    by_tenant: Dict[str, List[Dict[str, Any]]] = {}
    for key in sorted(stages):
        by_tenant.setdefault(key[0], []).append(stages[key])
    rows: List[Dict[str, Any]] = []
    buckets = [(ALL_TENANTS, [entry for key in sorted(stages)
                              for entry in (stages[key],)])]
    buckets += sorted(by_tenant.items())
    for tenant, entries in buckets:
        if not entries:
            continue
        totals = {stage: sum(entry[f"{stage}_ps"] for entry in entries)
                  for stage in STAGES}
        latency_total = sum(entry["latency_ps"] for entry in entries)
        histogram = Histogram(f"{tenant}.latency")
        for entry in entries:
            histogram.record(entry["latency_ps"])
        points = cdf_points(histogram.samples)
        p50 = histogram.percentile(0.50)
        row: Dict[str, Any] = {"tenant": tenant, "requests": len(entries)}
        for stage in STAGES:
            row[f"{stage}_us"] = totals[stage] / 1e6
            row[f"{stage}_share"] = (totals[stage] / latency_total
                                     if latency_total else 0.0)
        row["latency_us_total"] = latency_total / 1e6
        row["p50_latency_us"] = p50 / 1e6
        row["p95_latency_us"] = histogram.percentile(0.95) / 1e6
        row["p99_latency_us"] = histogram.percentile(0.99) / 1e6
        row["p999_latency_us"] = histogram.percentile(0.999) / 1e6
        row["max_latency_us"] = histogram.maximum / 1e6
        row["jitter_us"] = (histogram.maximum - p50) / 1e6
        row["share_under_2x_p50"] = fraction_at(points, 2.0 * p50)
        rows.append(row)
    return rows
