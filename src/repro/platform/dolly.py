"""Dolly system builder: wires every substrate into one simulated chip."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.adapter import DuetAdapter
from repro.core.soft_cache import SoftCacheConfig
from repro.cpu.core import Core, CpuContext
from repro.cpu.mmio import MmioMap, MmioPort
from repro.fpga.accelerator import SoftAccelerator
from repro.fpga.synthesis import SynthesisResult
from repro.mem.address import AddressMap
from repro.mem.directory import DirectoryShard
from repro.mem.dram import MainMemory
from repro.mem.private_cache import PrivateCacheAgent
from repro.mem.protocol import CoherenceState
from repro.noc import NocNetwork, TileRouter
from repro.platform.config import DollyConfig, SystemKind
from repro.platform.tiles import TilePlan, TileRole
from repro.power.model import EnergyModel
from repro.sim import ClockDomain, Process, SimulationError, Simulator

#: A workload assignment: (core index, program, positional args).
ProgramAssignment = Tuple[int, Callable[..., Any], Tuple[Any, ...]]


@dataclass
class DollySystem:
    """A fully-wired simulated chip plus convenience drivers."""

    config: DollyConfig
    plan: TilePlan
    sim: Simulator
    sys_clock: ClockDomain
    network: NocNetwork
    memory: MainMemory
    address_map: AddressMap
    mmio_map: MmioMap
    routers: List[TileRouter]
    directories: List[DirectoryShard]
    cores: List[Core]
    adapter: Optional[DuetAdapter] = None
    #: The energy accounting layer; ``None`` unless the system was built
    #: with ``PowerConfig(enabled=True)`` (see ``docs/power.md``).
    energy: Optional[EnergyModel] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Accelerator installation
    # ------------------------------------------------------------------ #
    def install_accelerator(
        self,
        accelerator: SoftAccelerator,
        registers=None,
        fpga_mhz: Optional[float] = None,
        soft_cache=None,
        enable_atomics: bool = False,
        physical_memory_access: bool = True,
    ) -> SynthesisResult:
        """Install ``accelerator`` onto the system's eFPGA (Duet or FPSoC)."""
        if self.adapter is None:
            raise RuntimeError(f"{self.config.name} has no eFPGA to program")
        result = self.adapter.install_accelerator(
            accelerator,
            registers=registers,
            fpga_mhz=fpga_mhz if fpga_mhz is not None else self.config.fpga_mhz,
            soft_cache=soft_cache,
            enable_atomics=enable_atomics,
            physical_memory_access=physical_memory_access,
        )
        if self.energy is not None:
            self.energy.attach_accelerator(accelerator, result.area_mm2)
        return result

    def start_accelerator(self) -> Process:
        if self.adapter is None:
            raise RuntimeError(f"{self.config.name} has no eFPGA to start")
        return self.adapter.start_accelerator()

    # ------------------------------------------------------------------ #
    # Software execution
    # ------------------------------------------------------------------ #
    def run_programs(
        self,
        assignments: Sequence[ProgramAssignment],
        max_events: int = 80_000_000,
        until: Optional[float] = None,
        drain_ns: float = 5_000.0,
    ) -> Tuple[List[Any], float]:
        """Run one program per assignment to completion.

        Returns the list of program results (in assignment order) and the
        elapsed simulated time in nanoseconds, measured from the first
        instruction to the completion of the last program — the "total
        runtime" quantity used for the speedup figures.  After the programs
        finish, the simulation is drained for ``drain_ns`` more so that
        still-running hardware (e.g. an accelerator consuming its stop
        command) can settle; the drain is not part of the reported runtime.
        """
        start = self.sim.now
        energy = self.energy
        if energy is not None:
            # Close the pre-run epoch so the measured window's energy is
            # exactly the window's (setup and drain are accounted outside).
            energy.begin_window()
        processes = []
        for core_index, program, args in assignments:
            core = self.cores[core_index]
            processes.append(core.run(program, *args))
        self.sim.run(
            until=until,
            max_events=max_events,
            stop_when=lambda: all(process.finished for process in processes),
        )
        unfinished = [process for process in processes if not process.finished]
        if unfinished:
            raise SimulationError(
                f"{len(unfinished)} program(s) did not finish on {self.config.name}"
            )
        elapsed = self.sim.now - start
        if energy is not None:
            energy.end_window()
        if drain_ns > 0:
            self.sim.run(until=self.sim.now + drain_ns, max_events=max_events)
        return [process.done.value for process in processes], elapsed

    def run_single(self, program: Callable[..., Any], *args: Any, core: int = 0,
                   max_events: int = 80_000_000) -> Tuple[Any, float]:
        """Run one program on one core; returns (result, elapsed_ns)."""
        results, elapsed = self.run_programs([(core, program, args)], max_events=max_events)
        return results[0], elapsed

    def context(self, core: int = 0) -> CpuContext:
        return self.cores[core].context

    # ------------------------------------------------------------------ #
    # Cache warm-up (processor-only baselines start warm, Sec. V-A)
    # ------------------------------------------------------------------ #
    def warm_cache(self, core_index: int, base_addr: int, size_bytes: int,
                   modified: bool = False) -> None:
        """Pre-install a region into one core's private cache and the directory."""
        agent = self.cores[core_index].cache
        state = CoherenceState.MODIFIED if modified else CoherenceState.SHARED
        for line in self.address_map.lines_spanning(base_addr, size_bytes):
            agent.debug_install(line, state)
            home = self.address_map.home_tile(line)
            self.directories[home].debug_install(line, (agent.node, agent.target), modified)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def kind(self) -> SystemKind:
        return self.config.kind

    @property
    def fpga_domain(self) -> Optional[ClockDomain]:
        return self.adapter.fpga_domain if self.adapter is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DollySystem {self.config.name} tiles={self.plan.width}x{self.plan.height}>"


def build_system(config: DollyConfig) -> DollySystem:
    """Assemble a complete system for ``config``."""
    plan = TilePlan.plan(config)
    sim = Simulator()
    sys_clock = ClockDomain(sim, config.system_mhz, "sys")
    network = NocNetwork(sim, sys_clock, topology=plan.topology())
    memory = MainMemory(config.memory)
    all_tiles = plan.all_tiles
    address_map = AddressMap(config.memory, home_tiles=all_tiles)
    mmio_map = MmioMap()

    routers = [TileRouter(network, node) for node in all_tiles]
    directories = [
        DirectoryShard(sim, sys_clock, routers[node], address_map, config.memory, memory)
        for node in all_tiles
    ]

    cores: List[Core] = []
    for index, node in enumerate(plan.processor_tiles):
        agent = PrivateCacheAgent(
            sim, sys_clock, routers[node], address_map, config.memory, memory,
            name=f"core{index}.l2",
        )
        mmio = MmioPort(sim, sys_clock, routers[node], mmio_map, name=f"core{index}.mmio")
        cores.append(
            Core(sim, sys_clock, index, agent, mmio=mmio, config=config.core,
                 name=f"core{index}")
        )

    adapter: Optional[DuetAdapter] = None
    if config.kind is not SystemKind.CPU_ONLY:
        control_router = routers[plan.control_tile]
        memory_routers = [routers[node] for node in plan.memory_tiles]
        adapter = DuetAdapter(
            sim,
            sys_clock,
            control_router,
            memory_routers,
            address_map,
            config.memory,
            memory,
            mmio_map,
            config=config.adapter_config(),
            name=f"{config.name}.adapter",
            control_tile_has_memory_hub=config.num_memory_hubs > 0,
        )

    system = DollySystem(
        config=config,
        plan=plan,
        sim=sim,
        sys_clock=sys_clock,
        network=network,
        memory=memory,
        address_map=address_map,
        mmio_map=mmio_map,
        routers=routers,
        directories=directories,
        cores=cores,
        adapter=adapter,
    )
    if config.power.enabled:
        system.energy = EnergyModel(config.power, sim, name=f"{config.name}.energy")
        system.energy.attach_system(system)
    return system
