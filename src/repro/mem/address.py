"""Address arithmetic and home-shard interleaving.

The LLC is distributed across all tiles (one shard per P-Mesh socket); a
cache line's *home* shard — the tile whose directory slice owns it — is
determined by low-order line-address interleaving, the same scheme OpenPiton
uses.
"""

from __future__ import annotations

from typing import List

from repro.mem.config import MemoryConfig


class AddressMap:
    """Line math plus the line-to-home-tile mapping."""

    def __init__(self, config: MemoryConfig, home_tiles: List[int]) -> None:
        if not home_tiles:
            raise ValueError("at least one home tile is required")
        self.config = config
        self.home_tiles = list(home_tiles)
        self._line_shift = config.line_bytes.bit_length() - 1
        self._word_shift = config.word_bytes.bit_length() - 1

    # ------------------------------------------------------------------ #
    # Line / word arithmetic
    # ------------------------------------------------------------------ #
    def line_of(self, addr: int) -> int:
        """Return the line-aligned address containing ``addr``."""
        return (addr >> self._line_shift) << self._line_shift

    def line_index(self, addr: int) -> int:
        """Return the line number (address divided by the line size)."""
        return addr >> self._line_shift

    def word_of(self, addr: int) -> int:
        """Return the word-aligned address containing ``addr``."""
        return (addr >> self._word_shift) << self._word_shift

    def offset_in_line(self, addr: int) -> int:
        return addr & (self.config.line_bytes - 1)

    def same_line(self, addr_a: int, addr_b: int) -> bool:
        return self.line_of(addr_a) == self.line_of(addr_b)

    def lines_spanning(self, addr: int, size_bytes: int) -> List[int]:
        """Return every line-aligned address touched by ``[addr, addr+size)``."""
        if size_bytes <= 0:
            return []
        first = self.line_of(addr)
        last = self.line_of(addr + size_bytes - 1)
        step = self.config.line_bytes
        return list(range(first, last + step, step))

    # ------------------------------------------------------------------ #
    # Home mapping
    # ------------------------------------------------------------------ #
    def home_tile(self, addr: int) -> int:
        """Return the tile hosting the LLC shard / directory slice for ``addr``."""
        return self.home_tiles[self.line_index(addr) % len(self.home_tiles)]
