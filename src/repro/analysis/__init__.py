"""Experiment runners and reporting for every table and figure of the paper."""

from repro.analysis.experiments import (
    APPLICATION_CONFIGS,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_table1,
    run_table2,
)
from repro.analysis.reporting import format_table

__all__ = [
    "APPLICATION_CONFIGS",
    "run_table1",
    "run_table2",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "format_table",
]
