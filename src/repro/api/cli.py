"""``python -m repro`` — the experiment command line.

Subcommands:

* ``list``   — show every registered experiment (name, cells, tags, title);
* ``run``    — run one experiment and print a table (or ``--json``/``--csv``);
* ``report`` — run and print the measured table plus the paper-vs-measured
  deviation report;
* ``sweep``  — run with overridden parameter axes and optionally pivot the
  result into a wide table (``--pivot index columns values``);
* ``perf``   — run the kernel/NoC/end-to-end performance suite, write
  ``BENCH_kernel.json`` and optionally gate against a recorded baseline
  (``--baseline BENCH_kernel.json``); see ``docs/performance.md``;
* ``trace``  — re-run an experiment's canonical point with the
  :mod:`repro.obs` tracer attached and write a deterministic Chrome
  trace-event JSON (load it at https://ui.perfetto.dev); see
  ``docs/observability.md``;
* ``alerts`` — run one telemetry-observed chaos fleet and print the typed
  alert log plus its detection scores against the injected fault
  schedule; see ``docs/alerting.md``;
* ``trend``  — fold committed ``BENCH_*.json`` reports into a single
  calibration-normalized performance trend table; see
  ``docs/performance.md``.

Parameters are passed as repeated ``-p name=value`` flags; comma-separated
values sweep an axis (``-p fpga_mhz=100,200,500``).  ``--cache DIR`` enables
on-disk result caching, ``--executor process --workers N`` fans cells out
across processes (``--workers N`` alone implies the process executor); one
pool is created per invocation and reused across every grid cell.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.reporting import format_table
from repro.api.registry import get_experiment, list_experiments
from repro.api.results import ResultSet
from repro.api.runner import EXECUTORS, Runner


def _parse_scalar(text: str) -> Any:
    try:
        return json.loads(text)
    except ValueError:
        return text


def _parse_value(text: str) -> Any:
    if "," in text:
        return [_parse_scalar(part) for part in text.split(",") if part != ""]
    return _parse_scalar(text)


def parse_params(items: Optional[Sequence[str]]) -> Dict[str, Any]:
    """Parse repeated ``-p name=value`` flags into an overrides mapping."""
    params: Dict[str, Any] = {}
    for item in items or ():
        name, separator, value = item.partition("=")
        if not separator or not name or not value:
            raise SystemExit(f"error: bad parameter {item!r}; expected name=value")
        params[name] = _parse_value(value)
    return params


def _make_runner(args: argparse.Namespace) -> Runner:
    executor = args.executor
    if args.workers is not None and executor == "serial":
        # `--workers N` alone is an unambiguous ask for parallelism; don't
        # make the user also spell `--executor process`.
        executor = "process"
    return Runner(executor=executor, workers=args.workers,
                  cache_dir=args.cache, seed=args.seed)


def _run(args: argparse.Namespace) -> ResultSet:
    overrides = parse_params(args.param)
    with _make_runner(args) as runner:
        return runner.run(args.experiment, use_cache=not args.no_cache, **overrides)


def _emit(results: ResultSet, args: argparse.Namespace) -> None:
    if args.out:
        if args.out.endswith(".csv") or args.csv:
            results.to_csv(args.out)
        else:
            results.to_json(args.out)
        print(f"wrote {len(results)} rows to {args.out}", file=sys.stderr)
        return
    if args.json:
        print(results.to_json())
    elif args.csv:
        print(results.to_csv(), end="")
    else:
        spec = get_experiment(results.experiment)
        print(results.to_table(title=spec.title or results.experiment))
        for key, value in results.summary.items():
            print(f"{key}: {value}")


# --------------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------------- #
def cmd_list(args: argparse.Namespace) -> int:
    specs = list_experiments(tag=args.tag)
    if args.json:
        print(json.dumps([spec.describe() for spec in specs], indent=2))
        return 0
    print(format_table(
        ["Experiment", "Cells", "Tags", "Title"],
        [[spec.name, spec.num_cells(), ",".join(spec.tags), spec.title]
         for spec in specs],
        title="Registered experiments",
    ))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    results = _run(args)
    _emit(results, args)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    results = _run(args)
    spec = get_experiment(results.experiment)
    print(results.to_table(title=spec.title or results.experiment))
    for key, value in results.summary.items():
        print(f"{key}: {value}")
    deviations = results.deviations()
    if deviations:
        print()
        print(results.deviation_table())
    else:
        print("\n(no paper_* columns to compare against)")
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    # Imported lazily: the perf suite pulls in the experiment runner, and
    # plain `repro list`/`run` invocations shouldn't pay for it.
    import os.path

    from repro import perf

    out_path = args.out or perf.BENCH_FILENAME
    baseline = None
    if args.baseline:
        if os.path.abspath(out_path) == os.path.abspath(args.baseline):
            print("error: refusing to overwrite the baseline being compared "
                  "against; pass --out FILE to write the new report elsewhere",
                  file=sys.stderr)
            return 2
        baseline = perf.load_report(args.baseline)
    progress = None if args.json else (lambda line: print(line, file=sys.stderr))
    report = perf.run_suite(perf.SUITE, quick=args.quick, progress=progress)
    perf.write_report(report, out_path)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(format_table(
            ["Benchmark", "Value", "Unit", "Direction"],
            [[bench["name"], format(bench["value"], ",.6g"), bench["unit"],
              bench["direction"]] for bench in report["benchmarks"]],
            title=f"Performance suite ({report['mode']} mode)",
        ))
        print(f"wrote {out_path}", file=sys.stderr)
    if baseline is not None:
        current_interp = report.get("interpreter", {}).get("implementation")
        baseline_interp = baseline.get("interpreter", {}).get("implementation")
        if current_interp and baseline_interp and current_interp != baseline_interp:
            print(f"warning: comparing a {current_interp} run against a "
                  f"{baseline_interp} baseline; ratios are uncalibrated across "
                  "interpreters", file=sys.stderr)
        gates = tuple(args.gate or perf.DEFAULT_GATES)
        comparisons = perf.compare_reports(
            report, baseline, tolerance=args.max_regression, gates=gates)
        # Comparison chatter goes to stderr in --json mode so stdout stays
        # a single parseable JSON document.
        stream = sys.stderr if args.json else sys.stdout
        print(file=stream)
        print(perf.format_comparisons(comparisons), file=stream)
        compared = {comparison.name for comparison in comparisons}
        missing = [gate for gate in gates if gate not in compared]
        if missing:
            print("error: gated benchmark(s) missing from the comparison "
                  f"({', '.join(missing)}): not in the baseline, zero-valued, "
                  "or measured with different params — the gate cannot pass "
                  "vacuously", file=sys.stderr)
            return 1
        if perf.has_gated_regression(comparisons):
            print("error: gated benchmark regressed beyond "
                  f"{args.max_regression:.0%} of baseline", file=sys.stderr)
            return 1
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    # Lazy import, same rationale as cmd_perf: `repro list` stays light.
    from repro.obs.experiments import DEFAULT_SEED, trace_experiment

    overrides = parse_params(args.param)
    seed = args.seed if args.seed is not None else DEFAULT_SEED
    tracer = trace_experiment(args.experiment, seed=seed, overrides=overrides)
    payload = tracer.to_json()
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(payload)
        print(f"wrote {tracer.event_count} events to {args.out} "
              f"(load at https://ui.perfetto.dev)", file=sys.stderr)
    else:
        print(payload, end="")
    return 0


def cmd_alerts(args: argparse.Namespace) -> int:
    # Lazy import, same rationale as cmd_perf: `repro list` stays light.
    from repro.obs.alerting import DEFAULT_SEED, alerts_report

    seed = args.seed if args.seed is not None else DEFAULT_SEED
    report = alerts_report(fault=args.fault, control=args.control,
                           fault_rate=args.fault_rate, seed=seed)
    if args.json or args.out:
        payload = json.dumps(report, indent=2, sort_keys=True)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(payload)
            print(f"wrote {len(report['alerts'])} alert events to {args.out}",
                  file=sys.stderr)
        else:
            print(payload)
        return 0
    print(format_table(
        ["t_ps", "Rule", "Family", "Node", "Event", "Severity", "Value"],
        [[event["t_ps"], event["rule"], event["family"], event["node_id"],
          event["event"], event["severity"], format(event["value"], ".4g")]
         for event in report["alerts"]],
        title=f"Alert log ({args.fault} / {args.control}; "
              f"{report['windows']} telemetry windows)",
    ))
    score = report["score"]
    print(f"faults: {score['faults']}  detected: {score['detected']}  "
          f"recall: {score['recall']:.3f}  precision: {score['precision']:.3f}  "
          f"false alarms: {score['false_alarms']}")
    return 0


def cmd_trend(args: argparse.Namespace) -> int:
    # Lazy import: the trend tool only needs the perf report schema.
    from repro.perf.trend import format_trend, load_reports, trend_report

    reports = load_reports(args.reports)
    trend = trend_report(reports, baseline_path=args.baseline_report)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(json.dumps(trend, indent=2, sort_keys=True))
        print(f"wrote trend over {len(trend['reports'])} reports to {args.out}",
              file=sys.stderr)
    if args.json and not args.out:
        print(json.dumps(trend, indent=2, sort_keys=True))
    elif not args.out or args.verbose:
        print(format_trend(trend))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    results = _run(args)
    if args.pivot:
        index, columns, values = args.pivot
        headers, rows = results.pivot(index, columns, values)
        print(format_table(headers, rows,
                           title=f"{results.experiment}: {values} by {index} x {columns}"))
    else:
        _emit(results, args)
    return 0


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run the Duet reproduction's experiments (tables and figures).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_list = subparsers.add_parser("list", help="list registered experiments")
    p_list.add_argument("--tag", help="only experiments carrying this tag")
    p_list.add_argument("--json", action="store_true", help="machine-readable output")
    p_list.set_defaults(func=cmd_list)

    run_options = argparse.ArgumentParser(add_help=False)
    run_options.add_argument("experiment", help="experiment name (see `repro list`)")
    run_options.add_argument("-p", "--param", action="append", metavar="NAME=VALUE",
                             help="override a grid axis or fixed parameter; "
                                  "comma-separate values to sweep an axis")
    run_options.add_argument("--executor", choices=EXECUTORS, default="serial")
    run_options.add_argument("--workers", type=int, default=None,
                             help="process-pool size; implies --executor process "
                                  "when given on its own")
    run_options.add_argument("--cache", metavar="DIR", default=None,
                             help="enable on-disk JSON result caching in DIR")
    run_options.add_argument("--no-cache", action="store_true",
                             help="ignore cached results even when --cache is set")
    run_options.add_argument("--seed", type=int, default=None,
                             help="override the experiment seed")
    output_format = run_options.add_mutually_exclusive_group()
    output_format.add_argument("--json", action="store_true", help="emit JSON")
    output_format.add_argument("--csv", action="store_true", help="emit CSV")
    run_options.add_argument("--out", metavar="FILE",
                             help="write results to FILE (.csv for CSV, else JSON)")

    p_run = subparsers.add_parser("run", parents=[run_options],
                                  help="run one experiment")
    p_run.set_defaults(func=cmd_run)

    p_report = subparsers.add_parser("report", parents=[run_options],
                                     help="run and compare against the paper's numbers")
    p_report.set_defaults(func=cmd_report)

    p_sweep = subparsers.add_parser("sweep", parents=[run_options],
                                    help="run a parameter sweep (optionally pivoted)")
    p_sweep.add_argument("--pivot", nargs=3, metavar=("INDEX", "COLUMNS", "VALUES"),
                         help="pivot the rows into a wide table")
    p_sweep.set_defaults(func=cmd_sweep)

    p_perf = subparsers.add_parser(
        "perf", help="run the performance suite and write BENCH_kernel.json")
    p_perf.add_argument("--quick", action="store_true",
                        help="reduced sizes/repeats (CI smoke mode)")
    p_perf.add_argument("--out", metavar="FILE", default=None,
                        help="report path (default: BENCH_kernel.json)")
    p_perf.add_argument("--baseline", metavar="FILE", default=None,
                        help="compare against a recorded baseline report and "
                             "fail on gated regressions")
    p_perf.add_argument("--max-regression", type=float, default=0.2,
                        help="tolerated fractional slowdown vs baseline "
                             "(default 0.2 = 20%%)")
    p_perf.add_argument("--gate", action="append",
                        default=None, metavar="BENCH",
                        help="benchmark name that fails the run on regression "
                             "(repeatable; default: kernel_events_per_sec, "
                             "noc_messages_per_sec, "
                             "noc_messages_per_sec_hooks_on, "
                             "serve_requests_per_sec, "
                             "serve_requests_per_sec_tracing_on, "
                             "reconfig_requests_per_sec, "
                             "fleet_requests_per_sec, "
                             "fleet_requests_per_sec_monitor_on and "
                             "chaos_requests_per_sec)")
    p_perf.add_argument("--json", action="store_true",
                        help="print the full report as JSON")
    p_perf.set_defaults(func=cmd_perf)

    p_trace = subparsers.add_parser(
        "trace", help="record a Chrome trace of one experiment's run")
    p_trace.add_argument("experiment",
                        help="traceable experiment name (serve_policy, "
                             "reconfig, chaos, fleet_scaling, "
                             "latency_decomposition, ...)")
    p_trace.add_argument("-p", "--param", action="append", metavar="NAME=VALUE",
                        help="override a driver parameter "
                             "(policy, duration_us, regions, fault_rate, ...)")
    p_trace.add_argument("--seed", type=int, default=None,
                        help="override the trace run's seed")
    p_trace.add_argument("--out", metavar="FILE", default=None,
                        help="write the trace JSON to FILE (default: stdout)")
    p_trace.set_defaults(func=cmd_trace)

    p_alerts = subparsers.add_parser(
        "alerts", help="run one telemetry-observed chaos fleet and print the "
                       "typed alert log plus its ground-truth scores")
    p_alerts.add_argument("--fault", default="kill",
                          choices=("none", "kill", "seu", "link"),
                          help="injected fault family (default: kill)")
    p_alerts.add_argument("--control", default="alerts",
                          choices=("omniscient", "alerts"),
                          help="chaos control mode (default: alerts)")
    p_alerts.add_argument("--fault-rate", type=float, default=2.0,
                          help="background rate for seu/link families")
    p_alerts.add_argument("--seed", type=int, default=None,
                          help="override the run's seed")
    p_alerts.add_argument("--json", action="store_true",
                          help="emit the full report (log + truth + scores) "
                               "as JSON")
    p_alerts.add_argument("--out", metavar="FILE", default=None,
                          help="write the JSON report to FILE")
    p_alerts.set_defaults(func=cmd_alerts)

    p_trend = subparsers.add_parser(
        "trend", help="fold committed BENCH_*.json reports into one "
                      "calibration-normalized trend table")
    p_trend.add_argument("reports", nargs="+", metavar="BENCH.json",
                         help="perf reports, oldest first (e.g. "
                              "BENCH_kernel.json BENCH_obs.json)")
    p_trend.add_argument("--baseline-report", default=None, metavar="FILE",
                         help="report whose values anchor every ratio "
                              "(default: each benchmark's first appearance)")
    p_trend.add_argument("--json", action="store_true",
                         help="emit the trend as JSON instead of a table")
    p_trend.add_argument("--out", metavar="FILE", default=None,
                         help="write the trend JSON to FILE")
    p_trend.add_argument("--verbose", action="store_true",
                         help="also print the table when --out is given")
    p_trend.set_defaults(func=cmd_trend)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into e.g. `head`; not an error.  Detach stdout so the
        # interpreter shutdown doesn't complain about the closed pipe.
        sys.stdout = open(os.devnull, "w")  # noqa: SIM115
        return 0
    except KeyError as error:
        print(f"error: {error.args[0] if error.args else error}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
