"""The discrete-event simulator and its coroutine process model.

Processes are plain Python generators.  They communicate with the kernel by
yielding commands:

* ``Delay(ns)`` or a plain number — suspend for that many nanoseconds.
* an :class:`~repro.sim.event.Event` — suspend until the event fires; the
  event's value is sent back into the generator (or, if the event *failed*,
  the exception is thrown into the generator at the yield point).
* ``None`` — yield the scheduler without advancing time (cooperative yield).

Sub-behaviours compose with ``yield from``, which is how the memory system,
the NoC and the Duet Adapter are layered without callback spaghetti.

Fast-path design (see ``docs/architecture.md`` for the invariants):

* **Integer-picosecond timeline.**  The kernel orders events on an integer
  picosecond clock (``now_ps``); the exact float-nanosecond value is carried
  alongside every heap entry and exposed unchanged through :attr:`Simulator.now`,
  so model arithmetic (clock-edge computation, latency sums) is identical to
  a float-keyed kernel bit for bit.  Heap entries sort by
  ``(time_ps, time_ns, sequence)`` — the float only breaks sub-picosecond
  ties, keeping the ordering exactly the classic ``(time_ns, sequence)``
  order while making the common comparison an integer one.
* **Immediate-run deque.**  Zero-delay callbacks (every ``Event.succeed``
  waiter, every cooperative yield, every process start) bypass the heap via
  a FIFO deque.  When the kernel advances to a new instant it first moves
  every remaining heap entry at exactly that instant (already in global
  scheduling order) onto the deque, so append order on the deque *is*
  global scheduling order and same-instant execution matches a pure-heap
  kernel exactly — without the O(log n) sift per zero-delay hop.
* **Allocation-light resume.**  ``Process`` pre-binds ``generator.send``
  and its resume method, reuses one immutable deque entry for every
  value-less wakeup, and creates its ``done`` event lazily (most processes
  are never waited on).  Queued entries follow a one-argument calling
  convention (``callback(argument)``) — non-unary external callbacks are
  adapted once at schedule time.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.sim.event import Event

#: Picoseconds per nanosecond — the kernel's internal resolution.
PS_PER_NS = 1000


def ns_to_ps(time_ns: float) -> int:
    """Convert float nanoseconds to the kernel's integer picoseconds."""
    return int(time_ns * 1000.0 + 0.5)


def ps_to_ns(time_ps: int) -> float:
    """Convert integer picoseconds back to float nanoseconds."""
    return time_ps / 1000.0


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (negative delays, exhausted run, ...)."""


class Delay:
    """A relative suspension of ``ns`` nanoseconds."""

    __slots__ = ("ns",)

    def __init__(self, ns: float) -> None:
        if ns < 0:
            raise SimulationError(f"negative delay: {ns}")
        self.ns = ns

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, Delay) and self.ns == other.ns

    def __hash__(self) -> int:
        return hash((Delay, self.ns))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Delay(ns={self.ns!r})"


def _wrap_args(callback: Callable[..., None], args: Tuple[Any, ...]) -> Callable[[Any], None]:
    """Adapt a non-unary callback to the kernel's one-argument convention.

    Internally every queued entry is ``(callback, argument)`` and the run
    loop always calls ``callback(argument)`` — a fixed-arity call is
    cheaper than ``*``-unpacking, and the kernel's own callbacks (process
    resumes, event triggers) are all unary anyway.  External ``schedule``
    calls with zero or several extra arguments get this shim.
    """
    def _shim(_value: Any, _callback=callback, _args=args) -> None:
        _callback(*_args)
    return _shim


ProcessGenerator = Generator[Any, Any, Any]


class Process:
    """A running coroutine inside the simulator.

    The process's return value (``return x`` inside the generator) is
    delivered through :attr:`done`, an :class:`Event` other processes can
    wait on.  If the process *fails* — its generator raises, or it yields an
    unsupported command — :attr:`done` fails and registered waiters get the
    exception thrown into them rather than silently receiving it as a
    value; with no waiter registered the exception propagates out of
    :meth:`Simulator.run` instead (a failure must surface somewhere
    exactly once).
    """

    __slots__ = ("sim", "generator", "name", "_done", "_finished", "_send",
                 "_result", "_failure", "_resume_bound", "_resume_entry",
                 "_waiter_pair")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = "") -> None:
        self.sim = sim
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._done: Optional[Event] = None
        self._finished = False
        self._send = generator.send
        self._result: Any = None
        self._failure: Optional[BaseException] = None
        # Pre-bound resume method, immediate-deque entry and (resume, throw)
        # waiter pair — one allocation each for the process's lifetime
        # instead of one per wakeup. The deque entry is immutable, so the
        # same tuple object can sit in the queue any number of times.
        self._resume_bound = self._resume
        self._resume_entry = (self._resume_bound, None)
        # (resume, throw, ready-made value-less deque entry); see Event.
        self._waiter_pair = (self._resume_bound, self._throw, self._resume_entry)
        sim._immediate.append(self._resume_entry)

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def failed(self) -> bool:
        """Whether the process finished by raising (or yielding garbage)."""
        return self._failure is not None

    @property
    def done(self) -> Event:
        """The completion event, materialized on first access."""
        done = self._done
        if done is None:
            done = self._done = Event(self.sim, name=f"{self.name}.done")
            if self._finished:
                if self._failure is not None:
                    done.fail(self._failure)
                else:
                    done.succeed(self._result)
        return done

    # ------------------------------------------------------------------ #
    # Kernel-facing resume paths
    # ------------------------------------------------------------------ #
    def _finish(self, value: Any) -> None:
        self._finished = True
        if self._done is None:
            self._result = value
        else:
            self._done.succeed(value)

    def _finish_failed(self, error: BaseException) -> bool:
        """Record the failure; returns True if a waiter consumed it.

        When somebody is already waiting on :attr:`done`, the exception is
        theirs: it gets thrown into the waiter(s) and must *not* also
        propagate out of ``run()`` (that would abort the run before the
        waiter's throw executes and deliver the error twice).  With no
        waiter registered, the failure has no consumer and propagating out
        of ``run()`` is the only way to surface it.
        """
        self._finished = True
        self._failure = error
        done = self._done
        if done is not None:
            had_waiters = bool(done._callbacks)
            done.fail(error)
            return had_waiters
        return False

    def _resume(self, value: Any) -> None:
        if self._finished:
            return
        try:
            command = self._send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as error:
            if self._finish_failed(error):
                return
            raise
        # Inlined dispatch for the hot commands; everything else (numbers,
        # processes, unsupported commands) falls through to _dispatch.
        if command is None:
            self.sim._immediate.append(self._resume_entry)
            return
        command_type = type(command)
        if command_type is Delay:
            ns = command.ns
            sim = self.sim
            if ns == 0.0:
                sim._immediate.append(self._resume_entry)
            else:
                time_ns = sim._now_ns + ns
                heapq.heappush(sim._heap, (int(time_ns * 1000.0 + 0.5), time_ns,
                                           sim._sequence, self._resume_bound, None))
                sim._sequence += 1
        elif command_type is Event:
            if command._triggered:
                command.add_waiter(self)
            else:
                command._callbacks.append(self._waiter_pair)
        else:
            self._dispatch(command)

    def _throw(self, error: BaseException) -> None:
        """Resume by raising ``error`` inside the generator (failure path)."""
        if self._finished:
            return
        try:
            command = self.generator.throw(error)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as err:
            if self._finish_failed(err):
                return
            raise
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if command is None:
            self.sim._immediate.append(self._resume_entry)
        elif isinstance(command, Delay):
            self.sim.schedule(command.ns, self._resume_bound, None)
        elif isinstance(command, (int, float)):
            self.sim.schedule(float(command), self._resume_bound, None)
        elif isinstance(command, Event):
            command.add_waiter(self)
        elif isinstance(command, Process):
            command.done.add_waiter(self)
        else:
            error = SimulationError(
                f"process {self.name!r} yielded unsupported command {command!r}"
            )
            if not self._finish_failed(error):
                raise error

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self._finished else "running"
        return f"<Process {self.name} {state} @{self.sim.now:.2f}ns>"


class Simulator:
    """A time-ordered event heap with deterministic tie-breaking.

    Time is kept internally in integer picoseconds (:attr:`now_ps`); the
    public API speaks float nanoseconds (:attr:`now`), and the exact float
    value of every scheduled instant is preserved alongside the integer key,
    so no model-visible quantization occurs.  Events scheduled at the same
    instant execute in scheduling order — including zero-delay events routed
    through the immediate deque — which gives the point-to-point ordering
    guarantees the NoC and the async FIFOs rely on.
    """

    def __init__(self) -> None:
        self._now_ns: float = 0.0
        self._now_ps: int = 0
        # Heap entries: (time_ps, time_ns, sequence, callback, args).
        self._heap: List[Tuple[int, float, int, Callable[..., None], Tuple[Any, ...]]] = []
        # Immediate entries (run at the current instant, FIFO): (callback, args).
        # Append order on this deque is global scheduling order: zero-delay
        # work is appended as it is scheduled, and when time advances the run
        # loop drains every remaining same-instant heap entry (already in
        # sequence order) onto it before running the first callback.
        self._immediate: "deque[Tuple[Callable[..., None], Tuple[Any, ...]]]" = deque()
        self._sequence = 0
        self.events_executed = 0

    # ------------------------------------------------------------------ #
    # Time
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulation time in (float) nanoseconds."""
        return self._now_ns

    @property
    def now_ps(self) -> int:
        """Current simulation time in integer picoseconds."""
        return self._now_ps

    # ------------------------------------------------------------------ #
    # Scheduling primitives
    # ------------------------------------------------------------------ #
    def schedule(self, delay_ns: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay_ns`` nanoseconds."""
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay_ns})")
        if len(args) == 1:
            arg = args[0]
        else:
            callback = _wrap_args(callback, args)
            arg = None
        if delay_ns == 0.0:
            self._immediate.append((callback, arg))
        else:
            time_ns = self._now_ns + delay_ns
            heapq.heappush(self._heap, (int(time_ns * 1000.0 + 0.5), time_ns,
                                        self._sequence, callback, arg))
            self._sequence += 1

    def schedule_at(self, time_ns: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` at absolute time ``time_ns``."""
        now_ns = self._now_ns
        if time_ns < now_ns:
            raise SimulationError(
                f"cannot schedule at {time_ns} before current time {now_ns}"
            )
        if len(args) == 1:
            arg = args[0]
        else:
            callback = _wrap_args(callback, args)
            arg = None
        if time_ns == now_ns:
            self._immediate.append((callback, arg))
        else:
            heapq.heappush(self._heap, (int(time_ns * 1000.0 + 0.5), time_ns,
                                        self._sequence, callback, arg))
            self._sequence += 1

    def event(self, name: str = "") -> Event:
        """Create a fresh one-shot event bound to this simulator."""
        return Event(self, name=name)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Register ``generator`` as a process starting at the current time."""
        return Process(self, generator, name=name)

    def timeout(self, ns: float) -> Delay:
        """Convenience constructor for a :class:`Delay` command."""
        return Delay(ns)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Execute queued events.

        ``until`` bounds simulated time (inclusive); ``max_events`` bounds the
        number of callbacks executed, which protects tests against accidental
        livelock; ``stop_when`` is checked after every callback — including
        the zero-delay ones drained from the immediate deque — and stops the
        run early when it returns True (used to stop once all measured
        programs have finished even if background hardware keeps ticking).
        Returns the simulation time when execution stopped.
        """
        heap = self._heap
        immediate = self._immediate
        heappop = heapq.heappop
        imm_popleft = immediate.popleft
        unchecked = stop_when is None and max_events is None
        executed = 0
        try:
            if unchecked:
                # Tight variant: no per-event stop_when/max_events checks.
                while True:
                    while immediate:
                        callback, arg = imm_popleft()
                        callback(arg)
                        executed += 1
                    if not heap:
                        break
                    head = heap[0]
                    time_ns = head[1]
                    if until is not None and time_ns > until:
                        self._now_ns = until
                        self._now_ps = ns_to_ps(until)
                        return until
                    heappop(heap)
                    time_ps = head[0]
                    self._now_ps = time_ps
                    self._now_ns = time_ns
                    # Drain every remaining heap entry at exactly this
                    # instant onto the immediate deque: they pop in global
                    # sequence order, so the deque stays FIFO-consistent
                    # with the order the schedule calls were made.
                    while heap:
                        nxt = heap[0]
                        if nxt[0] != time_ps or nxt[1] != time_ns:
                            break
                        heappop(heap)
                        immediate.append((nxt[3], nxt[4]))
                    head[3](head[4])
                    executed += 1
                if until is not None and until > self._now_ns:
                    self._now_ns = until
                    self._now_ps = ns_to_ps(until)
                return self._now_ns
            while True:
                if immediate:
                    callback, arg = imm_popleft()
                elif heap:
                    head = heap[0]
                    time_ns = head[1]
                    if until is not None and time_ns > until:
                        self._now_ns = until
                        self._now_ps = ns_to_ps(until)
                        return until
                    heappop(heap)
                    time_ps = head[0]
                    self._now_ps = time_ps
                    self._now_ns = time_ns
                    # Same drain-on-advance as the tight variant above.
                    while heap:
                        nxt = heap[0]
                        if nxt[0] != time_ps or nxt[1] != time_ns:
                            break
                        heappop(heap)
                        immediate.append((nxt[3], nxt[4]))
                    callback = head[3]
                    arg = head[4]
                else:
                    break
                callback(arg)
                executed += 1
                if stop_when is not None and stop_when():
                    return self._now_ns
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"simulation exceeded max_events={max_events} at t={self._now_ns}ns"
                    )
        finally:
            self.events_executed += executed
        if until is not None and until > self._now_ns:
            self._now_ns = until
            self._now_ps = ns_to_ps(until)
        return self._now_ns

    def run_process(
        self,
        generator: ProcessGenerator,
        name: str = "",
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> Any:
        """Run ``generator`` to completion and return its value.

        This is the main entry point used by the experiment runners: build a
        platform, hand the workload's top-level generator to
        :meth:`run_process`, and read off the result.  A failed process
        re-raises its exception here rather than returning it as a value.
        """
        process = self.process(generator, name=name)
        self.run(until=until, max_events=max_events)
        if not process.finished:
            raise SimulationError(
                f"process {process.name!r} did not finish (t={self.now}ns)"
            )
        if process.failed:
            raise process._failure
        return process.done.value

    @property
    def pending_events(self) -> int:
        """Number of callbacks still waiting (heap plus immediate deque)."""
        return len(self._heap) + len(self._immediate)


def wait_all(sim: Simulator, processes: Iterable[Process]) -> ProcessGenerator:
    """A helper process body that waits for every process in ``processes``."""
    results = []
    for process in processes:
        value = yield process.done
        results.append(value)
    return results
