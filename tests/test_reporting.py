"""Unit tests for the plain-text table renderer."""

from repro.analysis.reporting import _fmt, format_table


# --------------------------------------------------------------------------- #
# Float formatting tiers
# --------------------------------------------------------------------------- #
def test_fmt_large_floats_have_no_decimals():
    assert _fmt(123.456) == "123"
    assert _fmt(-250.7) == "-251"
    assert _fmt(100.0) == "100"


def test_fmt_mid_floats_have_two_decimals():
    assert _fmt(12.345) == "12.35"
    assert _fmt(1.0) == "1.00"
    assert _fmt(-99.999) == "-100.00"


def test_fmt_small_floats_have_three_decimals():
    assert _fmt(0.1234) == "0.123"
    assert _fmt(0.0) == "0.000"
    assert _fmt(-0.5) == "-0.500"


def test_fmt_non_floats_pass_through():
    assert _fmt(42) == "42"
    assert _fmt("text") == "text"
    assert _fmt(None) == "None"
    assert _fmt(True) == "True"


# --------------------------------------------------------------------------- #
# Table shape
# --------------------------------------------------------------------------- #
def test_format_table_basic_alignment_and_title():
    text = format_table(["a", "bb"], [[1, 2], [333, 4]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert lines[1].split() == ["a", "bb"]
    assert set(lines[2]) <= {"-", " "}
    # All table lines share one width.
    assert len({len(line) for line in lines[1:]}) == 1


def test_format_table_pads_short_rows():
    text = format_table(["a", "b", "c"], [[1], [1, 2, 3]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert len({len(line) for line in lines}) == 1  # aligned despite the gap


def test_format_table_extends_for_long_rows():
    text = format_table(["a"], [[1, 2, 3]])
    lines = text.splitlines()
    assert lines[-1].split() == ["1", "2", "3"]


def test_format_table_empty_rows_and_headers():
    assert format_table([], []) == "\n"
    text = format_table(["x"], [])
    assert text.splitlines()[0] == "x"
