"""One-shot simulation events.

An :class:`Event` is the rendezvous primitive of the kernel: processes wait
on it by yielding it, and any component may trigger it exactly once with an
optional value.  Triggering schedules the waiters at the current simulation
time, preserving the order in which they registered.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional


class Event:
    """A one-shot event carrying an optional value.

    Events are created through :meth:`repro.sim.Simulator.event` so that they
    know which simulator to schedule their callbacks on.
    """

    __slots__ = ("sim", "name", "_callbacks", "_triggered", "value")

    def __init__(self, sim: "Simulator", name: str = "") -> None:  # noqa: F821
        self.sim = sim
        self.name = name
        self._callbacks: List[Callable[[Any], None]] = []
        self._triggered = False
        self.value: Any = None

    @property
    def triggered(self) -> bool:
        """Whether :meth:`succeed` has already been called."""
        return self._triggered

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event, delivering ``value`` to every waiter.

        Waiters are scheduled at the current simulation time; triggering an
        already-triggered event is an error because events are one-shot.
        """
        if self._triggered:
            raise RuntimeError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self.value = value
        for callback in self._callbacks:
            self.sim.schedule(0.0, callback, value)
        self._callbacks.clear()
        return self

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        """Register ``callback(value)``; runs immediately if already triggered."""
        if self._triggered:
            self.sim.schedule(0.0, callback, self.value)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<Event {self.name or hex(id(self))} {state}>"


class EventGroup:
    """Waits for a set of events; triggers its own event when all are done."""

    def __init__(self, sim: "Simulator", events: List[Event]) -> None:  # noqa: F821
        self.done = Event(sim, name="group-done")
        self._remaining = len(events)
        self._values: List[Any] = [None] * len(events)
        if self._remaining == 0:
            self.done.succeed([])
            return
        for index, event in enumerate(events):
            event.add_callback(self._make_callback(index))

    def _make_callback(self, index: int) -> Callable[[Any], None]:
        def _on_done(value: Any) -> None:
            self._values[index] = value
            self._remaining -= 1
            if self._remaining == 0:
                self.done.succeed(list(self._values))

        return _on_done


def all_of(sim: "Simulator", events: List[Event]) -> Event:  # noqa: F821
    """Return an event triggered when every event in ``events`` has fired."""
    return EventGroup(sim, events).done
