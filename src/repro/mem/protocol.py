"""Coherence protocol vocabulary.

The protocol is a blocking, directory-based MESI protocol in the spirit of
OpenPiton's P-Mesh: private caches issue ``GetS`` / ``GetM`` / ``PutM`` /
``PutS`` requests to the home directory; the directory issues ``Inv`` /
``FwdGetS`` / ``FwdGetM`` forwards to current owners and sharers; data and
acknowledgements travel on the response plane.  Requests, forwards and
responses use the three NoC planes so the blocking directory can never
deadlock.
"""

from __future__ import annotations

import enum


class CoherenceState(enum.Enum):
    """Stable MESI states held by a private cache (L2, Proxy Cache)."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    @property
    def can_read(self) -> bool:
        return self is not CoherenceState.INVALID

    @property
    def can_write(self) -> bool:
        return self in (CoherenceState.MODIFIED, CoherenceState.EXCLUSIVE)


MESI_STABLE_STATES = (
    CoherenceState.MODIFIED,
    CoherenceState.EXCLUSIVE,
    CoherenceState.SHARED,
    CoherenceState.INVALID,
)


class DirectoryState(enum.Enum):
    """Per-line state tracked by the home directory slice."""

    UNOWNED = "U"
    SHARED = "S"
    EXCLUSIVE = "E"


class MsgKind:
    """String constants for coherence NoC message kinds.

    Kept as plain strings (not an enum) so the Duet Adapter and MMIO layers
    can extend the vocabulary without touching this module.
    """

    # Requests: private cache -> home directory (REQUEST plane)
    GET_S = "GetS"
    GET_M = "GetM"
    PUT_M = "PutM"
    PUT_S = "PutS"

    # Forwards: home directory -> private cache (FORWARD plane)
    INV = "Inv"
    FWD_GET_S = "FwdGetS"
    FWD_GET_M = "FwdGetM"

    # Responses (RESPONSE plane)
    DATA = "Data"              # directory or owner -> requester (carries state grant)
    INV_ACK = "InvAck"         # sharer -> directory
    WB_DATA = "WbData"         # owner -> directory (downgrade copy-back)
    TRANSFER_ACK = "TransferAck"  # old owner -> directory (ownership handoff)
    PUT_ACK = "PutAck"         # directory -> evictor

    REQUESTS = (GET_S, GET_M, PUT_M, PUT_S)
    FORWARDS = (INV, FWD_GET_S, FWD_GET_M)
    RESPONSES = (DATA, INV_ACK, WB_DATA, TRANSFER_ACK, PUT_ACK)
