"""The hardware Proxy Cache.

The Proxy Cache is the heart of Duet's hybrid cache organization
(Sec. II-C): a private, local, *hardware* cache that participates in the
platform's directory-MESI protocol on behalf of the eFPGA and exposes a
simple Load/Store interface to it.  Dolly builds it by "adding a coherent
memory interface to the unmodified P-Mesh L2 cache", and this model does the
same: :class:`ProxyCache` is the unmodified
:class:`~repro.mem.private_cache.PrivateCacheAgent` (running in the fast,
processor clock domain) plus the two properties that make the organization
work:

* it **never requires nor accepts acknowledgements from the soft cache** —
  invalidations are forwarded into the eFPGA fire-and-forget through the
  Memory Hub's ordered FIFO, so coherence responses are never delayed by the
  slow clock domain;
* it stores the **virtual page number beside the physical tag** of each line
  so invalidations can be reverse-mapped into a virtually-tagged soft cache,
  which also rules out synonym aliases (Sec. II-D).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.mem.address import AddressMap
from repro.mem.config import MemoryConfig
from repro.mem.dram import MainMemory
from repro.mem.private_cache import PrivateCacheAgent
from repro.noc import TileRouter
from repro.sim import ClockDomain, Simulator


class ProxyCache(PrivateCacheAgent):
    """A private cache agent acting as the eFPGA's coherence proxy."""

    def __init__(
        self,
        sim: Simulator,
        domain: ClockDomain,
        tile_router: TileRouter,
        address_map: AddressMap,
        config: MemoryConfig,
        memory: MainMemory,
        name: str = "",
        target: str = "proxy",
    ) -> None:
        # The Proxy Cache has no L1 in front of it: the eFPGA-side soft cache
        # (if any) plays that role, in the slow clock domain.
        super().__init__(
            sim,
            domain,
            tile_router,
            address_map,
            config,
            memory,
            name=name or f"proxy@{tile_router.node}",
            target=target,
            include_l1=False,
        )
        #: Virtual page number recorded per resident line (reverse mapping).
        self._virtual_pages: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Virtual-tag bookkeeping
    # ------------------------------------------------------------------ #
    def record_virtual_page(self, line_addr: int, virtual_page: int) -> Optional[int]:
        """Remember the VPN used to access ``line_addr``.

        Returns a *previous* VPN if the line was already resident under a
        different virtual page — the synonym case, which the caller must
        invalidate from the soft cache before proceeding (Sec. II-D).
        """
        previous = self._virtual_pages.get(line_addr)
        self._virtual_pages[line_addr] = virtual_page
        if previous is not None and previous != virtual_page:
            return previous
        return None

    def virtual_page_of(self, line_addr: int) -> Optional[int]:
        return self._virtual_pages.get(line_addr)

    def _drop_line(self, line: int, notify: str) -> None:
        super()._drop_line(line, notify)
        self._virtual_pages.pop(line, None)
