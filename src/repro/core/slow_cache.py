"""The FPSoC-style "slow cache": an FPGA-side private cache in the slow domain.

The paper's FPSoC baseline (Sec. V-D) "moves the P-Mesh L2 cache into the
eFPGA's (slow) clock domain": the cache logic runs at the eFPGA frequency
and every coherence message entering or leaving it pays the clock-domain
crossing.  That is exactly what Figs. 5a/5b illustrate and what makes
"CPU pull w/ slow cache" and "eFPGA pull w/ slow cache" scale so poorly in
Figs. 9 and 10.

:class:`SlowCacheAgent` reuses the unmodified
:class:`~repro.mem.private_cache.PrivateCacheAgent` protocol logic but (a)
clocks it in the eFPGA domain and (b) interposes asynchronous FIFOs between
the agent and the mesh in both directions.
"""

from __future__ import annotations

from typing import Optional

from repro.mem.address import AddressMap
from repro.mem.config import MemoryConfig
from repro.mem.dram import MainMemory
from repro.mem.private_cache import PrivateCacheAgent
from repro.noc import MessagePlane, NocMessage, TileRouter
from repro.noc.port import NocPort
from repro.sim import AsyncFifo, ClockDomain, Event, Simulator


class _CdcOutboundPort:
    """Looks like a :class:`NocPort` but stages sends through a CDC FIFO."""

    def __init__(self, agent: "SlowCacheAgent", real_port: NocPort, fifo: AsyncFifo) -> None:
        self._agent = agent
        self._real_port = real_port
        self._fifo = fifo
        self.node = real_port.node
        self.target = real_port.target

    def send(self, dst_node: int, dst_target: str, kind: str, **kwargs) -> Event:
        delivered = self._agent.sim.event("slow-cache-send")
        if not self._fifo.try_put(("send", (dst_node, dst_target, kind), kwargs, delivered)):
            # The outbound FIFO overflowed; stage it anyway (unbounded model)
            # so protocol messages are never lost, but count the overflow.
            self._fifo._items.append(
                (self._fifo._visible_time(self._fifo.push_domain.next_edge()),
                 ("send", (dst_node, dst_target, kind), kwargs, delivered))
            )
            self._fifo.total_pushed += 1
            self._fifo._wake_getter()
            self._agent.stats.counter("outbound_fifo_overflow").increment()
        return delivered

    def reply(self, original: NocMessage, kind: str, **kwargs) -> Event:
        return self.send(
            original.meta["reply_node"],
            original.meta["reply_target"],
            kind,
            addr=original.addr,
            plane=MessagePlane.RESPONSE,
            **kwargs,
        )


class SlowCacheAgent(PrivateCacheAgent):
    """A private cache agent living in the eFPGA clock domain (FPSoC model)."""

    def __init__(
        self,
        sim: Simulator,
        fpga_domain: ClockDomain,
        sys_domain: ClockDomain,
        tile_router: TileRouter,
        address_map: AddressMap,
        config: MemoryConfig,
        memory: MainMemory,
        name: str = "",
        target: str = "slowcache",
        sync_stages: int = 2,
        include_l1: bool = False,
    ) -> None:
        self.sys_domain = sys_domain
        self._sync_stages = sync_stages
        # CDC FIFOs must exist before super().__init__ calls _attach().
        self._inbound = AsyncFifo(sim, sys_domain, fpga_domain, capacity=64,
                                  sync_stages=sync_stages, name=f"{name or target}.in")
        self._outbound = AsyncFifo(sim, fpga_domain, sys_domain, capacity=64,
                                   sync_stages=sync_stages, name=f"{name or target}.out")
        super().__init__(
            sim,
            fpga_domain,
            tile_router,
            address_map,
            config,
            memory,
            name=name or f"slowcache@{tile_router.node}",
            target=target,
            include_l1=include_l1,
        )
        self.sim.process(self._pump_inbound(), name=f"{self.name}.pump-in")
        self.sim.process(self._pump_outbound(), name=f"{self.name}.pump-out")

    # ------------------------------------------------------------------ #
    # NoC attachment with CDC in both directions
    # ------------------------------------------------------------------ #
    def _attach(self, tile_router: TileRouter, target: str):
        real_port = tile_router.port(target, self._on_noc_arrival)
        return _CdcOutboundPort(self, real_port, self._outbound)

    def _on_noc_arrival(self, message: NocMessage) -> None:
        """NoC delivery lands in the fast domain; stage it across the CDC."""
        if not self._inbound.try_put(message):
            # Never drop protocol traffic: extend beyond nominal capacity.
            self._inbound._items.append(
                (self._inbound._visible_time(self.sys_domain.next_edge()), message)
            )
            self._inbound.total_pushed += 1
            self._inbound._wake_getter()
            self.stats.counter("inbound_fifo_overflow").increment()

    def _pump_inbound(self):
        while True:
            message = yield from self._inbound.get()
            # The slow cache controller examines the message on its own clock.
            yield self.domain.wait_cycles(1)
            self._handle(message)

    def _pump_outbound(self):
        while True:
            action, destination, kwargs, delivered = yield from self._outbound.get()
            dst_node, dst_target, kind = destination
            real_port = self._real_port
            event = real_port.send(dst_node, dst_target, kind, **kwargs)
            event.add_callback(lambda value, done=delivered: None if done.triggered
                               else done.succeed(value))

    @property
    def _real_port(self) -> NocPort:
        return self.port._real_port
