"""Synthetic CPU–eFPGA communication microbenchmarks (Sec. V-C).

Three studies, mirroring Figs. 9, 10 and 11:

* :func:`measure_latency` — minimum round-trip latency of the six
  communication mechanisms on Dolly-P1M1 (single processor, single
  transaction);
* :func:`measure_bandwidth` — single-processor bandwidth of the same
  mechanisms while passing 512 quad-words to the eFPGA and back;
* :func:`measure_register_scalability` — per-processor bandwidth of normal
  vs shadow registers under multi-processor contention.

The eFPGA emulates a simple scratchpad memory, exactly as the paper's
synthetic benchmark does.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.registers import RegisterKind, RegisterSpec
from repro.fpga.accelerator import SoftAccelerator
from repro.fpga.synthesis import AcceleratorDesign
from repro.platform.config import DollyConfig, SystemKind
from repro.platform.dolly import build_system

#: Register map of the synthetic scratchpad accelerator.
REG_CMD = 0          # FPGA-bound FIFO: commands / data pushed by the CPU
REG_DATA_OUT = 1     # CPU-bound FIFO: data returned to the CPU
REG_PLAIN_A = 2      # plain shadow: buffer A base address
REG_PLAIN_B = 3      # plain shadow: buffer B base address
REG_BARRIER = 4      # normal soft register: blocking hand-off / echo target
REG_COUNT = 5        # plain shadow: number of words to move

#: Commands understood by the synthetic accelerator.
CMD_STOP = (1 << 62)
CMD_WRITE_LINE = 1   # make the accelerator dirty a line the CPU will pull
CMD_PULL_BUFFER = 2  # load COUNT words from buffer A into the scratchpad
CMD_PUSH_BUFFER = 3  # store COUNT words from the scratchpad into buffer B

QUAD_WORDS = 512
WORD_BYTES = 8
LINE_BYTES = 16

#: Default data seed shared with :class:`repro.workloads.common.WorkloadParams`.
DEFAULT_SEED = 2023


def _payload_words(count: int, seed: int) -> List[int]:
    """Deterministic payload data for one run.

    Values stay above the CMD_* opcodes and below CMD_STOP so they read as
    plain data pushes when streamed through the command FIFO.
    """
    rng = random.Random(seed)
    return [rng.randrange(1 << 12, 1 << 31) for _ in range(count)]


def synthetic_registers() -> List[RegisterSpec]:
    return [
        RegisterSpec(REG_CMD, RegisterKind.FPGA_BOUND_FIFO, "cmd", depth=16),
        RegisterSpec(REG_DATA_OUT, RegisterKind.CPU_BOUND_FIFO, "data_out", depth=16),
        RegisterSpec(REG_PLAIN_A, RegisterKind.PLAIN, "buffer_a"),
        RegisterSpec(REG_PLAIN_B, RegisterKind.PLAIN, "buffer_b"),
        RegisterSpec(REG_BARRIER, RegisterKind.NORMAL, "barrier"),
        RegisterSpec(REG_COUNT, RegisterKind.PLAIN, "count"),
    ]


class ScratchpadAccelerator(SoftAccelerator):
    """The synthetic benchmark's eFPGA side: a scratchpad plus command engine."""

    DESIGN = AcceleratorDesign(
        name="synthetic-scratchpad",
        luts=900,
        ffs=1200,
        bram_kbits=64,
        dsps=0,
        logic_depth=7,
        routing_pressure=0.3,
        mem_ports=1,
        description="Scratchpad memory + DMA-style engine for the Sec. V-C studies",
    )

    def __init__(self, use_soft_cache_port: bool = False) -> None:
        super().__init__("synthetic-scratchpad")
        self.echo_count = 0

    def behavior(self):
        scratch: Dict[int, int] = {}
        while True:
            command = yield from self.regs.pop_request(REG_CMD)
            if command == CMD_STOP:
                return self.echo_count
            if command == CMD_WRITE_LINE:
                # Dirty one line so a subsequent CPU load must pull it from
                # the FPGA-side cache (the "CPU pull" scenario).
                buffer_b = yield from self.regs.read(REG_PLAIN_B)
                yield from self.mem.store(buffer_b, 0xC0FFEE)
                yield from self.mem.store(buffer_b + 8, 0xC0FFEE)
                yield from self.regs.push_response(REG_DATA_OUT, 1)
            elif command == CMD_PULL_BUFFER:
                # eFPGA pull: stream buffer A into the scratchpad.
                buffer_a = yield from self.regs.read(REG_PLAIN_A)
                count = yield from self.regs.read(REG_COUNT)
                pending = []
                for line in range(0, count * WORD_BYTES, LINE_BYTES):
                    event = yield from self.mem.issue("load_line", buffer_a + line)
                    pending.append((line, event))
                for line, event in pending:
                    words = yield from self.mem.wait(event)
                    for offset, word in enumerate(words):
                        scratch[line + offset * WORD_BYTES] = word
                    yield self.cycles(1)
                yield from self.regs.push_response(REG_DATA_OUT, count)
            elif command == CMD_PUSH_BUFFER:
                # CPU pull, phase 1: stream the scratchpad into buffer B.
                buffer_b = yield from self.regs.read(REG_PLAIN_B)
                count = yield from self.regs.read(REG_COUNT)
                store_events = []
                for index in range(count):
                    value = scratch.get(index * WORD_BYTES, index)
                    event = yield from self.mem.issue(
                        "store", buffer_b + index * WORD_BYTES, value
                    )
                    store_events.append(event)
                    yield self.cycles(1)
                for event in store_events:
                    yield from self.mem.wait(event)
                yield from self.regs.push_response(REG_DATA_OUT, count)
            else:
                # Plain data push: echo it back (register bandwidth study).
                self.echo_count += 1
                yield from self.regs.push_response(REG_DATA_OUT, command)


@dataclass
class LatencyResult:
    """Round-trip latency of one mechanism at one eFPGA frequency."""

    mechanism: str
    fpga_mhz: float
    roundtrip_ns: float
    breakdown: Dict[str, float] = field(default_factory=dict)


@dataclass
class BandwidthResult:
    mechanism: str
    fpga_mhz: float
    bytes_moved: int
    elapsed_ns: float

    @property
    def mbytes_per_s(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return (self.bytes_moved / (self.elapsed_ns * 1e-9)) / 1e6


@dataclass
class ScalabilityResult:
    mechanism: str
    operation: str
    num_processors: int
    per_processor_mbytes_per_s: float


def _build(kind: SystemKind, processors: int, fpga_mhz: float, soft_cache: bool):
    if kind is SystemKind.DUET:
        config = DollyConfig.dolly(processors, 1, fpga_mhz=fpga_mhz)
    else:
        config = DollyConfig.fpsoc(processors, 1, fpga_mhz=fpga_mhz)
    system = build_system(config)
    accelerator = ScratchpadAccelerator()
    system.install_accelerator(
        accelerator,
        registers=synthetic_registers(),
        fpga_mhz=fpga_mhz,
        soft_cache=(True if (soft_cache and kind is SystemKind.DUET) else None),
    )
    system.start_accelerator()
    return system, accelerator


# --------------------------------------------------------------------------- #
# Fig. 9: round-trip latency
# --------------------------------------------------------------------------- #
LATENCY_MECHANISMS = (
    "shadow_reg",
    "normal_reg",
    "cpu_pull_proxy",
    "cpu_pull_slow",
    "efpga_pull_proxy",
    "efpga_pull_slow",
)


def measure_latency(mechanism: str, fpga_mhz: float,
                    seed: int = DEFAULT_SEED) -> LatencyResult:
    """Minimum round-trip latency of one mechanism on Dolly-P1M1."""
    if mechanism not in LATENCY_MECHANISMS:
        raise ValueError(f"unknown latency mechanism {mechanism!r}")
    slow = mechanism.endswith("_slow") or mechanism == "normal_reg"
    kind = SystemKind.FPSOC if mechanism.endswith("_slow") else SystemKind.DUET
    system, _ = _build(kind, processors=1, fpga_mhz=fpga_mhz, soft_cache=False)
    adapter = system.adapter
    buffer_a = system.memory.allocate(4096, align=4096)
    buffer_b = system.memory.allocate(4096, align=4096)
    payload = _payload_words(2, seed)

    def program(ctx):
        # Common setup (not measured): pass buffer addresses and the count.
        yield from ctx.mmio_write(adapter.register_addr(REG_PLAIN_A), buffer_a)
        yield from ctx.mmio_write(adapter.register_addr(REG_PLAIN_B), buffer_b)
        yield from ctx.mmio_write(adapter.register_addr(REG_COUNT), 2)
        # Let the configuration values settle into the slow clock domain
        # before any measured transaction (driver start-up, not measured).
        yield from ctx.compute(800)
        if mechanism in ("shadow_reg", "normal_reg"):
            target = REG_PLAIN_A if mechanism == "shadow_reg" else REG_BARRIER
            # One warm-up access, then the measured single transaction.
            yield from ctx.mmio_read(adapter.register_addr(target))
            start = ctx.now
            yield from ctx.mmio_read(adapter.register_addr(target))
            return ctx.now - start
        if mechanism.startswith("cpu_pull"):
            # The eFPGA dirties a line; the measured transaction is the CPU
            # load that must fetch it from the FPGA-side cache.
            yield from ctx.mmio_write(adapter.register_addr(REG_CMD), CMD_WRITE_LINE)
            yield from ctx.mmio_read(adapter.register_addr(REG_DATA_OUT))
            start = ctx.now
            yield from ctx.load(buffer_b)
            return ctx.now - start
        # eFPGA pull: the CPU dirties a line, then asks the eFPGA to load it;
        # the measured quantity is the accelerator-side load round trip,
        # bounded here by (invoke .. completion) minus the two MMIO trips.
        yield from ctx.store(buffer_a, payload[0])
        yield from ctx.store(buffer_a + 8, payload[1])
        start = ctx.now
        yield from ctx.mmio_write(adapter.register_addr(REG_CMD), CMD_PULL_BUFFER)
        yield from ctx.mmio_read(adapter.register_addr(REG_DATA_OUT))
        return ctx.now - start

    roundtrip, _ = system.run_single(program)
    noc_mean = system.network.mean_latency_ns()
    return LatencyResult(
        mechanism=mechanism,
        fpga_mhz=fpga_mhz,
        roundtrip_ns=roundtrip,
        breakdown={
            "noc_ns": noc_mean,
            "fpga_period_ns": system.fpga_domain.period_ns,
            "slow_domain": 1.0 if slow else 0.0,
        },
    )


# --------------------------------------------------------------------------- #
# Fig. 10: single-processor bandwidth
# --------------------------------------------------------------------------- #
BANDWIDTH_MECHANISMS = (
    "shadow_reg",
    "normal_reg",
    "cpu_pull_proxy",
    "cpu_pull_slow",
    "efpga_pull_proxy",
    "efpga_pull_slow",
)


def measure_bandwidth(mechanism: str, fpga_mhz: float, quad_words: int = QUAD_WORDS,
                      seed: int = DEFAULT_SEED) -> BandwidthResult:
    """Single-processor bandwidth of one mechanism (512 quad-words by default)."""
    if mechanism not in BANDWIDTH_MECHANISMS:
        raise ValueError(f"unknown bandwidth mechanism {mechanism!r}")
    kind = SystemKind.FPSOC if mechanism.endswith("_slow") or mechanism == "normal_reg" else SystemKind.DUET
    if mechanism == "normal_reg":
        kind = SystemKind.FPSOC
    system, _ = _build(kind, processors=1, fpga_mhz=fpga_mhz, soft_cache=False)
    adapter = system.adapter
    bytes_moved = quad_words * WORD_BYTES
    buffer_a = system.memory.allocate(bytes_moved, align=4096)
    buffer_b = system.memory.allocate(bytes_moved, align=4096)
    payload = _payload_words(quad_words, seed)

    def register_program(ctx):
        start = ctx.now
        for index in range(quad_words):
            yield from ctx.mmio_write(adapter.register_addr(REG_CMD), payload[index])
            yield from ctx.mmio_read(adapter.register_addr(REG_DATA_OUT))
        return ctx.now - start

    def efpga_pull_program(ctx):
        yield from ctx.mmio_write(adapter.register_addr(REG_PLAIN_A), buffer_a)
        yield from ctx.mmio_write(adapter.register_addr(REG_COUNT), quad_words)
        yield from ctx.compute(800)
        for index in range(quad_words):
            yield from ctx.store(buffer_a + index * WORD_BYTES, payload[index])
        start = ctx.now
        yield from ctx.mmio_write(adapter.register_addr(REG_CMD), CMD_PULL_BUFFER)
        yield from ctx.mmio_read(adapter.register_addr(REG_DATA_OUT))
        return ctx.now - start

    def cpu_pull_program(ctx):
        yield from ctx.mmio_write(adapter.register_addr(REG_PLAIN_B), buffer_b)
        yield from ctx.mmio_write(adapter.register_addr(REG_COUNT), quad_words)
        yield from ctx.compute(800)
        yield from ctx.mmio_write(adapter.register_addr(REG_CMD), CMD_PUSH_BUFFER)
        yield from ctx.mmio_read(adapter.register_addr(REG_DATA_OUT))
        start = ctx.now
        total = 0
        for index in range(quad_words):
            total += yield from ctx.load(buffer_b + index * WORD_BYTES)
        return ctx.now - start

    if mechanism in ("shadow_reg", "normal_reg"):
        program = register_program
    elif mechanism.startswith("efpga_pull"):
        program = efpga_pull_program
    else:
        program = cpu_pull_program

    elapsed, _ = system.run_single(program, max_events=120_000_000)
    return BandwidthResult(
        mechanism=mechanism, fpga_mhz=fpga_mhz, bytes_moved=bytes_moved, elapsed_ns=elapsed
    )


# --------------------------------------------------------------------------- #
# Fig. 11: multi-processor register scalability
# --------------------------------------------------------------------------- #
def measure_register_scalability(
    mechanism: str,
    operation: str,
    num_processors: int,
    fpga_mhz: float = 500.0,
    accesses_per_processor: int = 64,
    seed: int = DEFAULT_SEED,
) -> ScalabilityResult:
    """Per-processor bandwidth with ``num_processors`` hammering one register."""
    if mechanism not in ("shadow_reg", "normal_reg"):
        raise ValueError("scalability study covers shadow_reg and normal_reg only")
    if operation not in ("read", "write"):
        raise ValueError("operation must be 'read' or 'write'")
    kind = SystemKind.DUET if mechanism == "shadow_reg" else SystemKind.FPSOC
    system, _ = _build(kind, processors=num_processors, fpga_mhz=fpga_mhz, soft_cache=False)
    adapter = system.adapter
    target = adapter.register_addr(REG_PLAIN_A)
    payload = _payload_words(accesses_per_processor, seed)

    def program(ctx):
        start = ctx.now
        for index in range(accesses_per_processor):
            if operation == "write":
                yield from ctx.mmio_write(target, payload[index])
            else:
                yield from ctx.mmio_read(target)
        return ctx.now - start

    assignments = [(core, program, ()) for core in range(num_processors)]
    results, _ = system.run_programs(assignments, max_events=200_000_000)
    # Per-processor bandwidth: each access moves one 8-byte quad-word.
    bandwidths = []
    for elapsed in results:
        bytes_moved = accesses_per_processor * WORD_BYTES
        bandwidths.append((bytes_moved / (elapsed * 1e-9)) / 1e6 if elapsed > 0 else 0.0)
    mean_bw = sum(bandwidths) / len(bandwidths)
    return ScalabilityResult(
        mechanism=mechanism,
        operation=operation,
        num_processors=num_processors,
        per_processor_mbytes_per_s=mean_bw,
    )
