"""Tests for the ``repro.chaos`` reliability layer: deterministic fault
schedules (seeded, picklable, ``PYTHONHASHSEED``-independent), serve-level
failover (fabric kills, latent SEUs, control-NoC link cuts), the fleet
chaos control plane (spare promotion, replay, the recovery acceptance
pins), fault-aware NoC detour routing, and the consistent-hash ring's
arc-neighbour property that failover re-placement relies on."""

import dataclasses
import os
import pickle
import random
import subprocess
import sys

import pytest

from chaos_utils import (
    REPO_ROOT,
    aggregate_row,
    assert_conservation,
    empty_schedule,
    pinned_fault,
    run_chaos_fleet,
    run_chaos_serve,
    strip_chaos_columns,
)
from repro.chaos import (
    ChaosConfig,
    FAULT_KINDS,
    FaultSchedule,
    FaultSpec,
)
from repro.fleet import NodeSpec, TenantShare
from repro.fleet.experiments import FLEET_TENANTS
from repro.fleet.router import HashPlacement
from repro.noc import NocRouteError
from repro.noc.topology import make_topology
from repro.serve.experiments import run_serve


# --------------------------------------------------------------------------- #
# FaultSchedule: validation, determinism, stream independence
# --------------------------------------------------------------------------- #
def test_fault_spec_validation():
    with pytest.raises(ValueError, match="kind"):
        FaultSpec(kind="gamma_ray", rate_per_epoch=1.0)
    with pytest.raises(ValueError, match="scope"):
        FaultSpec(kind="seu", rate_per_epoch=1.0, scope="rack")
    with pytest.raises(ValueError, match="rate_per_epoch"):
        FaultSpec(kind="seu", rate_per_epoch=-1.0)
    with pytest.raises(ValueError, match="never fires"):
        FaultSpec(kind="seu")
    with pytest.raises(ValueError, match="negative"):
        FaultSpec(kind="link", rate_per_epoch=1.0, repair_ns=-1.0)


def test_schedule_events_are_sorted_in_window_and_deterministic():
    schedule = FaultSchedule(seed=11, specs=(
        FaultSpec(kind="seu", rate_per_epoch=3.0),
        FaultSpec(kind="fabric", rate_per_epoch=1.5),
        FaultSpec(kind="link", rate_per_epoch=1.0, repair_ns=50_000.0),
    ))
    for epoch in range(4):
        events = schedule.events(epoch=epoch, node_id=2, fabrics=3,
                                 epoch_ns=400_000.0)
        assert events == schedule.events(epoch=epoch, node_id=2, fabrics=3,
                                         epoch_ns=400_000.0)
        times = [event.time_ns for event in events]
        assert times == sorted(times)
        for event in events:
            assert 0.0 <= event.time_ns <= 400_000.0
            assert 0 <= event.fabric < 3
            assert event.kind in FAULT_KINDS


def test_schedule_streams_are_independent_per_spec_epoch_and_node():
    base = FaultSchedule(seed=5, specs=(
        FaultSpec(kind="seu", rate_per_epoch=2.0),))
    extended = FaultSchedule(seed=5, specs=(
        FaultSpec(kind="seu", rate_per_epoch=2.0),
        FaultSpec(kind="fabric", rate_per_epoch=2.0),
    ))
    # Appending a spec never perturbs the streams of the ones before it
    # (spec identity enters the stream seed, not tuple-wide state).
    for epoch in range(3):
        first = [e for e in extended.events(epoch, 0, 2, 400_000.0)
                 if e.spec_index == 0]
        assert tuple(first) == base.events(epoch, 0, 2, 400_000.0)
    # Different epochs and nodes draw from different streams.
    draws = {base.events(epoch, node, 2, 400_000.0)
             for epoch in range(4) for node in range(4)}
    assert len(draws) > 1


def test_schedule_pinned_events_fire_exactly_once():
    schedule = pinned_fault("fabric", at_epoch=2, at_node=1, scope="node")
    fired = [(epoch, node)
             for epoch in range(4) for node in range(3)
             if schedule.events(epoch, node, 2, 400_000.0)]
    assert fired == [(2, 1)]
    (event,) = schedule.events(2, 1, 2, 400_000.0)
    assert event.kind == "fabric" and event.scope == "node"


def test_schedule_rate_scales_mean_event_count():
    schedule = FaultSchedule(seed=3, specs=(
        FaultSpec(kind="seu", rate_per_epoch=0.5),
        FaultSpec(kind="seu", rate_per_epoch=4.0),
    ))
    counts = {0: 0, 1: 0}
    samples = 200
    for epoch in range(samples):
        for event in schedule.events(epoch, 0, 2, 400_000.0):
            counts[event.spec_index] += 1
    # Loose two-sided bounds: Poisson means 0.5 and 4.0 over 200 draws.
    assert 0.25 * samples < counts[0] < 0.9 * samples
    assert 3.0 * samples < counts[1] < 5.0 * samples


def test_schedule_validates_events_arguments():
    schedule = FaultSchedule(seed=1, specs=(
        FaultSpec(kind="seu", rate_per_epoch=1.0),))
    with pytest.raises(ValueError, match="fabric"):
        schedule.events(0, 0, 0, 400_000.0)
    with pytest.raises(ValueError, match="epoch_ns"):
        schedule.events(0, 0, 2, 0.0)


def test_schedule_pickle_round_trip_preserves_draws():
    schedule = FaultSchedule(seed=17, specs=(
        FaultSpec(kind="seu", rate_per_epoch=2.0),
        FaultSpec(kind="link", rate_per_epoch=1.0, repair_ns=30_000.0),
    ))
    clone = pickle.loads(pickle.dumps(schedule))
    assert clone == schedule
    assert clone.events(1, 2, 3, 400_000.0) == schedule.events(1, 2, 3, 400_000.0)


def test_fault_schedules_are_pythonhashseed_independent():
    """Stream seeds are CRC-32 + arithmetic mixing only, so interpreters
    with different string-hash randomization draw identical schedules."""
    script = (
        "import dataclasses, json, sys\n"
        "from repro.chaos import FaultSchedule, FaultSpec\n"
        "schedule = FaultSchedule(seed=2023, specs=(\n"
        "    FaultSpec(kind='seu', rate_per_epoch=2.0),\n"
        "    FaultSpec(kind='fabric', rate_per_epoch=1.0, scope='node'),\n"
        "    FaultSpec(kind='link', rate_per_epoch=0.5, repair_ns=60000.0),\n"
        "))\n"
        "events = [dataclasses.astuple(event)\n"
        "          for epoch in range(3) for node in range(3)\n"
        "          for event in schedule.events(epoch, node, 2, 400000.0)]\n"
        "json.dump(events, sys.stdout)\n"
    )
    outputs = []
    for hashseed in ("0", "1", "31337"):
        env = dict(os.environ,
                   PYTHONPATH=os.path.join(REPO_ROOT, "src"),
                   PYTHONHASHSEED=hashseed)
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True, env=env,
                              cwd=REPO_ROOT, timeout=300)
        assert proc.returncode == 0, proc.stderr
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1] == outputs[2]


def test_chaos_config_validation_and_enabled():
    config = ChaosConfig(empty_schedule().schedule)
    assert not config.enabled
    assert ChaosConfig(pinned_fault("fabric")).enabled


# --------------------------------------------------------------------------- #
# Serve-level failover
# --------------------------------------------------------------------------- #
def test_no_fault_chaos_serve_run_is_bit_identical_to_plain():
    """An armed-but-empty schedule must not move a single byte: the chaos
    hooks are default-off and fault-free goldens never change shape."""
    plain = run_serve(policy="fcfs", duration_us=400.0, num_fabrics=2)
    chaos = run_serve(policy="fcfs", duration_us=400.0, num_fabrics=2,
                      chaos=empty_schedule())
    assert chaos["rows"] == plain["rows"]
    assert chaos["chaos"]["faults_injected"] == 0


def test_fabric_kill_sheds_nothing_with_recovery():
    # 300 krps keeps both fabrics busy, so the pinned kill is guaranteed
    # to catch a request in flight.
    outcome = run_chaos_serve(ChaosConfig(pinned_fault("fabric")),
                              arrival_rate_krps=300.0)
    row = aggregate_row(outcome["rows"])
    assert_conservation(row)
    assert outcome["chaos"]["fabric_faults"] == 1
    assert outcome["chaos"]["dead_fabrics"] == 1
    # The in-flight request on the dead fabric was lost and replayed, not
    # dropped; recovery_time_ns tracks how long tenants took to recover.
    assert row["replayed"] == outcome["chaos"]["requests_lost"] > 0
    assert row["fault_shed"] == 0
    assert row["recovery_time_ns"] > 0.0


def test_fabric_kill_without_recovery_sheds_lost_requests():
    outcome = run_chaos_serve(
        ChaosConfig(pinned_fault("fabric"), recovery=False),
        arrival_rate_krps=300.0)
    row = aggregate_row(outcome["rows"])
    assert_conservation(row)
    assert row["replayed"] == 0
    assert row["fault_shed"] == outcome["chaos"]["requests_lost"] > 0


def test_node_scope_kill_flushes_queue_when_no_fabric_survives():
    outcome = run_chaos_serve(
        ChaosConfig(pinned_fault("fabric", scope="node")), num_fabrics=2)
    row = aggregate_row(outcome["rows"])
    assert_conservation(row)
    assert outcome["chaos"]["dead_fabrics"] == 2
    # Everything submitted after the kill is stranded, then flushed as shed.
    assert row["shed"] > 0


def test_seu_is_latent_until_reprogram_then_scrubbed():
    # seed=3 lands the upset before the accelerator's next reconfiguration,
    # so the latent corruption is guaranteed to trip the integrity check.
    outcome = run_chaos_serve(ChaosConfig(pinned_fault("seu", seed=3)),
                              policy="fcfs", num_fabrics=1)
    row = aggregate_row(outcome["rows"])
    assert_conservation(row)
    assert outcome["chaos"]["seu_scrubs"] >= 1
    assert row["replayed"] >= 1
    # Scrubbing restores the pristine image: the run completes traffic.
    assert row["completed"] > 0


def test_seu_without_recovery_poisons_the_accelerator():
    outcome = run_chaos_serve(
        ChaosConfig(pinned_fault("seu", seed=3), recovery=False),
        policy="fcfs", num_fabrics=1)
    row = aggregate_row(outcome["rows"])
    assert_conservation(row)
    scheduler = outcome["scheduler"]
    assert scheduler.poisoned
    assert row["fault_shed"] > 0


def test_link_cut_fails_unreachable_fabrics_and_repair_restores_them():
    outcome = run_chaos_serve(
        ChaosConfig(pinned_fault("link", repair_ns=50_000.0)),
        num_fabrics=2)
    row = aggregate_row(outcome["rows"])
    assert_conservation(row)
    assert outcome["chaos"]["link_faults"] == 1
    # The link repaired mid-run, so no fabric is dead at the end.
    assert outcome["chaos"]["dead_fabrics"] == 0
    assert row["completed"] > 0


def test_serve_chaos_rows_only_grow_columns_after_a_fault():
    plain = run_serve(policy="fcfs", duration_us=400.0, num_fabrics=2)
    chaos = run_chaos_serve(ChaosConfig(pinned_fault("fabric")))
    assert "fault_shed" not in aggregate_row(plain["rows"])
    faulted = aggregate_row(chaos["rows"])
    for column in ("fault_shed", "replayed", "recovery_time_ns"):
        assert column in faulted


# --------------------------------------------------------------------------- #
# Fleet chaos control plane
# --------------------------------------------------------------------------- #
def test_no_fault_chaos_fleet_matches_plain_rows_on_shared_columns():
    plain = run_chaos_fleet(chaos=None, spares=0)
    chaos = run_chaos_fleet(empty_schedule(), spares=0)
    assert [strip_chaos_columns(row) for row in chaos.rows] == plain.rows
    for row in chaos.rows:
        assert row["fault_shed"] == 0
        assert row["replayed"] == 0
        assert row["spare_promotions"] == 0
        assert row["dead_nodes"] == 0
    assert chaos.chaos["promotions"] == 0
    assert chaos.chaos["dead_nodes"] == []


def test_node_kill_promotes_spare_and_replays_lost_requests():
    schedule = pinned_fault("fabric", at_epoch=1, at_node=0, scope="node")
    outcome = run_chaos_fleet(ChaosConfig(schedule))
    row = aggregate_row(outcome.rows)
    assert_conservation(row)
    assert outcome.chaos["promotions"] == 1
    assert outcome.chaos["dead_nodes"] == [0]
    assert row["spare_promotions"] == 1
    # The promoted spare simulates as a live node in later epochs.
    promoted = [report for report in outcome.reports
                if report["node_id"] >= 1000 and not report.get("spare")]
    assert promoted
    assert row["replayed"] > 0


def test_node_kill_without_recovery_keeps_shedding():
    schedule = pinned_fault("fabric", at_epoch=1, at_node=0, scope="node")
    recovered = run_chaos_fleet(ChaosConfig(schedule))
    ablated = run_chaos_fleet(ChaosConfig(schedule, recovery=False))
    assert ablated.chaos["promotions"] == 0
    assert ablated.chaos["dead_nodes"] == []
    row = aggregate_row(ablated.rows)
    assert_conservation(row)
    assert row["fault_shed"] > 0
    # Recovery strictly beats the ablation on post-kill goodput.
    assert (sum(recovered.chaos["epoch_goodput"][2:])
            > sum(ablated.chaos["epoch_goodput"][2:]))


def test_chaos_fleet_serial_matches_process_executor():
    """Fault draws resolve in the parent as plain data, so which process
    simulates a node never changes what it sees — bit for bit."""
    schedule = FaultSchedule(seed=2023, specs=(
        FaultSpec(kind="fabric", at_epoch=1, at_node=0, scope="node"),
        FaultSpec(kind="seu", rate_per_epoch=1.0),
    ))
    serial = run_chaos_fleet(ChaosConfig(schedule), node_executor="serial")
    process = run_chaos_fleet(ChaosConfig(schedule), node_executor="process")
    assert serial.rows == process.rows
    assert serial.chaos == process.chaos


def test_spares_burn_cost_but_take_no_traffic():
    outcome = run_chaos_fleet(empty_schedule(), spares=1)
    spare_reports = [r for r in outcome.reports if r.get("spare")]
    assert len(spare_reports) == 3  # one per epoch
    for report in spare_reports:
        assert all(account["submitted"] == 0
                   for account in report["tenants"].values())
    assert aggregate_row(outcome.rows)["spare_us"] > 0.0


# --------------------------------------------------------------------------- #
# Acceptance pins (mirrors the registered `chaos` experiment)
# --------------------------------------------------------------------------- #
def test_pinned_failover_restores_goodput_within_two_epochs():
    """The headline pin: after losing a whole node in epoch 1, spare
    promotion + re-placement + replay restore cluster goodput to >= 0.8x
    its pre-fault level within two epochs."""
    from repro.chaos.experiments import chaos_cell

    rows = chaos_cell(fault_rate=0.0, policy="affinity", recovery=True)
    row = aggregate_row(rows)
    assert row["goodput_recovery"] >= 0.8
    assert row["spare_promotions"] == 1
    assert_conservation(row)


def test_chaos_experiment_is_registered_with_full_grid():
    from repro.api.registry import get_experiment

    spec = get_experiment("chaos")
    assert spec.num_cells() == 3 * 2 * 2  # fault_rate x policy x recovery
    assert "reliability" in spec.tags


def test_chaos_summary_reports_recovery_and_gain():
    from repro.chaos.experiments import chaos_summary

    def fake_row(fault_rate, policy, recovery, ratio, post_total):
        return {"tenant": "__all__", "fault_rate": fault_rate,
                "policy": policy, "recovery": recovery,
                "goodput_recovery": ratio, "post_fault_good_total": post_total}

    summary = chaos_summary([
        fake_row(0.0, "fcfs", True, 0.95, 300),
        fake_row(0.0, "fcfs", False, 0.60, 200),
    ])
    assert summary["goodput_recovery[fcfs@rate0]"] == 0.95
    assert summary["recovered_within_2_epochs[fcfs@rate0]"] is True
    assert summary["recovery_goodput_gain[fcfs@rate0]"] == 1.5
    assert summary["all_points_recovered"] is True


# --------------------------------------------------------------------------- #
# Consistent-hash ring: the arc-neighbour property failover relies on
# --------------------------------------------------------------------------- #
def test_hash_ring_growth_moves_only_arc_neighbour_tenants():
    """Adding a node to the consistent-hash ring only moves tenants *onto*
    the new node (the arcs it claims); no tenant hops between two old
    nodes.  Failover re-placement depends on this locality."""
    policy = HashPlacement()
    rng = random.Random(1234)
    tenant_pool = list(FLEET_TENANTS)
    for trial in range(20):
        count = rng.randint(2, 6)
        nodes = [NodeSpec(node_id=i, fabrics=rng.randint(1, 2))
                 for i in range(count)]
        shares = tuple(TenantShare(tenant=t, rate_rps=1000.0)
                       for t in tenant_pool)
        before = policy.place(shares, nodes)
        grown = nodes + [NodeSpec(node_id=count + rng.randint(0, 50))]
        after = policy.place(shares, grown)
        moved = {name for name in before if after[name] != before[name]}
        assert all(after[name] == grown[-1].node_id for name in moved)


def test_hash_ring_shrink_moves_only_the_dead_nodes_tenants():
    """Removing a node (the failover direction) strands only its own
    tenants; everyone else stays put."""
    policy = HashPlacement()
    shares = tuple(TenantShare(tenant=t, rate_rps=1000.0)
                   for t in FLEET_TENANTS)
    nodes = [NodeSpec(node_id=i) for i in range(5)]
    before = policy.place(shares, nodes)
    for dead in range(5):
        survivors = [n for n in nodes if n.node_id != dead]
        after = policy.place(shares, survivors)
        for name, node_id in before.items():
            if node_id != dead:
                assert after[name] == node_id


# --------------------------------------------------------------------------- #
# Fault-aware NoC routing (seeded sweeps; no hypothesis dependency)
# --------------------------------------------------------------------------- #
TOPOLOGY_CASES = (
    ("mesh", 4, 3),
    ("torus", 3, 3),
    ("ring", 8, 1),
)


def _random_link_faults(topology, rng, max_faults=3):
    """Fail up to ``max_faults`` random live links; returns the pairs."""
    failed = []
    for _ in range(rng.randint(1, max_faults)):
        node = rng.randrange(topology.node_count)
        neighbors = topology.neighbors(node)
        if not neighbors:
            continue
        other = rng.choice(neighbors)
        if (node, other) not in topology.dead_links:
            topology.fail_link(node, other)
            failed.append((node, other))
    return failed


@pytest.mark.parametrize("kind,width,height", TOPOLOGY_CASES)
def test_detour_routes_honour_the_routing_contract(kind, width, height):
    rng = random.Random(97)
    for trial in range(25):
        topology = make_topology(kind, width, height)
        _random_link_faults(topology, rng)
        dead = topology.dead_links
        for src in range(topology.node_count):
            reachable = topology.reachable_set(src)
            for dst in range(topology.node_count):
                if dst not in reachable:
                    assert not topology.reachable(src, dst)
                    with pytest.raises(NocRouteError):
                        topology.route(src, dst)
                    continue
                route = topology.route(src, dst)
                if src == dst:
                    assert route == ()
                    continue
                # Contiguous src -> dst over live neighbour links, at least
                # as long as the fault-free distance.
                assert route[0][0] == src and route[-1][1] == dst
                for (a, b), (c, _) in zip(route, route[1:]):
                    assert b == c
                for a, b in route:
                    assert b in topology.neighbors(a)
                    assert (a, b) not in dead
                assert len(route) >= topology.hop_count(src, dst)


@pytest.mark.parametrize("kind,width,height", TOPOLOGY_CASES)
def test_detour_routes_are_deterministic_across_instances(kind, width, height):
    rng = random.Random(31)
    for trial in range(10):
        first = make_topology(kind, width, height)
        faults = _random_link_faults(first, rng)
        second = make_topology(kind, width, height)
        for a, b in faults:
            second.fail_link(a, b)
        for src in range(first.node_count):
            for dst in range(first.node_count):
                if not first.reachable(src, dst):
                    continue
                assert first.route(src, dst) == second.route(src, dst)


@pytest.mark.parametrize("kind,width,height", TOPOLOGY_CASES)
def test_heal_link_restores_the_pristine_routes(kind, width, height):
    pristine = make_topology(kind, width, height)
    topology = make_topology(kind, width, height)
    rng = random.Random(58)
    faults = _random_link_faults(topology, rng)
    for a, b in faults:
        topology.heal_link(a, b)
    assert topology.dead_links == frozenset()
    for src in range(topology.node_count):
        for dst in range(topology.node_count):
            assert topology.route(src, dst) == pristine.route(src, dst)


def test_partition_raises_and_reachable_set_agrees():
    ring = make_topology("ring", 6)
    ring.fail_link(0, 1)
    assert ring.reachable(0, 3)  # the long way around survives
    ring.fail_link(3, 4)
    # Two cuts partition a ring: {1, 2, 3} vs {4, 5, 0}.
    assert ring.reachable_set(0) == {4, 5, 0}
    assert ring.reachable_set(1) == {1, 2, 3}
    with pytest.raises(NocRouteError, match="partition"):
        ring.route(0, 2)
    ring.heal_link(0, 1)
    assert ring.reachable(0, 2)
