"""Event-driven energy accounting: :class:`PowerConfig`, :class:`PowerProbe`
and :class:`EnergyModel`.

The paper's evaluation sweeps the eFPGA clock (20-500 MHz) against a fixed
1 GHz system clock precisely because frequency trades latency against
power; this module supplies the missing half of that trade-off.  The model
follows the standard CMOS decomposition:

* **Dynamic energy** is charged per *event* — cache access, directory
  lookup, DRAM row activation, NoC flit-hop, committed core cycle, active
  eFPGA cycle — counted by :class:`PowerProbe` hooks in the component hot
  paths, plus per-clock-cycle clock-tree energy derived arithmetically from
  elapsed time and the domain frequency.  Every on-chip dynamic charge
  scales with the square of the supply voltage, which itself follows a
  linear V/f curve (:meth:`PowerConfig.vdd_at`) — the reason DVFS saves
  energy at all.  DRAM row activations are the one exception: DRAM is
  off-chip on its own fixed supply, so they are charged flat.
* **Static (leakage) energy** is proportional to silicon area x time,
  using the Table I / Table II areas from :mod:`repro.platform.area`, and
  scales linearly with the supply voltage.

The probe hooks are *default-off*: every instrumented component carries a
``power_probe`` attribute that is ``None`` unless a system was built with
``PowerConfig(enabled=True)``, and each hook is a single attribute load
plus a ``None`` test.  With power modeling disabled the simulated timing is
bit-identical to an uninstrumented build (the hooks never touch the event
timeline either way) and the wall-clock cost is unmeasurable; with it
enabled the accounting stays out of the kernel entirely — energy is
integrated only at epoch boundaries (:meth:`EnergyModel.sample`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, TYPE_CHECKING

from repro.sim.stats import StatSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (platform -> power)
    from repro.platform.dolly import DollySystem
    from repro.sim.clock import ClockDomain


@dataclass
class PowerConfig:
    """Technology constants of the energy model (45 nm-ish defaults).

    ``enabled`` gates everything: a disabled config (the default) builds no
    :class:`EnergyModel` and leaves every ``power_probe`` hook ``None``, so
    the simulator behaves exactly as before this subsystem existed.

    The per-event energies are picojoules *at nominal voltage*; they are
    deliberately round, literature-plausible numbers (CACTI/DSENT order of
    magnitude), not calibrated silicon measurements — the evaluation uses
    them for *relative* comparisons (CPU_ONLY vs DUET vs FPSOC, governor vs
    governor), which is also how the paper treats its own area model.
    """

    enabled: bool = False

    # -- voltage / frequency curve ------------------------------------- #
    #: Supply voltage at (and above) ``nominal_mhz``.
    vdd_nominal_v: float = 1.0
    #: Supply floor reached as the clock approaches zero.
    vdd_min_v: float = 0.6
    #: Frequency at which ``vdd_nominal_v`` applies (the 1 GHz system clock).
    nominal_mhz: float = 1000.0

    # -- dynamic energy per event (pJ at nominal voltage) ---------------- #
    core_cycle_pj: float = 1.8          # one committed in-order pipeline cycle
    cache_access_pj: float = 4.0        # one L1+L2 private-cache access
    directory_lookup_pj: float = 2.5    # one LLC/directory request lookup
    dram_activation_pj: float = 40.0    # one DRAM row activation (LLC miss)
    noc_flit_hop_pj: float = 0.8        # one flit crossing one link
    fpga_active_cycle_pj: float = 6.0   # one eFPGA cycle of LUT toggling
    #: Clock-tree energy per clock cycle, busy or idle (per domain).
    sys_clock_tree_pj: float = 0.9      # per system-clock cycle per tile
    fpga_clock_tree_pj: float = 1.6     # per eFPGA-clock cycle

    # -- static power ---------------------------------------------------- #
    #: Leakage power density at nominal voltage (mW per mm^2 of silicon).
    leakage_mw_per_mm2: float = 0.12

    #: Record per-epoch power/frequency traces into ``EnergyModel.stats``.
    trace: bool = True

    def __post_init__(self) -> None:
        if self.nominal_mhz <= 0:
            raise ValueError(f"nominal_mhz must be positive, got {self.nominal_mhz}")
        if self.vdd_nominal_v <= 0 or self.vdd_min_v <= 0:
            raise ValueError("supply voltages must be positive")
        if self.vdd_min_v > self.vdd_nominal_v:
            raise ValueError(
                f"vdd_min_v ({self.vdd_min_v}) cannot exceed "
                f"vdd_nominal_v ({self.vdd_nominal_v})"
            )
        if self.leakage_mw_per_mm2 < 0:
            raise ValueError("leakage density cannot be negative")

    # ------------------------------------------------------------------ #
    # Voltage / frequency scaling
    # ------------------------------------------------------------------ #
    def vdd_at(self, freq_mhz: float) -> float:
        """Supply voltage required for ``freq_mhz`` (linear V/f, clamped)."""
        fraction = min(1.0, max(0.0, freq_mhz / self.nominal_mhz))
        return self.vdd_min_v + (self.vdd_nominal_v - self.vdd_min_v) * fraction

    def dynamic_scale(self, freq_mhz: float) -> float:
        """Dynamic-energy multiplier at ``freq_mhz`` (``(V/Vnom)^2``)."""
        ratio = self.vdd_at(freq_mhz) / self.vdd_nominal_v
        return ratio * ratio

    def static_scale(self, freq_mhz: float) -> float:
        """Leakage-power multiplier at ``freq_mhz`` (``V/Vnom``)."""
        return self.vdd_at(freq_mhz) / self.vdd_nominal_v


class PowerProbe:
    """The shared event-counter bundle the component hooks increment.

    One probe serves a whole system: hooks do ``probe.field += n`` with a
    plain slotted attribute, no dict lookup, no allocation.  The
    :class:`EnergyModel` reads (and diffs) the fields at epoch boundaries.
    """

    __slots__ = (
        "core_active_cycles",
        "cache_accesses",
        "directory_lookups",
        "dram_activations",
        "noc_flit_hops",
        "fpga_active_cycles",
    )

    def __init__(self) -> None:
        self.core_active_cycles = 0
        self.cache_accesses = 0
        self.directory_lookups = 0
        self.dram_activations = 0
        self.noc_flit_hops = 0
        self.fpga_active_cycles = 0

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"<PowerProbe {fields}>"


@dataclass
class EpochSample:
    """What :meth:`EnergyModel.sample` returns for one accounting epoch."""

    t_start_ns: float
    t_end_ns: float
    #: Per-category dynamic energy plus ``static`` leakage, in picojoules.
    energy_pj: Dict[str, float]
    total_pj: float
    fpga_freq_mhz: Optional[float]
    fpga_active_cycles: int
    #: Active eFPGA cycles / elapsed eFPGA cycles (0.0 with no eFPGA).
    fpga_utilization: float

    @property
    def elapsed_ns(self) -> float:
        return self.t_end_ns - self.t_start_ns

    @property
    def avg_power_mw(self) -> float:
        """Average power over the epoch (pJ / ns == mW)."""
        elapsed = self.elapsed_ns
        return self.total_pj / elapsed if elapsed > 0 else 0.0


class EnergyModel:
    """Integrates probe counters into per-domain energy, epoch by epoch.

    Lifecycle: :func:`repro.platform.dolly.build_system` constructs one when
    ``config.power.enabled`` and calls :meth:`attach_system`, which installs
    the shared :class:`PowerProbe` on every instrumented component.
    Accelerator installation later reports the synthesized eFPGA area
    through :meth:`set_efpga_area` (before that the eFPGA contributes no
    leakage — there is no programmed silicon to leak).  :meth:`sample`
    closes the current epoch: it diffs the probe against the last snapshot,
    converts counts to picojoules at the *current* domain voltages, adds
    clock-tree and leakage energy for the elapsed wall (simulated) time,
    accumulates the running totals and (optionally) appends to the
    ``power_mw`` / ``fpga_mhz`` / ``energy_pj`` traces in :attr:`stats`.

    Governors call :meth:`sample` once per epoch *before* retuning, so each
    epoch is integrated at the frequency that actually applied to it.
    """

    def __init__(self, config: PowerConfig, sim, name: str = "energy") -> None:
        # Imported here, not at module level: platform.config imports this
        # module for PowerConfig, so importing repro.platform at import time
        # would be circular.
        from repro.platform.area import AreaModel

        self.config = config
        self.sim = sim
        self.name = name
        self.probe = PowerProbe()
        self.stats = StatSet(f"{name}.stats")
        self.area_model = AreaModel()
        self.sys_domain: Optional["ClockDomain"] = None
        self.fpga_domain: Optional["ClockDomain"] = None
        self.num_tiles = 0
        #: Leakage areas (mm^2) by domain; eFPGA area arrives at install time.
        self.core_area_mm2 = 0.0
        self.adapter_area_mm2 = 0.0
        self.efpga_area_mm2 = 0.0
        self.totals_pj: Dict[str, float] = {}
        self.total_pj = 0.0
        self.epochs = 0
        self._last_time_ns = 0.0
        self._last_counts = self.probe.snapshot()
        # run_programs() marks its measured window through these.
        self._window_start_pj: Optional[float] = None
        self._window_start_breakdown: Dict[str, float] = {}
        self.last_window_pj: Optional[float] = None
        self.last_window_breakdown: Dict[str, float] = {}
        self.last_window_start_ns: Optional[float] = None
        self.last_window_end_ns: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #
    def attach_system(self, system: "DollySystem") -> None:
        """Install the probe on every instrumented component of ``system``."""
        probe = self.probe
        self.sys_domain = system.sys_clock
        self.num_tiles = system.config.num_tiles
        config = system.config
        self.core_area_mm2 = self.area_model.processor_only_area(config.num_processors)
        if config.kind.has_fpga:
            self.adapter_area_mm2 = self.area_model.adapter_area(config.num_memory_hubs)
        system.network.power_probe = probe
        system.memory.power_probe = probe
        for directory in system.directories:
            directory.power_probe = probe
        for core in system.cores:
            core.power_probe = probe
            core.cache.power_probe = probe
        adapter = system.adapter
        if adapter is not None:
            self.fpga_domain = adapter.fpga_domain
            for hub in adapter.memory_hubs:
                # Duet Proxy Caches are PrivateCacheAgent subclasses, so the
                # cache-access hook covers them; FPSoC slow caches likewise.
                hub.cache.power_probe = probe

    def attach_accelerator(self, accelerator, efpga_area_mm2: float) -> None:
        """Hook the installed accelerator and record the eFPGA silicon area."""
        accelerator.power_probe = self.probe
        self.set_efpga_area(efpga_area_mm2)

    def set_efpga_area(self, area_mm2: float) -> None:
        self.efpga_area_mm2 = area_mm2

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    def sample(self) -> EpochSample:
        """Close the epoch ending now; returns its :class:`EpochSample`."""
        config = self.config
        now = self.sim.now
        t_start = self._last_time_ns
        elapsed = now - t_start
        counts = self.probe.snapshot()
        last = self._last_counts
        delta = {name: counts[name] - last[name] for name in counts}

        sys_freq = self.sys_domain.freq_mhz if self.sys_domain is not None else config.nominal_mhz
        fpga_freq = self.fpga_domain.freq_mhz if self.fpga_domain is not None else None
        sys_dyn = config.dynamic_scale(sys_freq)
        fpga_dyn = config.dynamic_scale(fpga_freq) if fpga_freq is not None else 0.0

        energy: Dict[str, float] = {
            "core": delta["core_active_cycles"] * config.core_cycle_pj * sys_dyn,
            "cache": delta["cache_accesses"] * config.cache_access_pj * sys_dyn,
            "directory": delta["directory_lookups"] * config.directory_lookup_pj * sys_dyn,
            # DRAM is off-chip on its own supply: no on-chip voltage scaling.
            "dram": delta["dram_activations"] * config.dram_activation_pj,
            "noc": delta["noc_flit_hops"] * config.noc_flit_hop_pj * sys_dyn,
            "fpga": delta["fpga_active_cycles"] * config.fpga_active_cycle_pj * fpga_dyn,
        }
        # Clock trees toggle every cycle, busy or idle: cycles = ns * GHz.
        energy["clock"] = (
            elapsed * (sys_freq / 1000.0) * config.sys_clock_tree_pj
            * self.num_tiles * sys_dyn
        )
        fpga_util = 0.0
        if fpga_freq is not None and elapsed > 0:
            fpga_cycles = elapsed * (fpga_freq / 1000.0)
            energy["clock"] += fpga_cycles * config.fpga_clock_tree_pj * fpga_dyn
            if fpga_cycles > 0:
                fpga_util = min(1.0, delta["fpga_active_cycles"] / fpga_cycles)
        # Leakage: power density x area x time, linear in voltage.
        leak_area_sys = self.core_area_mm2 + self.adapter_area_mm2
        static_mw = leak_area_sys * config.leakage_mw_per_mm2 * config.static_scale(sys_freq)
        if fpga_freq is not None:
            static_mw += (self.efpga_area_mm2 * config.leakage_mw_per_mm2
                          * config.static_scale(fpga_freq))
        energy["static"] = static_mw * elapsed  # mW x ns == pJ

        total = 0.0
        totals = self.totals_pj
        for category, pj in energy.items():
            total += pj
            totals[category] = totals.get(category, 0.0) + pj
        self.total_pj += total
        self.epochs += 1
        self._last_time_ns = now
        self._last_counts = counts

        sample = EpochSample(
            t_start_ns=t_start,
            t_end_ns=now,
            energy_pj=energy,
            total_pj=total,
            fpga_freq_mhz=fpga_freq,
            fpga_active_cycles=delta["fpga_active_cycles"],
            fpga_utilization=fpga_util,
        )
        if config.trace and elapsed > 0:
            stats = self.stats
            stats.series("power_mw").record(now, sample.avg_power_mw)
            stats.series("energy_pj").record(now, total)
            if fpga_freq is not None:
                stats.series("fpga_mhz").record(now, fpga_freq)
        return sample

    # ------------------------------------------------------------------ #
    # Measured-window bookkeeping (driven by DollySystem.run_programs)
    # ------------------------------------------------------------------ #
    def begin_window(self) -> None:
        """Flush accounting and mark the start of a measured run window."""
        self.sample()
        self._window_start_pj = self.total_pj
        self._window_start_breakdown = dict(self.totals_pj)
        self.last_window_start_ns = self.sim.now

    def end_window(self) -> None:
        """Close the measured window; totals land in ``last_window_*``."""
        self.sample()
        start = self._window_start_pj
        if start is None:
            raise RuntimeError(f"{self.name}: end_window() without begin_window()")
        self.last_window_pj = self.total_pj - start
        start_breakdown = self._window_start_breakdown
        self.last_window_breakdown = {
            category: self.totals_pj[category] - start_breakdown.get(category, 0.0)
            for category in self.totals_pj
        }
        self.last_window_end_ns = self.sim.now
        self._window_start_pj = None

    def window_series(self, name: str) -> "TimeSeries":  # noqa: F821
        """The samples of trace ``name`` that fall inside the last window.

        Returns a fresh :class:`~repro.sim.stats.TimeSeries` restricted to
        ``(start, end]`` of the last measured window — epochs closed during
        setup before the window or during the post-run drain are excluded,
        keeping trace-derived statistics consistent with the window-scoped
        energy totals.
        """
        from repro.sim.stats import TimeSeries

        source = self.stats.series(name)
        start = self.last_window_start_ns
        end = self.last_window_end_ns
        clipped = TimeSeries(name)
        if start is None or end is None:
            return clipped
        for time_ns, value in zip(source.times, source.values):
            if start < time_ns <= end:
                clipped.record(time_ns, value)
        return clipped

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    @property
    def last_window_avg_power_mw(self) -> float:
        """Average power over the last measured window (pJ / ns == mW)."""
        if (self.last_window_pj is None or self.last_window_start_ns is None
                or self.last_window_end_ns is None):
            return 0.0
        duration = self.last_window_end_ns - self.last_window_start_ns
        return self.last_window_pj / duration if duration > 0 else 0.0

    @property
    def total_nj(self) -> float:
        return self.total_pj / 1000.0

    def breakdown_nj(self) -> Dict[str, float]:
        return {category: pj / 1000.0 for category, pj in sorted(self.totals_pj.items())}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EnergyModel {self.name} total={self.total_nj:.1f}nJ epochs={self.epochs}>"
