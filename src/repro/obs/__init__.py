"""Observability: request-lifecycle tracing, unified metrics, decomposition.

The cross-cutting layer the serving stack reports through:

* :mod:`repro.obs.trace` — a slotted, allocation-light :class:`Tracer`
  recording spans/instants on the integer-ps sim timeline, exportable as
  deterministic Chrome trace-event JSON (Perfetto-loadable);
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`, counters/gauges/
  histograms over :mod:`repro.sim.stats` with a picklable
  :class:`MetricsSnapshot` that merges deterministically across the
  fleet process pool;
* :mod:`repro.obs.decompose` — per-request stage attribution
  (queue/program/retune/service/blackout) and the empirical-CDF helper
  behind ``ResultSet.cdf``;
* :mod:`repro.obs.experiments` — the ``latency_decomposition`` cell and
  the ``python -m repro trace`` drivers.

Every hook in the stack is behind ``if tracer is not None`` — with no
tracer attached, runs are bit-identical to a build without this package
(pinned in ``tests/test_obs.py``).  See ``docs/observability.md``.
"""

from repro.obs.decompose import (ALL_TENANTS, STAGES, cdf_points,
                                 decompose_rows, request_stages)
from repro.obs.metrics import (CounterGroup, Gauge, MetricsRegistry,
                               MetricsSnapshot)
from repro.obs.trace import Instant, Span, Tracer

__all__ = [
    "ALL_TENANTS",
    "STAGES",
    "CounterGroup",
    "Gauge",
    "Instant",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Span",
    "Tracer",
    "cdf_points",
    "decompose_rows",
    "request_stages",
]
