"""The Soft Register Interface with Shadow Registers.

This module implements both halves of the Control Hub's register machinery:

* the **fast-domain side** that the processors reach via MMIO — for shadowed
  registers it responds without ever waiting on the eFPGA (the point of
  Sec. II-F), while normal soft registers are forwarded into the slow clock
  domain and the response crosses back;
* the **FPGA-domain side** (:class:`FpgaRegisterView`) handed to the soft
  accelerator, through which it reads parameters, pops FPGA-bound FIFOs,
  pushes CPU-bound results or tokens, and can claim a normal register to use
  it as a software/hardware barrier.

Both sides communicate exclusively through :class:`~repro.sim.AsyncFifo`
instances, so every value that crosses the clock boundary pays the same
Gray-coded synchronizer latency the RTL would.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

from repro.core.exceptions import ExceptionHandler
from repro.core.registers import RegisterKind, RegisterLayout, RegisterSpec
from repro.fpga.accelerator import RegisterFileView
from repro.sim import AsyncFifo, ClockDomain, Event, Simulator, StatSet

#: Value returned for reads of deactivated or unmapped registers ("bogus
#: data" per Sec. II-E, so the system is never halted).
BOGUS_VALUE = 0xBAD0BEEF
#: Values returned by token-FIFO reads.
TOKEN_AVAILABLE = 1
TOKEN_EMPTY = 0


class _RegisterState:
    """Per-register runtime state on both sides of the clock boundary."""

    def __init__(self, sim: Simulator, spec: RegisterSpec,
                 sys_domain: ClockDomain, fpga_domain: ClockDomain) -> None:
        self.spec = spec
        self.fast_value = 0
        self.fpga_value = 0
        capacity = max(spec.depth, 8)
        self.to_fpga = AsyncFifo(sim, sys_domain, fpga_domain, capacity=capacity,
                                 name=f"reg{spec.index}.to_fpga")
        self.from_fpga = AsyncFifo(sim, fpga_domain, sys_domain, capacity=capacity,
                                   name=f"reg{spec.index}.from_fpga")
        # Fast-domain staging of CPU-bound data / tokens (filled by the drain
        # process popping ``from_fpga``).
        self.cpu_bound: Deque[int] = deque()
        self.tokens = 0
        # Processor reads parked on an empty CPU-bound FIFO.
        self.read_waiters: Deque[Event] = deque()
        # True when the accelerator services this normal register itself
        # (barrier semantics) instead of the default register logic.
        self.claimed = False


class SoftRegisterInterface:
    """Fast-domain register file plus the default FPGA-side register logic."""

    def __init__(
        self,
        sim: Simulator,
        sys_domain: ClockDomain,
        fpga_domain: ClockDomain,
        exceptions: ExceptionHandler,
        name: str = "softreg",
        downgrade_shadow: bool = False,
    ) -> None:
        self.sim = sim
        self.sys_domain = sys_domain
        self.fpga_domain = fpga_domain
        self.exceptions = exceptions
        self.name = name
        self.downgrade_shadow = downgrade_shadow
        self.active = True
        self._registers: Dict[int, _RegisterState] = {}
        self.layout: Optional[RegisterLayout] = None
        self.stats = StatSet(f"{name}.stats")
        self.fpga_view = FpgaRegisterView(self)
        self._pending_normal: Dict[int, Event] = {}
        self._normal_tokens = itertools.count()
        self._drain_kick: Optional[Event] = None
        self._server_kick: Optional[Event] = None
        self._processes_started = False
        # Dedicated round-trip path used to model non-shadowed (normal)
        # register accesses: the FPSoC baseline pays this for every access.
        self._ping_to_fpga = AsyncFifo(sim, sys_domain, fpga_domain, capacity=32,
                                       name=f"{name}.ping")
        self._pong_from_fpga = AsyncFifo(sim, fpga_domain, sys_domain, capacity=32,
                                         name=f"{name}.pong")
        self._pending_pings: Dict[int, Event] = {}
        self._ping_tokens = itertools.count()
        sim.process(self._ping_server(), name=f"{name}.ping-server")
        sim.process(self._pong_drain(), name=f"{name}.pong-drain")

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    def configure(self, layout: RegisterLayout) -> None:
        """Install an accelerator's register layout (at programming time).

        When ``downgrade_shadow`` is set (the FPSoC baseline), the register
        *kinds* — and therefore the accelerator-side behaviour — are kept,
        but every processor access pays the round trip into the slow clock
        domain instead of being answered by a fast-domain Shadow Register.
        """
        self.layout = layout
        self._registers = {
            spec.index: _RegisterState(self.sim, spec, self.sys_domain, self.fpga_domain)
            for spec in layout
        }
        if not self._processes_started:
            self.sim.process(self._drain_from_fpga(), name=f"{self.name}.drain")
            self.sim.process(self._fpga_default_server(), name=f"{self.name}.fpga-server")
            self._processes_started = True

    def set_active(self, active: bool) -> None:
        self.active = active

    def _state(self, index: int) -> Optional[_RegisterState]:
        return self._registers.get(index)

    def spec_of(self, index: int) -> Optional[RegisterSpec]:
        state = self._state(index)
        return state.spec if state else None

    # ------------------------------------------------------------------ #
    # Fast-domain (processor MMIO) side
    # ------------------------------------------------------------------ #
    def cpu_write(self, index: int, value: int):
        """Handle a processor MMIO write; returns when it can be acknowledged."""
        state = self._state(index)
        if state is None or not self.active:
            self.stats.counter("bogus_writes").increment()
            yield self.sys_domain.wait_cycles(1)
            return None
        kind = state.spec.kind
        self.stats.counter(f"write_{kind.value}").increment()
        if kind is not RegisterKind.NORMAL and self.downgrade_shadow:
            yield from self._slow_roundtrip()
        if kind is RegisterKind.NORMAL:
            yield from self._normal_access(state, op="normal_write", value=value)
        elif kind is RegisterKind.PLAIN:
            yield self.sys_domain.wait_cycles(1)
            state.fast_value = value
            # Forward into the eFPGA without waiting for it (Fig. 6b).
            self._push_to_fpga(state, ("write", value))
        elif kind is RegisterKind.FPGA_BOUND_FIFO:
            yield self.sys_domain.wait_cycles(1)
            while not state.to_fpga.try_put(("push", value)):
                # Backpressure: the FIFO toward the eFPGA is full.
                yield self.sys_domain.wait_cycles(1)
            self._kick(self._server_kick)
        else:
            # Writing a CPU-bound or token FIFO from the CPU side is reserved;
            # acknowledge immediately so I/O ordering is preserved.
            yield self.sys_domain.wait_cycles(1)
        return None

    def cpu_read(self, index: int):
        """Handle a processor MMIO read; returns the value to send back."""
        state = self._state(index)
        if state is None or not self.active:
            self.stats.counter("bogus_reads").increment()
            yield self.sys_domain.wait_cycles(1)
            return BOGUS_VALUE
        kind = state.spec.kind
        self.stats.counter(f"read_{kind.value}").increment()
        if kind is not RegisterKind.NORMAL and self.downgrade_shadow:
            yield from self._slow_roundtrip()
        if kind is RegisterKind.NORMAL:
            value = yield from self._normal_access(state, op="normal_read")
            return value
        if kind is RegisterKind.PLAIN:
            yield self.sys_domain.wait_cycles(1)
            return state.fast_value
        if kind is RegisterKind.CPU_BOUND_FIFO:
            yield self.sys_domain.wait_cycles(1)
            if state.cpu_bound:
                return state.cpu_bound.popleft()
            waiter = self.sim.event(f"{self.name}.r{index}.wait")
            state.read_waiters.append(waiter)
            value = yield from self.exceptions.guard(waiter)
            if value is None and self.exceptions.has_error:
                return BOGUS_VALUE
            return value
        if kind is RegisterKind.TOKEN_FIFO:
            yield self.sys_domain.wait_cycles(1)
            if state.tokens > 0:
                state.tokens -= 1
                return TOKEN_AVAILABLE
            return TOKEN_EMPTY
        # FPGA-bound FIFOs read back their current occupancy.
        yield self.sys_domain.wait_cycles(1)
        return len(state.to_fpga)

    def _normal_access(self, state: _RegisterState, op: str, value: int = 0):
        """Round-trip a normal soft register access through the eFPGA."""
        token = next(self._normal_tokens)
        done = self.sim.event(f"{self.name}.normal#{token}")
        self._pending_normal[token] = done
        self._push_to_fpga(state, (op, value, token))
        result = yield from self.exceptions.guard(done)
        self._pending_normal.pop(token, None)
        if result is None and self.exceptions.has_error:
            return BOGUS_VALUE
        return result

    def _slow_roundtrip(self):
        """Pay a full fast->slow->fast crossing (non-shadowed register access)."""
        token = next(self._ping_tokens)
        done = self.sim.event(f"{self.name}.ping#{token}")
        self._pending_pings[token] = done
        self._ping_to_fpga.try_put(token)
        result = yield from self.exceptions.guard(done)
        self._pending_pings.pop(token, None)
        return result

    def _ping_server(self):
        """eFPGA-side logic answering non-shadowed register accesses."""
        while True:
            token = yield from self._ping_to_fpga.get()
            yield self.fpga_domain.wait_cycles(1)
            self._pong_from_fpga.try_put(token)

    def _pong_drain(self):
        while True:
            token = yield from self._pong_from_fpga.get()
            pending = self._pending_pings.pop(token, None)
            if pending is not None and not pending.triggered:
                pending.succeed(token)

    def _push_to_fpga(self, state: _RegisterState, item: Tuple) -> None:
        if not state.to_fpga.try_put(item):
            # The to-FPGA FIFO overflowed; hardware would drop or stall — the
            # model drops and counts it so tests can detect misconfiguration.
            self.stats.counter("to_fpga_overflow").increment()
            return
        self._kick(self._server_kick)

    # ------------------------------------------------------------------ #
    # Kick-driven service processes
    # ------------------------------------------------------------------ #
    def _kick(self, event: Optional[Event]) -> None:
        if event is not None and not event.triggered:
            event.succeed()

    def kick_drain(self) -> None:
        """Called from the FPGA-domain side after pushing toward the CPU."""
        self._kick(self._drain_kick)

    def _drain_from_fpga(self):
        """Fast-domain process applying accelerator pushes to the fast side."""
        while True:
            self._drain_kick = self.sim.event(f"{self.name}.drain-kick")
            progressed = True
            while progressed:
                progressed = False
                for index, state in list(self._registers.items()):
                    if len(state.from_fpga) == 0:
                        continue
                    item = yield from state.from_fpga.get()
                    yield self.sys_domain.wait_cycles(1)
                    self._apply_from_fpga(state, item)
                    progressed = True
            yield self._drain_kick

    def _apply_from_fpga(self, state: _RegisterState, item: Tuple) -> None:
        action, *rest = item
        if action == "sync":
            state.fast_value = rest[0]
        elif action == "push":
            state.cpu_bound.append(rest[0])
            if state.read_waiters and state.cpu_bound:
                state.read_waiters.popleft().succeed(state.cpu_bound.popleft())
        elif action == "token":
            state.tokens += 1
        elif action == "normal_done":
            token, value = rest
            pending = self._pending_normal.pop(token, None)
            if pending is not None and not pending.triggered:
                pending.succeed(value)
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"{self.name}: unknown from-FPGA action {action!r}")

    def _fpga_default_server(self):
        """Default eFPGA-side register logic for PLAIN and unclaimed NORMAL registers."""
        while True:
            self._server_kick = self.sim.event(f"{self.name}.server-kick")
            progressed = True
            while progressed:
                progressed = False
                for index, state in list(self._registers.items()):
                    kind = state.spec.kind
                    if kind is RegisterKind.FPGA_BOUND_FIFO:
                        continue  # consumed by the accelerator via pop_request
                    if kind is RegisterKind.NORMAL and state.claimed:
                        continue  # consumed by the accelerator via wait_cpu_read
                    if len(state.to_fpga) == 0:
                        continue
                    # get() waits for the item to cross the clock boundary.
                    item = yield from state.to_fpga.get()
                    yield self.fpga_domain.wait_cycles(1)
                    self._apply_to_fpga_default(state, item)
                    progressed = True
            yield self._server_kick

    def _apply_to_fpga_default(self, state: _RegisterState, item: Tuple) -> None:
        action, *rest = item
        if action in ("write", "push"):
            state.fpga_value = rest[0]
        elif action == "normal_write":
            value, token = rest
            state.fpga_value = value
            state.from_fpga.try_put(("normal_done", token, value))
            self.kick_drain()
        elif action == "normal_read":
            _, token = rest
            state.from_fpga.try_put(("normal_done", token, state.fpga_value))
            self.kick_drain()
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"{self.name}: unknown to-FPGA action {action!r}")


class FpgaRegisterView(RegisterFileView):
    """What the soft accelerator sees of the register interface."""

    def __init__(self, interface: SoftRegisterInterface) -> None:
        self._interface = interface

    @property
    def _fpga_domain(self) -> ClockDomain:
        return self._interface.fpga_domain

    def _state(self, index: int) -> _RegisterState:
        state = self._interface._state(index)
        if state is None:
            raise KeyError(f"register {index} is not configured")
        return state

    # -- values ---------------------------------------------------------- #
    def read(self, index: int):
        """Read the FPGA-side value of a PLAIN or NORMAL register."""
        state = self._state(index)
        yield self._fpga_domain.wait_cycles(1)
        return state.fpga_value

    def write(self, index: int, value: int):
        """Write the FPGA-side value; PLAIN registers also sync to the CPU side."""
        state = self._state(index)
        yield self._fpga_domain.wait_cycles(1)
        state.fpga_value = value
        if state.spec.kind is RegisterKind.PLAIN:
            state.from_fpga.try_put(("sync", value))
            self._interface.kick_drain()
        return None

    # -- FIFOs ------------------------------------------------------------ #
    def pop_request(self, index: int):
        """Blocking pop of an FPGA-bound FIFO (processor writes), in order."""
        state = self._state(index)
        item = yield from state.to_fpga.get()
        action, *rest = item
        if action != "push":  # pragma: no cover - defensive
            raise RuntimeError(f"unexpected item {item!r} in FPGA-bound FIFO {index}")
        return rest[0]

    def try_pop_request(self, index: int) -> Optional[int]:
        """Non-blocking variant of :meth:`pop_request` (None when empty)."""
        state = self._state(index)
        if state.to_fpga.peek_visible() is None:
            return None
        item = state.to_fpga._items.popleft()[1]
        state.to_fpga.total_popped += 1
        return item[1]

    def push_response(self, index: int, value: int = 0):
        """Push into a CPU-bound or token FIFO."""
        state = self._state(index)
        kind = state.spec.kind
        if kind is RegisterKind.TOKEN_FIFO:
            yield from state.from_fpga.put(("token", value))
        else:
            yield from state.from_fpga.put(("push", value))
        self._interface.kick_drain()
        return None

    # -- normal-register barrier reads ------------------------------------ #
    def claim(self, index: int) -> None:
        """Take over servicing of normal register ``index`` (barrier use)."""
        self._state(index).claimed = True

    def wait_cpu_read(self, index: int):
        """Block until a processor reads normal register ``index``.

        Returns a completion callable; the accelerator acknowledges the read
        (unblocking the processor) by calling it with the response value.
        This models the "soft register as a barrier" idiom of Sec. II-F and
        the eFPGA-pull hand-off of Sec. V-C.
        """
        state = self._state(index)
        state.claimed = True
        while True:
            item = yield from state.to_fpga.get()
            action, *rest = item
            if action == "normal_read":
                _, token = rest
                interface = self._interface

                def _complete(value: int = 0, _token=token, _state=state) -> None:
                    _state.from_fpga.try_put(("normal_done", _token, value))
                    interface.kick_drain()

                return _complete
            if action == "normal_write":
                value, token = rest
                state.fpga_value = value
                state.from_fpga.try_put(("normal_done", token, value))
                self._interface.kick_drain()
            elif action in ("write", "push"):
                state.fpga_value = rest[0]
