"""Fault injection against a live :class:`~repro.serve.scheduler.FabricScheduler`.

The :class:`FaultInjector` arms one simulation process per
:class:`~repro.chaos.schedule.FaultEvent`: the process sleeps until the
event's injection instant, applies the fault through the scheduler's chaos
APIs, and — for transient faults — sleeps ``repair_ns`` longer and undoes
it.  All randomness was already resolved when the events were drawn, so the
injector itself is completely deterministic: the same event tuple against
the same scheduler produces the same trace, whether the enclosing run is
serial or inside a ``ProcessPoolExecutor`` worker.

What each kind does:

* ``fabric`` — :meth:`FabricScheduler.fail_fabric` (``scope="node"`` kills
  every fabric).  With ``repair_ns > 0`` the fabric heals after that long,
  configuration memory blank (the next request pays a full reprogram).
* ``seu`` — :meth:`FabricScheduler.corrupt_image` flips bits in one stored
  accelerator image.  Latent: nothing happens until a fabric next programs
  that image and the engine's integrity check trips; then recovery either
  scrubs + replays (``recovery=True``) or poisons the accelerator.
* ``link`` — cut one control-NoC link; fabrics partitioned away from the
  control tile fail, and heal when the link repairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from repro.chaos.schedule import FaultEvent, FaultSchedule
from repro.sim import Delay


@dataclass(frozen=True)
class ChaosConfig:
    """Everything a run needs to inject faults: a schedule + a policy.

    ``recovery`` selects the failover path: replay lost requests through
    surviving fabrics and scrub corrupt images (True), or shed everything a
    fault touches (False — the ablation baseline the chaos experiment
    compares against).
    """

    schedule: FaultSchedule
    recovery: bool = True

    @property
    def enabled(self) -> bool:
        return self.schedule.enabled


class FaultInjector:
    """Arms fault events against one scheduler; purely event-driven."""

    def __init__(
        self,
        sim,
        scheduler,
        events: Sequence[FaultEvent],
        recovery: bool = True,
        seu_targets: Optional[Sequence[str]] = None,
    ) -> None:
        self.sim = sim
        self.scheduler = scheduler
        self.events: Tuple[FaultEvent, ...] = tuple(events)
        #: Accelerator names SEUs can hit; the event's fabric draw indexes
        #: this list (mod its length), so targeting is plain-data too.
        self.targets: Tuple[str, ...] = (
            tuple(seu_targets) if seu_targets is not None
            else tuple(sorted(scheduler.accelerators)))
        scheduler.recovery = recovery
        for index, event in enumerate(self.events):
            sim.process(self._run(event),
                        name=f"chaos.{event.kind}.{index}")

    # ------------------------------------------------------------------ #
    def _run(self, event: FaultEvent):
        if event.time_ns > 0:
            yield Delay(event.time_ns)
        repair = self._apply(event)
        self.scheduler.fault_stats["faults_injected"] += 1
        tracer = self.scheduler.tracer
        if tracer is not None:
            tracer.instant(f"fault_{event.kind}", "chaos", self.sim.now_ps,
                           cat="chaos", args={"fabric": event.fabric,
                                              "scope": event.scope})
        if repair is not None and event.repair_ns > 0:
            yield Delay(event.repair_ns)
            repair()
            if tracer is not None:
                tracer.instant(f"repair_{event.kind}", "chaos",
                               self.sim.now_ps, cat="chaos",
                               args={"fabric": event.fabric})
        return None

    def _apply(self, event: FaultEvent) -> Optional[Callable[[], None]]:
        """Inject one event; returns the repair action for transient kinds."""
        scheduler = self.scheduler
        if event.kind == "fabric":
            if event.scope == "node":
                killed = tuple(
                    index for index in range(len(scheduler.fabrics))
                    if scheduler.fail_fabric(index, reason="fabric"))
            else:
                killed = ((event.fabric,)
                          if scheduler.fail_fabric(event.fabric, reason="fabric")
                          else ())
            if not killed:
                return None
            return lambda: [scheduler.heal_fabric(index) for index in killed]
        if event.kind == "seu":
            if not self.targets:
                return None
            name = self.targets[event.fabric % len(self.targets)]
            scheduler.fault_detect_ns = event.detect_ns
            scheduler.corrupt_image(name, event.seu_offset, event.seu_mask)
            return None  # scrubbed on detection, not on a timer
        if event.kind == "link":
            fabrics = len(scheduler.fabrics)
            if fabrics < 2:
                return None  # a one-fabric control NoC has no links to cut
            a = min(event.fabric, fabrics - 2)
            scheduler.cut_link(a, a + 1)
            return lambda: scheduler.restore_link(a, a + 1)
        raise ValueError(f"unknown fault kind {event.kind!r}")  # pragma: no cover
