"""The global experiment registry.

Importing this module registers every experiment of the paper's evaluation:

* the six paper experiments — ``table1``, ``table2``, ``fig9``, ``fig10``,
  ``fig11`` and ``fig12`` — whose cells produce rows identical to the legacy
  ``repro.analysis.experiments.run_*`` functions;
* one ``app/<name>`` experiment per Fig. 12 application configuration
  (``app/tangent`` .. ``app/bfs/16``) sweeping the three system kinds
  (processor-only, FPSoC, Duet).

Cell functions are module-level so :class:`repro.api.runner.Runner` can ship
them to a ``ProcessPoolExecutor``.  Use :func:`register_experiment` either
with a ready :class:`~repro.api.spec.ExperimentSpec` or as a decorator::

    @register_experiment(name="my-sweep", grid={"x": (1, 2, 3)})
    def my_cell(x):
        return [{"x": x, "y": x * x}]
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.accel.barnes_hut import BarnesHutForceAccelerator
from repro.accel.dijkstra import DijkstraRelaxAccelerator
from repro.accel.lockfree_queue import FrontierQueueAccelerator
from repro.accel.pdes_scheduler import PdesSchedulerAccelerator
from repro.accel.popcount import PopcountAccelerator
from repro.accel.sortnet import SortingNetworkAccelerator
from repro.accel.tangent import TangentAccelerator
from repro.analysis.experiments import (
    APPLICATION_CONFIGS,
    FIG9_PAPER,
    FIG10_PAPER_PEAKS,
    FIG12_PAPER_ADP_GEOMEAN,
    FIG12_PAPER_GEOMEAN,
    TABLE2_PAPER,
    ApplicationConfig,
)
from repro.api.spec import ExperimentSpec, Rows
from repro.fpga.synthesis import SynthesisModel
from repro.noc.topology import TOPOLOGY_KINDS
from repro.platform.area import TABLE1_ROWS, AreaModel
from repro.platform.config import SystemKind
from repro.sim.stats import geometric_mean
from repro.workloads.common import WorkloadParams
from repro.workloads.synthetic import (
    BANDWIDTH_MECHANISMS,
    DEFAULT_SEED,
    LATENCY_MECHANISMS,
    measure_bandwidth,
    measure_latency,
    measure_register_scalability,
)

REGISTRY: Dict[str, ExperimentSpec] = {}


def register_experiment(spec: Optional[ExperimentSpec] = None, **kwargs: Any):
    """Register an experiment; usable directly or as a decorator.

    ``register_experiment(spec)`` registers a ready spec and returns it.
    ``@register_experiment(name=..., grid=...)`` wraps a cell function; the
    function itself is returned unchanged (so it stays a plain, picklable
    module-level callable).
    """
    if spec is not None:
        if kwargs:
            raise TypeError("pass either a spec or keyword arguments, not both")
        _add(spec)
        return spec

    def decorate(cell: Callable[..., Rows]) -> Callable[..., Rows]:
        name = kwargs.pop("name", cell.__name__)
        _add(ExperimentSpec(name=name, cell=cell, **kwargs))
        return cell

    return decorate


def _add(spec: ExperimentSpec) -> None:
    if spec.name in REGISTRY:
        raise ValueError(f"experiment {spec.name!r} is already registered")
    REGISTRY[spec.name] = spec


def get_experiment(name: str) -> ExperimentSpec:
    try:
        return REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown experiment {name!r}; known experiments: {known}") from None


def list_experiments(tag: Optional[str] = None) -> List[ExperimentSpec]:
    """All registered experiments, in registration order."""
    specs = list(REGISTRY.values())
    if tag is not None:
        specs = [spec for spec in specs if tag in spec.tags]
    return specs


# --------------------------------------------------------------------------- #
# Table I
# --------------------------------------------------------------------------- #
@register_experiment(
    name="table1",
    title="Table I — Area and Typical Frequency of Dolly Components",
    description="Area and typical frequency of Dolly's hard components.",
    tags=("paper", "table"),
)
def table1_cell() -> Rows:
    model = AreaModel()
    rows = []
    for row in TABLE1_ROWS:
        rows.append({
            "component": row.component,
            "technology": row.technology,
            "area_mm2": row.area_mm2,
            "freq_mhz": row.freq_mhz,
            "scaled_area_mm2": row.scaled_area_mm2,
            "scaled_freq_mhz": row.scaled_freq_mhz,
        })
    rows.append({
        "component": "Duet Adapter overhead vs 1 core (P1M1)",
        "technology": "derived",
        "area_mm2": model.adapter_area(1),
        "freq_mhz": 0.0,
        "scaled_area_mm2": model.adapter_area(1),
        "scaled_freq_mhz": 0.0,
    })
    return rows


# --------------------------------------------------------------------------- #
# Table II
# --------------------------------------------------------------------------- #
TABLE2_FACTORIES: Dict[str, Callable[[], Any]] = {
    "tangent": TangentAccelerator,
    "popcount": PopcountAccelerator,
    "sort32": lambda: SortingNetworkAccelerator(32),
    "sort64": lambda: SortingNetworkAccelerator(64),
    "sort128": lambda: SortingNetworkAccelerator(128),
    "dijkstra": DijkstraRelaxAccelerator,
    "barnes-hut": BarnesHutForceAccelerator,
    "bfs": FrontierQueueAccelerator,
    "pdes": PdesSchedulerAccelerator,
}


@register_experiment(
    name="table2",
    title="Table II — Clock Frequency and Area of Soft Accelerators",
    description="Post-route clock frequency, area and utilization of the soft accelerators.",
    grid={"benchmark": tuple(TABLE2_FACTORIES)},
    tags=("paper", "table"),
)
def table2_cell(benchmark: str) -> Rows:
    accelerator = TABLE2_FACTORIES[benchmark]()
    result = SynthesisModel().implement(accelerator.design)
    area_model = AreaModel()
    paper = TABLE2_PAPER.get(accelerator.design.name, (None, None, None, None))
    return [{
        "benchmark": accelerator.design.name,
        "measured_fmax_mhz": result.fmax_mhz,
        "paper_fmax_mhz": paper[0],
        "measured_norm_area": result.normalized_area(area_model.reference_block_mm2),
        "paper_norm_area": paper[1],
        "measured_clb_util": result.clb_utilization,
        "paper_clb_util": paper[2],
        "measured_bram_util": result.bram_utilization,
        "paper_bram_util": paper[3],
    }]


# --------------------------------------------------------------------------- #
# Fig. 9: latency
# --------------------------------------------------------------------------- #
@register_experiment(
    name="fig9",
    title="Fig. 9 — CPU-eFPGA Communication Latency (single transaction)",
    description="Round-trip latency of the six communication mechanisms on Dolly-P1M1.",
    grid={"mechanism": LATENCY_MECHANISMS, "fpga_mhz": (100.0, 200.0, 500.0)},
    fixed={"seed": DEFAULT_SEED},
    tags=("paper", "figure", "synthetic"),
)
def fig9_cell(mechanism: str, fpga_mhz: float, seed: int = DEFAULT_SEED) -> Rows:
    result = measure_latency(mechanism, fpga_mhz, seed=seed)
    return [{
        "mechanism": mechanism,
        "fpga_mhz": fpga_mhz,
        "measured_roundtrip_ns": result.roundtrip_ns,
        "paper_roundtrip_ns": FIG9_PAPER.get(mechanism, {}).get(int(fpga_mhz)),
    }]


# --------------------------------------------------------------------------- #
# Fig. 10: bandwidth
# --------------------------------------------------------------------------- #
@register_experiment(
    name="fig10",
    title="Fig. 10 — Processor-eFPGA Bandwidth",
    description="Single-processor bandwidth of the six mechanisms vs eFPGA clock. "
                "quad_words defaults to 128 (vs the paper's 512) to keep the "
                "pure-Python simulation fast; override it for the full study.",
    grid={"mechanism": BANDWIDTH_MECHANISMS,
          "fpga_mhz": (20.0, 50.0, 100.0, 200.0, 500.0)},
    fixed={"quad_words": 128, "seed": DEFAULT_SEED},
    tags=("paper", "figure", "synthetic"),
)
def fig10_cell(mechanism: str, fpga_mhz: float, quad_words: int = 128,
               seed: int = DEFAULT_SEED) -> Rows:
    result = measure_bandwidth(mechanism, fpga_mhz, quad_words=quad_words, seed=seed)
    return [{
        "mechanism": mechanism,
        "fpga_mhz": fpga_mhz,
        "measured_mbytes_per_s": result.mbytes_per_s,
        "paper_peak_mbytes_per_s": FIG10_PAPER_PEAKS.get(mechanism),
    }]


# --------------------------------------------------------------------------- #
# Fig. 11: register scalability
# --------------------------------------------------------------------------- #
@register_experiment(
    name="fig11",
    title="Fig. 11 — Per-Processor Register Bandwidth vs Contending Processors",
    description="Per-processor bandwidth of normal vs shadow registers under contention.",
    grid={"mechanism": ("normal_reg", "shadow_reg"),
          "operation": ("write", "read"),
          "num_processors": (1, 2, 4, 8, 16)},
    fixed={"accesses_per_processor": 32, "fpga_mhz": 500.0, "seed": DEFAULT_SEED},
    tags=("paper", "figure", "synthetic"),
)
def fig11_cell(mechanism: str, operation: str, num_processors: int,
               accesses_per_processor: int = 32, fpga_mhz: float = 500.0,
               seed: int = DEFAULT_SEED) -> Rows:
    result = measure_register_scalability(
        mechanism, operation, num_processors,
        fpga_mhz=fpga_mhz, accesses_per_processor=accesses_per_processor, seed=seed,
    )
    return [{
        "mechanism": mechanism,
        "operation": operation,
        "num_processors": num_processors,
        "per_processor_mbytes_per_s": result.per_processor_mbytes_per_s,
    }]


# --------------------------------------------------------------------------- #
# Fig. 12: application benchmarks
# --------------------------------------------------------------------------- #
_APP_BY_LABEL: Dict[str, ApplicationConfig] = {
    config.label: config for config in APPLICATION_CONFIGS
}


def fig12_row(config: ApplicationConfig, seed: int = DEFAULT_SEED) -> Dict[str, Any]:
    """Measure one Fig. 12 bar group (all three systems) for one config."""
    params = config.params(seed=seed)
    baseline = config.runner(SystemKind.CPU_ONLY, params, **config.kwargs)
    fpsoc_result = config.runner(SystemKind.FPSOC, params, **config.kwargs)
    duet_result = config.runner(SystemKind.DUET, params, **config.kwargs)
    return {
        "benchmark": config.label,
        "cpu_runtime_ns": baseline.runtime_ns,
        "fpsoc_speedup": fpsoc_result.speedup_over(baseline),
        "duet_speedup": duet_result.speedup_over(baseline),
        "paper_fpsoc_speedup": config.paper_fpsoc_speedup,
        "paper_duet_speedup": config.paper_duet_speedup,
        "fpsoc_norm_adp": fpsoc_result.normalized_adp(baseline),
        "duet_norm_adp": duet_result.normalized_adp(baseline),
        "all_correct": baseline.correct and fpsoc_result.correct and duet_result.correct,
    }


def fig12_summary(rows: Rows) -> Dict[str, Any]:
    """Geometric-mean speedup / ADP aggregates, plus the paper's numbers."""
    return {
        "duet_geomean_speedup": geometric_mean(
            [r["duet_speedup"] for r in rows if r["duet_speedup"] > 0]),
        "fpsoc_geomean_speedup": geometric_mean(
            [r["fpsoc_speedup"] for r in rows if r["fpsoc_speedup"] > 0]),
        "duet_geomean_adp": geometric_mean(
            [r["duet_norm_adp"] for r in rows if r["duet_norm_adp"] > 0]),
        "fpsoc_geomean_adp": geometric_mean(
            [r["fpsoc_norm_adp"] for r in rows if r["fpsoc_norm_adp"] > 0]),
        "paper_geomean_speedup": dict(FIG12_PAPER_GEOMEAN),
        "paper_geomean_adp": dict(FIG12_PAPER_ADP_GEOMEAN),
    }


@register_experiment(
    name="fig12",
    title="Fig. 12 — Normalized Speedup and ADP of Application Benchmarks",
    description="Every application on the three systems (CPU-only, FPSoC, Duet); "
                "the summary carries the geometric means.",
    grid={"benchmark": tuple(_APP_BY_LABEL)},
    fixed={"seed": DEFAULT_SEED},
    summarize=fig12_summary,
    tags=("paper", "figure", "application"),
)
def fig12_cell(benchmark: str, seed: int = DEFAULT_SEED) -> Rows:
    return [fig12_row(_APP_BY_LABEL[benchmark], seed=seed)]


# --------------------------------------------------------------------------- #
# NoC scaling sweep: topology x size x injection rate
# --------------------------------------------------------------------------- #
@register_experiment(
    name="noc_scaling",
    title="NoC Scaling — Topology x Size x Injection Rate",
    description="Uniform-random traffic over every NoC topology: delivered "
                "throughput, latency percentiles and link-wait time in "
                "simulated time (see docs/noc.md).",
    grid={"topology": tuple(sorted(TOPOLOGY_KINDS)),
          "size": (4, 8),
          "injection_rate": (0.02, 0.1)},
    fixed={"messages_per_node": 25, "payload_bytes": 16, "seed": DEFAULT_SEED},
    tags=("noc", "sweep", "synthetic"),
)
def noc_scaling_cell(topology: str, size: int, injection_rate: float,
                     messages_per_node: int = 25, payload_bytes: int = 16,
                     seed: int = DEFAULT_SEED) -> Rows:
    from repro.workloads.noc_traffic import run_uniform_traffic

    result = run_uniform_traffic(
        topology, size, injection_rate,
        messages_per_node=messages_per_node,
        payload_bytes=payload_bytes,
        seed=seed,
    )
    return [result.as_row()]


# --------------------------------------------------------------------------- #
# Per-application experiments (one per Fig. 12 configuration)
# --------------------------------------------------------------------------- #
_JSON_SCALARS = (int, float, str, bool, type(None))


def app_cell(benchmark: str, system: str, seed: int = DEFAULT_SEED) -> Rows:
    """Run one application on one system kind; one row per run."""
    config = _APP_BY_LABEL[benchmark]
    kind = SystemKind(system)
    params = WorkloadParams(num_processors=config.processors,
                            num_memory_hubs=config.memory_hubs, seed=seed)
    result = config.runner(kind, params, **config.kwargs)
    return [{
        "benchmark": config.label,
        "system": kind.value,
        "system_name": result.system_name,
        "runtime_ns": result.runtime_ns,
        "correct": result.correct,
        "checksum": result.checksum if isinstance(result.checksum, _JSON_SCALARS)
                    else repr(result.checksum),
        "num_processors": result.num_processors,
        "num_memory_hubs": result.num_memory_hubs,
        "fpga_mhz": result.fpga_mhz,
        "efpga_area_mm2": result.efpga_area_mm2,
        "chip_area_mm2": result.chip_area_mm2,
    }]


for _config in APPLICATION_CONFIGS:
    register_experiment(ExperimentSpec(
        name=f"app/{_config.label}",
        cell=app_cell,
        title=f"Application benchmark {_config.label} "
              f"(P{_config.processors}M{_config.memory_hubs})",
        description=f"Runs {_config.label} on the CPU-only, FPSoC and Duet systems.",
        grid={"system": tuple(kind.value for kind in
                              (SystemKind.CPU_ONLY, SystemKind.FPSOC, SystemKind.DUET))},
        fixed={"benchmark": _config.label, "seed": DEFAULT_SEED},
        tags=("application",),
    ))
del _config


# --------------------------------------------------------------------------- #
# Power / efficiency experiments (cells live in repro.power.experiments,
# which must not import repro.api — see its module docstring)
# --------------------------------------------------------------------------- #
from repro.power import experiments as power_experiments  # noqa: E402

register_experiment(ExperimentSpec(
    name="power_efficiency",
    cell=power_experiments.power_efficiency_cell,
    title="Power Efficiency — Energy, EDP and Perf-per-Watt by System and Clock",
    description="Popcount on every system kind x P/M shape x eFPGA clock "
                "with energy accounting enabled (see docs/power.md).",
    grid={"system": tuple(kind.value for kind in
                          (SystemKind.CPU_ONLY, SystemKind.FPSOC, SystemKind.DUET)),
          "pm": power_experiments.PM_SHAPES,
          "fpga_mhz": (50.0, 100.0, 150.0)},
    fixed={"vectors": 12, "seed": power_experiments.DEFAULT_SEED,
           "cpu_anchor_mhz": 50.0},
    summarize=power_experiments.power_efficiency_summary,
    tags=("power", "sweep", "efficiency"),
))

register_experiment(ExperimentSpec(
    name="dvfs_policy",
    cell=power_experiments.dvfs_policy_cell,
    title="DVFS Policy — Governors on a Bursty Accelerator Workload",
    description="Fixed / Ladder / EnergyCap governors driving the eFPGA "
                "clock of a bursty compute workload (see docs/power.md).",
    grid={"governor": power_experiments.GOVERNOR_KINDS},
    fixed={"bursts": 4, "items_per_burst": 6, "idle_ns": 20_000.0,
           "compute_cycles": 64, "seed": power_experiments.DEFAULT_SEED},
    summarize=power_experiments.dvfs_policy_summary,
    tags=("power", "dvfs", "synthetic"),
))


# --------------------------------------------------------------------------- #
# Serving experiments (cells live in repro.serve.experiments, which must not
# import repro.api — see its module docstring and docs/serving.md)
# --------------------------------------------------------------------------- #
from repro.fleet import experiments as fleet_experiments  # noqa: E402
from repro.fleet import router as fleet_router  # noqa: E402
from repro.serve import experiments as serve_experiments  # noqa: E402
from repro.serve.scheduler import POLICY_KINDS  # noqa: E402

register_experiment(ExperimentSpec(
    name="serve_policy",
    cell=serve_experiments.serve_policy_cell,
    title="Serving — Scheduling Policy x Arrival Rate x Tenant Mix",
    description="Multi-tenant request serving on a shared eFPGA fabric: "
                "per-tenant p50/p95/p99 latency, goodput (SLO-met "
                "completions/s), shed load and reconfiguration overhead "
                "(see docs/serving.md).",
    grid={"policy": POLICY_KINDS,
          "arrival_rate_krps": (100.0, 250.0, 400.0),
          "tenant_mix": ("duo", "quad")},
    fixed={"duration_us": 2_000.0, "num_fabrics": 1, "queue_capacity": 64,
           "patience_ns": 100_000.0, "seed": serve_experiments.DEFAULT_SEED},
    summarize=serve_experiments.serve_policy_summary,
    tags=("serve", "sweep", "slo"),
))

# --------------------------------------------------------------------------- #
# Fleet experiment (cells live in repro.fleet.experiments, same import rule)
# --------------------------------------------------------------------------- #
register_experiment(ExperimentSpec(
    name="fleet_scaling",
    cell=fleet_experiments.fleet_scaling_cell,
    title="Fleet — Placement x Node Count x Autoscaling (cost vs tail pareto)",
    description="A million closed-loop clients (thinned) on a fleet of Dolly "
                "nodes: placement policy x static node count x autoscaling, "
                "reporting node-cost against p99/goodput and the pareto "
                "front (see docs/fleet.md).",
    grid={"placement": fleet_router.PLACEMENT_KINDS,
          "nodes": (2, 4, 8),
          "autoscale": (False, True)},
    fixed={"policy": "fcfs", "clients": 1_000_000, "think_ms": 50.0,
           "thin_factor": 50.0, "epoch_us": 400.0,
           "node_executor": "serial",
           "seed": fleet_experiments.DEFAULT_SEED},
    summarize=fleet_experiments.fleet_scaling_summary,
    tags=("fleet", "serve", "sweep", "pareto"),
))

register_experiment(ExperimentSpec(
    name="serve_energy",
    cell=serve_experiments.serve_energy_cell,
    title="Serving — Energy per Request by Scheduling Policy",
    description="The duo tenant mix with repro.power accounting attached: "
                "energy per served request, average power and the "
                "reconfiguration energy share (see docs/serving.md).",
    grid={"policy": POLICY_KINDS},
    fixed={"arrival_rate_krps": 250.0, "tenant_mix": "duo",
           "duration_us": 2_000.0, "queue_capacity": 64,
           "patience_ns": 100_000.0, "seed": serve_experiments.DEFAULT_SEED},
    summarize=serve_experiments.serve_energy_summary,
    tags=("serve", "power", "efficiency"),
))

# --------------------------------------------------------------------------- #
# Reconfig experiment (cells live in repro.reconfig.experiments, same rule)
# --------------------------------------------------------------------------- #
from repro.reconfig import experiments as reconfig_experiments  # noqa: E402

register_experiment(ExperimentSpec(
    name="reconfig",
    cell=reconfig_experiments.reconfig_cell,
    title="Reconfig — Region Grid x Policy x Tenant Mix x Provisioning",
    description="Region-granular partial reconfiguration on one shared "
                "fabric: co-located designs hot-swap contiguous region "
                "spans (paying only the changed regions' bits) with LRU "
                "eviction under provisioning pressure; regions=1 is the "
                "whole-fabric baseline (see docs/reconfig.md).",
    grid={"regions": (1, 2, 4),
          "policy": ("fcfs", "affinity"),
          "tenant_mix": ("duo", "quad"),
          "fabric_scale": (1.0, 0.6)},
    fixed={"arrival_rate_krps": 250.0, "duration_us": 2_000.0,
           "queue_capacity": 64, "patience_ns": 100_000.0,
           "seed": reconfig_experiments.DEFAULT_SEED},
    summarize=reconfig_experiments.reconfig_summary,
    tags=("reconfig", "serve", "sweep", "placement"),
))

# --------------------------------------------------------------------------- #
# Chaos experiment (cells live in repro.chaos.experiments, same import rule)
# --------------------------------------------------------------------------- #
from repro.chaos import experiments as chaos_experiments  # noqa: E402

register_experiment(ExperimentSpec(
    name="chaos",
    cell=chaos_experiments.chaos_cell,
    title="Chaos — Fault Rate x Policy x Recovery (failover under traffic)",
    description="A fleet that loses node 0 to a pinned whole-node fault "
                "under rate-scaled SEU/link noise: with recovery the hot "
                "spare is promoted, tenants re-place and lost requests "
                "replay; without it the dead node sheds. Reports per-tenant "
                "fault impact and goodput recovery (see docs/chaos.md).",
    grid={"fault_rate": (0.0, 1.0, 3.0),
          "policy": ("fcfs", "affinity"),
          "recovery": (False, True)},
    fixed={"nodes": 3, "spares": 1, "epochs": 5, "epoch_us": 600.0,
           "rate_krps": 300.0, "node_executor": "serial",
           "seed": chaos_experiments.DEFAULT_SEED},
    summarize=chaos_experiments.chaos_summary,
    tags=("chaos", "fleet", "reliability", "sweep"),
))

# --------------------------------------------------------------------------- #
# Observability experiment (cells live in repro.obs.experiments, same rule)
# --------------------------------------------------------------------------- #
from repro.obs import experiments as obs_experiments  # noqa: E402

register_experiment(ExperimentSpec(
    name="latency_decomposition",
    cell=obs_experiments.latency_decomposition_cell,
    title="Observability — Latency Decomposition by Stage (where the ns go)",
    description="Traced serving runs folded into per-tenant stage shares "
                "(queue/program/retune/service/blackout, summing to 1.0) "
                "plus the full latency tail (p50..p99.9/max, jitter, CDF "
                "mass within 2x the median), swept over policy x region "
                "count x background fault rate (see docs/observability.md).",
    grid={"policy": ("fcfs", "affinity"),
          "regions": (1, 4),
          "fault_rate": (0.0, 2.0)},
    fixed={"tenant_mix": obs_experiments.DECOMPOSE_MIX,
           "arrival_rate_krps": obs_experiments.DECOMPOSE_RATE_KRPS,
           "duration_us": obs_experiments.DECOMPOSE_DURATION_US,
           "seed": obs_experiments.DEFAULT_SEED},
    summarize=obs_experiments.latency_decomposition_summary,
    tags=("obs", "serve", "reconfig", "chaos", "sweep", "tracing"),
))

# --------------------------------------------------------------------------- #
# Alerting experiment (cells live in repro.obs.alerting, same import rule)
# --------------------------------------------------------------------------- #
from repro.obs import alerting as obs_alerting  # noqa: E402

register_experiment(ExperimentSpec(
    name="alerting",
    cell=obs_alerting.alerting_cell,
    title="Alerting — Detection Quality vs Ground-Truth Fault Schedules",
    description="Chaos fleet runs observed only through windowed telemetry: "
                "fault family (none/kill/seu/link) x control mode "
                "(omniscient vs alert-driven recovery), scoring the alert "
                "log against the injected FaultSchedule for recall, "
                "precision, false-alarm rate and detection latency "
                "(see docs/alerting.md).",
    grid={"fault": obs_alerting.FAULT_MODES,
          "control": ("omniscient", "alerts")},
    fixed={"fault_rate": 2.0, "nodes": 3, "spares": 1, "epochs": 5,
           "epoch_us": 600.0, "rate_krps": 300.0,
           "window_us": obs_alerting.ALERT_WINDOW_US,
           "node_executor": "serial", "seed": obs_alerting.DEFAULT_SEED},
    summarize=obs_alerting.alerting_summary,
    tags=("obs", "alerts", "chaos", "fleet", "sweep"),
))
