"""Deterministic fault schedules: seeded, picklable, replayable.

A :class:`FaultSchedule` turns a seed plus a tuple of :class:`FaultSpec`
descriptions into concrete :class:`FaultEvent` draws for each
``(node, epoch)`` — *before* any simulation runs.  The draws are a pure
function of ``(schedule seed, spec index, epoch, node_id)``:

* stream seeds mix the schedule seed, a CRC-32 of the spec's identity and
  the epoch/node ids with the same odd-constant arithmetic the fleet's
  :func:`~repro.fleet.node.node_seed` uses — no ``hash()`` anywhere, so
  schedules are bit-identical across runs, machines and ``PYTHONHASHSEED``
  values (pinned by a subprocess test in ``tests/test_chaos.py``);
* events are plain frozen dataclasses of ints/floats/strings, so the fleet
  can compute them in the parent process and ship them to a
  ``ProcessPoolExecutor`` node simulation unchanged — which is what makes
  a chaos fleet run serial ≡ process bit-identical: the faults a node sees
  never depend on which process simulates it.

Three fault kinds ship (:data:`FAULT_KINDS`):

* ``seu`` — a single-event upset flips bits in one accelerator's stored
  bitstream image (via :meth:`repro.fpga.bitstream.Bitstream.corrupted`);
  the corruption is latent until the next ``ControlHub.program`` of that
  image trips the integrity check;
* ``fabric`` — an eFPGA fabric dies outright (its in-flight request is
  lost, its programmed design is gone); ``scope="node"`` kills every
  fabric on the node at once;
* ``link`` — a control-NoC link faults: fabrics cut off from the control
  tile are unreachable until the link repairs after ``repair_ns``.

See ``docs/chaos.md`` for the fault model and the determinism contract.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Optional, Tuple

#: The supported fault kinds.
FAULT_KINDS: Tuple[str, ...] = ("seu", "fabric", "link")

#: ``FaultSpec.scope`` values: hit one drawn fabric, or the whole node.
FAULT_SCOPES: Tuple[str, ...] = ("fabric", "node")


@dataclass(frozen=True)
class FaultSpec:
    """One fault *source*: a kind, a rate, and recovery economics.

    ``rate_per_epoch`` is the expected number of events this spec injects
    per (node, epoch); ``at_epoch``/``at_node`` pin exactly one event to a
    specific epoch (and optionally node) instead — the deterministic
    "kill node 0 in epoch 2" anchor the acceptance pins are built on.
    """

    kind: str
    #: Expected events per (node, epoch); Poisson-drawn per stream.
    rate_per_epoch: float = 0.0
    #: Fire exactly once in this epoch (rate ignored) when set.
    at_epoch: Optional[int] = None
    #: Restrict a pinned event to this node id (None = every node).
    at_node: Optional[int] = None
    #: ``fabric`` hits one drawn fabric; ``node`` hits all of them.
    scope: str = "fabric"
    #: Detection/scrub latency the recovery path pays (ns).
    detect_ns: float = 2_000.0
    #: Transient faults (links) heal this long after injection (ns);
    #: 0 means permanent for the rest of the run.
    repair_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            known = ", ".join(FAULT_KINDS)
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known kinds: {known}")
        if self.scope not in FAULT_SCOPES:
            known = ", ".join(FAULT_SCOPES)
            raise ValueError(
                f"unknown fault scope {self.scope!r}; known scopes: {known}")
        if self.rate_per_epoch < 0:
            raise ValueError(
                f"rate_per_epoch cannot be negative, got {self.rate_per_epoch}")
        if self.at_epoch is None and self.rate_per_epoch == 0:
            raise ValueError(
                f"a {self.kind!r} FaultSpec needs rate_per_epoch > 0 or a "
                "pinned at_epoch — otherwise it never fires")
        if self.detect_ns < 0 or self.repair_ns < 0:
            raise ValueError("detect_ns/repair_ns cannot be negative")


@dataclass(frozen=True)
class FaultEvent:
    """One concrete fault draw, fully resolved to plain data."""

    kind: str
    #: Injection instant, ns from the start of the epoch.
    time_ns: float
    #: Target fabric index on the node (anchor fabric for node-scope/link).
    fabric: int
    #: Index of the originating :class:`FaultSpec`.
    spec_index: int
    scope: str = "fabric"
    detect_ns: float = 2_000.0
    repair_ns: float = 0.0
    # -- seu payload ----------------------------------------------------- #
    #: Byte offset the upset lands at (modulo the bitstream size).
    seu_offset: int = 0
    #: XOR mask applied at the offset (may span multiple bytes).
    seu_mask: int = 0xFF


@dataclass(frozen=True)
class FaultSchedule:
    """A seed plus fault sources; resolves to per-(node, epoch) events.

    Frozen and built from frozen specs, so it is picklable, hashable and
    safe to embed in a :class:`~repro.fleet.cluster.FleetConfig`.
    """

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        # Tolerate a list literal at the call site; keep the field a tuple.
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))

    @property
    def enabled(self) -> bool:
        return bool(self.specs)

    def stream_seed(self, spec_index: int, epoch: int, node_id: int = 0) -> int:
        """The per-(spec, epoch, node) RNG seed — CRC-32 + odd constants.

        Mirrors :func:`repro.fleet.node.node_seed`'s arithmetic mixing;
        the spec's identity enters via CRC-32 of a stable label so adding
        a spec never perturbs the streams of the ones before it.
        """
        spec = self.specs[spec_index]
        label = f"chaos:{spec.kind}:{spec_index}".encode()
        return (self.seed * 1_000_003 + zlib.crc32(label)
                + epoch * 104_729 + node_id * 7_919) & 0x7FFFFFFF

    def events(self, epoch: int, node_id: int, fabrics: int,
               epoch_ns: float) -> Tuple[FaultEvent, ...]:
        """Resolve every spec's draws for one (node, epoch).

        Events come back sorted by ``(time_ns, spec_index)`` so injection
        order is deterministic even when two draws collide in time.
        """
        if fabrics < 1:
            raise ValueError(f"need >= 1 fabric, got {fabrics}")
        if epoch_ns <= 0:
            raise ValueError(f"epoch_ns must be positive, got {epoch_ns}")
        drawn = []
        for index, spec in enumerate(self.specs):
            rng = random.Random(self.stream_seed(index, epoch, node_id))
            if spec.at_epoch is not None:
                if spec.at_epoch != epoch:
                    continue
                if spec.at_node is not None and spec.at_node != node_id:
                    continue
                count = 1
            else:
                count = _poisson(rng, spec.rate_per_epoch)
            for _ in range(count):
                drawn.append(FaultEvent(
                    kind=spec.kind,
                    time_ns=rng.uniform(0.0, epoch_ns),
                    fabric=rng.randrange(fabrics),
                    spec_index=index,
                    scope=spec.scope,
                    detect_ns=spec.detect_ns,
                    repair_ns=spec.repair_ns,
                    seu_offset=rng.randrange(1 << 20),
                    seu_mask=1 << rng.randrange(8),
                ))
        drawn.sort(key=lambda event: (event.time_ns, event.spec_index))
        return tuple(drawn)

    def ground_truth(self, epochs: int, node_ids, fabrics: int,
                     epoch_ns: float):
        """The fault oracle: every draw over a whole run, as plain dicts
        on the global fleet timeline (integer-ps ``t_ps``).

        This is what makes detection *scorable*: the alerting layer sees
        only telemetry, while the experiment holds this list and can
        measure recall, false alarms and detection latency exactly
        (:func:`repro.obs.alerts.score_alerts`).  Resolution re-runs the
        same seeded draws as :meth:`events`, so the oracle is the
        injected schedule, not a parallel approximation.
        """
        truth = []
        for epoch in range(epochs):
            for node_id in sorted(node_ids):
                for event in self.events(epoch, node_id, fabrics, epoch_ns):
                    truth.append({
                        "kind": event.kind,
                        "scope": event.scope,
                        "node_id": node_id,
                        "epoch": epoch,
                        "fabric": event.fabric,
                        "t_ps": int(round(
                            (epoch * epoch_ns + event.time_ns) * 1000.0)),
                    })
        truth.sort(key=lambda t: (t["t_ps"], t["node_id"], t["kind"]))
        return truth


def _poisson(rng: random.Random, mean: float) -> int:
    """Knuth's inverse-transform Poisson draw (exact, deterministic).

    Fine for the small per-epoch rates fault schedules use; the loop runs
    ``count + 1`` times on average.
    """
    if mean <= 0:
        return 0
    limit = 2.718281828459045 ** -mean
    count, product = 0, rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count
