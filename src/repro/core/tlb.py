"""Memory Hub TLB: virtualizing accelerator memory accesses.

Application-specific fine-grained accelerators "are like user programs and
can be faulty or malicious, so they are better restricted to virtual
addresses" (Sec. II-D).  Each Memory Hub therefore carries a TLB: when
enabled, every accelerator-initiated access is translated while being
speculatively processed by the Proxy Cache; on a miss the TLB raises an
interrupt and the kernel either installs the mapping via MMIOs or kills the
accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.sim import ClockDomain, Simulator, StatSet


@dataclass
class PageFault(Exception):
    """Raised to software when a translation is missing and unrecoverable."""

    virtual_addr: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"page fault at virtual address 0x{self.virtual_addr:x}"


#: Interrupt handler signature: receives the faulting virtual page number and
#: returns the physical page number to install, or None to kill the accelerator.
FaultHandler = Callable[[int], Optional[int]]


class Tlb:
    """A small fully-associative TLB with software-managed fills."""

    def __init__(
        self,
        sim: Simulator,
        domain: ClockDomain,
        page_bits: int = 12,
        capacity: int = 16,
        lookup_cycles: int = 1,
        fault_penalty_cycles: int = 200,
        name: str = "tlb",
    ) -> None:
        self.sim = sim
        self.domain = domain
        self.page_bits = page_bits
        self.capacity = capacity
        self.lookup_cycles = lookup_cycles
        self.fault_penalty_cycles = fault_penalty_cycles
        self.name = name
        self._entries: Dict[int, int] = {}
        self._fault_handler: Optional[FaultHandler] = None
        self.stats = StatSet(f"{name}.stats")

    # ------------------------------------------------------------------ #
    # Page math
    # ------------------------------------------------------------------ #
    @property
    def page_size(self) -> int:
        return 1 << self.page_bits

    def vpn_of(self, addr: int) -> int:
        return addr >> self.page_bits

    def offset_of(self, addr: int) -> int:
        return addr & (self.page_size - 1)

    # ------------------------------------------------------------------ #
    # Software interface (MMIO-driven in the real system)
    # ------------------------------------------------------------------ #
    def install(self, vpn: int, ppn: int) -> None:
        """Install a translation; evicts an arbitrary entry when full."""
        if len(self._entries) >= self.capacity and vpn not in self._entries:
            evicted_vpn = next(iter(self._entries))
            del self._entries[evicted_vpn]
            self.stats.counter("evictions").increment()
        self._entries[vpn] = ppn

    def invalidate(self, vpn: Optional[int] = None) -> None:
        """Drop one translation, or all of them when ``vpn`` is None."""
        if vpn is None:
            self._entries.clear()
        else:
            self._entries.pop(vpn, None)

    def set_fault_handler(self, handler: Optional[FaultHandler]) -> None:
        """Register the kernel-level interrupt handler used on TLB misses."""
        self._fault_handler = handler

    def identity_map(self, base_addr: int, size_bytes: int) -> None:
        """Convenience: map a region's virtual pages onto themselves."""
        first = self.vpn_of(base_addr)
        last = self.vpn_of(base_addr + max(0, size_bytes - 1))
        for vpn in range(first, last + 1):
            self.install(vpn, vpn)

    # ------------------------------------------------------------------ #
    # Translation (generator; charges lookup and fault latency)
    # ------------------------------------------------------------------ #
    def translate(self, virtual_addr: int):
        """Translate ``virtual_addr``; raises :class:`PageFault` if unmapped."""
        yield self.domain.wait_cycles(self.lookup_cycles)
        vpn = self.vpn_of(virtual_addr)
        ppn = self._entries.get(vpn)
        if ppn is not None:
            self.stats.counter("hits").increment()
            return (ppn << self.page_bits) | self.offset_of(virtual_addr)
        self.stats.counter("misses").increment()
        if self._fault_handler is None:
            raise PageFault(virtual_addr)
        # Interrupt a processor; the kernel walks the page table and either
        # installs the mapping via MMIOs or kills the accelerator.
        yield self.domain.wait_cycles(self.fault_penalty_cycles)
        ppn = self._fault_handler(vpn)
        if ppn is None:
            raise PageFault(virtual_addr)
        self.install(vpn, ppn)
        self.stats.counter("fault_fills").increment()
        return (ppn << self.page_bits) | self.offset_of(virtual_addr)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries

    def __len__(self) -> int:
        return len(self._entries)
