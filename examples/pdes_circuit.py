"""Hardware-augmentation example: PDES with an eFPGA task scheduler.

Run with:  python examples/pdes_circuit.py [num_cores]

Reproduces the scenario of Sec. III-B2: a parallel discrete event simulation
whose shared event queue is either arbitrated by MCS locks in software
(processor-only baseline) or replaced by the eFPGA-emulated, conservative
hardware task scheduler (hardware augmentation on Duet and on the
FPSoC-like baseline).
"""

import sys

from repro.platform import SystemKind
from repro.workloads import pdes
from repro.workloads.common import WorkloadParams


def main():
    num_cores = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    print(f"Parallel discrete event simulation on {num_cores} cores")
    print("-" * 68)
    results = {}
    for kind in (SystemKind.CPU_ONLY, SystemKind.FPSOC, SystemKind.DUET):
        result = pdes.run(kind, WorkloadParams(num_processors=num_cores, num_memory_hubs=1))
        results[kind] = result
        print(f"{result.system_name:14s} runtime {result.runtime_ns:10.0f} ns   "
              f"events processed: {result.checksum}   correct={result.correct}")
    baseline = results[SystemKind.CPU_ONLY]
    for kind in (SystemKind.FPSOC, SystemKind.DUET):
        print(f"{results[kind].system_name:14s} speedup over the MCS-lock baseline: "
              f"{results[kind].speedup_over(baseline):.2f}x")


if __name__ == "__main__":
    main()
