"""Memory-mapped I/O over the NoC.

On-chip MMIOs are how processors talk to the Duet Adapter's Control Hub
(soft registers, shadow registers, feature switches, FPGA manager).  The
paper stresses that MMIOs "typically adhere to a strict memory ordering
model, e.g. I/O ordering" (Sec. II-F): the processor issues at most one
MMIO at a time and stalls until the response returns.  That stall is what
makes normal (eFPGA-resident) soft registers expensive and Shadow Registers
valuable, so the model enforces it faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.noc import MessagePlane, NocMessage, TileRouter
from repro.sim import ClockDomain, Event, Simulator, StatSet


class MmioError(RuntimeError):
    """Raised for unmapped MMIO addresses or malformed device responses."""


@dataclass(frozen=True)
class MmioRegion:
    """One device's address window."""

    base: int
    size: int
    node: int
    target: str
    name: str = ""

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size


class MmioMap:
    """Global routing table from MMIO addresses to (tile, target) endpoints."""

    def __init__(self) -> None:
        self._regions: List[MmioRegion] = []
        self._next_base = 0xF000_0000

    def register(
        self, size: int, node: int, target: str, name: str = "", base: Optional[int] = None
    ) -> MmioRegion:
        """Allocate (or place at ``base``) a window and route it to a device."""
        if base is None:
            base = self._next_base
        region = MmioRegion(base=base, size=size, node=node, target=target, name=name)
        for existing in self._regions:
            if base < existing.base + existing.size and existing.base < base + size:
                raise MmioError(f"MMIO region {name!r} overlaps {existing.name!r}")
        self._regions.append(region)
        self._next_base = max(self._next_base, base + size)
        # Keep regions line-aligned-ish for readability of traces.
        self._next_base = (self._next_base + 0xFFF) & ~0xFFF
        return region

    def resolve(self, addr: int) -> MmioRegion:
        for region in self._regions:
            if region.contains(addr):
                return region
        raise MmioError(f"MMIO address 0x{addr:x} is not mapped")

    @property
    def regions(self) -> List[MmioRegion]:
        return list(self._regions)


class MmioPort:
    """A core's MMIO unit: strictly ordered, one outstanding access."""

    def __init__(
        self,
        sim: Simulator,
        domain: ClockDomain,
        tile_router: TileRouter,
        mmio_map: MmioMap,
        name: str = "",
        target: str = "mmio",
    ) -> None:
        self.sim = sim
        self.domain = domain
        self.node = tile_router.node
        self.mmio_map = mmio_map
        self.name = name or f"mmio@{self.node}"
        self.port = tile_router.port(target, self._handle)
        self._pending: Dict[int, Event] = {}
        self._busy = False
        self._waiters: List[Event] = []
        self.stats = StatSet(f"{self.name}.stats")

    # ------------------------------------------------------------------ #
    # Client interface (drive with ``yield from``)
    # ------------------------------------------------------------------ #
    def read(self, addr: int):
        """Strictly ordered MMIO read; returns the device's response value."""
        response = yield from self._transact("mmio_read", addr, None)
        return response.meta.get("value", 0)

    def write(self, addr: int, value: int):
        """Strictly ordered MMIO write; returns once the device acknowledged."""
        yield from self._transact("mmio_write", addr, value)
        return None

    def _transact(self, kind: str, addr: int, value: Optional[int]):
        region = self.mmio_map.resolve(addr)
        while self._busy:
            waiter = self.sim.event(f"{self.name}.order-wait")
            self._waiters.append(waiter)
            yield waiter
        self._busy = True
        yield self.domain.wait_cycles(1)
        self.stats.counter(kind).increment()
        started = self.sim.now
        done = self.sim.event(f"{self.name}.{kind}@{addr:x}")
        delivery = self.port.send(
            region.node,
            region.target,
            kind,
            addr=addr,
            size_bytes=8 if kind == "mmio_write" else 0,
            plane=MessagePlane.REQUEST,
            value=value,
        )
        message: NocMessage = delivery.value if delivery.triggered else None
        self._pending[addr] = done
        response = yield done
        self._pending.pop(addr, None)
        self.stats.histogram(f"{kind}_latency_ns").record(self.sim.now - started)
        self._busy = False
        if self._waiters:
            self._waiters.pop(0).succeed()
        return response

    # ------------------------------------------------------------------ #
    # Response handling
    # ------------------------------------------------------------------ #
    def _handle(self, message: NocMessage) -> None:
        if message.kind != "mmio_resp":
            raise MmioError(f"{self.name}: unexpected message {message.kind!r}")
        pending = self._pending.get(message.addr)
        if pending is None:
            raise MmioError(f"{self.name}: unsolicited MMIO response for 0x{message.addr:x}")
        pending.succeed(message)

    def mean_latency_ns(self, kind: str = "mmio_read") -> float:
        return self.stats.histogram(f"{kind}_latency_ns").mean
