"""Table I: area and typical frequency of Dolly's hard components."""

from repro.api import Runner, get_experiment


def test_table1_area(benchmark):
    results = benchmark.pedantic(Runner().run, args=("table1",),
                                 rounds=1, iterations=1)
    print()
    print(results.to_table(
        columns=["component", "technology", "area_mm2", "freq_mhz",
                 "scaled_area_mm2", "scaled_freq_mhz"],
        headers=["Component", "Technology", "Area (mm2)", "Freq (MHz)",
                 "Scaled Area (mm2)", "Scaled Freq (MHz)"],
        title=get_experiment("table1").title,
    ))
    # The Duet Adapter's hard logic is small relative to one core + socket
    # (the Sec. V-B "negligible hardware overhead" claim).
    adapter_row = results[-1]
    assert adapter_row.area_mm2 < 1.56 + 1.10
