"""Embedded FPGA substrate (the PRGA / VTR / Catapult-HLS substitute).

Dolly's eFPGA is generated with PRGA: an island-style fabric of configurable
logic blocks (LUT6 + flip-flops), Block RAMs and hard multipliers, mapped by
Yosys/VTR onto the ``k6_frac_N10_frac_chain_mem32K_40nm`` architecture.  This
package provides the pieces of that flow the evaluation actually consumes:

* a fabric resource model (:class:`FabricSpec`, :class:`FabricInstance`),
* an analytic synthesis model (:class:`SynthesisModel`) that turns an
  accelerator's resource descriptor into max frequency, tile counts and
  silicon area — the quantities Table II reports,
* bitstream generation with integrity checking (:class:`Bitstream`),
* the programmable clock generator of the Control Hub,
* a BRAM scratchpad, and
* the :class:`SoftAccelerator` base class all behavioural accelerators in
  :mod:`repro.accel` derive from.
"""

from repro.fpga.fabric import FabricInstance, FabricSpec
from repro.fpga.synthesis import AcceleratorDesign, SynthesisModel, SynthesisResult
from repro.fpga.bitstream import Bitstream, BitstreamError
from repro.fpga.clocking import ProgrammableClockGenerator
from repro.fpga.scratchpad import Scratchpad
from repro.fpga.accelerator import AcceleratorEnvironment, FpgaMemoryPort, SoftAccelerator

__all__ = [
    "FabricSpec",
    "FabricInstance",
    "AcceleratorDesign",
    "SynthesisModel",
    "SynthesisResult",
    "Bitstream",
    "BitstreamError",
    "ProgrammableClockGenerator",
    "Scratchpad",
    "SoftAccelerator",
    "AcceleratorEnvironment",
    "FpgaMemoryPort",
]
