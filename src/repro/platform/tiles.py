"""Physical tile planning for Dolly's 2D mesh.

Dolly has three physical tile types (Sec. IV): P-tiles host an Ariane core,
the C-tile hosts the Control Hub plus one Memory Hub, and M-tiles host one
Memory Hub each.  Every tile also carries a P-Mesh socket: the private L2,
the NoC router and one LLC shard.  The planner lays processors out first,
then the C-tile, then the M-tiles, on the smallest near-square mesh that
fits.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List

from repro.noc.topology import TOPOLOGY_KINDS, Topology, make_topology
from repro.platform.config import DollyConfig, SystemKind


class TileRole(enum.Enum):
    """What occupies a physical tile besides its P-Mesh socket."""

    PROCESSOR = "P"
    CONTROL = "C"
    MEMORY = "M"
    #: A tile carrying only its P-Mesh socket (filler on non-square meshes).
    SOCKET_ONLY = "S"


@dataclass
class TilePlan:
    """Assignment of roles to mesh nodes for one configuration."""

    config: DollyConfig
    width: int
    height: int
    roles: Dict[int, TileRole]

    @property
    def processor_tiles(self) -> List[int]:
        return [node for node, role in sorted(self.roles.items()) if role is TileRole.PROCESSOR]

    @property
    def control_tile(self) -> int:
        for node, role in self.roles.items():
            if role is TileRole.CONTROL:
                return node
        raise LookupError("this plan has no control tile (processor-only system)")

    @property
    def memory_tiles(self) -> List[int]:
        return [node for node, role in sorted(self.roles.items()) if role is TileRole.MEMORY]

    @property
    def all_tiles(self) -> List[int]:
        return list(range(self.width * self.height))

    def topology(self) -> Topology:
        """Build the NoC topology this plan was laid out for."""
        return make_topology(self.config.noc_topology, self.width, self.height)

    @classmethod
    def plan(cls, config: DollyConfig) -> "TilePlan":
        """Lay out ``config`` on the smallest grid that fits its topology.

        Grid fabrics (mesh, torus) use the smallest near-square grid; flat
        fabrics (ring, crossbar) lay every tile out in a single row, so no
        filler tiles are needed and node ids match ring positions.
        """
        tiles_needed = config.num_tiles
        if not TOPOLOGY_KINDS[config.noc_topology].is_grid:
            width = tiles_needed
            height = 1
        else:
            width = max(1, math.isqrt(tiles_needed))
            if width * width < tiles_needed:
                width += 1
            height = math.ceil(tiles_needed / width)
        roles: Dict[int, TileRole] = {}
        node = 0
        for _ in range(config.num_processors):
            roles[node] = TileRole.PROCESSOR
            node += 1
        if config.kind is not SystemKind.CPU_ONLY:
            roles[node] = TileRole.CONTROL
            node += 1
            for _ in range(max(0, config.num_memory_hubs - 1)):
                roles[node] = TileRole.MEMORY
                node += 1
        for filler in range(node, width * height):
            roles[filler] = TileRole.SOCKET_ONLY
        return cls(config=config, width=width, height=height, roles=roles)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TilePlan {self.config.name} {self.width}x{self.height}>"
