"""BFS benchmark (Dolly-P{4,8,16}M0, hardware augmentation).

Level-synchronous parallel breadth-first search over a random sparse graph.
The processor-only baseline keeps the current/next frontiers in shared
memory: appends to the next frontier are serialized by a spin lock and the
level change is a software barrier — both of which scale poorly (the paper
notes the baseline slows down from 4 to 8 cores).  The accelerated versions
replace the frontier arrays with the eFPGA-emulated lock-free queues: pushes
and pops are single MMIO accesses to shadow-register FIFOs.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.accel.lockfree_queue import (
    END_OF_FRONTIER,
    FrontierQueueAccelerator,
    REG_LEVEL_SIZE,
    REG_NUM_CORES,
    REG_POP,
    REG_PUSH,
    STOP_COMMAND,
    SWAP_COMMAND,
    register_layout,
)
from repro.core.shadow_registers import BOGUS_VALUE
from repro.cpu.sync import Barrier, SpinLock
from repro.platform.config import SystemKind
from repro.workloads.common import BenchmarkResult, WorkloadParams, build_benchmark_system, finalize_result

DEFAULT_VERTICES = 96
DEFAULT_DEGREE = 3
WORD_BYTES = 8
#: Software cost of scanning one neighbour (index math, visited check).
NEIGHBOR_OPS = 5


def _make_graph(vertices: int, degree: int, seed: int) -> List[List[int]]:
    rng = random.Random(seed)
    adjacency: List[List[int]] = [[] for _ in range(vertices)]
    for vertex in range(vertices):
        neighbors = {(vertex + 1) % vertices}
        for _ in range(degree - 1):
            neighbors.add(rng.randrange(vertices))
        neighbors.discard(vertex)
        adjacency[vertex] = sorted(neighbors)
    return adjacency


def _reference_levels(adjacency: List[List[int]], source: int = 0) -> List[int]:
    from collections import deque

    levels = [-1] * len(adjacency)
    levels[source] = 0
    queue = deque([source])
    while queue:
        vertex = queue.popleft()
        for neighbor in adjacency[vertex]:
            if levels[neighbor] < 0:
                levels[neighbor] = levels[vertex] + 1
                queue.append(neighbor)
    return levels


def _layout_graph(system, adjacency) -> Dict[str, int]:
    vertices = len(adjacency)
    edges = sum(len(neighbors) for neighbors in adjacency)
    rowptr_base = system.memory.allocate((vertices + 2) * WORD_BYTES, align=64)
    edges_base = system.memory.allocate((edges + 1) * WORD_BYTES, align=64)
    levels_base = system.memory.allocate(vertices * WORD_BYTES, align=64)
    offset = 0
    for vertex, neighbors in enumerate(adjacency):
        system.memory.write_word(rowptr_base + vertex * WORD_BYTES, offset)
        for neighbor in neighbors:
            system.memory.write_word(edges_base + offset * WORD_BYTES, neighbor)
            offset += 1
    system.memory.write_word(rowptr_base + vertices * WORD_BYTES, offset)
    for vertex in range(vertices):
        system.memory.write_word(levels_base + vertex * WORD_BYTES, 0)
    return {"rowptr": rowptr_base, "edges": edges_base, "levels": levels_base,
            "edge_count": offset}


def _check_levels(system, layout, adjacency) -> bool:
    expected = _reference_levels(adjacency)
    measured = []
    for vertex in range(len(adjacency)):
        value = system.memory.read_word(layout["levels"] + vertex * WORD_BYTES)
        measured.append(value - 1 if value > 0 else (0 if vertex == 0 else -1))
    return measured == expected


def run_cpu(params: Optional[WorkloadParams] = None, vertices: int = DEFAULT_VERTICES,
            degree: int = DEFAULT_DEGREE) -> BenchmarkResult:
    params = params or WorkloadParams(num_processors=4)
    system = build_benchmark_system(SystemKind.CPU_ONLY, params)
    adjacency = _make_graph(vertices, degree, params.seed)
    layout = _layout_graph(system, adjacency)
    num_cores = params.num_processors
    for core in range(num_cores):
        system.warm_cache(core, layout["rowptr"], (vertices + 1) * WORD_BYTES)
        system.warm_cache(core, layout["edges"], layout["edge_count"] * WORD_BYTES)

    # Shared frontier arrays in simulated memory, protected by a spin lock.
    frontier_base = system.memory.allocate((vertices + 4) * WORD_BYTES, align=64)
    next_base = system.memory.allocate((vertices + 4) * WORD_BYTES, align=64)
    counters_base = system.memory.allocate(4 * WORD_BYTES, align=64)  # [cur_size, next_size]
    lock = SpinLock(system.memory)
    barrier = Barrier(system.memory, num_cores)
    # Source vertex seeds the first frontier; levels stored as level+1 (0 = unvisited).
    system.memory.write_word(frontier_base, 0)
    system.memory.write_word(counters_base, 1)
    system.memory.write_word(layout["levels"], 1)

    def program(ctx, thread):
        current_base, other_base = frontier_base, next_base
        while True:
            frontier_size = yield from ctx.load(counters_base)
            if frontier_size == 0:
                return True
            # Each core takes a strided share of the current frontier.
            for slot in range(thread, frontier_size, num_cores):
                vertex = yield from ctx.load(current_base + slot * WORD_BYTES)
                level = yield from ctx.load(layout["levels"] + vertex * WORD_BYTES)
                start = yield from ctx.load(layout["rowptr"] + vertex * WORD_BYTES)
                end = yield from ctx.load(layout["rowptr"] + (vertex + 1) * WORD_BYTES)
                for edge in range(start, end):
                    neighbor = yield from ctx.load(layout["edges"] + edge * WORD_BYTES)
                    yield from ctx.compute(NEIGHBOR_OPS)
                    seen = yield from ctx.load(layout["levels"] + neighbor * WORD_BYTES)
                    if seen == 0:
                        # Claim the vertex and append it to the next frontier
                        # under the shared lock (the software bottleneck).
                        yield from lock.acquire(ctx)
                        seen_again = yield from ctx.load(layout["levels"] + neighbor * WORD_BYTES)
                        if seen_again == 0:
                            yield from ctx.store(layout["levels"] + neighbor * WORD_BYTES, level + 1)
                            next_size = yield from ctx.load(counters_base + WORD_BYTES)
                            yield from ctx.store(other_base + next_size * WORD_BYTES, neighbor)
                            yield from ctx.store(counters_base + WORD_BYTES, next_size + 1)
                        yield from lock.release(ctx)
            yield from barrier.wait(ctx, thread)
            if thread == 0:
                next_size = yield from ctx.load(counters_base + WORD_BYTES)
                yield from ctx.store(counters_base, next_size)
                yield from ctx.store(counters_base + WORD_BYTES, 0)
            yield from barrier.wait(ctx, thread)
            current_base, other_base = other_base, current_base

    assignments = [(core, program, (core,)) for core in range(num_cores)]
    _, elapsed = system.run_programs(assignments, max_events=400_000_000)
    return finalize_result(
        f"bfs/{num_cores}", SystemKind.CPU_ONLY, system, elapsed,
        correct=_check_levels(system, layout, adjacency),
        checksum=sum(system.memory.read_word(layout["levels"] + v * WORD_BYTES)
                     for v in range(vertices)),
    )


def run_accelerated(kind: SystemKind, params: Optional[WorkloadParams] = None,
                    vertices: int = DEFAULT_VERTICES, degree: int = DEFAULT_DEGREE) -> BenchmarkResult:
    params = params or WorkloadParams(num_processors=4, num_memory_hubs=0)
    params.num_memory_hubs = 0
    system = build_benchmark_system(kind, params)
    accelerator = FrontierQueueAccelerator()
    synthesis = system.install_accelerator(
        accelerator, registers=register_layout(), fpga_mhz=params.fpga_mhz
    )
    system.start_accelerator()
    adapter = system.adapter
    adjacency = _make_graph(vertices, degree, params.seed)
    layout = _layout_graph(system, adjacency)
    num_cores = params.num_processors
    barrier = Barrier(system.memory, num_cores)
    system.memory.write_word(layout["levels"], 1)
    #: Shared "this level did some work" flag used to detect termination.
    progress_flag = system.memory.allocate(system.memory.config.line_bytes)

    def program(ctx, thread):
        push_addr = adapter.register_addr(REG_PUSH)
        pop_addr = adapter.register_addr(REG_POP)
        if thread == 0:
            yield from ctx.mmio_write(adapter.register_addr(REG_NUM_CORES), num_cores)
            yield from ctx.mmio_write(push_addr, 0)           # seed the frontier
            yield from ctx.mmio_write(push_addr, SWAP_COMMAND)
        level = 1
        while True:
            # Pull vertices from the hardware queue until the level sentinel.
            processed_any = False
            while True:
                vertex = yield from ctx.mmio_read(pop_addr)
                if vertex == END_OF_FRONTIER or vertex == BOGUS_VALUE:
                    break
                processed_any = True
                start = yield from ctx.load(layout["rowptr"] + vertex * WORD_BYTES)
                end = yield from ctx.load(layout["rowptr"] + (vertex + 1) * WORD_BYTES)
                for edge in range(start, end):
                    neighbor = yield from ctx.load(layout["edges"] + edge * WORD_BYTES)
                    yield from ctx.compute(NEIGHBOR_OPS)
                    seen = yield from ctx.load(layout["levels"] + neighbor * WORD_BYTES)
                    if seen == 0:
                        claimed = yield from ctx.cas(layout["levels"] + neighbor * WORD_BYTES,
                                                     0, level + 1)
                        if claimed:
                            yield from ctx.mmio_write(push_addr, neighbor)
            if processed_any:
                yield from ctx.store(progress_flag, 1)
            yield from barrier.wait(ctx, thread)
            flag = yield from ctx.load(progress_flag)
            yield from barrier.wait(ctx, thread)
            if flag == 0:
                return True
            if thread == 0:
                yield from ctx.store(progress_flag, 0)
                yield from ctx.mmio_write(push_addr, SWAP_COMMAND)
            yield from barrier.wait(ctx, thread)
            level += 1

    assignments = [(core, program, (core,)) for core in range(num_cores)]
    _, elapsed = system.run_programs(assignments, max_events=400_000_000)
    system.sim.run_process(_stop(system, adapter), name="bfs-stop")
    return finalize_result(
        f"bfs/{num_cores}", kind, system, elapsed,
        correct=_check_levels(system, layout, adjacency),
        checksum=sum(system.memory.read_word(layout["levels"] + v * WORD_BYTES)
                     for v in range(vertices)),
        efpga_area_mm2=synthesis.area_mm2,
        extra={"fmax_mhz": synthesis.fmax_mhz},
    )


def _stop(system, adapter):
    ctx = system.context(0)
    yield from ctx.mmio_write(adapter.register_addr(REG_PUSH), STOP_COMMAND)


def run(kind: SystemKind, params: Optional[WorkloadParams] = None,
        vertices: int = DEFAULT_VERTICES, degree: int = DEFAULT_DEGREE) -> BenchmarkResult:
    if kind is SystemKind.CPU_ONLY:
        return run_cpu(params, vertices, degree)
    return run_accelerated(kind, params, vertices, degree)
