"""Streaming sorting-network accelerator (Dolly-P1M2, fine-grained acceleration).

The paper generates three sorting networks (32 / 64 / 128 double-word
integers) with the SPIRAL project.  The accelerator uses two Memory Hubs —
one to stream the unsorted slice in from coherent memory, one to stream the
sorted slice back out — so it can be pipelined over fixed-length slices of a
larger array that the processor then merge-sorts.

The behavioural model performs a real bitonic sort (so results are checked
functionally) and charges the latency/throughput of the corresponding
Batcher network: ``log2(n) * (log2(n)+1) / 2`` compare-exchange stages, one
column of comparators per cycle once the data is streamed in.
"""

from __future__ import annotations

import math
from typing import List

from repro.core.registers import RegisterKind, RegisterSpec
from repro.fpga.accelerator import SoftAccelerator
from repro.fpga.synthesis import AcceleratorDesign

STOP_COMMAND = (1 << 62)

REG_COMMAND = 0      # FPGA-bound FIFO: slice index to sort (or STOP_COMMAND)
REG_DONE = 1         # CPU-bound FIFO: completion notification (slice index)
REG_SRC_BASE = 2     # plain: base address of the input array
REG_DST_BASE = 3     # plain: base address of the output array

#: Sorted element width (the paper sorts 4-byte double-words).
ELEMENT_BYTES = 4
ELEMENTS_PER_WORD = 2   # two 4-byte elements per 8-byte memory word
LINE_BYTES = 16


def register_layout() -> List[RegisterSpec]:
    return [
        RegisterSpec(REG_COMMAND, RegisterKind.FPGA_BOUND_FIFO, "command"),
        RegisterSpec(REG_DONE, RegisterKind.CPU_BOUND_FIFO, "done"),
        RegisterSpec(REG_SRC_BASE, RegisterKind.PLAIN, "src_base"),
        RegisterSpec(REG_DST_BASE, RegisterKind.PLAIN, "dst_base"),
    ]


def pack_elements(elements: List[int]) -> List[int]:
    """Pack 4-byte elements two-per-word for the simulated memory."""
    words = []
    for index in range(0, len(elements), ELEMENTS_PER_WORD):
        low = elements[index] & 0xFFFF_FFFF
        high = (elements[index + 1] & 0xFFFF_FFFF) if index + 1 < len(elements) else 0
        words.append(low | (high << 32))
    return words


def unpack_words(words: List[int], count: int) -> List[int]:
    elements = []
    for word in words:
        elements.append(word & 0xFFFF_FFFF)
        elements.append((word >> 32) & 0xFFFF_FFFF)
    return elements[:count]


def sorting_network_stages(n: int) -> int:
    """Number of compare-exchange columns in a Batcher bitonic network."""
    log_n = int(math.log2(n))
    return log_n * (log_n + 1) // 2


def _design_for(size: int) -> AcceleratorDesign:
    # SPIRAL generates *streaming* networks: one column of size/2 comparators
    # is reused across stages, with BRAM-based permutation buffers between
    # stages.  That matches Table II's profile for the sorting networks —
    # modest CLB utilization but very high BRAM utilization, growing with the
    # sorted slice length.
    comparators = size // 2
    return AcceleratorDesign(
        name=f"sort{size}",
        luts=comparators * 70 + size * 8,
        ffs=comparators * 90 + size * 16,
        bram_kbits=352 + size * 4,
        dsps=0,
        logic_depth=10,
        routing_pressure=0.35,
        mem_ports=2,
        description=f"SPIRAL streaming sorting network, {size} x 4-byte keys",
    )


class SortingNetworkAccelerator(SoftAccelerator):
    """Sorts fixed-length slices of an array resident in coherent memory."""

    #: Supported slice sizes, matching the paper's sort/32, sort/64, sort/128.
    SUPPORTED_SIZES = (32, 64, 128)

    def __init__(self, size: int, name: str = "") -> None:
        if size not in self.SUPPORTED_SIZES:
            raise ValueError(f"unsupported sorting network size {size}")
        super().__init__(name or f"sort{size}")
        self.size = size
        self.DESIGN = _design_for(size)
        self.slices_sorted = 0

    @property
    def slice_bytes(self) -> int:
        return self.size * ELEMENT_BYTES

    def behavior(self):
        read_port = self.env.mem_ports[0]
        write_port = self.env.mem_ports[1]
        while True:
            command = yield from self.regs.pop_request(REG_COMMAND)
            if command == STOP_COMMAND:
                return self.slices_sorted
            src_base = yield from self.regs.read(REG_SRC_BASE)
            dst_base = yield from self.regs.read(REG_DST_BASE)
            slice_offset = command * self.slice_bytes
            # Stream the slice in: issue every line load back to back.
            pending = []
            for line in range(0, self.slice_bytes, LINE_BYTES):
                event = yield from read_port.issue("load_line", src_base + slice_offset + line)
                pending.append(event)
            words: List[int] = []
            for event in pending:
                words.extend((yield from read_port.wait(event)))
                yield self.cycles(1)
            elements = unpack_words(words, self.size)
            # The sorting network itself: one column of comparators per cycle.
            yield self.cycles(sorting_network_stages(self.size))
            elements.sort()
            # Stream the sorted slice out through the second Memory Hub.
            out_words = pack_elements(elements)
            store_events = []
            for index, word in enumerate(out_words):
                event = yield from write_port.issue(
                    "store", dst_base + slice_offset + index * 8, word
                )
                store_events.append(event)
            for event in store_events:
                yield from write_port.wait(event)
            yield from self.regs.push_response(REG_DONE, command)
            self.slices_sorted += 1
            self.stats.counter("slices").increment()
