"""Pluggable NoC topologies and deterministic routing.

The network model (:mod:`repro.noc.network`) is topology-agnostic: it asks a
:class:`Topology` for the directed-link route between two nodes and reserves
those links.  Every topology here produces *deterministic* routes — together
with FIFO links this yields the point-to-point ordering the coherence
protocol and the Proxy Cache depend on (see ``docs/noc.md``).

Four implementations are provided:

* :class:`Mesh2D` — the paper's OpenPiton P-Mesh, dimension-ordered (XY)
  routing.  Tiles are numbered row-major: node ``n`` sits at
  ``(x, y) = (n % width, n // width)``.
* :class:`Torus2D` — a mesh with wraparound links in both dimensions;
  XY routing taking the shorter direction per dimension (ties break toward
  increasing coordinates, keeping routes deterministic).
* :class:`Ring` — a 1D torus; shortest direction around the ring.
* :class:`Crossbar` — a full crossbar: every pair of distinct nodes is one
  hop apart (an idealized upper bound for scaling studies).

Routes are cached per (src, dst) pair and returned as immutable tuples —
the route tables are tiny (O(n²) entries) and route computation would
otherwise dominate the batched-injection fast path in
:meth:`repro.noc.network.NocNetwork.send`.

**Fault-aware routing** (the :mod:`repro.chaos` layer): any topology can
mark directed links dead via :meth:`Topology.fail_link`.  While links are
dead, routes whose primary (dimension-ordered) path crosses a dead link are
recomputed as the *deterministic shortest detour*: a breadth-first search
expanding neighbours in ascending node order, so the same fault set always
yields the same route on every machine.  :meth:`Topology.heal_link`
restores a link; both clear the route cache, and with no dead links the
fast path is byte-for-byte the PR 3 one (routes and cache behaviour are
unchanged — pinned by the NoC goldens).  A partitioned pair raises
:class:`NocRouteError`; :meth:`Topology.reachable` probes without raising.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set, Tuple

Link = Tuple[int, int]
Route = Tuple[Link, ...]


class NocRouteError(RuntimeError):
    """Raised when dead links leave a (src, dst) pair unreachable."""


class Topology:
    """Base class: node naming, route caching and the routing contract.

    Subclasses implement :meth:`hop_count`, :meth:`neighbors` and
    :meth:`_compute_route`; ``route`` wraps the latter with a per-pair
    cache.  The contract every implementation must honour (property-tested
    in ``tests/test_noc_topologies.py``):

    * ``len(route(src, dst)) == hop_count(src, dst)``;
    * the route is contiguous, starts at ``src``, ends at ``dst``, and each
      link ``(a, b)`` satisfies ``b in neighbors(a)``;
    * ``route(src, src) == ()`` — a local message never enters the fabric;
    * routes are deterministic (the same pair always yields the same route).
    """

    #: Short identifier used by configs, the factory and benchmarks.
    kind = "abstract"

    #: Whether the fabric is laid out on a width x height grid.  Non-grid
    #: (flat) fabrics are built over a plain node count, and tile planners
    #: lay them out in a single row (see ``TilePlan.plan``).
    is_grid = False

    def __init__(self, node_count: int) -> None:
        if node_count < 1:
            raise ValueError(f"a topology needs at least one node, got {node_count}")
        self.node_count = node_count
        self._route_cache: Dict[Tuple[int, int], Route] = {}
        #: Directed links currently marked dead (see :meth:`fail_link`).
        self._dead_links: Set[Link] = set()

    # ------------------------------------------------------------------ #
    # Routing contract
    # ------------------------------------------------------------------ #
    def route(self, src: int, dst: int) -> Route:
        """Directed-link route from ``src`` to ``dst`` (cached, immutable).

        An empty tuple means source and destination are the same node (the
        message never enters the network fabric).  With dead links present
        the primary route is replaced by the deterministic shortest detour;
        raises :class:`NocRouteError` when no path survives.
        """
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is None:
            self._check_node(src)
            self._check_node(dst)
            computed = tuple(self._compute_route(src, dst))
            if self._dead_links and any(link in self._dead_links
                                        for link in computed):
                computed = self._detour_route(src, dst)
            cached = self._route_cache[key] = computed
        return cached

    # ------------------------------------------------------------------ #
    # Link faults (the repro.chaos layer)
    # ------------------------------------------------------------------ #
    @property
    def dead_links(self) -> frozenset:
        return frozenset(self._dead_links)

    def fail_link(self, a: int, b: int, bidirectional: bool = True) -> None:
        """Mark the link ``a -> b`` (and, by default, ``b -> a``) dead.

        ``b`` must be a neighbour of ``a`` — failing a link that does not
        exist is a configuration error, not a fault.  Clears the route
        cache so every later :meth:`route` call re-routes around the fault.
        """
        self._check_node(a)
        self._check_node(b)
        if b not in self.neighbors(a):
            raise ValueError(
                f"no link {a} -> {b} in {self.kind} topology to fail")
        self._dead_links.add((a, b))
        if bidirectional:
            self._dead_links.add((b, a))
        self._route_cache.clear()

    def heal_link(self, a: int, b: int, bidirectional: bool = True) -> None:
        """Restore a previously failed link; clears the route cache."""
        self._dead_links.discard((a, b))
        if bidirectional:
            self._dead_links.discard((b, a))
        self._route_cache.clear()

    def reachable(self, src: int, dst: int) -> bool:
        """True when a path from ``src`` to ``dst`` survives the dead links."""
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            return True
        if not self._dead_links:
            return True
        return dst in self.reachable_set(src)

    def reachable_set(self, src: int) -> Set[int]:
        """Every node reachable from ``src`` over live links (includes src)."""
        self._check_node(src)
        seen = {src}
        frontier = deque((src,))
        dead = self._dead_links
        while frontier:
            node = frontier.popleft()
            for neighbor in self.neighbors(node):
                if neighbor not in seen and (node, neighbor) not in dead:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return seen

    def _detour_route(self, src: int, dst: int) -> Route:
        """Deterministic shortest path avoiding dead links (sorted BFS).

        Neighbours expand in ascending node order, so among equal-length
        detours the lexicographically smallest node sequence always wins —
        the same fault set yields the same route on every machine and
        ``PYTHONHASHSEED``.
        """
        if src == dst:
            return ()
        dead = self._dead_links
        parent: Dict[int, int] = {src: src}
        frontier = deque((src,))
        while frontier:
            node = frontier.popleft()
            for neighbor in sorted(self.neighbors(node)):
                if neighbor in parent or (node, neighbor) in dead:
                    continue
                parent[neighbor] = node
                if neighbor == dst:
                    frontier.clear()
                    break
                frontier.append(neighbor)
        if dst not in parent:
            raise NocRouteError(
                f"no route {src} -> {dst}: dead links "
                f"{sorted(self._dead_links)} partition the {self.kind} fabric")
        nodes = [dst]
        while nodes[-1] != src:
            nodes.append(parent[nodes[-1]])
        nodes.reverse()
        return tuple(zip(nodes, nodes[1:]))

    def hop_count(self, src: int, dst: int) -> int:
        raise NotImplementedError

    def neighbors(self, node: int) -> List[int]:
        raise NotImplementedError

    def _compute_route(self, src: int, dst: int) -> List[Link]:
        raise NotImplementedError

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.node_count):
            raise ValueError(
                f"node {node} outside {self.kind} topology of {self.node_count} nodes"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} n={self.node_count}>"


class Mesh2D(Topology):
    """A ``width`` x ``height`` 2D mesh with dimension-ordered (XY) routing."""

    kind = "mesh"
    is_grid = True

    def __init__(self, width: int, height: int) -> None:
        if width < 1 or height < 1:
            raise ValueError(f"mesh dimensions must be positive ({width}x{height})")
        super().__init__(width * height)
        self.width = width
        self.height = height

    def coordinates(self, node: int) -> Tuple[int, int]:
        """Return the ``(x, y)`` coordinates of ``node``."""
        self._check_node(node)
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        """Return the node id at coordinates ``(x, y)``."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"coordinates ({x}, {y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def hop_count(self, src: int, dst: int) -> int:
        """Manhattan distance between two nodes."""
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        return abs(sx - dx) + abs(sy - dy)

    def _compute_route(self, src: int, dst: int) -> List[Link]:
        links: List[Link] = []
        x, y = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        current = src
        while x != dx:
            x += 1 if dx > x else -1
            nxt = self.node_at(x, y)
            links.append((current, nxt))
            current = nxt
        while y != dy:
            y += 1 if dy > y else -1
            nxt = self.node_at(x, y)
            links.append((current, nxt))
            current = nxt
        return links

    def neighbors(self, node: int) -> List[int]:
        """Return the mesh neighbours of ``node``."""
        x, y = self.coordinates(node)
        result = []
        for nx, ny in ((x - 1, y), (x + 1, y), (x, y - 1), (x, y + 1)):
            if 0 <= nx < self.width and 0 <= ny < self.height:
                result.append(self.node_at(nx, ny))
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Mesh2D {self.width}x{self.height}>"


class Torus2D(Mesh2D):
    """A 2D torus: a mesh with wraparound links in both dimensions.

    Routing is still dimension-ordered (X first, then Y) but takes the
    shorter way around each dimension; when both directions are equally
    long (an even dimension, exactly half-way) the route goes in the
    increasing-coordinate direction so routes stay deterministic.
    """

    kind = "torus"

    @staticmethod
    def _steps(src_coord: int, dst_coord: int, size: int) -> Tuple[int, int]:
        """(number of hops, per-hop delta) along one wrapped dimension."""
        forward = (dst_coord - src_coord) % size
        if forward == 0:
            return 0, 0
        if 2 * forward <= size:
            return forward, 1
        return size - forward, -1

    def hop_count(self, src: int, dst: int) -> int:
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        return (self._steps(sx, dx, self.width)[0]
                + self._steps(sy, dy, self.height)[0])

    def _compute_route(self, src: int, dst: int) -> List[Link]:
        links: List[Link] = []
        x, y = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        current = src
        hops, step = self._steps(x, dx, self.width)
        for _ in range(hops):
            x = (x + step) % self.width
            nxt = self.node_at(x, y)
            links.append((current, nxt))
            current = nxt
        hops, step = self._steps(y, dy, self.height)
        for _ in range(hops):
            y = (y + step) % self.height
            nxt = self.node_at(x, y)
            links.append((current, nxt))
            current = nxt
        return links

    def neighbors(self, node: int) -> List[int]:
        x, y = self.coordinates(node)
        result = []
        for nx, ny in ((x - 1, y), (x + 1, y), (x, y - 1), (x, y + 1)):
            candidate = self.node_at(nx % self.width, ny % self.height)
            if candidate != node and candidate not in result:
                result.append(candidate)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Torus2D {self.width}x{self.height}>"


class Ring(Topology):
    """A unidirectional-link bidirectional ring (a 1D torus).

    Node ``i`` connects to ``(i - 1) % n`` and ``(i + 1) % n``; routes take
    the shorter way around, ties breaking toward increasing node ids.
    """

    kind = "ring"

    def hop_count(self, src: int, dst: int) -> int:
        self._check_node(src)
        self._check_node(dst)
        forward = (dst - src) % self.node_count
        return min(forward, self.node_count - forward)

    def _compute_route(self, src: int, dst: int) -> List[Link]:
        n = self.node_count
        forward = (dst - src) % n
        if forward == 0:
            return []
        step = 1 if 2 * forward <= n else -1
        hops = forward if step == 1 else n - forward
        links: List[Link] = []
        current = src
        for _ in range(hops):
            nxt = (current + step) % n
            links.append((current, nxt))
            current = nxt
        return links

    def neighbors(self, node: int) -> List[int]:
        self._check_node(node)
        n = self.node_count
        if n == 1:
            return []
        if n == 2:
            return [1 - node]
        return sorted({(node - 1) % n, (node + 1) % n})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Ring n={self.node_count}>"


class Crossbar(Topology):
    """A full crossbar: a dedicated link between every ordered node pair.

    Every message crosses exactly one link, so latency is distance-free and
    contention only arises between messages sharing the same (src, dst)
    pair and plane — an idealized upper bound for the scaling studies.
    """

    kind = "crossbar"

    def hop_count(self, src: int, dst: int) -> int:
        self._check_node(src)
        self._check_node(dst)
        return 0 if src == dst else 1

    def _compute_route(self, src: int, dst: int) -> List[Link]:
        if src == dst:
            return []
        return [(src, dst)]

    def neighbors(self, node: int) -> List[int]:
        self._check_node(node)
        return [other for other in range(self.node_count) if other != node]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Crossbar n={self.node_count}>"


#: Registry of constructible topology kinds (see :func:`make_topology`).
TOPOLOGY_KINDS: Dict[str, type] = {
    Mesh2D.kind: Mesh2D,
    Torus2D.kind: Torus2D,
    Ring.kind: Ring,
    Crossbar.kind: Crossbar,
}


def make_topology(kind: str, width: int, height: int = 1) -> Topology:
    """Build a topology of ``kind`` spanning ``width * height`` nodes.

    Grid kinds (``mesh``, ``torus``) use ``width`` x ``height`` directly;
    flat kinds (``ring``, ``crossbar``) flatten to ``width * height`` nodes
    so a tile plan sized for a grid maps onto any topology unchanged.
    """
    try:
        cls = TOPOLOGY_KINDS[kind]
    except KeyError:
        known = ", ".join(sorted(TOPOLOGY_KINDS))
        raise ValueError(f"unknown topology kind {kind!r}; known kinds: {known}") from None
    if cls.is_grid:
        return cls(width, height)
    return cls(width * height)
