"""Region allocator and pack/place-lite for partial reconfiguration.

A fabric is an array of K equal-capacity *regions* (contiguous column
bands, each with its own configuration chain — the PRGA structure).  A
design occupies a *contiguous span* of regions big enough for its tile
footprint; hot-swapping a design reprograms only its span.

Everything here is deterministic and ``PYTHONHASHSEED``-independent:
ordering uses tile counts, CRC-32 of names and lexicographic names — never
``hash()`` — and the allocator iterates plain lists, never set/dict order.

Two layers:

* :class:`RegionAllocator` — the free-list/occupancy state machine for one
  fabric: first-fit contiguous placement, LRU-span eviction of unpinned
  residents, pin counts protecting in-flight spans, and fragmentation
  accounting.
* :func:`pack_designs` — first-fit-decreasing static packing of a design
  set onto the grid (used for the initial layout and by the property
  tests as the reference packing).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


class PlacementError(RuntimeError):
    """Raised when a design cannot be placed on the region grid."""


def _span_needed(tiles: int, capacity: int) -> int:
    """Contiguous regions a ``tiles``-tile design needs at ``capacity``."""
    if tiles < 1:
        raise PlacementError(f"a design needs at least one tile, got {tiles}")
    return max(1, -(-tiles // capacity))


def sort_key(name: str, tiles: int) -> Tuple[int, int, str]:
    """Deterministic decreasing-size ordering with a CRC-32 tiebreak.

    Bigger designs first; equal sizes break on CRC-32 of the name, then
    the name itself — stable across processes and ``PYTHONHASHSEED``.
    """
    return (-tiles, zlib.crc32(name.encode()), name)


@dataclass(frozen=True)
class Placement:
    """Where a design landed: regions ``start .. start + count - 1``."""

    name: str
    start: int
    count: int
    #: Designs the allocator evicted to make room (in eviction order).
    evicted: Tuple[str, ...] = ()

    @property
    def regions(self) -> Tuple[int, ...]:
        return tuple(range(self.start, self.start + self.count))


class RegionAllocator:
    """Occupancy, pinning and LRU eviction for one fabric's region grid.

    Regions are equal-capacity (the planner guarantees it); occupancy is a
    per-region occupant name (or ``None``), pins are per-design counts, and
    recency is a logical clock bumped on every placement/touch — no wall
    clock, no hash iteration, so replays are exact.
    """

    def __init__(self, capacities: Sequence[int]) -> None:
        capacities = tuple(capacities)
        if not capacities:
            raise PlacementError("a region grid needs at least one region")
        if any(cap < 1 for cap in capacities):
            raise PlacementError(f"region capacities must be positive: {capacities}")
        if len(set(capacities)) != 1:
            raise PlacementError(
                f"regions must have equal capacity, got {capacities}")
        self.capacities = capacities
        self.capacity = capacities[0]
        self._occupants: List[Optional[str]] = [None] * len(capacities)
        self._pins: Dict[str, int] = {}
        self._last_used: Dict[str, int] = {}
        self._clock = 0
        self.evictions = 0
        self.placements = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def regions(self) -> int:
        return len(self._occupants)

    @property
    def occupants(self) -> Tuple[Optional[str], ...]:
        return tuple(self._occupants)

    def residents(self) -> Tuple[str, ...]:
        """Distinct resident designs in region order."""
        seen: List[str] = []
        for name in self._occupants:
            if name is not None and name not in seen:
                seen.append(name)
        return tuple(seen)

    def lookup(self, name: str) -> Optional[Tuple[int, ...]]:
        """The contiguous span ``name`` occupies, or ``None``."""
        span = tuple(index for index, occupant in enumerate(self._occupants)
                     if occupant == name)
        return span or None

    def is_pinned(self, name: str) -> bool:
        return self._pins.get(name, 0) > 0

    def span_needed(self, tiles: int) -> int:
        return _span_needed(tiles, self.capacity)

    def free_regions(self) -> int:
        return sum(1 for occupant in self._occupants if occupant is None)

    def _free_spans(self) -> List[Tuple[int, int]]:
        """Maximal runs of free regions as ``(start, length)`` pairs."""
        spans: List[Tuple[int, int]] = []
        run_start = None
        for index, occupant in enumerate(self._occupants):
            if occupant is None:
                if run_start is None:
                    run_start = index
            elif run_start is not None:
                spans.append((run_start, index - run_start))
                run_start = None
        if run_start is not None:
            spans.append((run_start, len(self._occupants) - run_start))
        return spans

    def fragmentation(self) -> float:
        """1 − (largest free run / total free regions); 0 when unfragmented.

        A fabric with 3 free regions in one run is usable by a 3-region
        design (fragmentation 0); the same 3 regions scattered are not
        (fragmentation 2/3).  Fully occupied grids report 0.
        """
        free = self.free_regions()
        if free == 0:
            return 0.0
        largest = max(length for _, length in self._free_spans())
        return 1.0 - largest / free

    def can_place(self, tiles: int, name: str = "") -> bool:
        """Whether ``place`` would succeed right now (eviction allowed)."""
        try:
            self._choose_span(name, self.span_needed(tiles), probe=True)
        except PlacementError:
            return False
        return True

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def place(self, name: str, tiles: int) -> Placement:
        """Place ``name`` on a contiguous span, evicting LRU if needed.

        First fit over free spans; when nothing free fits, repeatedly evict
        the least-recently-used *unpinned* resident until a span opens up.
        Raises :class:`PlacementError` when the design is wider than the
        grid or every potential victim is pinned.
        """
        if self.lookup(name) is not None:
            raise PlacementError(f"{name!r} is already resident")
        count = self.span_needed(tiles)
        start, evicted = self._choose_span(name, count, probe=False)
        for index in range(start, start + count):
            self._occupants[index] = name
        self._clock += 1
        self._last_used[name] = self._clock
        self.placements += 1
        return Placement(name=name, start=start, count=count,
                         evicted=tuple(evicted))

    def _choose_span(self, name: str, count: int,
                     probe: bool) -> Tuple[int, List[str]]:
        if count > self.regions:
            raise PlacementError(
                f"{name or 'design'} needs {count} regions, grid has "
                f"{self.regions}")
        occupants = list(self._occupants) if probe else self._occupants
        evicted: List[str] = []
        while True:
            run_start, run = None, 0
            for index, occupant in enumerate(occupants):
                if occupant is None:
                    if run_start is None:
                        run_start = index
                    run += 1
                    if run == count:
                        return run_start, evicted
                else:
                    run_start, run = None, 0
            victim = self._lru_victim(occupants)
            if victim is None:
                raise PlacementError(
                    f"no room for {name or 'design'}: {count} regions needed "
                    f"and every resident is pinned")
            evicted.append(victim)
            for index, occupant in enumerate(occupants):
                if occupant == victim:
                    occupants[index] = None
            if not probe:
                self._last_used.pop(victim, None)
                self.evictions += 1

    def _lru_victim(self, occupants: Sequence[Optional[str]]) -> Optional[str]:
        """Least-recently-used unpinned resident, or ``None``."""
        victim, victim_used = None, None
        for name in occupants:
            if name is None or self._pins.get(name, 0) > 0:
                continue
            used = self._last_used.get(name, 0)
            if victim_used is None or used < victim_used:
                victim, victim_used = name, used
        return victim

    def evict(self, name: str) -> None:
        """Remove ``name`` from the grid (explicit scrub/teardown path)."""
        if self.lookup(name) is None:
            raise PlacementError(f"{name!r} is not resident")
        if self.is_pinned(name):
            raise PlacementError(f"{name!r} is pinned; cannot evict")
        for index, occupant in enumerate(self._occupants):
            if occupant == name:
                self._occupants[index] = None
        self._last_used.pop(name, None)
        self.evictions += 1

    def pin(self, name: str) -> None:
        """Protect ``name``'s span from eviction (one pin per in-flight use)."""
        if self.lookup(name) is None:
            raise PlacementError(f"cannot pin non-resident {name!r}")
        self._pins[name] = self._pins.get(name, 0) + 1

    def unpin(self, name: str) -> None:
        """Drop one pin; tolerant of designs already evicted/scrubbed."""
        count = self._pins.get(name, 0)
        if count <= 1:
            self._pins.pop(name, None)
        else:
            self._pins[name] = count - 1

    def touch(self, name: str) -> None:
        """Mark ``name`` as just used (LRU recency bump)."""
        if self.lookup(name) is None:
            raise PlacementError(f"cannot touch non-resident {name!r}")
        self._clock += 1
        self._last_used[name] = self._clock

    def reset(self) -> None:
        """Clear all occupancy/pins (fabric heal or power cycle)."""
        self._occupants = [None] * self.regions
        self._pins.clear()
        self._last_used.clear()


def pack_designs(designs: Dict[str, int],
                 capacities: Sequence[int]) -> Dict[str, Placement]:
    """First-fit-decreasing static packing of ``{name: tiles}`` onto a grid.

    Deterministic: designs sorted by :func:`sort_key` (biggest first,
    CRC-32 then name tiebreak), placed first-fit without eviction.  Designs
    that do not fit are simply left out — at serve time they hot-swap in
    via :meth:`RegionAllocator.place`.
    """
    allocator = RegionAllocator(capacities)
    placements: Dict[str, Placement] = {}
    for name, tiles in sorted(designs.items(),
                              key=lambda item: sort_key(item[0], item[1])):
        span = allocator.span_needed(tiles)
        if span > allocator.regions:
            continue
        free = allocator._free_spans()
        if any(length >= span for _, length in free):
            placements[name] = allocator.place(name, tiles)
    return placements
