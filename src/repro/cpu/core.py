"""In-order core timing model and the software-visible CPU context.

A "program" is a Python generator function taking a :class:`CpuContext` as
its first argument.  The context exposes the primitives a bare-metal C
program would compile down to — loads, stores, atomics, MMIO accesses and
blocks of pure compute — and charges time for each through the core's cache
agent, MMIO port and clock domain.  Programs compose with ``yield from``,
mirroring how the rest of the simulator is written.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from repro.cpu.mmio import MmioPort
from repro.mem.private_cache import PrivateCacheAgent
from repro.sim import ClockDomain, Process, Simulator, StatSet


@dataclass
class CoreConfig:
    """Per-instruction costs of the in-order pipeline.

    The Ariane core is single-issue and in-order, so ALU work is one
    instruction per cycle; floating-point latency reflects the shared FPU.
    """

    issue_width: int = 1
    int_op_cycles: float = 1.0
    fp_op_cycles: float = 4.0
    branch_cycles: float = 1.0
    #: Fixed front-end overhead charged per memory instruction in addition
    #: to the cache access time.
    mem_issue_cycles: float = 1.0


class CpuContext:
    """What a program sees: the ISA-level interface of one core."""

    def __init__(self, core: "Core") -> None:
        self._core = core

    # -- identity ------------------------------------------------------- #
    @property
    def core_id(self) -> int:
        return self._core.core_id

    @property
    def sim(self) -> Simulator:
        return self._core.sim

    @property
    def now(self) -> float:
        return self._core.sim.now

    @property
    def memory(self):
        return self._core.cache.memory

    # -- compute -------------------------------------------------------- #
    def compute(self, instructions: float = 1.0, fp: bool = False):
        """Charge ``instructions`` worth of ALU/FPU work."""
        core = self._core
        config = core.config
        per_op = config.fp_op_cycles if fp else config.int_op_cycles
        cycles = max(1.0, instructions * per_op / config.issue_width)
        core._c_instructions.value += int(instructions)
        rounded = int(round(cycles))
        probe = core.power_probe
        if probe is not None:
            probe.core_active_cycles += rounded
        yield core.domain.wait_cycles(rounded)
        return None

    def stall(self, cycles: int):
        """Explicitly stall the pipeline for ``cycles`` core cycles.

        A stall is pipeline idling, not toggling — it charges no dynamic
        core energy (the clock tree and leakage still accrue with time).
        """
        yield self._core.domain.wait_cycles(cycles)
        return None

    # -- memory --------------------------------------------------------- #
    def load(self, addr: int):
        yield from self._issue()
        value = yield from self._core.cache.load(addr)
        self._core._c_loads.value += 1
        return value

    def store(self, addr: int, value: int = 0):
        yield from self._issue()
        yield from self._core.cache.store(addr, value)
        self._core._c_stores.value += 1
        return None

    def amo(self, addr: int, fn: Callable[[int], int]):
        """Atomic read-modify-write; returns the old value."""
        yield from self._issue()
        old = yield from self._core.cache.amo(addr, fn)
        self._core._c_atomics.value += 1
        return old

    def cas(self, addr: int, expected: int, desired: int):
        """Compare-and-swap; returns True on success."""
        old = yield from self.amo(addr, lambda v: desired if v == expected else v)
        return old == expected

    def fetch_add(self, addr: int, delta: int):
        old = yield from self.amo(addr, lambda v: v + delta)
        return old

    def swap(self, addr: int, value: int):
        old = yield from self.amo(addr, lambda v: value)
        return old

    def flush(self, addr: int):
        """Flush one line back to the LLC (used around DMA-style hand-offs)."""
        yield from self._core.cache.flush_line(addr)
        return None

    def fence(self):
        """Full fence: in this in-order model, a single-cycle drain."""
        yield self._core.domain.wait_cycles(1)
        return None

    # -- MMIO ----------------------------------------------------------- #
    def mmio_read(self, addr: int):
        if self._core.mmio is None:
            raise RuntimeError(f"core {self.core_id} has no MMIO port")
        value = yield from self._core.mmio.read(addr)
        return value

    def mmio_write(self, addr: int, value: int):
        if self._core.mmio is None:
            raise RuntimeError(f"core {self.core_id} has no MMIO port")
        yield from self._core.mmio.write(addr, value)
        return None

    def _issue(self):
        yield self._core.domain.wait_cycles(int(self._core.config.mem_issue_cycles))
        return None


#: A program is a callable producing a generator when given a CpuContext.
Program = Callable[..., Generator[Any, Any, Any]]


class Core:
    """One in-order processor: a clock domain, a cache agent and an MMIO port."""

    def __init__(
        self,
        sim: Simulator,
        domain: ClockDomain,
        core_id: int,
        cache: PrivateCacheAgent,
        mmio: Optional[MmioPort] = None,
        config: Optional[CoreConfig] = None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.domain = domain
        self.core_id = core_id
        self.cache = cache
        self.mmio = mmio
        self.config = config or CoreConfig()
        self.name = name or f"core{core_id}"
        #: Energy-accounting hook (see ``repro.power``); ``None`` unless the
        #: system was built with ``PowerConfig(enabled=True)``.
        self.power_probe = None
        self.stats = StatSet(f"{self.name}.stats")
        # Hot-loop stat objects, resolved once instead of per instruction.
        self._c_instructions = self.stats.counter("instructions")
        self._c_loads = self.stats.counter("loads")
        self._c_stores = self.stats.counter("stores")
        self._c_atomics = self.stats.counter("atomics")
        self.context = CpuContext(self)

    def run(self, program: Program, *args: Any, name: str = "", **kwargs: Any) -> Process:
        """Start ``program(ctx, *args, **kwargs)`` as a simulation process."""
        generator = program(self.context, *args, **kwargs)
        return self.sim.process(generator, name=name or f"{self.name}.{program.__name__}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Core {self.name} @{self.domain.freq_mhz:.0f}MHz>"
