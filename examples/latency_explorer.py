"""Communication-mechanism explorer (the Sec. V-C studies, interactively).

Run with:  python examples/latency_explorer.py [efpga_mhz ...]

For each requested eFPGA frequency the script measures the round-trip
latency of all six CPU–eFPGA communication mechanisms (Fig. 9) and the
bandwidth of the register-based mechanisms (Fig. 10), printing a comparison
of Duet's Proxy Cache / Shadow Registers against the FPSoC-style slow cache
and normal soft registers.

The same sweeps are available from the command line::

    python -m repro run fig9 -p fpga_mhz=100,500
    python -m repro sweep fig10 -p mechanism=shadow_reg,normal_reg \
        -p quad_words=64 --pivot mechanism fpga_mhz measured_mbytes_per_s
"""

import sys

from repro.api import Runner


def main():
    frequencies = [float(arg) for arg in sys.argv[1:]] or [100.0, 500.0]
    runner = Runner()
    latency = runner.run("fig9", fpga_mhz=frequencies)
    print(latency.to_table(
        columns=["mechanism", "fpga_mhz", "measured_roundtrip_ns"],
        headers=["Mechanism", "eFPGA MHz", "Round trip (ns)"],
        title="CPU-eFPGA round-trip latency (single transaction)",
    ))
    print()
    bandwidth = runner.run("fig10", mechanism=("shadow_reg", "normal_reg"),
                           fpga_mhz=frequencies, quad_words=64)
    print(bandwidth.to_table(
        columns=["mechanism", "fpga_mhz", "measured_mbytes_per_s"],
        headers=["Mechanism", "eFPGA MHz", "Bandwidth (MB/s)"],
        title="Register bandwidth, 64 quad-words",
    ))


if __name__ == "__main__":
    main()
