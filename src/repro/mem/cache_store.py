"""Set-associative tag store with LRU replacement.

This is the structural model shared by every cache in the system: the L1 and
private L2 of each core, the LLC shards, the hardware Proxy Cache of each
Memory Hub, and the eFPGA-emulated Soft Caches.  Only tags and per-line
metadata are stored — functional data lives in :class:`repro.mem.dram.MainMemory`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.mem.protocol import CoherenceState


@dataclass
class CacheEntry:
    """Metadata for one resident cache line."""

    line_addr: int
    state: CoherenceState = CoherenceState.INVALID
    dirty: bool = False
    #: Virtual page number stored beside the physical tag (Sec. II-D: the
    #: Proxy Cache keeps the VPN to reverse-map invalidations into a
    #: virtually-tagged soft cache).
    virtual_page: Optional[int] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def valid(self) -> bool:
        return self.state is not CoherenceState.INVALID


class SetAssociativeCache:
    """A classic set-associative cache with true-LRU replacement."""

    def __init__(self, size_bytes: int, line_bytes: int, assoc: int, name: str = "cache") -> None:
        if size_bytes <= 0 or line_bytes <= 0 or assoc <= 0:
            raise ValueError("cache geometry must be positive")
        if size_bytes % (line_bytes * assoc):
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by line*assoc "
                f"({line_bytes}*{assoc})"
            )
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.name = name
        self.num_sets = size_bytes // (line_bytes * assoc)
        # Each set is an OrderedDict keyed by line address; LRU at the front.
        self._sets: List["OrderedDict[int, CacheEntry]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    # Geometry helpers
    # ------------------------------------------------------------------ #
    @property
    def capacity_lines(self) -> int:
        return self.num_sets * self.assoc

    def set_index(self, line_addr: int) -> int:
        return (line_addr // self.line_bytes) % self.num_sets

    # ------------------------------------------------------------------ #
    # Lookup / insert / invalidate
    # ------------------------------------------------------------------ #
    def lookup(self, line_addr: int, touch: bool = True) -> Optional[CacheEntry]:
        """Return the resident entry for ``line_addr`` (None on miss)."""
        cache_set = self._sets[self.set_index(line_addr)]
        entry = cache_set.get(line_addr)
        if entry is None or not entry.valid:
            self.misses += 1
            return None
        if touch:
            cache_set.move_to_end(line_addr)
        self.hits += 1
        return entry

    def peek(self, line_addr: int) -> Optional[CacheEntry]:
        """Lookup without updating LRU or hit/miss statistics."""
        entry = self._sets[self.set_index(line_addr)].get(line_addr)
        if entry is not None and entry.valid:
            return entry
        return None

    def insert(
        self,
        line_addr: int,
        state: CoherenceState,
        dirty: bool = False,
        virtual_page: Optional[int] = None,
    ) -> Optional[CacheEntry]:
        """Install ``line_addr``; returns the evicted victim entry, if any."""
        cache_set = self._sets[self.set_index(line_addr)]
        victim: Optional[CacheEntry] = None
        if line_addr not in cache_set and len(cache_set) >= self.assoc:
            _, victim = cache_set.popitem(last=False)
            self.evictions += 1
        entry = CacheEntry(line_addr, state=state, dirty=dirty, virtual_page=virtual_page)
        cache_set[line_addr] = entry
        cache_set.move_to_end(line_addr)
        return victim

    def invalidate(self, line_addr: int) -> Optional[CacheEntry]:
        """Remove ``line_addr``; returns the removed entry (None if absent)."""
        cache_set = self._sets[self.set_index(line_addr)]
        return cache_set.pop(line_addr, None)

    def invalidate_all(self) -> int:
        """Flush every line; returns the number of lines removed."""
        removed = 0
        for cache_set in self._sets:
            removed += len(cache_set)
            cache_set.clear()
        return removed

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return sum(len(cache_set) for cache_set in self._sets)

    def __contains__(self, line_addr: int) -> bool:
        return self.peek(line_addr) is not None

    def entries(self) -> Iterator[CacheEntry]:
        for cache_set in self._sets:
            yield from cache_set.values()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SetAssociativeCache {self.name} {self.size_bytes}B "
            f"{self.num_sets}x{self.assoc} lines={len(self)}>"
        )
