"""Unit and property tests for Channel and the clock-domain-crossing AsyncFifo."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import AsyncFifo, Channel, ClockDomain, Delay, QueueFullError, Simulator


# --------------------------------------------------------------------------- #
# Channel
# --------------------------------------------------------------------------- #
def test_channel_fifo_order():
    sim = Simulator()
    channel = Channel(sim)

    def producer():
        for i in range(5):
            yield from channel.put(i)
            yield Delay(1.0)

    def consumer():
        received = []
        for _ in range(5):
            item = yield from channel.get()
            received.append(item)
        return received

    sim.process(producer())
    consumer_proc = sim.process(consumer())
    sim.run()
    assert consumer_proc.done.value == [0, 1, 2, 3, 4]


def test_channel_capacity_blocks_producer():
    sim = Simulator()
    channel = Channel(sim, capacity=2)
    produced_times = []

    def producer():
        for i in range(4):
            yield from channel.put(i)
            produced_times.append(sim.now)

    def consumer():
        for _ in range(4):
            yield Delay(10.0)
            yield from channel.get()

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    # The first two puts complete immediately; later puts wait for space.
    assert produced_times[0] == produced_times[1] == 0.0
    assert produced_times[2] >= 10.0
    assert produced_times[3] >= 20.0


def test_channel_try_put_full_raises():
    sim = Simulator()
    channel = Channel(sim, capacity=1)
    channel.try_put("a")
    with pytest.raises(QueueFullError):
        channel.try_put("b")


def test_channel_latency_delays_delivery():
    sim = Simulator()
    channel = Channel(sim, latency_ns=5.0)
    channel.try_put("x")

    def consumer():
        item = yield from channel.get()
        return sim.now, item

    when, item = sim.run_process(consumer())
    assert item == "x"
    assert when == pytest.approx(5.0)


# --------------------------------------------------------------------------- #
# AsyncFifo
# --------------------------------------------------------------------------- #
def _make_domains(sim, fast_mhz=1000.0, slow_mhz=100.0):
    return ClockDomain(sim, fast_mhz, "fast"), ClockDomain(sim, slow_mhz, "slow")


def test_async_fifo_crossing_latency_into_slow_domain():
    """Fast->slow crossing costs roughly sync_stages slow cycles."""
    sim = Simulator()
    fast, slow = _make_domains(sim)
    fifo = AsyncFifo(sim, fast, slow, sync_stages=2)

    def producer():
        yield from fifo.put("msg")
        return sim.now

    def consumer():
        item = yield from fifo.get()
        return sim.now, item

    producer_proc = sim.process(producer())
    consumer_proc = sim.process(consumer())
    sim.run()
    push_time = producer_proc.done.value
    pop_time, item = consumer_proc.done.value
    assert item == "msg"
    # Pushed on the first fast edge (1 ns); visible on the 2nd slow edge
    # after that (20 ns).
    assert push_time == pytest.approx(1.0)
    assert pop_time == pytest.approx(20.0)


def test_async_fifo_crossing_latency_into_fast_domain():
    """Slow->fast crossing costs only a couple of fast cycles after the push."""
    sim = Simulator()
    fast, slow = _make_domains(sim)
    fifo = AsyncFifo(sim, slow, fast, sync_stages=2)

    def producer():
        yield from fifo.put("msg")
        return sim.now

    def consumer():
        yield from fifo.get()
        return sim.now

    producer_proc = sim.process(producer())
    consumer_proc = sim.process(consumer())
    sim.run()
    push_time = producer_proc.done.value
    pop_time = consumer_proc.done.value
    assert push_time == pytest.approx(10.0)  # first slow edge
    assert pop_time == pytest.approx(12.0)  # two fast edges later


def test_async_fifo_preserves_order():
    sim = Simulator()
    fast, slow = _make_domains(sim)
    fifo = AsyncFifo(sim, fast, slow, capacity=16)

    def producer():
        for i in range(10):
            yield from fifo.put(i)

    def consumer():
        out = []
        for _ in range(10):
            out.append((yield from fifo.get()))
        return out

    sim.process(producer())
    consumer_proc = sim.process(consumer())
    sim.run()
    assert consumer_proc.done.value == list(range(10))


def test_async_fifo_backpressure_when_full():
    sim = Simulator()
    fast, slow = _make_domains(sim)
    fifo = AsyncFifo(sim, fast, slow, capacity=2)
    push_times = []

    def producer():
        for i in range(4):
            yield from fifo.put(i)
            push_times.append(sim.now)

    def consumer():
        for _ in range(4):
            yield from fifo.get()
            yield slow.wait_cycles(5)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert len(push_times) == 4
    # The third and fourth pushes must wait for pops in the slow domain.
    assert push_times[2] > push_times[1]
    assert push_times[3] > push_times[2]


def test_async_fifo_try_put_respects_capacity():
    sim = Simulator()
    fast, slow = _make_domains(sim)
    fifo = AsyncFifo(sim, fast, slow, capacity=1)
    assert fifo.try_put("a") is True
    assert fifo.try_put("b") is False


def test_async_fifo_rejects_bad_configuration():
    sim = Simulator()
    fast, slow = _make_domains(sim)
    with pytest.raises(Exception):
        AsyncFifo(sim, fast, slow, capacity=0)
    with pytest.raises(Exception):
        AsyncFifo(sim, fast, slow, sync_stages=0)


@settings(deadline=None, max_examples=30)
@given(
    push_mhz=st.sampled_from([20.0, 100.0, 500.0, 1000.0]),
    pop_mhz=st.sampled_from([20.0, 100.0, 500.0, 1000.0]),
    count=st.integers(min_value=1, max_value=20),
    sync_stages=st.integers(min_value=1, max_value=4),
)
def test_async_fifo_property_order_and_latency(push_mhz, pop_mhz, count, sync_stages):
    """All items arrive, in order, and never earlier than the CDC latency."""
    sim = Simulator()
    push = ClockDomain(sim, push_mhz, "push")
    pop = ClockDomain(sim, pop_mhz, "pop")
    fifo = AsyncFifo(sim, push, pop, capacity=4, sync_stages=sync_stages)
    arrivals = []

    def producer():
        for i in range(count):
            yield from fifo.put(i)

    def consumer():
        for _ in range(count):
            item = yield from fifo.get()
            arrivals.append((sim.now, item))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert [item for _, item in arrivals] == list(range(count))
    # Each arrival is on/after a pop edge that is at least sync_stages pop
    # cycles after simulation start (the earliest possible commit).
    min_latency = pop.edge_after(push.next_edge(0.0), sync_stages)
    assert arrivals[0][0] >= min_latency - 1e-9
    assert all(arrivals[i][0] <= arrivals[i + 1][0] for i in range(len(arrivals) - 1))


def test_async_fifo_visible_time_cache_matches_direct_computation():
    """The memoized visibility computation must be bit-identical to the
    uncached edge arithmetic, including across a pop-domain retune."""
    sim = Simulator()
    push = ClockDomain(sim, 700.0, "push")
    pop = ClockDomain(sim, 300.0, "pop")
    fifo = AsyncFifo(sim, push, pop, sync_stages=2)
    commits = [0.0, 0.1, 0.1, 3.3, 3.3, 7.9, 7.9, 2.0]
    for commit in commits:
        expected = ClockDomain(sim, 300.0, "ref").edge_after(commit, 2)
        assert fifo._visible_time(commit) == expected
        assert fifo._visible_time(commit) == expected  # cache hit path
    pop.freq_mhz = 150.0
    expected = ClockDomain(sim, 150.0, "ref").edge_after(0.1, 2)
    assert fifo._visible_time(0.1) == expected
