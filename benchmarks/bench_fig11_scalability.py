"""Fig. 11: per-processor register bandwidth under multi-processor contention."""

from conftest import FULL

from repro.api import Runner, get_experiment


def test_fig11_register_scalability(benchmark):
    processor_counts = (1, 2, 4, 8, 16) if FULL else (1, 2, 4)
    accesses = 64 if FULL else 16
    results = benchmark.pedantic(
        Runner().run, args=("fig11",),
        kwargs={"num_processors": processor_counts, "accesses_per_processor": accesses},
        rounds=1, iterations=1,
    )
    print()
    print(results.to_table(
        columns=["mechanism", "operation", "num_processors", "per_processor_mbytes_per_s"],
        headers=["Mechanism", "Op", "Processors", "Per-CPU MB/s"],
        title=get_experiment("fig11").title,
    ))
    by_key = {(r.mechanism, r.operation, r.num_processors):
              r.per_processor_mbytes_per_s for r in results}
    # Shape checks mirroring the paper: shadow registers sustain much higher
    # per-processor bandwidth than normal registers at every processor count,
    # and they degrade more gracefully as contention grows.
    for operation in ("read", "write"):
        for count in processor_counts:
            assert by_key[("shadow_reg", operation, count)] > by_key[("normal_reg", operation, count)]
    mid = processor_counts[len(processor_counts) // 2]
    shadow_drop = by_key[("shadow_reg", "write", 1)] / by_key[("shadow_reg", "write", mid)]
    normal_drop = by_key[("normal_reg", "write", 1)] / by_key[("normal_reg", "write", mid)]
    assert shadow_drop <= normal_drop * 1.5
