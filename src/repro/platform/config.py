"""System-level configuration: the Dolly-PpMm naming scheme of Sec. IV."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.core.adapter import AdapterConfig
from repro.core.memory_hub import MODE_DUET, MODE_FPSOC
from repro.cpu.core import CoreConfig
from repro.mem.config import MemoryConfig
from repro.noc.topology import TOPOLOGY_KINDS
from repro.power.model import PowerConfig


class SystemKind(enum.Enum):
    """The three systems compared throughout the evaluation."""

    CPU_ONLY = "cpu"
    DUET = "duet"
    FPSOC = "fpsoc"

    @property
    def has_fpga(self) -> bool:
        return self is not SystemKind.CPU_ONLY


@dataclass
class DollyConfig:
    """Configuration of one simulated chip (Dolly-PpMm or a baseline).

    ``num_processors`` is the paper's ``p`` and ``num_memory_hubs`` its ``m``.
    The processors and the hardware cache system run at ``system_mhz``
    (1 GHz in the evaluation, Sec. V-A); the eFPGA clock is set per
    experiment, bounded by the installed accelerator's Fmax.
    ``noc_topology`` selects the interconnect fabric: ``"mesh"`` (the
    paper's P-Mesh, the default), ``"torus"``, ``"ring"`` or ``"crossbar"``
    — see ``docs/noc.md`` for the trade-offs.  ``power`` enables the energy
    accounting layer of :mod:`repro.power` (disabled by default, in which
    case timing is bit-identical to a build without the power subsystem —
    see ``docs/power.md``).
    """

    num_processors: int = 1
    num_memory_hubs: int = 1
    kind: SystemKind = SystemKind.DUET
    system_mhz: float = 1000.0
    fpga_mhz: Optional[float] = None
    sync_stages: int = 2
    scratchpad_bytes: int = 8192
    noc_topology: str = "mesh"
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    core: CoreConfig = field(default_factory=CoreConfig)
    power: PowerConfig = field(default_factory=PowerConfig)

    def __post_init__(self) -> None:
        if self.num_processors < 1:
            raise ValueError("a system needs at least one processor")
        if self.num_memory_hubs < 0:
            raise ValueError("the number of memory hubs cannot be negative")
        if self.kind is SystemKind.CPU_ONLY and self.num_memory_hubs:
            raise ValueError("a processor-only system has no memory hubs")
        if self.system_mhz <= 0:
            raise ValueError(
                f"system_mhz must be positive, got {self.system_mhz} "
                "(the system clock drives every hard component)"
            )
        if self.fpga_mhz is not None and self.fpga_mhz <= 0:
            raise ValueError(
                f"fpga_mhz must be positive when set, got {self.fpga_mhz} "
                "(leave it None to run at the accelerator's post-route Fmax)"
            )
        # Validate the topology name here, at configuration time, so a typo
        # fails immediately with the full list of valid fabrics instead of
        # surfacing later inside make_topology during system construction.
        # Case and surrounding whitespace are normalized first, so
        # ``noc_topology="Mesh"`` selects the mesh rather than erroring.
        normalized = str(self.noc_topology).strip().lower()
        if normalized not in TOPOLOGY_KINDS:
            known = ", ".join(sorted(TOPOLOGY_KINDS))
            raise ValueError(
                f"unknown NoC topology {self.noc_topology!r}; "
                f"valid topologies: {known}"
            )
        self.noc_topology = normalized

    # ------------------------------------------------------------------ #
    # Naming and layout helpers
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        if self.kind is SystemKind.CPU_ONLY:
            return f"CPU-P{self.num_processors}"
        prefix = "Dolly" if self.kind is SystemKind.DUET else "FPSoC"
        return f"{prefix}-P{self.num_processors}M{self.num_memory_hubs}"

    @property
    def num_adapter_tiles(self) -> int:
        """One C-tile plus one M-tile per Memory Hub beyond the first."""
        if self.kind is SystemKind.CPU_ONLY:
            return 0
        return 1 + max(0, self.num_memory_hubs - 1)

    @property
    def num_tiles(self) -> int:
        return self.num_processors + self.num_adapter_tiles

    @property
    def adapter_mode(self) -> str:
        return MODE_DUET if self.kind is SystemKind.DUET else MODE_FPSOC

    def adapter_config(self) -> AdapterConfig:
        return AdapterConfig(
            mode=self.adapter_mode,
            sync_stages=self.sync_stages,
            initial_fpga_mhz=self.fpga_mhz or 100.0,
            scratchpad_bytes=self.scratchpad_bytes,
        )

    @classmethod
    def dolly(cls, processors: int, memory_hubs: int, **kwargs) -> "DollyConfig":
        """Shorthand for the paper's Dolly-PpMm naming."""
        return cls(num_processors=processors, num_memory_hubs=memory_hubs,
                   kind=SystemKind.DUET, **kwargs)

    @classmethod
    def fpsoc(cls, processors: int, memory_hubs: int, **kwargs) -> "DollyConfig":
        return cls(num_processors=processors, num_memory_hubs=memory_hubs,
                   kind=SystemKind.FPSOC, **kwargs)

    @classmethod
    def cpu_only(cls, processors: int, **kwargs) -> "DollyConfig":
        return cls(num_processors=processors, num_memory_hubs=0,
                   kind=SystemKind.CPU_ONLY, **kwargs)
