"""Queues used to connect components.

:class:`Channel` is a simple unbounded (or bounded) FIFO inside a single
clock domain — it is used for NoC injection queues and for modelling
hardware FIFOs whose two ends share a clock.

:class:`AsyncFifo` is the clock-domain-crossing FIFO described in Sec. IV of
the paper ("all asynchronous FIFOs are implemented with dual-clock RAMs and
Gray-coded, 2-stage synchronizers").  An item pushed on a source-domain edge
only becomes visible to the consumer ``sync_stages`` destination-domain
edges later; that hand-off latency is the CDC overhead that Figures 5, 6, 9
and 10 of the paper quantify.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional, Tuple

from repro.sim.clock import ClockDomain
from repro.sim.event import Event
from repro.sim.kernel import Delay, SimulationError, Simulator


class QueueFullError(SimulationError):
    """Raised by non-blocking puts when a bounded queue is full."""


class Channel:
    """A FIFO whose producer and consumer share a clock domain.

    ``get`` and ``put`` are sub-generators meant to be driven with
    ``yield from``.  ``try_put``/``try_get`` are the non-blocking variants.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: Optional[int] = None,
        latency_ns: float = 0.0,
        name: str = "channel",
    ) -> None:
        self.sim = sim
        self.capacity = capacity
        self.latency_ns = latency_ns
        self.name = name
        self._items: Deque[Tuple[float, Any]] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Event] = deque()
        # Waiter-event names, precomputed once instead of per blocked call.
        self._get_wait_name = f"{name}.get-wait"
        self._put_wait_name = f"{name}.put-wait"

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    # ------------------------------------------------------------------ #
    # Non-blocking interface
    # ------------------------------------------------------------------ #
    def try_put(self, item: Any) -> None:
        if self.is_full:
            raise QueueFullError(f"channel {self.name!r} full (capacity={self.capacity})")
        self._items.append((self.sim.now + self.latency_ns, item))
        self._wake_getter()

    def try_get(self) -> Any:
        if not self._items:
            raise SimulationError(f"channel {self.name!r} empty")
        ready_at, item = self._items.popleft()
        self._wake_putter()
        return item

    # ------------------------------------------------------------------ #
    # Blocking (generator) interface
    # ------------------------------------------------------------------ #
    def put(self, item: Any) -> Generator[Any, Any, None]:
        while self.is_full:
            waiter = Event(self.sim, self._put_wait_name)
            self._putters.append(waiter)
            yield waiter
        self._items.append((self.sim.now + self.latency_ns, item))
        self._wake_getter()

    def get(self) -> Generator[Any, Any, Any]:
        while not self._items:
            waiter = Event(self.sim, self._get_wait_name)
            self._getters.append(waiter)
            yield waiter
        ready_at, item = self._items.popleft()
        if ready_at > self.sim.now:
            yield Delay(ready_at - self.sim.now)
        self._wake_putter()
        return item

    # ------------------------------------------------------------------ #
    # Internal wakeups
    # ------------------------------------------------------------------ #
    def _wake_getter(self) -> None:
        if self._getters:
            self._getters.popleft().succeed()

    def _wake_putter(self) -> None:
        if self._putters:
            self._putters.popleft().succeed()


class AsyncFifo:
    """A dual-clock FIFO with an N-stage synchronizer on the read pointer.

    Timing model: a push is committed on the first *push-domain* rising edge
    at or after the put call; the pushed item becomes visible to the
    consumer on the ``sync_stages``-th *pop-domain* rising edge after the
    commit; a pop consumes the item on a pop-domain edge.  This reproduces
    the behaviour of Dolly's Gray-coded two-stage synchronizers, including
    the asymmetry between crossing into a slow domain (expensive) and
    crossing back into the fast domain (cheap relative to the slow period).
    """

    def __init__(
        self,
        sim: Simulator,
        push_domain: ClockDomain,
        pop_domain: ClockDomain,
        capacity: int = 8,
        sync_stages: int = 2,
        name: str = "async-fifo",
    ) -> None:
        if capacity < 1:
            raise SimulationError("AsyncFifo capacity must be >= 1")
        if sync_stages < 1:
            raise SimulationError("AsyncFifo sync_stages must be >= 1")
        self.sim = sim
        self.push_domain = push_domain
        self.pop_domain = pop_domain
        self.capacity = capacity
        self.sync_stages = sync_stages
        self.name = name
        self._items: Deque[Tuple[float, Any]] = deque()  # (visible_time, item)
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Event] = deque()
        self._get_wait_name = f"{name}.get-wait"
        self._put_wait_name = f"{name}.put-wait"
        # (commit_time, period, phase, visible): memo of the last visibility
        # computation.  Producers that commit several items on the same
        # push-domain edge (a burst) resolve the pop-domain alignment once;
        # everything else goes through the per-domain edge cache in
        # ClockDomain.next_edge instead of recomputing the floor-division.
        self._visible_cache = (-1.0, 0.0, 0.0, 0.0)
        self.total_pushed = 0
        self.total_popped = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    def _visible_time(self, commit_time: float) -> float:
        """When an item committed at ``commit_time`` becomes pop-visible."""
        pop_domain = self.pop_domain
        cache = self._visible_cache
        if (cache[0] == commit_time and cache[1] == pop_domain.period_ns
                and cache[2] == pop_domain.phase_ns):
            return cache[3]
        visible = pop_domain.edge_after(commit_time, self.sync_stages)
        self._visible_cache = (commit_time, pop_domain.period_ns,
                               pop_domain.phase_ns, visible)
        return visible

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #
    def put(self, item: Any) -> Generator[Any, Any, None]:
        """Push ``item``; blocks (in the push domain) while the FIFO is full."""
        # Align to the push-domain edge on which the write is committed.
        yield self.push_domain.align()
        while self.is_full:
            waiter = Event(self.sim, self._put_wait_name)
            self._putters.append(waiter)
            yield waiter
            yield self.push_domain.align()
        commit_time = self.sim.now
        self._items.append((self._visible_time(commit_time), item))
        self.total_pushed += 1
        self._wake_getter()

    def try_put(self, item: Any) -> bool:
        """Push without blocking; returns False if the FIFO is full.

        The commit is assumed to happen on the next push-domain edge, which
        is accurate for producers that already operate edge-aligned.
        """
        if self.is_full:
            return False
        commit_time = self.push_domain.next_edge(self.sim.now)
        self._items.append((self._visible_time(commit_time), item))
        self.total_pushed += 1
        self._wake_getter()
        return True

    # ------------------------------------------------------------------ #
    # Consumer side
    # ------------------------------------------------------------------ #
    def get(self) -> Generator[Any, Any, Any]:
        """Pop the oldest item; blocks until one is visible in the pop domain."""
        while True:
            while not self._items:
                waiter = Event(self.sim, self._get_wait_name)
                self._getters.append(waiter)
                yield waiter
            visible_time, item = self._items[0]
            if visible_time > self.sim.now:
                yield Delay(visible_time - self.sim.now)
                continue
            self._items.popleft()
            self.total_popped += 1
            self._wake_putter()
            return item

    def peek_visible(self) -> Optional[Any]:
        """Return (without removing) the head item if visible now, else None."""
        if self._items and self._items[0][0] <= self.sim.now:
            return self._items[0][1]
        return None

    # ------------------------------------------------------------------ #
    # Internal wakeups
    # ------------------------------------------------------------------ #
    def _wake_getter(self) -> None:
        if self._getters:
            self._getters.popleft().succeed()

    def _wake_putter(self) -> None:
        if self._putters:
            self._putters.popleft().succeed()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AsyncFifo {self.name} {self.push_domain.name}->{self.pop_domain.name} "
            f"depth={len(self._items)}/{self.capacity}>"
        )
