"""Software workloads: baselines, accelerated drivers and microbenchmarks.

Each application module provides ``run(kind, params)`` returning a
:class:`~repro.workloads.common.BenchmarkResult`, where ``kind`` selects the
processor-only baseline, the FPSoC-like baseline or Duet — the three systems
compared in Fig. 12.  :mod:`repro.workloads.synthetic` implements the
latency / bandwidth / scalability microbenchmarks of Sec. V-C (Figs. 9-11).

:data:`WORKLOAD_RUNNERS` names every application entry point so callers (the
experiment registry in :mod:`repro.api.registry`, scripts, notebooks) can
resolve workloads by name instead of importing each module.
"""

from typing import Callable, Dict

from repro.workloads import barnes_hut, bfs, dijkstra, pdes, popcount, sort, tangent
from repro.workloads.common import BenchmarkResult, WorkloadParams

#: Application entry points by name: ``run(kind, params, **kwargs)``.
WORKLOAD_RUNNERS: Dict[str, Callable[..., BenchmarkResult]] = {
    "tangent": tangent.run,
    "popcount": popcount.run,
    "sort": sort.run,
    "dijkstra": dijkstra.run,
    "barnes-hut": barnes_hut.run,
    "pdes": pdes.run,
    "bfs": bfs.run,
}


def get_workload(name: str) -> Callable[..., BenchmarkResult]:
    """Look up an application ``run`` entry point by name."""
    try:
        return WORKLOAD_RUNNERS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOAD_RUNNERS))
        raise KeyError(f"unknown workload {name!r}; known workloads: {known}") from None


__all__ = [
    "BenchmarkResult",
    "WorkloadParams",
    "WORKLOAD_RUNNERS",
    "get_workload",
]
