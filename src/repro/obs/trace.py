"""Request-lifecycle tracing on the simulated timeline.

A :class:`Tracer` records *spans* (an interval with a start and a
duration) and *instants* (a point event) stamped with the kernel's
integer-picosecond clock (``Simulator.now_ps``).  It is built to sit on
the serving hot path behind ``if tracer is not None`` checks, so the
recording side is deliberately spartan: slotted, no per-event object
graphs, just tuples appended to flat lists.

Two recording styles exist:

* :meth:`Tracer.complete` — the hot path.  The caller already knows both
  endpoints (it bracketed a ``yield from``), so one call records the
  whole span.
* :meth:`Tracer.begin` / :meth:`Tracer.end` — a per-track LIFO stack for
  callers that cannot carry the start timestamp across the code that
  runs in between.  ``end`` closes the innermost open span on that
  track, which is what makes nesting a structural guarantee rather than
  a convention (see ``tests/test_obs.py``).

Export is :meth:`Tracer.chrome_trace` / :meth:`Tracer.to_json`: the
Chrome trace-event format (``ph: "X"`` complete events, ``ph: "i"``
instants, ``ph: "M"`` process/thread-name metadata), loadable in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.  Timestamps
are emitted as the raw integer simulated picoseconds — viewers label the
axis "us", so read 1 displayed microsecond as 1 simulated picosecond
(the trace carries ``otherData.clock: "sim-ps"`` as a reminder).  The
JSON is fully deterministic: integer timestamps, a global sequence
number breaking sort ties, track ids assigned by sorted label (never
``hash()``/``id()``), and ``sort_keys=True`` serialization — two runs at
the same seed produce byte-identical files.

Track convention across the repo's hooks (see ``docs/observability.md``):
``pid`` is the fleet node (0 for single-node serve runs), ``tid`` is the
fabric (``fabric0``), the design track in region mode
(``fabric0/<design>``), the control hub (``fabric0.ctrl``), the
admission queue (``queue``) or the chaos injector (``chaos``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, NamedTuple, Optional, Tuple


class Span(NamedTuple):
    """One closed interval on a track (all times in integer sim-ps)."""

    pid: int
    tid: str
    name: str
    cat: str
    start_ps: int
    dur_ps: int
    args: Optional[Dict[str, Any]]
    seq: int


class Instant(NamedTuple):
    """One point event on a track."""

    pid: int
    tid: str
    name: str
    cat: str
    ts_ps: int
    args: Optional[Dict[str, Any]]
    seq: int


class Tracer:
    """Allocation-light span/instant recorder on the integer-ps timeline."""

    __slots__ = ("default_pid", "_spans", "_instants", "_stacks", "_seq")

    def __init__(self, default_pid: int = 0) -> None:
        self.default_pid = default_pid
        self._spans: List[Span] = []
        self._instants: List[Instant] = []
        #: (pid, tid) -> stack of open (name, cat, start_ps, args).
        self._stacks: Dict[Tuple[int, str], List[Tuple[str, str, int, Optional[dict]]]] = {}
        self._seq = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def complete(self, name: str, tid: str, start_ps: int, dur_ps: int,
                 cat: str = "", pid: Optional[int] = None,
                 args: Optional[Dict[str, Any]] = None) -> None:
        """Record a whole span at once (the hot-path entry point)."""
        if dur_ps < 0:
            raise ValueError(f"span {name!r} has negative duration {dur_ps}")
        self._spans.append(Span(self.default_pid if pid is None else pid,
                                tid, name, cat, start_ps, dur_ps, args, self._seq))
        self._seq += 1

    def begin(self, name: str, tid: str, ts_ps: int, cat: str = "",
              pid: Optional[int] = None,
              args: Optional[Dict[str, Any]] = None) -> None:
        """Open a span on ``(pid, tid)``; close it with :meth:`end`."""
        key = (self.default_pid if pid is None else pid, tid)
        self._stacks.setdefault(key, []).append((name, cat, ts_ps, args))

    def end(self, tid: str, ts_ps: int, pid: Optional[int] = None,
            args: Optional[Dict[str, Any]] = None) -> Span:
        """Close the innermost open span on ``(pid, tid)`` (LIFO)."""
        key = (self.default_pid if pid is None else pid, tid)
        stack = self._stacks.get(key)
        if not stack:
            raise ValueError(f"end() on track {key} with no open span")
        name, cat, start_ps, begin_args = stack.pop()
        if ts_ps < start_ps:
            stack.append((name, cat, start_ps, begin_args))
            raise ValueError(
                f"span {name!r} on track {key} ends at {ts_ps} before its "
                f"start {start_ps}")
        merged = begin_args
        if args:
            merged = dict(begin_args) if begin_args else {}
            merged.update(args)
        span = Span(key[0], tid, name, cat, start_ps, ts_ps - start_ps,
                    merged, self._seq)
        self._seq += 1
        self._spans.append(span)
        return span

    def instant(self, name: str, tid: str, ts_ps: int, cat: str = "",
                pid: Optional[int] = None,
                args: Optional[Dict[str, Any]] = None) -> None:
        self._instants.append(Instant(self.default_pid if pid is None else pid,
                                      tid, name, cat, ts_ps, args, self._seq))
        self._seq += 1

    # ------------------------------------------------------------------ #
    # Introspection (tests, decompose)
    # ------------------------------------------------------------------ #
    def open_depth(self, tid: str, pid: Optional[int] = None) -> int:
        key = (self.default_pid if pid is None else pid, tid)
        return len(self._stacks.get(key, ()))

    @property
    def spans(self) -> Tuple[Span, ...]:
        return tuple(self._spans)

    @property
    def instants(self) -> Tuple[Instant, ...]:
        return tuple(self._instants)

    @property
    def event_count(self) -> int:
        return len(self._spans) + len(self._instants)

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def _track_ids(self) -> Dict[Tuple[int, str], int]:
        """Integer thread ids per pid, assigned by sorted label.

        Chrome trace tids must be integers; sorting the labels makes the
        assignment a pure function of the recorded set — no ``hash()``,
        no insertion-order dependence.
        """
        labels = sorted({(s.pid, s.tid) for s in self._spans}
                        | {(i.pid, i.tid) for i in self._instants})
        ids: Dict[Tuple[int, str], int] = {}
        next_id: Dict[int, int] = {}
        for pid, tid in labels:
            next_id[pid] = next_id.get(pid, 0) + 1
            ids[(pid, tid)] = next_id[pid]
        return ids

    def chrome_trace(self) -> Dict[str, Any]:
        """The trace as a Chrome trace-event dict (Perfetto-loadable)."""
        ids = self._track_ids()
        events: List[Dict[str, Any]] = []
        for pid in sorted({pid for pid, _ in ids}):
            events.append({"ph": "M", "name": "process_name", "pid": pid,
                           "tid": 0, "args": {"name": f"node{pid}"}})
        for (pid, tid), tid_id in sorted(ids.items()):
            events.append({"ph": "M", "name": "thread_name", "pid": pid,
                           "tid": tid_id, "args": {"name": tid}})
        body: List[Tuple[int, int, int, int, Dict[str, Any]]] = []
        for span in self._spans:
            tid_id = ids[(span.pid, span.tid)]
            event = {"ph": "X", "name": span.name, "cat": span.cat or "span",
                     "pid": span.pid, "tid": tid_id,
                     "ts": span.start_ps, "dur": span.dur_ps}
            if span.args:
                event["args"] = span.args
            body.append((span.start_ps, span.pid, tid_id, span.seq, event))
        for inst in self._instants:
            tid_id = ids[(inst.pid, inst.tid)]
            event = {"ph": "i", "s": "t", "name": inst.name,
                     "cat": inst.cat or "instant",
                     "pid": inst.pid, "tid": tid_id, "ts": inst.ts_ps}
            if inst.args:
                event["args"] = inst.args
            body.append((inst.ts_ps, inst.pid, tid_id, inst.seq, event))
        body.sort(key=lambda item: item[:4])
        events.extend(event for *_, event in body)
        return {
            "displayTimeUnit": "ns",
            "otherData": {"clock": "sim-ps"},
            "traceEvents": events,
        }

    def to_json(self) -> str:
        """Deterministic serialization: byte-identical for identical runs."""
        return json.dumps(self.chrome_trace(), sort_keys=True,
                          separators=(",", ":")) + "\n"
