"""Silicon area model: Table I constants, eFPGA areas and ADP.

Table I of the paper reports the area and typical frequency of Dolly's hard
components (Ariane, the P-Mesh socket, the FPGA Manager + Soft Register
Interface, and the Coherent Memory Interface), scaled to 45 nm with a linear
MOSFET scaling model.  The evaluation then uses Area-Delay-Product (ADP) to
compare area efficiency: the processor-only baseline counts processors plus
the hardware cache system; the FPSoC adds the eFPGA silicon; Dolly further
adds the Duet Adapters (Sec. V-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional


@dataclass(frozen=True)
class Table1Row:
    """One row of Table I."""

    component: str
    technology: str
    area_mm2: float
    freq_mhz: float
    scaled_area_mm2: float
    scaled_freq_mhz: float


#: Table I, verbatim from the paper (45 nm-scaled columns included).
TABLE1_ROWS: List[Table1Row] = [
    Table1Row("Ariane", "GlobalFoundries 22nm FDX", 0.39, 910.0, 1.56, 455.0),
    Table1Row("P-Mesh Socket", "IBM 32nm SOI", 0.55, 1000.0, 1.10, 711.0),
    Table1Row("FPGA Mgr + Soft Reg Intf", "FreePDK45", 0.21, 925.0, 0.21, 925.0),
    Table1Row("Coherent Memory Intf", "FreePDK45", 0.04, 1250.0, 0.04, 1250.0),
]


def linear_scale_area(area_mm2: float, from_nm: float, to_nm: float) -> float:
    """Linear MOSFET scaling: area scales with the square of feature size."""
    return area_mm2 * (to_nm / from_nm) ** 2


def linear_scale_frequency(freq_mhz: float, from_nm: float, to_nm: float) -> float:
    """Linear MOSFET scaling: delay scales linearly with feature size."""
    return freq_mhz * (from_nm / to_nm)


class AreaModel:
    """Chip-level area accounting used for the ADP comparison of Fig. 12."""

    def __init__(self, rows: Optional[Iterable[Table1Row]] = None) -> None:
        rows = list(rows) if rows is not None else TABLE1_ROWS
        self._by_component: Dict[str, Table1Row] = {row.component: row for row in rows}

    # ------------------------------------------------------------------ #
    # Component areas (45 nm-scaled)
    # ------------------------------------------------------------------ #
    @property
    def ariane_mm2(self) -> float:
        return self._by_component["Ariane"].scaled_area_mm2

    @property
    def pmesh_socket_mm2(self) -> float:
        return self._by_component["P-Mesh Socket"].scaled_area_mm2

    @property
    def control_hub_mm2(self) -> float:
        return self._by_component["FPGA Mgr + Soft Reg Intf"].scaled_area_mm2

    @property
    def coherent_mem_intf_mm2(self) -> float:
        return self._by_component["Coherent Memory Intf"].scaled_area_mm2

    @property
    def reference_block_mm2(self) -> float:
        """The Table II normalization unit: one Ariane plus one P-Mesh socket."""
        return self.ariane_mm2 + self.pmesh_socket_mm2

    # ------------------------------------------------------------------ #
    # System areas
    # ------------------------------------------------------------------ #
    def processor_only_area(self, num_processors: int) -> float:
        """Processors plus the hardware cache system (one socket per core)."""
        return num_processors * (self.ariane_mm2 + self.pmesh_socket_mm2)

    def adapter_area(self, num_memory_hubs: int) -> float:
        """Duet Adapter hard logic: Control Hub + per-hub coherent interfaces.

        Each adapter tile (the C-tile and every M-tile) also carries a P-Mesh
        socket, which is counted here because those tiles exist only to host
        the adapter.
        """
        adapter_tiles = max(1, num_memory_hubs) if num_memory_hubs >= 0 else 1
        adapter_tiles = 1 + max(0, num_memory_hubs - 1)
        return (
            self.control_hub_mm2
            + num_memory_hubs * self.coherent_mem_intf_mm2
            + adapter_tiles * self.pmesh_socket_mm2
        )

    def fpsoc_area(self, num_processors: int, efpga_mm2: float) -> float:
        """FPSoC baseline: processor-only area plus the eFPGA silicon."""
        return self.processor_only_area(num_processors) + efpga_mm2

    def duet_area(self, num_processors: int, num_memory_hubs: int, efpga_mm2: float) -> float:
        """Dolly: FPSoC area plus the Duet Adapter hard logic."""
        return self.fpsoc_area(num_processors, efpga_mm2) + self.adapter_area(num_memory_hubs)

    # ------------------------------------------------------------------ #
    # Area-Delay Product
    # ------------------------------------------------------------------ #
    @staticmethod
    def adp(area_mm2: float, runtime_ns: float) -> float:
        return area_mm2 * runtime_ns

    def normalized_adp(
        self,
        area_mm2: float,
        runtime_ns: float,
        baseline_area_mm2: float,
        baseline_runtime_ns: float,
    ) -> float:
        """ADP relative to a baseline (lower is better, as in Fig. 12 bottom)."""
        baseline = self.adp(baseline_area_mm2, baseline_runtime_ns)
        if baseline <= 0:
            raise ValueError("baseline ADP must be positive")
        return self.adp(area_mm2, runtime_ns) / baseline
