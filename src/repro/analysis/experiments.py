"""Legacy experiment runners plus the paper's reference numbers.

The actual measurement logic now lives in the experiment registry
(:mod:`repro.api.registry`), where every table/figure is a named,
discoverable :class:`~repro.api.spec.ExperimentSpec` — enumerate them with
``python -m repro list`` and run them with :class:`repro.api.runner.Runner`
(optionally in parallel and with on-disk JSON caching under
``<cache_dir>/<experiment>/<key>.json``).

This module keeps two things:

* the paper-reported constants (``TABLE2_PAPER``, ``FIG9_PAPER``, ...) and
  the thirteen Fig. 12 :class:`ApplicationConfig` entries, which the
  registry wraps;
* thin backward-compatible shims — ``run_table1`` .. ``run_fig12`` — with
  the original signatures and return shapes (lists of dicts; a summary dict
  for Fig. 12), implemented on top of the new API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.platform.config import SystemKind  # noqa: F401  (re-exported for callers)
from repro.workloads import barnes_hut, bfs, dijkstra, pdes, popcount, sort, tangent
from repro.workloads.common import BenchmarkResult, WorkloadParams
from repro.workloads.synthetic import BANDWIDTH_MECHANISMS, LATENCY_MECHANISMS


# --------------------------------------------------------------------------- #
# Paper-reported reference numbers
# --------------------------------------------------------------------------- #
#: Paper-reported (max MHz, normalized area, CLB util, BRAM util) per accelerator.
TABLE2_PAPER = {
    "tangent": (282.0, 0.47, 0.84, 0.0),
    "popcount": (189.0, 2.77, 0.83, 0.56),
    "sort32": (228.0, 6.29, 0.30, 0.76),
    "sort64": (234.0, 8.10, 0.27, 0.92),
    "sort128": (228.0, 10.27, 0.27, 0.92),
    "dijkstra": (127.0, 1.94, 0.96, 0.31),
    "barnes-hut": (85.0, 14.22, 0.99, 0.05),
    "bfs": (208.0, 1.24, 0.61, 0.75),
    "pdes": (126.0, 2.77, 0.47, 0.56),
}

#: Paper round-trip latencies (ns) per mechanism at {100, 200, 500} MHz,
#: read off Fig. 9 (sum of the stacked components).
FIG9_PAPER = {
    "shadow_reg": {100: 42, 200: 42, 500: 42},
    "normal_reg": {100: 300, 200: 180, 500: 108},
    "cpu_pull_proxy": {100: 68, 200: 68, 500: 68},
    "cpu_pull_slow": {100: 229, 200: 133, 500: 72},
    "efpga_pull_proxy": {100: 172, 200: 112, 500: 78},
    "efpga_pull_slow": {100: 271, 200: 162, 500: 121},
}

#: Paper peak bandwidths (MB/s) quoted in Sec. V-C.
FIG10_PAPER_PEAKS = {
    "efpga_pull_proxy": 558.0,
    "cpu_pull_proxy": 201.0,
    "efpga_pull_slow": 287.0,
    "cpu_pull_slow": 144.0,
    "shadow_reg": 213.0,
    "normal_reg": 121.0,
}


# --------------------------------------------------------------------------- #
# Fig. 12 application configurations
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ApplicationConfig:
    """One bar group of Fig. 12."""

    label: str
    runner: Callable[..., BenchmarkResult]
    processors: int
    memory_hubs: int
    kwargs: Dict[str, object]
    paper_duet_speedup: Optional[float]
    paper_fpsoc_speedup: Optional[float]

    def params(self, seed: int = 2023) -> WorkloadParams:
        return WorkloadParams(num_processors=self.processors,
                              num_memory_hubs=self.memory_hubs, seed=seed)


#: The thirteen configurations of Fig. 12 with the paper's speedups where the
#: paper states them explicitly (call-outs in the text / figure labels).
APPLICATION_CONFIGS: List[ApplicationConfig] = [
    ApplicationConfig("tangent", tangent.run, 1, 0, {}, 2.8, 1.6),
    ApplicationConfig("popcount", popcount.run, 1, 1, {}, 1.9, 0.9),
    ApplicationConfig("sort/32", sort.run, 1, 2, {"slice_size": 32}, 9.8, 3.0),
    ApplicationConfig("sort/64", sort.run, 1, 2, {"slice_size": 64}, 12.9, 3.5),
    ApplicationConfig("sort/128", sort.run, 1, 2, {"slice_size": 128}, 16.2, 4.0),
    ApplicationConfig("dijkstra", dijkstra.run, 1, 1, {}, 1.5, 1.2),
    ApplicationConfig("barnes-hut", barnes_hut.run, 4, 1, {}, 3.2, 2.0),
    ApplicationConfig("pdes/4", pdes.run, 4, 1, {}, 2.8, 1.8),
    ApplicationConfig("pdes/8", pdes.run, 8, 1, {}, 4.0, 2.2),
    ApplicationConfig("pdes/16", pdes.run, 16, 1, {}, 15.1, 5.0),
    ApplicationConfig("bfs/4", bfs.run, 4, 0, {}, 3.5, 2.0),
    ApplicationConfig("bfs/8", bfs.run, 8, 0, {}, 9.0, 4.0),
    ApplicationConfig("bfs/16", bfs.run, 16, 0, {}, 24.9, 7.8),
]

#: Geometric means quoted in the paper for Fig. 12.
FIG12_PAPER_GEOMEAN = {"duet": 4.53, "fpsoc": 2.14}
FIG12_PAPER_ADP_GEOMEAN = {"duet": 0.61, "fpsoc": 1.23}


# --------------------------------------------------------------------------- #
# Backward-compatible runners (thin shims over repro.api)
# --------------------------------------------------------------------------- #
def _run_serial(experiment: str, **overrides) -> "repro.api.results.ResultSet":  # noqa: F821
    # Imported lazily: repro.api.registry imports this module for the
    # constants above, so a top-level import would be circular.
    from repro.api.runner import Runner

    return Runner().run(experiment, **overrides)


def run_table1() -> List[Dict[str, object]]:
    """Area and typical frequency of Dolly's hard components."""
    return _run_serial("table1").to_dicts()


def run_table2() -> List[Dict[str, object]]:
    """Clock frequency, area and utilization of the soft accelerators."""
    return _run_serial("table2").to_dicts()


def run_fig9(frequencies: Sequence[float] = (100.0, 200.0, 500.0),
             mechanisms: Sequence[str] = LATENCY_MECHANISMS) -> List[Dict[str, object]]:
    return _run_serial("fig9", mechanism=tuple(mechanisms),
                       fpga_mhz=tuple(frequencies)).to_dicts()


def run_fig10(frequencies: Sequence[float] = (20.0, 50.0, 100.0, 200.0, 500.0),
              mechanisms: Sequence[str] = BANDWIDTH_MECHANISMS,
              quad_words: int = 128) -> List[Dict[str, object]]:
    """Bandwidth sweep.  ``quad_words`` defaults to 128 (vs the paper's 512)
    to keep pure-Python simulation time reasonable; pass 512 for the full
    experiment."""
    return _run_serial("fig10", mechanism=tuple(mechanisms),
                       fpga_mhz=tuple(frequencies),
                       quad_words=quad_words).to_dicts()


def run_fig11(processor_counts: Sequence[int] = (1, 2, 4, 8, 16),
              accesses_per_processor: int = 32) -> List[Dict[str, object]]:
    return _run_serial("fig11", num_processors=tuple(processor_counts),
                       accesses_per_processor=accesses_per_processor).to_dicts()


def run_fig12(configs: Optional[Sequence[ApplicationConfig]] = None) -> Dict[str, object]:
    """Run every benchmark on the three systems; returns rows plus geomeans."""
    from repro.api.registry import _APP_BY_LABEL, fig12_row, fig12_summary

    configs = list(configs) if configs is not None else APPLICATION_CONFIGS
    if all(_APP_BY_LABEL.get(config.label) is config for config in configs):
        results = _run_serial("fig12", benchmark=tuple(c.label for c in configs))
        rows = results.to_dicts()
        summary_stats = dict(results.summary)
    else:
        # Ad-hoc configs (not in the registry) run through the same cell logic.
        rows = [fig12_row(config) for config in configs]
        summary_stats = fig12_summary(rows)
    summary: Dict[str, object] = {"rows": rows}
    summary.update(summary_stats)
    return summary
