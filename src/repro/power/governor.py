"""Per-domain DVFS governors.

A governor is a simulation process that wakes once per *epoch*, closes the
energy-accounting epoch (:meth:`EnergyModel.sample`), and decides the next
eFPGA frequency.  Retuning goes through the existing retune path — the
Control Hub's :class:`~repro.fpga.clocking.ProgrammableClockGenerator` —
so the accelerator Fmax clamp, the clock-edge cache invalidation and the
AsyncFifo visible-time memo invalidation all behave exactly as they do for
software-initiated retunes.

Three policies ship:

* :class:`FixedGovernor` — never retunes; it only keeps the per-epoch power
  trace ticking so Fixed runs are comparable against DVFS runs.
* :class:`LadderGovernor` — classic utilization-threshold stepping over a
  discrete frequency ladder: race-to-max when the eFPGA shows activity,
  step down one rung per idle epoch.
* :class:`EnergyCapGovernor` — keeps the epoch-average power under a
  budget: step down while over budget, step back up when comfortably under.

All decisions depend only on simulated state, so governed runs are exactly
as deterministic as ungoverned ones.
"""

from __future__ import annotations

from typing import Optional, Sequence, TYPE_CHECKING

from repro.sim import Delay

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.platform.dolly import DollySystem
    from repro.power.model import EnergyModel, EpochSample

#: Default frequency ladder (MHz).  ``set_frequency`` clamps every rung to
#: the installed accelerator's Fmax, so a ladder may effectively top out
#: below its nominal maximum.
DEFAULT_LADDER = (50.0, 100.0, 200.0, 400.0)


class Governor:
    """Base class: the epoch loop, the retune plumbing and the trace."""

    kind = "fixed"

    def __init__(self, epoch_ns: float = 1000.0, name: str = "") -> None:
        if epoch_ns <= 0:
            raise ValueError(f"governor epoch must be positive, got {epoch_ns}")
        self.epoch_ns = epoch_ns
        self.name = name or f"governor.{self.kind}"
        self.energy: Optional["EnergyModel"] = None
        self.clock_generator = None
        self.retunes = 0
        self.process = None

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #
    def attach(self, system: "DollySystem"):
        """Bind to ``system`` and start the epoch process; returns it."""
        if system.energy is None:
            raise RuntimeError(
                f"{self.name}: system {system.config.name} was built without "
                "power modeling (set PowerConfig(enabled=True))"
            )
        self.energy = system.energy
        if system.adapter is not None:
            self.clock_generator = system.adapter.clock_generator
        self.process = system.sim.process(self._run(), name=self.name)
        return self.process

    # ------------------------------------------------------------------ #
    # The epoch loop
    # ------------------------------------------------------------------ #
    def _run(self):
        epoch = Delay(self.epoch_ns)
        while True:
            yield epoch
            sample = self.energy.sample()
            target = self.decide(sample)
            if target is not None and self.clock_generator is not None:
                # Compare against what the generator would settle at: a
                # ladder rung above the accelerator's Fmax clamps to Fmax,
                # and repeating that request must not count (or act) as a
                # retune every epoch.
                target = self.clock_generator.clamp(target)
                if abs(target - self.clock_generator.frequency_mhz) > 1e-9:
                    self.clock_generator.set_frequency(target)
                    self.retunes += 1

    def decide(self, sample: "EpochSample") -> Optional[float]:
        """Return the next eFPGA frequency in MHz, or ``None`` to hold."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} epoch={self.epoch_ns}ns>"


class FixedGovernor(Governor):
    """No DVFS: the baseline every policy is compared against."""

    kind = "fixed"

    def __init__(self, freq_mhz: Optional[float] = None, epoch_ns: float = 1000.0,
                 name: str = "") -> None:
        super().__init__(epoch_ns=epoch_ns, name=name)
        self.freq_mhz = freq_mhz

    def attach(self, system: "DollySystem"):
        process = super().attach(system)
        if self.freq_mhz is not None and self.clock_generator is not None:
            self.clock_generator.set_frequency(self.freq_mhz)
        return process


class _LadderBase(Governor):
    """Shared rung bookkeeping for the stepping policies."""

    def __init__(self, freqs_mhz: Sequence[float] = DEFAULT_LADDER,
                 epoch_ns: float = 1000.0, name: str = "") -> None:
        super().__init__(epoch_ns=epoch_ns, name=name)
        freqs = tuple(sorted(float(f) for f in freqs_mhz))
        if not freqs or any(f <= 0 for f in freqs):
            raise ValueError(f"frequency ladder must be positive, got {freqs_mhz}")
        self.freqs_mhz = freqs
        self._rung = len(freqs) - 1

    def attach(self, system: "DollySystem"):
        process = super().attach(system)
        if self.clock_generator is not None:
            # Pin the starting point to the current (top) rung so every
            # policy is compared over the same frequency range, whatever
            # frequency the accelerator was installed at.
            self.clock_generator.set_frequency(self.freqs_mhz[self._rung])
        return process

    def _set_rung(self, rung: int) -> float:
        self._rung = max(0, min(len(self.freqs_mhz) - 1, rung))
        return self.freqs_mhz[self._rung]


class LadderGovernor(_LadderBase):
    """Utilization-threshold stepping: race to max on activity, ease down.

    ``up_threshold``/``down_threshold`` are fractions of elapsed eFPGA
    cycles that were *active* (the accelerator's own toggling, not
    memory-wait).  An idle accelerator sits at exactly zero, so the default
    thresholds amount to "any activity -> top rung, none -> step down" —
    race-to-idle, the policy that wins on bursty workloads.  ``patience``
    is the down-step hysteresis: only after that many *consecutive* idle
    epochs does the governor start descending, so sub-epoch gaps inside a
    burst (the accelerator briefly blocked on memory or on the command
    FIFO) do not bounce the clock.
    """

    kind = "ladder"

    def __init__(self, freqs_mhz: Sequence[float] = DEFAULT_LADDER,
                 up_threshold: float = 0.02, down_threshold: float = 0.002,
                 boost_to_max: bool = True, patience: int = 2,
                 epoch_ns: float = 1000.0, name: str = "") -> None:
        super().__init__(freqs_mhz=freqs_mhz, epoch_ns=epoch_ns, name=name)
        if not (0.0 <= down_threshold <= up_threshold <= 1.0):
            raise ValueError(
                f"need 0 <= down_threshold <= up_threshold <= 1, "
                f"got {down_threshold}/{up_threshold}"
            )
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        self.boost_to_max = boost_to_max
        self.patience = patience
        self._idle_epochs = 0

    def decide(self, sample: "EpochSample") -> Optional[float]:
        utilization = sample.fpga_utilization
        if utilization > self.down_threshold:
            # Any non-idle epoch — including mid-band ones that trigger no
            # step — restarts the "consecutive idle epochs" count.
            self._idle_epochs = 0
            if utilization >= self.up_threshold:
                if self.boost_to_max:
                    return self._set_rung(len(self.freqs_mhz) - 1)
                return self._set_rung(self._rung + 1)
            return None
        self._idle_epochs += 1
        if self._idle_epochs >= self.patience:
            return self._set_rung(self._rung - 1)
        return None


class EnergyCapGovernor(_LadderBase):
    """Keeps epoch-average power below ``budget_mw`` by stepping down."""

    kind = "energy_cap"

    def __init__(self, budget_mw: float, freqs_mhz: Sequence[float] = DEFAULT_LADDER,
                 headroom: float = 0.8, epoch_ns: float = 1000.0,
                 name: str = "") -> None:
        super().__init__(freqs_mhz=freqs_mhz, epoch_ns=epoch_ns, name=name)
        if budget_mw <= 0:
            raise ValueError(f"power budget must be positive, got {budget_mw}")
        if not (0.0 < headroom < 1.0):
            raise ValueError(f"headroom must be in (0, 1), got {headroom}")
        self.budget_mw = budget_mw
        self.headroom = headroom

    def decide(self, sample: "EpochSample") -> Optional[float]:
        power = sample.avg_power_mw
        if power > self.budget_mw:
            return self._set_rung(self._rung - 1)
        if power < self.budget_mw * self.headroom:
            return self._set_rung(self._rung + 1)
        return None
