"""repro — a Python reproduction of *Duet: Creating Harmony between
Processors and Embedded FPGAs* (HPCA 2023).

The package is organised as a set of substrates (``sim``, ``noc``, ``mem``,
``cpu``, ``fpga``) on top of which the paper's contribution (``core`` — the
Duet Adapter with its Proxy Cache, Memory Hubs, Control Hub and Shadow
Registers) is built.  ``platform`` composes full systems (Dolly instances,
an FPSoC-like baseline and a processor-only baseline), ``accel`` and
``workloads`` provide the seven application benchmarks plus the synthetic
communication microbenchmarks, and ``analysis`` regenerates every table and
figure of the paper's evaluation.
"""

from repro.sim import AsyncFifo, ClockDomain, Delay, Event, Simulator

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "ClockDomain",
    "Event",
    "Delay",
    "AsyncFifo",
    "__version__",
]
