"""Reconfiguration-aware multiplexing of eFPGA fabrics across tenants.

A :class:`FabricScheduler` owns a bounded admission queue and one worker
process per :class:`FabricContext`.  Each fabric is a real slice of the
existing simulation stack — a :class:`~repro.core.control_hub.ControlHub`
on its own one-tile NoC plus a
:class:`~repro.fpga.clocking.ProgrammableClockGenerator` — so switching a
fabric between two tenants' accelerators pays the *actual* programming
engine transfer time (``config_bits / programming_bits_per_cycle`` system
cycles through :meth:`ControlHub.program`) and retunes the eFPGA clock
through the same Fmax-clamped path software retunes use.

Scheduling policies are pluggable (:data:`POLICY_KINDS`):

* ``fcfs`` — strict arrival order;
* ``sjf`` — shortest estimated service first (ties by arrival);
* ``priority`` — highest tenant priority first (ties by arrival);
* ``affinity`` — serve requests matching the fabric's currently programmed
  bitstream first, falling back to the oldest request when nothing matches
  or when the head of the queue has waited longer than ``patience_ns``
  (the starvation guard).  Batching same-bitstream requests amortizes the
  reconfiguration cost, which is the serving-side payoff of bitstream
  programmability.

Everything is driven by simulated time and seeded randomness only, so a
serve run is exactly as deterministic as any other experiment cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.control_hub import ControlHub, ControlHubConfig
from repro.cpu.mmio import MmioMap
from repro.fpga.clocking import ProgrammableClockGenerator
from repro.noc import NocNetwork, TileRouter, make_topology
from repro.serve.catalog import ServedAccelerator, materialize
from repro.serve.slo import SloMonitor
from repro.serve.traffic import Request
from repro.sim import Simulator, StatSet
from repro.sim.clock import ClockDomain


# --------------------------------------------------------------------------- #
# Scheduling policies
# --------------------------------------------------------------------------- #
class SchedulingPolicy:
    """Picks the next request a fabric should serve from the pending list.

    ``select`` returns an *index* into ``pending`` (kept in arrival order);
    implementations must be pure functions of the queue and fabric state so
    scheduling stays deterministic.
    """

    kind = "fcfs"

    def select(self, pending: List[Request], fabric: "FabricContext") -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class FcfsPolicy(SchedulingPolicy):
    """First come, first served — the baseline every policy is judged against."""

    kind = "fcfs"


class SjfPolicy(SchedulingPolicy):
    """Shortest estimated job first (estimated in simulated service time)."""

    kind = "sjf"

    def select(self, pending: List[Request], fabric: "FabricContext") -> int:
        return min(range(len(pending)),
                   key=lambda i: (fabric.estimate_service_ns(pending[i]), i))


class PriorityPolicy(SchedulingPolicy):
    """Highest tenant priority first; arrival order breaks ties."""

    kind = "priority"

    def select(self, pending: List[Request], fabric: "FabricContext") -> int:
        return min(range(len(pending)),
                   key=lambda i: (-pending[i].priority, i))


class AffinityPolicy(SchedulingPolicy):
    """Batch requests for the currently programmed bitstream.

    If the oldest pending request has waited longer than ``patience_ns``
    the policy degenerates to FCFS for that pick — bounding how long a
    minority tenant can starve behind a popular bitstream.
    """

    kind = "affinity"

    def __init__(self, patience_ns: float = 100_000.0) -> None:
        if patience_ns < 0:
            raise ValueError(f"patience_ns cannot be negative, got {patience_ns}")
        self.patience_ns = patience_ns

    def select(self, pending: List[Request], fabric: "FabricContext") -> int:
        head = pending[0]
        now = fabric.sim.now
        if now - head.arrival_ns > self.patience_ns:
            return 0
        current = fabric.current_design
        if current is not None:
            for index, request in enumerate(pending):
                if request.accelerator == current:
                    return index
        return 0


POLICY_KINDS: Tuple[str, ...] = ("fcfs", "sjf", "priority", "affinity")


def make_policy(kind: str, patience_ns: float = 100_000.0) -> SchedulingPolicy:
    if kind == "fcfs":
        return FcfsPolicy()
    if kind == "sjf":
        return SjfPolicy()
    if kind == "priority":
        return PriorityPolicy()
    if kind == "affinity":
        return AffinityPolicy(patience_ns=patience_ns)
    known = ", ".join(POLICY_KINDS)
    raise ValueError(f"unknown scheduling policy {kind!r}; known policies: {known}")


# --------------------------------------------------------------------------- #
# One servable fabric
# --------------------------------------------------------------------------- #
class FabricContext:
    """One eFPGA fabric: Control Hub, clock generator, programmed state."""

    def __init__(
        self,
        sim: Simulator,
        sys_domain: ClockDomain,
        tile_router: TileRouter,
        mmio_map: MmioMap,
        accelerators: Dict[str, ServedAccelerator],
        index: int = 0,
        fpga_mhz: Optional[float] = None,
        hub_config: Optional[ControlHubConfig] = None,
    ) -> None:
        self.sim = sim
        self.sys_domain = sys_domain
        self.index = index
        self.name = f"fabric{index}"
        self.accelerators = accelerators
        #: Requested service clock; ``None`` runs each accelerator at Fmax.
        self.fpga_mhz = fpga_mhz
        self.clock_generator = ProgrammableClockGenerator(
            sim, sys_domain, name=f"{self.name}.clkgen")
        self.control_hub = ControlHub(
            sim, sys_domain, tile_router, mmio_map, self.clock_generator,
            config=hub_config, name=f"{self.name}.ctrl")
        self.current_design: Optional[str] = None
        self.busy = False
        self.stats = StatSet(f"{self.name}.stats")
        self.reconfigurations = 0
        self.reconfig_ns_total = 0.0
        self.service_ns_total = 0.0
        #: Energy hook: when set, served cycles and clock retunes feed the
        #: attached :class:`~repro.power.model.EnergyModel` (see run_serve).
        self.energy = None

    # ------------------------------------------------------------------ #
    # Introspection used by policies
    # ------------------------------------------------------------------ #
    def clock_mhz_for(self, accelerator: ServedAccelerator) -> float:
        """The clock the generator would settle at for this accelerator."""
        target = self.fpga_mhz if self.fpga_mhz is not None else accelerator.fmax_mhz
        return min(target, accelerator.fmax_mhz)

    def estimate_service_ns(self, request: Request) -> float:
        """Pure service-time estimate (no queueing, no reconfiguration)."""
        accelerator = self.accelerators[request.accelerator]
        cycles = accelerator.service_cycles(request.size)
        return cycles * 1000.0 / self.clock_mhz_for(accelerator)

    # ------------------------------------------------------------------ #
    # The serve path (generators driven by the scheduler worker)
    # ------------------------------------------------------------------ #
    def reconfigure(self, accelerator: ServedAccelerator):
        """Program ``accelerator``'s bitstream and retune the eFPGA clock."""
        started = self.sim.now
        if self.energy is not None:
            # Close the accounting epoch at the old frequency before the
            # retune so each epoch integrates at the voltage that applied.
            self.energy.sample()
        yield from self.control_hub.program(accelerator.bitstream)
        self.clock_generator.set_max_frequency(accelerator.fmax_mhz)
        self.clock_generator.set_frequency(self.clock_mhz_for(accelerator))
        self.current_design = accelerator.name
        self.reconfigurations += 1
        elapsed = self.sim.now - started
        self.reconfig_ns_total += elapsed
        self.stats.counter("reconfigurations").increment()
        self.stats.histogram("reconfig_ns").record(elapsed)
        return elapsed

    def serve(self, request: Request):
        """Occupy the fabric for the request's service time."""
        accelerator = self.accelerators[request.accelerator]
        if self.current_design != accelerator.name:
            yield from self.reconfigure(accelerator)
        request.start_ns = self.sim.now
        cycles = accelerator.service_cycles(request.size)
        if self.energy is not None:
            self.energy.probe.fpga_active_cycles += cycles
        domain = self.clock_generator.fpga_domain
        yield domain.wait_cycles(cycles)
        request.finish_ns = self.sim.now
        self.service_ns_total += request.finish_ns - request.start_ns
        self.stats.counter("served").increment()
        return request


# --------------------------------------------------------------------------- #
# The scheduler
# --------------------------------------------------------------------------- #
@dataclass
class ServeConfig:
    """Static configuration of one serving deployment."""

    policy: str = "fcfs"
    num_fabrics: int = 1
    system_mhz: float = 1000.0
    #: ``None`` runs every accelerator at its own post-route Fmax.
    fpga_mhz: Optional[float] = None
    #: Bounded admission queue; ``None`` means unbounded (never shed).
    queue_capacity: Optional[int] = 64
    #: Affinity starvation guard (see :class:`AffinityPolicy`).
    patience_ns: float = 100_000.0
    #: Which catalog entries this deployment can serve.
    accelerators: Tuple[str, ...] = ()
    control_hub: ControlHubConfig = field(default_factory=ControlHubConfig)

    def __post_init__(self) -> None:
        if self.num_fabrics < 1:
            raise ValueError(f"need at least one fabric, got {self.num_fabrics}")
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1 or None, got {self.queue_capacity}")
        make_policy(self.policy, patience_ns=self.patience_ns)  # fail fast


class FabricScheduler:
    """Admission queue + per-fabric worker processes."""

    def __init__(self, sim: Simulator, config: ServeConfig,
                 monitor: Optional[SloMonitor] = None) -> None:
        if not config.accelerators:
            raise ValueError("ServeConfig.accelerators must name >= 1 catalog entry")
        self.sim = sim
        self.config = config
        self.monitor = monitor or SloMonitor(sim)
        self.policy = make_policy(config.policy, patience_ns=config.patience_ns)
        self.sys_domain = ClockDomain(sim, config.system_mhz, "serve-sys")
        # Pre-materialize every servable bitstream once (the offline
        # synthesis the paper's toolchain performs).
        self.accelerators: Dict[str, ServedAccelerator] = {}
        for name in config.accelerators:
            if name not in self.accelerators:
                self.accelerators[name] = materialize(name)
        # One tile per fabric on a private control NoC.
        network = NocNetwork(sim, self.sys_domain,
                             topology=make_topology("mesh", config.num_fabrics, 1))
        mmio_map = MmioMap()
        self.fabrics = [
            FabricContext(
                sim, self.sys_domain, TileRouter(network, node), mmio_map,
                self.accelerators, index=node, fpga_mhz=config.fpga_mhz,
                hub_config=config.control_hub,
            )
            for node in range(config.num_fabrics)
        ]
        self.pending: List[Request] = []
        self.closed = False
        self._work_event = sim.event(name="serve.work")
        self._drained = sim.event(name="serve.drained")
        self._in_flight = 0
        self.workers = [
            sim.process(self._worker(fabric), name=f"serve.worker{fabric.index}")
            for fabric in self.fabrics
        ]

    # ------------------------------------------------------------------ #
    # Admission (called by traffic sources)
    # ------------------------------------------------------------------ #
    def submit(self, request: Request) -> bool:
        """Admit ``request``; returns False when admission shed it."""
        request.arrival_ns = self.sim.now
        capacity = self.config.queue_capacity
        if self.closed or (capacity is not None and len(self.pending) >= capacity):
            request.shed = True
            self.monitor.on_shed(request)
            if request.completion is not None:
                request.completion.succeed(request)
            return False
        self.pending.append(request)
        self.monitor.on_submit(request, len(self.pending))
        self._notify()
        return True

    def close(self) -> None:
        """Stop admitting; workers exit once the queue drains."""
        self.closed = True
        self._notify()

    def drained(self):
        """Event that fires when the queue is empty after :meth:`close`."""
        return self._drained

    def _notify(self) -> None:
        event = self._work_event
        self._work_event = self.sim.event(name="serve.work")
        if not event.triggered:
            event.succeed()

    # ------------------------------------------------------------------ #
    # Worker processes (one per fabric)
    # ------------------------------------------------------------------ #
    def _worker(self, fabric: FabricContext):
        served = 0
        while True:
            if not self.pending:
                if self.closed:
                    break
                yield self._work_event
                continue
            index = self.policy.select(self.pending, fabric)
            request = self.pending.pop(index)
            self.monitor.on_dequeue(len(self.pending))
            self._in_flight += 1
            fabric.busy = True
            try:
                yield from fabric.serve(request)
            finally:
                fabric.busy = False
                self._in_flight -= 1
            self.monitor.on_complete(request)
            if request.completion is not None:
                request.completion.succeed(request)
            served += 1
        if (self.closed and not self.pending and self._in_flight == 0
                and not self._drained.triggered):
            self._drained.succeed()
        return served

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def fabric_totals(self) -> Dict[str, float]:
        """Aggregate fabric-side accounting for report rows."""
        return {
            "reconfigurations": sum(f.reconfigurations for f in self.fabrics),
            "reconfig_us_total": sum(f.reconfig_ns_total for f in self.fabrics) / 1000.0,
            "service_us_total": sum(f.service_ns_total for f in self.fabrics) / 1000.0,
        }
