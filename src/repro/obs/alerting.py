"""The ``alerting`` experiment: detection quality, scored against ground truth.

One cell = one chaos fleet run observed *only* through its telemetry
stream.  The sweep crosses fault family x control mode (x background rate
for the rate-scaled families):

* ``fault``: ``none`` (no chaos — the false-alarm floor), ``kill`` (the
  pinned whole-node fabric kill from :mod:`repro.chaos.experiments`),
  ``seu`` / ``link`` (rate-scaled background noise only);
* ``control``: ``omniscient`` (the chaos layer's epoch-boundary recovery,
  which reads simulator state directly) vs ``alerts`` (failover, spare
  promotion and replay keyed off *fired alerts alone* — see
  :func:`repro.fleet.cluster._alert_chaos_control`).

Because the experiment holds the injected :class:`~repro.chaos.schedule.\
FaultSchedule`, it can score the alert log exactly
(:func:`repro.obs.alerts.score_alerts`): per-cell recall, precision,
false-alarm rate and detection latency, overall and per rule family.  The
acceptance pins (``tests/test_alerts.py``) are:

* fabric-kill detection recall 1.0 with detection latency <= 1 epoch at
  the default burn-rate rule,
* false-alarm rate 0.0 on the fault-free cell,
* alert-driven recovery goodput >= 0.9x the omniscient baseline within
  :data:`ALERT_RECOVERY_EPOCHS` epochs of the kill.

SEU/link recall is reported, not pinned: a scrubbed SEU or a transient
link detour that never dents the SLO is *invisible in telemetry by
design* — the experiment quantifies that blind spot instead of hiding it.

Cells are module-level and picklable; this module must not import
``repro.api`` (the registry imports us).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.chaos.experiments import (DEFAULT_SEED, KILL_EPOCH,
                                     build_schedule)
from repro.chaos.inject import ChaosConfig
from repro.chaos.schedule import FaultSchedule, FaultSpec
from repro.fleet.autoscaler import AutoscalerConfig
from repro.fleet.cluster import FleetConfig, epoch_goodput, run_fleet
from repro.fleet.experiments import FLEET_TENANTS
from repro.obs.alerts import score_alerts

#: The fault families the sweep injects (one per cell).
FAULT_MODES: Tuple[str, ...] = ("none", "kill", "seu", "link")

#: Telemetry window of every alerting run (us of sim time).
ALERT_WINDOW_US = 100.0

#: Detection horizon: an alert counts for a fault only within this many
#: epochs of its injection instant.
DETECT_HORIZON_EPOCHS = 1.0

#: The alert-driven recovery pin: goodput back within this many epochs of
#: the kill...
ALERT_RECOVERY_EPOCHS = 3
#: ...to at least this fraction of what omniscient recovery achieves.
ALERT_RECOVERY_FLOOR = 0.9


def alerting_schedule(fault: str, fault_rate: float,
                      seed: int = DEFAULT_SEED) -> Optional[FaultSchedule]:
    """The injected schedule for one fault family (``None`` = no chaos)."""
    if fault == "none":
        return None
    if fault == "kill":
        return build_schedule(0.0, seed)
    if fault == "seu":
        return FaultSchedule(seed=seed, specs=(
            FaultSpec(kind="seu", rate_per_epoch=fault_rate,
                      detect_ns=2_000.0),))
    if fault == "link":
        return FaultSchedule(seed=seed, specs=(
            FaultSpec(kind="link", rate_per_epoch=fault_rate * 0.5,
                      repair_ns=60_000.0),))
    known = ", ".join(FAULT_MODES)
    raise ValueError(f"unknown fault mode {fault!r}; known: {known}")


def alerting_cell(
    fault: str,
    control: str,
    fault_rate: float = 2.0,
    nodes: int = 3,
    spares: int = 1,
    epochs: int = 5,
    epoch_us: float = 600.0,
    rate_krps: float = 300.0,
    window_us: float = ALERT_WINDOW_US,
    node_executor: str = "serial",
    seed: int = DEFAULT_SEED,
) -> List[Dict[str, Any]]:
    """One telemetry-observed chaos run; returns a single scored row."""
    schedule = alerting_schedule(fault, fault_rate, seed)
    config = FleetConfig(
        nodes=nodes,
        placement="affinity",
        policy="affinity",
        epochs=epochs,
        epoch_us=epoch_us,
        autoscaler=AutoscalerConfig(enabled=False),
        node_executor=node_executor,
        power=True,
        chaos=ChaosConfig(schedule, recovery=True) if schedule else None,
        spares=spares,
        telemetry_window_us=window_us,
        chaos_control=control,
    )
    outcome = run_fleet(config, FLEET_TENANTS,
                        total_rate_rps=rate_krps * 1000.0, seed=seed)

    epoch_ns = epoch_us * 1000.0
    epoch_ps = int(round(epoch_ns * 1000.0))
    # The oracle covers the initially-active nodes: spares carry no
    # injections while parked, and none of the sweep's schedules draw
    # rated faults dense enough to fail over a healthy node onto one.
    truth = (schedule.ground_truth(epochs, range(nodes),
                                   config.fabrics_per_node, epoch_ns)
             if schedule is not None else [])
    alerts = outcome.alerts or []
    horizon_ps = int(round(DETECT_HORIZON_EPOCHS * epoch_ps))
    score = score_alerts(alerts, truth, horizon_ps)

    goodput = epoch_goodput(outcome.reports)
    pre = goodput[KILL_EPOCH - 1] if KILL_EPOCH >= 1 else goodput[0]
    post_epoch = min(KILL_EPOCH + ALERT_RECOVERY_EPOCHS, len(goodput) - 1)
    row: Dict[str, Any] = {
        "fault": fault,
        "control": control,
        "fault_rate": fault_rate if fault in ("seu", "link") else 0.0,
        "nodes": nodes,
        "epochs": epochs,
        "windows": len(outcome.telemetry.samples) if outcome.telemetry else 0,
        "alerts_fired": sum(1 for a in alerts if a.event == "fired"),
        "alerts_resolved": sum(1 for a in alerts if a.event == "resolved"),
        "faults": score["faults"],
        "detected": score["detected"],
        "recall": score["recall"],
        "precision": score["precision"],
        "false_alarms": score["false_alarms"],
        "false_alarm_rate": score["false_alarm_rate"],
        "detection_latency_epochs": (
            score["max_detection_latency_ps"] / epoch_ps),
        "pre_fault_goodput": pre,
        "post_recovery_goodput": goodput[post_epoch],
        "good_total": sum(goodput),
    }
    for family, fam in sorted(score["by_family"].items()):
        row[f"fired_{family}"] = fam["fired"]
        row[f"recall_{family}"] = fam["recall"]
        row[f"false_alarm_rate_{family}"] = fam["false_alarm_rate"]
    return [row]


def alerting_summary(rows: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The acceptance view: the pinned detection/recovery aggregates."""
    def pick(fault: str, control: str) -> Optional[Dict[str, Any]]:
        for row in rows:
            if row["fault"] == fault and row["control"] == control:
                return row
        return None

    summary: Dict[str, Any] = {
        "detect_horizon_epochs": DETECT_HORIZON_EPOCHS,
        "alert_recovery_epochs": ALERT_RECOVERY_EPOCHS,
        "alert_recovery_floor": ALERT_RECOVERY_FLOOR,
    }
    kill_alerts = pick("kill", "alerts")
    if kill_alerts is not None:
        summary["kill_recall"] = kill_alerts["recall"]
        summary["kill_detection_latency_epochs"] = (
            kill_alerts["detection_latency_epochs"])
        summary["kill_detected_within_horizon"] = (
            kill_alerts["recall"] >= 1.0
            and kill_alerts["detection_latency_epochs"]
            <= DETECT_HORIZON_EPOCHS)
    fault_free = pick("none", "alerts")
    if fault_free is not None:
        summary["fault_free_alerts_fired"] = fault_free["alerts_fired"]
        summary["fault_free_false_alarm_rate"] = (
            fault_free["false_alarm_rate"])
    kill_omniscient = pick("kill", "omniscient")
    if kill_alerts is not None and kill_omniscient is not None:
        baseline = kill_omniscient["post_recovery_goodput"]
        summary["alert_recovery_ratio"] = (
            kill_alerts["post_recovery_goodput"] / baseline if baseline
            else 0.0)
        summary["alert_recovery_ok"] = (
            summary["alert_recovery_ratio"] >= ALERT_RECOVERY_FLOOR)
    for fault in ("seu", "link"):
        row = pick(fault, "alerts")
        if row is not None:
            summary[f"{fault}_recall"] = row["recall"]
            summary[f"{fault}_false_alarms"] = row["false_alarms"]
    return summary


# ---------------------------------------------------------------------- #
# The `python -m repro alerts` driver
# ---------------------------------------------------------------------- #
def alerts_report(fault: str = "kill", control: str = "alerts",
                  fault_rate: float = 2.0,
                  seed: int = DEFAULT_SEED) -> Dict[str, Any]:
    """One canonical alerting run, packaged for the CLI: the typed alert
    log, the detection scores and the ground truth it was scored against."""
    schedule = alerting_schedule(fault, fault_rate, seed)
    config = FleetConfig(
        nodes=3, placement="affinity", policy="affinity", epochs=5,
        epoch_us=600.0, autoscaler=AutoscalerConfig(enabled=False),
        node_executor="serial", power=True,
        chaos=ChaosConfig(schedule, recovery=True) if schedule else None,
        spares=1, telemetry_window_us=ALERT_WINDOW_US,
        chaos_control=control)
    outcome = run_fleet(config, FLEET_TENANTS, total_rate_rps=300_000.0,
                        seed=seed)
    epoch_ns = 600.0 * 1000.0
    truth = (schedule.ground_truth(5, range(3), config.fabrics_per_node,
                                   epoch_ns)
             if schedule is not None else [])
    alerts = outcome.alerts or []
    score = score_alerts(alerts, truth,
                         int(round(epoch_ns * 1000.0
                                   * DETECT_HORIZON_EPOCHS)))
    return {
        "fault": fault,
        "control": control,
        "windows": len(outcome.telemetry.samples) if outcome.telemetry else 0,
        "alerts": [a.as_dict() for a in alerts],
        "truth": truth,
        "score": score,
    }
