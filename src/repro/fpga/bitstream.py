"""Bitstream generation and integrity checking.

The Control Hub's programming engine "loads the bitstream into the
configuration memory, and performs integrity checks to detect data
corruption" (Sec. II-E).  The bitstream here is a deterministic pseudo-random
byte string derived from the design (so tests can corrupt and re-check it),
sized from the fabric's configuration bits, with a CRC-32 trailer.
"""

from __future__ import annotations

import hashlib
import zlib
from dataclasses import dataclass, field
from typing import Optional

from repro.fpga.fabric import FabricInstance
from repro.fpga.synthesis import AcceleratorDesign


class BitstreamError(RuntimeError):
    """Raised when a bitstream fails its integrity check."""


@dataclass
class Bitstream:
    """A configuration image for one fabric, carrying its own checksum."""

    design_name: str
    data: bytes
    crc: int
    config_bits: int
    meta: dict = field(default_factory=dict)

    @property
    def size_bytes(self) -> int:
        return len(self.data)

    def verify(self) -> bool:
        """Return True when the payload still matches its checksum."""
        return zlib.crc32(self.data) == self.crc

    def corrupted(self, offset: int = 0, flip_mask: int = 0xFF) -> "Bitstream":
        """Return a copy with ``flip_mask`` XORed into the payload.

        ``flip_mask`` is interpreted little-endian starting at ``offset``:
        ``0xFF`` flips one byte (the classic single-event upset),
        ``0x0100`` flips bit 0 of ``offset + 1``, ``0xFFFF`` burns two
        consecutive bytes (a multi-bit burst).  Bytes wrap around the end
        of the payload.  Raises :class:`BitstreamError` for empty payloads,
        non-positive masks, and masks whose wrap-around XORs cancel out —
        every successful call returns a copy that fails :meth:`verify`.
        """
        if not self.data:
            raise BitstreamError("cannot corrupt an empty bitstream")
        if flip_mask <= 0:
            raise BitstreamError(
                f"flip_mask must be a positive bit pattern, got {flip_mask}")
        size = len(self.data)
        offset %= size
        mutated = bytearray(self.data)
        span = (flip_mask.bit_length() + 7) // 8
        for index, mask_byte in enumerate(flip_mask.to_bytes(span, "little")):
            mutated[(offset + index) % size] ^= mask_byte
        if bytes(mutated) == self.data:
            raise BitstreamError(
                f"flip_mask 0x{flip_mask:X} at offset {offset} cancels out "
                f"over a {size}-byte payload; corrupted() would return an "
                "uncorrupted copy"
            )
        return Bitstream(
            design_name=self.design_name,
            data=bytes(mutated),
            crc=self.crc,
            config_bits=self.config_bits,
            meta=dict(self.meta),
        )

    @classmethod
    def generate(
        cls, design: AcceleratorDesign, fabric: FabricInstance, meta: Optional[dict] = None
    ) -> "Bitstream":
        """Produce a deterministic bitstream for ``design`` on ``fabric``."""
        config_bits = fabric.config_bits
        size_bytes = max(1, config_bits // 8)
        seed = f"{design.name}:{fabric.columns}x{fabric.rows}".encode()
        chunks = []
        digest = hashlib.sha256(seed).digest()
        while sum(len(chunk) for chunk in chunks) < size_bytes:
            chunks.append(digest)
            digest = hashlib.sha256(digest).digest()
        data = b"".join(chunks)[:size_bytes]
        return cls(
            design_name=design.name,
            data=data,
            crc=zlib.crc32(data),
            config_bits=config_bits,
            meta=meta or {},
        )
