"""Discrete-event simulation kernel.

The kernel is deliberately small: a time-ordered event heap
(:class:`Simulator`), coroutine processes (:class:`Process`) that yield
:class:`Delay` or :class:`Event` commands, clock domains that align work to
rising edges (:class:`ClockDomain`), and the clock-domain-crossing
:class:`AsyncFifo` that models Dolly's Gray-coded two-stage synchronizers.
"""

from repro.sim.event import Event
from repro.sim.kernel import (
    Delay,
    Process,
    SimulationError,
    Simulator,
    ns_to_ps,
    ps_to_ns,
)
from repro.sim.clock import ClockDomain
from repro.sim.channel import AsyncFifo, Channel, QueueFullError
from repro.sim.stats import Counter, Histogram, StatSet, TimeSeries

__all__ = [
    "Simulator",
    "Process",
    "Delay",
    "Event",
    "SimulationError",
    "ClockDomain",
    "Channel",
    "AsyncFifo",
    "QueueFullError",
    "Counter",
    "Histogram",
    "StatSet",
    "TimeSeries",
    "ns_to_ps",
    "ps_to_ns",
]
