"""Unit tests for clock domains and edge arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import ClockDomain, SimulationError, Simulator


def test_period_from_frequency():
    sim = Simulator()
    clk = ClockDomain(sim, 1000.0, "sys")
    assert clk.period_ns == pytest.approx(1.0)
    slow = ClockDomain(sim, 100.0, "fpga")
    assert slow.period_ns == pytest.approx(10.0)


def test_next_edge_is_strictly_after():
    sim = Simulator()
    clk = ClockDomain(sim, 1000.0)
    assert clk.next_edge(0.0) == pytest.approx(1.0)
    assert clk.next_edge(0.5) == pytest.approx(1.0)
    assert clk.next_edge(1.0) == pytest.approx(2.0)


def test_edge_after_multiple_cycles():
    sim = Simulator()
    clk = ClockDomain(sim, 500.0)  # 2 ns period
    assert clk.edge_after(0.0, 1) == pytest.approx(2.0)
    assert clk.edge_after(0.0, 3) == pytest.approx(6.0)
    with pytest.raises(SimulationError):
        clk.edge_after(0.0, 0)


def test_phase_offset_shifts_edges():
    sim = Simulator()
    clk = ClockDomain(sim, 100.0, phase_ns=3.0)
    assert clk.next_edge(0.0) == pytest.approx(3.0)
    assert clk.next_edge(3.0) == pytest.approx(13.0)


def test_wait_cycles_aligns_process_to_edges():
    sim = Simulator()
    clk = ClockDomain(sim, 100.0)  # 10 ns period

    def body():
        yield 3.0  # now at 3 ns, mid-cycle
        yield clk.wait_cycles(1)
        first_edge = sim.now
        yield clk.wait_cycles(2)
        return first_edge, sim.now

    first_edge, second = sim.run_process(body())
    assert first_edge == pytest.approx(10.0)
    assert second == pytest.approx(30.0)


def test_invalid_frequency_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        ClockDomain(sim, 0.0)
    clk = ClockDomain(sim, 100.0)
    with pytest.raises(SimulationError):
        clk.freq_mhz = -5.0


def test_retuning_frequency_changes_period():
    sim = Simulator()
    clk = ClockDomain(sim, 100.0)
    clk.freq_mhz = 200.0
    assert clk.period_ns == pytest.approx(5.0)


def test_cycle_ns_roundtrip():
    sim = Simulator()
    clk = ClockDomain(sim, 250.0)
    assert clk.ns_to_cycles(clk.cycles_to_ns(17)) == pytest.approx(17)


@given(
    freq=st.floats(min_value=1.0, max_value=4000.0),
    at=st.floats(min_value=0.0, max_value=1e6),
)
def test_next_edge_properties(freq, at):
    """The next edge is strictly after `at` and within one period of it."""
    sim = Simulator()
    clk = ClockDomain(sim, freq)
    edge = clk.next_edge(at)
    assert edge > at
    assert edge - at <= clk.period_ns * (1 + 1e-6)


@given(
    freq=st.sampled_from([20.0, 50.0, 100.0, 200.0, 500.0, 1000.0]),
    at=st.floats(min_value=0.0, max_value=1e5),
    cycles=st.integers(min_value=1, max_value=16),
)
def test_edge_after_spacing(freq, at, cycles):
    """Consecutive edges are exactly one period apart."""
    sim = Simulator()
    clk = ClockDomain(sim, freq)
    assert clk.edge_after(at, cycles + 1) - clk.edge_after(at, cycles) == pytest.approx(
        clk.period_ns
    )


@given(
    freq=st.floats(min_value=1.0, max_value=4000.0),
    queries=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=20),
)
def test_edge_cache_is_bit_identical_to_fresh_computation(freq, queries):
    """Cached next_edge answers must equal what an uncached domain computes,
    in any query order (the cache may hit, miss, or straddle windows)."""
    sim = Simulator()
    cached = ClockDomain(sim, freq)
    for at in queries:
        fresh = ClockDomain(sim, freq)
        assert cached.next_edge(at) == fresh.next_edge(at)


def test_edge_cache_hits_within_one_cycle():
    sim = Simulator()
    clk = ClockDomain(sim, 1000.0)
    first = clk.next_edge(0.3)
    assert clk.next_edge(0.5) == first
    assert clk.next_edge(0.7) == first
    assert clk.next_edge(1.2) == first + clk.period_ns


def test_edge_cache_invalidated_on_retune_and_phase_change():
    sim = Simulator()
    clk = ClockDomain(sim, 1000.0)
    assert clk.next_edge(0.5) == 1.0
    clk.freq_mhz = 500.0
    assert clk.next_edge(0.5) == 2.0
    clk.phase_ns = 0.25
    assert clk.next_edge(0.5) == 2.25
