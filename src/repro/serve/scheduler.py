"""Reconfiguration-aware multiplexing of eFPGA fabrics across tenants.

A :class:`FabricScheduler` owns a bounded admission queue and one worker
process per :class:`FabricContext`.  Each fabric is a real slice of the
existing simulation stack — a :class:`~repro.core.control_hub.ControlHub`
on its own one-tile NoC plus a
:class:`~repro.fpga.clocking.ProgrammableClockGenerator` — so switching a
fabric between two tenants' accelerators pays the *actual* programming
engine transfer time (``config_bits / programming_bits_per_cycle`` system
cycles through :meth:`ControlHub.program`) and retunes the eFPGA clock
through the same Fmax-clamped path software retunes use.

Scheduling policies are pluggable (:data:`POLICY_KINDS`):

* ``fcfs`` — strict arrival order;
* ``sjf`` — shortest estimated service first (ties by arrival);
* ``priority`` — highest tenant priority first (ties by arrival);
* ``affinity`` — serve requests matching the fabric's currently programmed
  bitstream first, falling back to the oldest request when nothing matches
  or when the head of the queue has waited longer than ``patience_ns``
  (the starvation guard).  Batching same-bitstream requests amortizes the
  reconfiguration cost, which is the serving-side payoff of bitstream
  programmability.

With ``ServeConfig.regions > 1`` each fabric is one *shared* device carved
into K column-band regions (:mod:`repro.reconfig`): designs co-locate on
contiguous spans, a switch programs only the changed span
(:meth:`Bitstream.for_regions` through the same ``ControlHub.program``),
idle spans are evicted LRU-first when the grid is full, and K region
workers per fabric serve different resident designs concurrently.  With
the default ``regions=1`` the whole-fabric path below runs unchanged —
bit-identical to a build without region support.

Everything is driven by simulated time and seeded randomness only, so a
serve run is exactly as deterministic as any other experiment cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.control_hub import ControlHub, ControlHubConfig
from repro.core.exceptions import DuetError
from repro.cpu.mmio import MmioMap
from repro.fpga.bitstream import Bitstream
from repro.fpga.clocking import ProgrammableClockGenerator
from repro.noc import NocNetwork, TileRouter, make_topology
from repro.obs.metrics import MetricsRegistry
from repro.reconfig.placement import RegionAllocator
from repro.reconfig.plan import RegionPlan
from repro.serve.catalog import ServedAccelerator, materialize
from repro.serve.slo import SloMonitor
from repro.serve.traffic import Request
from repro.sim import Delay, Simulator, StatSet
from repro.sim.clock import ClockDomain


# --------------------------------------------------------------------------- #
# Scheduling policies
# --------------------------------------------------------------------------- #
class SchedulingPolicy:
    """Picks the next request a fabric should serve from the pending list.

    ``select`` returns an *index* into ``pending`` (kept in arrival order);
    implementations must be pure functions of the queue and fabric state so
    scheduling stays deterministic.
    """

    kind = "fcfs"

    def select(self, pending: List[Request], fabric: "FabricContext") -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class FcfsPolicy(SchedulingPolicy):
    """First come, first served — the baseline every policy is judged against."""

    kind = "fcfs"


class SjfPolicy(SchedulingPolicy):
    """Shortest estimated job first (estimated in simulated service time)."""

    kind = "sjf"

    def select(self, pending: List[Request], fabric: "FabricContext") -> int:
        return min(range(len(pending)),
                   key=lambda i: (fabric.estimate_service_ns(pending[i]), i))


class PriorityPolicy(SchedulingPolicy):
    """Highest tenant priority first; arrival order breaks ties."""

    kind = "priority"

    def select(self, pending: List[Request], fabric: "FabricContext") -> int:
        return min(range(len(pending)),
                   key=lambda i: (-pending[i].priority, i))


class AffinityPolicy(SchedulingPolicy):
    """Batch requests for the currently programmed bitstream.

    If the oldest pending request has waited longer than ``patience_ns``
    the policy degenerates to FCFS for that pick — bounding how long a
    minority tenant can starve behind a popular bitstream.
    """

    kind = "affinity"

    def __init__(self, patience_ns: float = 100_000.0) -> None:
        if patience_ns < 0:
            raise ValueError(f"patience_ns cannot be negative, got {patience_ns}")
        self.patience_ns = patience_ns

    def select(self, pending: List[Request], fabric: "FabricContext") -> int:
        head = pending[0]
        now = fabric.sim.now
        if now - head.arrival_ns > self.patience_ns:
            return 0
        resident = getattr(fabric, "has_resident", None)
        for index, request in enumerate(pending):
            if (resident(request.accelerator) if resident is not None
                    else request.accelerator == fabric.current_design):
                return index
        return 0


POLICY_KINDS: Tuple[str, ...] = ("fcfs", "sjf", "priority", "affinity")


def make_policy(kind: str, patience_ns: float = 100_000.0) -> SchedulingPolicy:
    if kind == "fcfs":
        return FcfsPolicy()
    if kind == "sjf":
        return SjfPolicy()
    if kind == "priority":
        return PriorityPolicy()
    if kind == "affinity":
        return AffinityPolicy(patience_ns=patience_ns)
    known = ", ".join(POLICY_KINDS)
    raise ValueError(f"unknown scheduling policy {kind!r}; known policies: {known}")


# --------------------------------------------------------------------------- #
# One servable fabric
# --------------------------------------------------------------------------- #
class FabricContext:
    """One eFPGA fabric: Control Hub, clock generator, programmed state."""

    def __init__(
        self,
        sim: Simulator,
        sys_domain: ClockDomain,
        tile_router: TileRouter,
        mmio_map: MmioMap,
        accelerators: Dict[str, ServedAccelerator],
        index: int = 0,
        fpga_mhz: Optional[float] = None,
        hub_config: Optional[ControlHubConfig] = None,
        images: Optional[Dict[str, Bitstream]] = None,
        plan: Optional[RegionPlan] = None,
    ) -> None:
        self.sim = sim
        self.sys_domain = sys_domain
        self.index = index
        self.name = f"fabric{index}"
        self.accelerators = accelerators
        #: Requested service clock; ``None`` runs each accelerator at Fmax.
        self.fpga_mhz = fpga_mhz
        self.clock_generator = ProgrammableClockGenerator(
            sim, sys_domain, name=f"{self.name}.clkgen")
        self.control_hub = ControlHub(
            sim, sys_domain, tile_router, mmio_map, self.clock_generator,
            config=hub_config, name=f"{self.name}.ctrl")
        self.current_design: Optional[str] = None
        self.busy = False
        self.stats = StatSet(f"{self.name}.stats")
        self.reconfigurations = 0
        self.reconfig_ns_total = 0.0
        self.service_ns_total = 0.0
        #: Energy hook: when set, served cycles and clock retunes feed the
        #: attached :class:`~repro.power.model.EnergyModel` (see run_serve).
        self.energy = None
        #: Observability hook (:mod:`repro.obs`): when a Tracer is attached
        #: (see :meth:`FabricScheduler.attach_tracer`) the serve path records
        #: ``program``/``service`` spans and ``clock_retune`` instants.
        self.tracer = None
        #: Corrupt-image overrides shared with the scheduler (see
        #: :attr:`FabricScheduler.images`); empty on every fault-free run.
        self.images: Dict[str, Bitstream] = images if images is not None else {}
        # -- region mode (repro.reconfig; None = whole-fabric path) ------ #
        self.plan = plan
        self.allocator: Optional[RegionAllocator] = (
            RegionAllocator(plan.capacities) if plan is not None else None)
        self.region_programmings = 0
        self.regions_programmed = 0
        self.frag_samples: List[float] = []
        self.active_requests: List[Request] = []
        # -- fault state (repro.chaos) ---------------------------------- #
        self.failed = False
        self.fail_time_ns = -1.0
        self.fail_time_ps = -1
        self.fail_reason: Optional[str] = None
        self.faults = 0
        self.active_request: Optional[Request] = None
        self._repair = None

    # ------------------------------------------------------------------ #
    # Fault state (driven by the scheduler's chaos APIs)
    # ------------------------------------------------------------------ #
    def repair_event(self):
        """Event a parked worker waits on until this fabric heals."""
        if self._repair is None or self._repair.triggered:
            self._repair = self.sim.event(name=f"{self.name}.repair")
        return self._repair

    def fail(self, reason: str) -> None:
        self.failed = True
        self.fail_time_ns = self.sim.now
        self.fail_time_ps = self.sim.now_ps
        self.fail_reason = reason
        self.faults += 1
        self.stats.counter("faults").increment()

    def heal(self) -> None:
        self.failed = False
        self.fail_reason = None
        # The configuration memory did not survive the fault: the next
        # request pays a full reprogram through ControlHub.program.
        self.current_design = None
        if self.allocator is not None:
            self.allocator.reset()
        if self._repair is not None and not self._repair.triggered:
            self._repair.succeed()

    # ------------------------------------------------------------------ #
    # Introspection used by policies
    # ------------------------------------------------------------------ #
    def has_resident(self, name: str) -> bool:
        """Whether ``name`` is loaded on this fabric right now.

        The affinity test: in region mode a design is resident while it
        holds a span; in whole-fabric mode it is resident when it is the
        currently programmed bitstream.
        """
        if self.allocator is not None:
            return self.allocator.lookup(name) is not None
        return name == self.current_design

    def can_start(self, request: Request) -> bool:
        """Region mode: can ``request`` start now without waiting?

        Yes when its design holds an *idle* span (pins mark in-service
        instances: one span serves one request at a time), or when a span
        could be placed — evicting idle residents LRU-first if needed.
        """
        name = request.accelerator
        if self.allocator.lookup(name) is not None:
            return not self.allocator.is_pinned(name)
        return self.allocator.can_place(self.plan.tiles[name], name)

    def clock_mhz_for(self, accelerator: ServedAccelerator) -> float:
        """The clock the generator would settle at for this accelerator."""
        target = self.fpga_mhz if self.fpga_mhz is not None else accelerator.fmax_mhz
        return min(target, accelerator.fmax_mhz)

    def estimate_service_ns(self, request: Request) -> float:
        """Pure service-time estimate (no queueing, no reconfiguration)."""
        accelerator = self.accelerators[request.accelerator]
        cycles = accelerator.service_cycles(request.size)
        return cycles * 1000.0 / self.clock_mhz_for(accelerator)

    # ------------------------------------------------------------------ #
    # The serve path (generators driven by the scheduler worker)
    # ------------------------------------------------------------------ #
    def reconfigure(self, accelerator: ServedAccelerator):
        """Program ``accelerator``'s bitstream and retune the eFPGA clock."""
        started = self.sim.now
        if self.energy is not None:
            # Close the accounting epoch at the old frequency before the
            # retune so each epoch integrates at the voltage that applied.
            self.energy.sample()
        image = self.images.get(accelerator.name)
        yield from self.control_hub.program(
            image if image is not None else accelerator.bitstream)
        self.clock_generator.set_max_frequency(accelerator.fmax_mhz)
        self.clock_generator.set_frequency(self.clock_mhz_for(accelerator))
        if self.tracer is not None:
            # The generator settles instantaneously in the current clock
            # model, so the retune is an instant, not a span (decompose
            # keeps a zero "retune" stage for when that changes).
            self.tracer.instant(
                "clock_retune", self.name, self.sim.now_ps, cat="reconfig",
                args={"mhz": self.clock_mhz_for(accelerator)})
        self.current_design = accelerator.name
        self.reconfigurations += 1
        elapsed = self.sim.now - started
        self.reconfig_ns_total += elapsed
        self.stats.counter("reconfigurations").increment()
        self.stats.histogram("reconfig_ns").record(elapsed)
        return elapsed

    def serve(self, request: Request):
        """Occupy the fabric for the request's service time."""
        tracer = self.tracer
        accelerator = self.accelerators[request.accelerator]
        if self.current_design != accelerator.name:
            program_start_ps = self.sim.now_ps if tracer is not None else 0
            yield from self.reconfigure(accelerator)
            if tracer is not None:
                tracer.complete(
                    "program", self.name, program_start_ps,
                    self.sim.now_ps - program_start_ps, cat="reconfig",
                    args={"t": request.tenant, "id": request.request_id,
                          "design": accelerator.name})
        request.start_ns = self.sim.now
        service_start_ps = self.sim.now_ps if tracer is not None else 0
        cycles = accelerator.service_cycles(request.size)
        if self.energy is not None:
            self.energy.probe.fpga_active_cycles += cycles
        domain = self.clock_generator.fpga_domain
        yield domain.wait_cycles(cycles)
        request.finish_ns = self.sim.now
        self.service_ns_total += request.finish_ns - request.start_ns
        self.stats.counter("served").increment()
        if tracer is not None:
            tracer.complete(
                "service", self.name, service_start_ps,
                self.sim.now_ps - service_start_ps, cat="serve",
                args={"t": request.tenant, "id": request.request_id})
        return request

    # ------------------------------------------------------------------ #
    # The region-granular serve path (ServeConfig.regions > 1)
    # ------------------------------------------------------------------ #
    def program_span(self, name: str, span: Tuple[int, ...]):
        """Hot-swap one contiguous span: transfer only its regions' bits."""
        started = self.sim.now
        image = self.images.get(name, self.plan.images[name])
        yield from self.control_hub.program(image.for_regions(span))
        self.reconfigurations += 1
        self.region_programmings += 1
        self.regions_programmed += len(span)
        elapsed = self.sim.now - started
        self.reconfig_ns_total += elapsed
        self.stats.counter("reconfigurations").increment()
        self.stats.histogram("reconfig_ns").record(elapsed)
        return elapsed

    def serve_regional(self, request: Request):
        """Serve on the design's span; place/program it first if absent.

        The span is pinned for the whole service (one span = one
        accelerator instance = one request at a time) and pinned *before*
        programming starts, so a concurrent worker placing another design
        can never evict a span mid-transfer.  Region grids run each design
        at its own clock (per-region clocking), so service time is a plain
        delay at :meth:`clock_mhz_for` — no shared-generator retune.
        """
        tracer = self.tracer
        accelerator = self.accelerators[request.accelerator]
        name = accelerator.name
        track = f"{self.name}/{name}" if tracer is not None else ""
        span = self.allocator.lookup(name)
        if span is None:
            placement = self.allocator.place(name, self.plan.tiles[name])
            self.allocator.pin(name)
            self.frag_samples.append(self.allocator.fragmentation())
            program_start_ps = self.sim.now_ps if tracer is not None else 0
            try:
                yield from self.program_span(name, placement.regions)
                if tracer is not None:
                    tracer.complete(
                        "program", track, program_start_ps,
                        self.sim.now_ps - program_start_ps, cat="reconfig",
                        args={"t": request.tenant, "id": request.request_id,
                              "design": name,
                              "regions": list(placement.regions)})
            except DuetError:
                # The integrity check tripped (SEU in the transferred
                # span): the span holds no valid design — free it before
                # the scheduler's scrub/retry or shed path runs.
                self.allocator.unpin(name)
                self.allocator.evict(name)
                raise
        else:
            self.allocator.pin(name)
            self.allocator.touch(name)
        try:
            request.start_ns = self.sim.now
            service_start_ps = self.sim.now_ps if tracer is not None else 0
            cycles = accelerator.service_cycles(request.size)
            yield Delay(cycles * 1000.0 / self.clock_mhz_for(accelerator))
            request.finish_ns = self.sim.now
            self.service_ns_total += request.finish_ns - request.start_ns
            self.stats.counter("served").increment()
            if tracer is not None:
                tracer.complete(
                    "service", track, service_start_ps,
                    self.sim.now_ps - service_start_ps, cat="serve",
                    args={"t": request.tenant, "id": request.request_id})
        finally:
            self.allocator.unpin(name)
        return request


# --------------------------------------------------------------------------- #
# The scheduler
# --------------------------------------------------------------------------- #
@dataclass
class ServeConfig:
    """Static configuration of one serving deployment."""

    policy: str = "fcfs"
    num_fabrics: int = 1
    system_mhz: float = 1000.0
    #: ``None`` runs every accelerator at its own post-route Fmax.
    fpga_mhz: Optional[float] = None
    #: Bounded admission queue; ``None`` means unbounded (never shed).
    queue_capacity: Optional[int] = 64
    #: Affinity starvation guard (see :class:`AffinityPolicy`).
    patience_ns: float = 100_000.0
    #: Which catalog entries this deployment can serve.
    accelerators: Tuple[str, ...] = ()
    control_hub: ControlHubConfig = field(default_factory=ControlHubConfig)
    #: Region grid per fabric; 1 = the whole-fabric path (bit-identical to
    #: a build without region support), > 1 = region-granular co-location.
    regions: int = 1
    #: Under/over-provision the shared region grid (< 1 forces eviction and
    #: fragmentation pressure; only meaningful with ``regions > 1``).
    region_fabric_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.num_fabrics < 1:
            raise ValueError(f"need at least one fabric, got {self.num_fabrics}")
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1 or None, got {self.queue_capacity}")
        if self.regions < 1:
            raise ValueError(f"regions must be >= 1, got {self.regions}")
        if self.region_fabric_scale <= 0:
            raise ValueError(
                f"region_fabric_scale must be positive, got {self.region_fabric_scale}")
        make_policy(self.policy, patience_ns=self.patience_ns)  # fail fast


class FabricScheduler:
    """Admission queue + per-fabric worker processes."""

    def __init__(self, sim: Simulator, config: ServeConfig,
                 monitor: Optional[SloMonitor] = None) -> None:
        if not config.accelerators:
            raise ValueError("ServeConfig.accelerators must name >= 1 catalog entry")
        self.sim = sim
        self.config = config
        self.monitor = monitor or SloMonitor(sim)
        self.policy = make_policy(config.policy, patience_ns=config.patience_ns)
        self.sys_domain = ClockDomain(sim, config.system_mhz, "serve-sys")
        # Pre-materialize every servable bitstream once (the offline
        # synthesis the paper's toolchain performs).
        self.accelerators: Dict[str, ServedAccelerator] = {}
        for name in config.accelerators:
            if name not in self.accelerators:
                self.accelerators[name] = materialize(name)
        # One tile per fabric on a private control NoC.
        self.network = NocNetwork(sim, self.sys_domain,
                                  topology=make_topology("mesh", config.num_fabrics, 1))
        mmio_map = MmioMap()
        #: Corrupt-image overrides keyed by accelerator name.  SEU injection
        #: writes here; reconfigure reads through it; scrubbing pops the
        #: entry to restore the pristine catalog bitstream.  Empty (and
        #: never touched) on fault-free runs.
        self.images: Dict[str, Bitstream] = {}
        #: The shared region grid (None on the whole-fabric path).
        self.region_plan: Optional[RegionPlan] = (
            RegionPlan.build(self.accelerators, config.regions,
                             fabric_scale=config.region_fabric_scale)
            if config.regions > 1 else None)
        self.fabrics = [
            FabricContext(
                sim, self.sys_domain, TileRouter(self.network, node), mmio_map,
                self.accelerators, index=node, fpga_mhz=config.fpga_mhz,
                hub_config=config.control_hub, images=self.images,
                plan=self.region_plan,
            )
            for node in range(config.num_fabrics)
        ]
        self.pending: List[Request] = []
        self.closed = False
        self._work_event = sim.event(name="serve.work")
        self._drained = sim.event(name="serve.drained")
        self._in_flight = 0
        # -- chaos knobs/accounting (defaults keep fault-free runs exact) - #
        #: When True (the default) faults fail over: lost requests replay
        #: through surviving fabrics and corrupt images are scrubbed.
        self.recovery = True
        #: Detection/scrub latency paid before an SEU retry (ns).
        self.fault_detect_ns = 2_000.0
        #: Unified metrics (:mod:`repro.obs.metrics`): the scheduler's own
        #: counters plus the SLO monitor's StatSet behind one registry whose
        #: snapshot is picklable and merges deterministically in the fleet.
        self.metrics = MetricsRegistry("serve.metrics")
        #: Fault/recovery counters — a dict-shaped view over registry
        #: counters, so ``fault_stats["replayed"] += 1`` call sites (and
        #: the chaos injector) keep working while the storage is unified.
        self.fault_stats = self.metrics.counter_group((
            "faults_injected", "fabric_faults", "requests_lost",
            "replayed", "fault_shed", "seu_scrubs", "link_faults",
        ))
        #: Observability hook: attach with :meth:`attach_tracer`; ``None``
        #: (the default) keeps every hot path free of tracing work.
        self.tracer = None
        #: Ready timestamps (sim-ps) keyed by ``(tenant, request_id)``;
        #: only populated while a tracer is attached (queue-wait spans).
        self._trace_ready: Dict[Tuple[str, int], int] = {}
        #: Accelerators whose image is corrupt with recovery disabled.
        self.poisoned: Set[str] = set()
        if self.region_plan is not None:
            # K region workers per fabric: different resident designs
            # serve concurrently, each on its own span.
            self.workers = [
                sim.process(self._region_worker(fabric),
                            name=f"serve.worker{fabric.index}.{slot}")
                for fabric in self.fabrics
                for slot in range(config.regions)
            ]
        else:
            self.workers = [
                sim.process(self._worker(fabric), name=f"serve.worker{fabric.index}")
                for fabric in self.fabrics
            ]

    # ------------------------------------------------------------------ #
    # Observability (repro.obs; default off)
    # ------------------------------------------------------------------ #
    def attach_tracer(self, tracer) -> None:
        """Wire ``tracer`` into every hook point of this deployment.

        Call before the simulation runs.  With no tracer attached (the
        default) every hook reduces to one ``is not None`` check, and runs
        are bit-identical to a build without tracing (pinned in
        ``tests/test_obs.py``).
        """
        self.tracer = tracer
        for fabric in self.fabrics:
            fabric.tracer = tracer
            fabric.control_hub.tracer = tracer

    def attach_telemetry(self, telemetry) -> None:
        """Wire a :class:`repro.obs.monitor.TelemetryMonitor` into this
        deployment's SLO hooks.  Like :meth:`attach_tracer` this is pure
        observation — the telemetry layer owns no sim events, windows
        close lazily inside the existing hooks, and unattached (the
        default) every hook stays a single ``is not None`` check."""
        telemetry.scheduler = self
        self.monitor.telemetry = telemetry

    # ------------------------------------------------------------------ #
    # Admission (called by traffic sources)
    # ------------------------------------------------------------------ #
    def submit(self, request: Request) -> bool:
        """Admit ``request``; returns False when admission shed it."""
        request.arrival_ns = self.sim.now
        capacity = self.config.queue_capacity
        if self.closed or (capacity is not None and len(self.pending) >= capacity):
            request.shed = True
            self.monitor.on_shed(request)
            if self.tracer is not None:
                self.tracer.instant(
                    "shed", "queue", self.sim.now_ps, cat="serve",
                    args={"t": request.tenant, "id": request.request_id})
            if request.completion is not None:
                request.completion.succeed(request)
            return False
        self.pending.append(request)
        self.monitor.on_submit(request, len(self.pending))
        if self.tracer is not None:
            now_ps = self.sim.now_ps
            self._trace_ready[(request.tenant, request.request_id)] = now_ps
            self.tracer.instant(
                "arrive", "queue", now_ps, cat="serve",
                args={"t": request.tenant, "id": request.request_id})
        self._notify()
        return True

    def close(self) -> None:
        """Stop admitting; workers exit once the queue drains."""
        self.closed = True
        self._notify()

    def drained(self):
        """Event that fires when the queue is empty after :meth:`close`."""
        return self._drained

    def _notify(self) -> None:
        event = self._work_event
        self._work_event = self.sim.event(name="serve.work")
        if not event.triggered:
            event.succeed()

    # ------------------------------------------------------------------ #
    # Fault injection + recovery (driven by repro.chaos)
    # ------------------------------------------------------------------ #
    def fail_fabric(self, index: int, reason: str = "fabric") -> bool:
        """Kill fabric ``index`` now.  Its in-flight request (if any) is
        lost at what would have been its completion instant; its worker
        parks until :meth:`heal_fabric`.  Returns False when already dead."""
        fabric = self.fabrics[index]
        if fabric.failed:
            return False
        fabric.fail(reason)
        self.fault_stats["fabric_faults"] += 1
        self.monitor.on_fault(self.sim.now)
        self._notify()
        return True

    def heal_fabric(self, index: int) -> bool:
        """Bring fabric ``index`` back (configuration memory blank)."""
        fabric = self.fabrics[index]
        if not fabric.failed:
            return False
        reason = fabric.fail_reason
        fabric.heal()
        if self.tracer is not None:
            # One failover span per outage: from the kill to the heal.
            self.tracer.complete(
                "failover", fabric.name, fabric.fail_time_ps,
                self.sim.now_ps - fabric.fail_time_ps, cat="chaos",
                args={"reason": reason})
        self._notify()
        return True

    def corrupt_image(self, accelerator: str, offset: int, flip_mask: int) -> None:
        """SEU: flip bits in the stored image of ``accelerator``.

        Latent until the next reprogram of that accelerator trips the
        programming engine's integrity check (see ControlHub.program).  In
        region mode the upset lands in the design's *regioned* image, so it
        only trips when the flipped span is actually transferred — an SEU
        in a region that is never reprogrammed stays latent forever."""
        if self.region_plan is not None:
            pristine = self.region_plan.images[accelerator]
        else:
            pristine = self.accelerators[accelerator].bitstream
        base = self.images.get(accelerator, pristine)
        self.images[accelerator] = base.corrupted(offset=offset, flip_mask=flip_mask)
        self.monitor.on_fault(self.sim.now)

    def scrub_image(self, accelerator: str) -> None:
        """Restore the pristine catalog bitstream for ``accelerator``."""
        self.images.pop(accelerator, None)
        self.poisoned.discard(accelerator)

    def cut_link(self, a: int, b: int) -> Tuple[int, ...]:
        """Fault the control-NoC link ``a <-> b``; fabrics cut off from the
        control tile (tile 0) fail until :meth:`restore_link`.  Returns the
        indices that went unreachable."""
        self.network.fail_link(a, b)
        self.fault_stats["link_faults"] += 1
        reachable = self.network.topology.reachable_set(0)
        lost = tuple(
            fabric.index for fabric in self.fabrics
            if fabric.index not in reachable and not fabric.failed)
        for index in lost:
            self.fail_fabric(index, reason="unreachable")
        return lost

    def restore_link(self, a: int, b: int) -> Tuple[int, ...]:
        """Heal the link and revive fabrics that are reachable again."""
        self.network.heal_link(a, b)
        reachable = self.network.topology.reachable_set(0)
        revived = tuple(
            fabric.index for fabric in self.fabrics
            if fabric.index in reachable and fabric.failed
            and fabric.fail_reason == "unreachable")
        for index in revived:
            self.heal_fabric(index)
        return revived

    def _handle_lost(self, request: Request) -> None:
        """The fabric serving ``request`` died mid-service."""
        self.fault_stats["requests_lost"] += 1
        request.start_ns = -1.0
        request.finish_ns = -1.0
        if self.tracer is not None:
            self.tracer.instant(
                "lost", "queue", self.sim.now_ps, cat="chaos",
                args={"t": request.tenant, "id": request.request_id})
        if self.recovery:
            # Failover: replay through whichever fabric frees up first.
            # Not a new admission — the request was already counted.
            self.fault_stats["replayed"] += 1
            self.pending.append(request)
            self.monitor.on_replay(request, len(self.pending))
            if self.tracer is not None:
                now_ps = self.sim.now_ps
                self._trace_ready[(request.tenant, request.request_id)] = now_ps
                self.tracer.instant(
                    "replay", "queue", now_ps, cat="chaos",
                    args={"t": request.tenant, "id": request.request_id})
            self._notify()
        else:
            self._fault_shed(request)

    def _fault_shed(self, request: Request) -> None:
        request.shed = True
        self.fault_stats["fault_shed"] += 1
        self.monitor.on_fault_shed(request)
        if self.tracer is not None:
            self.tracer.instant(
                "fault_shed", "queue", self.sim.now_ps, cat="chaos",
                args={"t": request.tenant, "id": request.request_id})
        if request.completion is not None:
            request.completion.succeed(request)

    def _handle_program_fault(self, fabric: FabricContext, request: Request):
        """``fabric.serve`` tripped the bitstream integrity check."""
        name = request.accelerator
        request.start_ns = -1.0
        request.finish_ns = -1.0
        if self.recovery:
            # Scrub the corrupt image, pay the detection latency, and put
            # the request back at the head of the queue for a retry (the
            # retry pays a full reprogram of the pristine image).
            self.fault_stats["seu_scrubs"] += 1
            self.scrub_image(name)
            scrub_start_ps = self.sim.now_ps if self.tracer is not None else 0
            if self.fault_detect_ns > 0:
                yield Delay(self.fault_detect_ns)
            self.fault_stats["replayed"] += 1
            self.pending.insert(0, request)
            self.monitor.on_replay(request, len(self.pending))
            if self.tracer is not None:
                now_ps = self.sim.now_ps
                self.tracer.complete(
                    "seu_scrub", fabric.name, scrub_start_ps,
                    now_ps - scrub_start_ps, cat="chaos",
                    args={"design": name})
                self._trace_ready[(request.tenant, request.request_id)] = now_ps
                self.tracer.instant(
                    "replay", "queue", now_ps, cat="chaos",
                    args={"t": request.tenant, "id": request.request_id})
            self._notify()
        else:
            # No recovery: the accelerator is poisoned — this and every
            # later request needing a reprogram of it sheds.
            self.poisoned.add(name)
            self._fault_shed(request)
        return None

    def flush_pending(self) -> int:
        """Shed whatever is still queued (a chaos run can end partitioned
        with every fabric dead); keeps submitted == completed + shed."""
        flushed = 0
        while self.pending:
            self._fault_shed(self.pending.pop())
            flushed += 1
        return flushed

    def _trace_dequeue(self, request: Request, track: str) -> None:
        """Close the request's queue-wait span (tracer attached only).

        Keyed on the *latest* ready instant (admission or replay), so a
        replayed request's queue span covers only its current wait — the
        earlier, wasted wait is part of the blackout residual.
        """
        now_ps = self.sim.now_ps
        ready_ps = self._trace_ready.pop(
            (request.tenant, request.request_id), now_ps)
        self.tracer.complete(
            "queue", track, ready_ps, now_ps - ready_ps, cat="serve",
            args={"t": request.tenant, "id": request.request_id})

    # ------------------------------------------------------------------ #
    # Worker processes (one per fabric)
    # ------------------------------------------------------------------ #
    def _worker(self, fabric: FabricContext):
        served = 0
        while True:
            if fabric.failed:
                yield fabric.repair_event()
                continue
            if not self.pending:
                if self.closed:
                    break
                yield self._work_event
                continue
            index = self.policy.select(self.pending, fabric)
            request = self.pending.pop(index)
            self.monitor.on_dequeue(len(self.pending))
            if self.tracer is not None:
                self._trace_dequeue(request, fabric.name)
            self._in_flight += 1
            fabric.busy = True
            fabric.active_request = request
            program_fault = False
            try:
                yield from fabric.serve(request)
            except DuetError:
                program_fault = True
            finally:
                fabric.busy = False
                fabric.active_request = None
                self._in_flight -= 1
            if program_fault:
                yield from self._handle_program_fault(fabric, request)
                continue
            if fabric.failed and fabric.fail_time_ns < self.sim.now:
                # The fabric died while this request was on it.
                self._handle_lost(request)
                continue
            self.monitor.on_complete(request)
            if self.tracer is not None:
                self.tracer.instant(
                    "complete", fabric.name, self.sim.now_ps, cat="serve",
                    args={"t": request.tenant, "id": request.request_id})
            if request.completion is not None:
                request.completion.succeed(request)
            served += 1
        if (self.closed and not self.pending and self._in_flight == 0
                and not self._drained.triggered):
            self._drained.succeed()
        return served

    def _region_worker(self, fabric: FabricContext):
        """One of K workers sharing a region-gridded fabric.

        Differs from :meth:`_worker` in exactly two ways: the policy picks
        only among *startable* requests (an idle resident span, or room to
        place one — a request for a busy span waits), and every completion
        re-notifies, because startability changes when pins release, not
        just when the queue grows.
        """
        served = 0
        while True:
            if fabric.failed:
                yield fabric.repair_event()
                continue
            if not self.pending:
                if self.closed:
                    break
                yield self._work_event
                continue
            startable = [index for index, request in enumerate(self.pending)
                         if fabric.can_start(request)]
            if not startable:
                # Every blocked request targets a pinned span, so an
                # in-flight service exists and its completion will notify.
                yield self._work_event
                continue
            subset = [self.pending[index] for index in startable]
            pick = self.policy.select(subset, fabric)
            request = self.pending.pop(startable[pick])
            self.monitor.on_dequeue(len(self.pending))
            if self.tracer is not None:
                self._trace_dequeue(
                    request, f"{fabric.name}/{request.accelerator}")
            self._in_flight += 1
            fabric.busy = True
            fabric.active_requests.append(request)
            program_fault = False
            try:
                # No yield before serve_regional pins its span, so the
                # startability check above cannot be stale.
                yield from fabric.serve_regional(request)
            except DuetError:
                program_fault = True
            finally:
                fabric.active_requests.remove(request)
                fabric.busy = bool(fabric.active_requests)
                self._in_flight -= 1
                self._notify()
            if program_fault:
                yield from self._handle_program_fault(fabric, request)
                continue
            if fabric.failed and fabric.fail_time_ns < self.sim.now:
                self._handle_lost(request)
                continue
            self.monitor.on_complete(request)
            if self.tracer is not None:
                self.tracer.instant(
                    "complete", f"{fabric.name}/{request.accelerator}",
                    self.sim.now_ps, cat="serve",
                    args={"t": request.tenant, "id": request.request_id})
            if request.completion is not None:
                request.completion.succeed(request)
            served += 1
        if (self.closed and not self.pending and self._in_flight == 0
                and not self._drained.triggered):
            self._drained.succeed()
        return served

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def fabric_totals(self) -> Dict[str, float]:
        """Aggregate fabric-side accounting for report rows."""
        return {
            "reconfigurations": sum(f.reconfigurations for f in self.fabrics),
            "reconfig_us_total": sum(f.reconfig_ns_total for f in self.fabrics) / 1000.0,
            "service_us_total": sum(f.service_ns_total for f in self.fabrics) / 1000.0,
        }

    def region_totals(self) -> Dict[str, float]:
        """Region-mode accounting; only merged into rows when regions > 1
        (the default-off contract: regions=1 rows keep their exact shape)."""
        frag = [sample for f in self.fabrics for sample in f.frag_samples]
        return {
            "regions": self.config.regions,
            "region_capacity_tiles": self.region_plan.region_capacity,
            "region_programmings": sum(f.region_programmings for f in self.fabrics),
            "regions_programmed": sum(f.regions_programmed for f in self.fabrics),
            "region_evictions": sum(f.allocator.evictions for f in self.fabrics),
            "fragmentation_mean": sum(frag) / len(frag) if frag else 0.0,
        }

    def chaos_totals(self) -> Dict[str, int]:
        """Fault/recovery accounting (all zero on a fault-free run)."""
        totals = dict(self.fault_stats)
        totals["dead_fabrics"] = sum(1 for f in self.fabrics if f.failed)
        return totals
