"""Unit and property tests for the cache tag store, address map and DRAM model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem import (
    AddressMap,
    CoherenceState,
    MainMemory,
    MemoryConfig,
    SetAssociativeCache,
)


# --------------------------------------------------------------------------- #
# MemoryConfig
# --------------------------------------------------------------------------- #
def test_default_config_matches_dolly():
    config = MemoryConfig()
    assert config.line_bytes == 16
    assert config.l2_size_bytes == 8 * 1024
    assert config.llc_shard_size_bytes == 64 * 1024
    assert config.words_per_line == 2
    assert config.max_store_bytes == 8


def test_config_validation():
    with pytest.raises(ValueError):
        MemoryConfig(line_bytes=24)
    with pytest.raises(ValueError):
        MemoryConfig(word_bytes=5)
    with pytest.raises(ValueError):
        MemoryConfig(l1_size_bytes=1000, l1_assoc=3)


# --------------------------------------------------------------------------- #
# AddressMap
# --------------------------------------------------------------------------- #
def test_line_and_word_alignment():
    amap = AddressMap(MemoryConfig(), home_tiles=[0, 1, 2, 3])
    assert amap.line_of(0x1234) == 0x1230
    assert amap.word_of(0x1234) == 0x1230
    assert amap.word_of(0x123C) == 0x1238
    assert amap.offset_in_line(0x1234) == 4
    assert amap.same_line(0x1230, 0x123F)
    assert not amap.same_line(0x1230, 0x1240)


def test_lines_spanning_regions():
    amap = AddressMap(MemoryConfig(), home_tiles=[0])
    assert amap.lines_spanning(0x100, 16) == [0x100]
    assert amap.lines_spanning(0x100, 17) == [0x100, 0x110]
    assert amap.lines_spanning(0x108, 16) == [0x100, 0x110]
    assert amap.lines_spanning(0x100, 0) == []


def test_home_tile_interleaving_covers_all_tiles():
    amap = AddressMap(MemoryConfig(), home_tiles=[0, 1, 2, 3])
    homes = {amap.home_tile(line * 16) for line in range(16)}
    assert homes == {0, 1, 2, 3}
    # Consecutive lines map to different homes (line interleaving).
    assert amap.home_tile(0x0) != amap.home_tile(0x10)


def test_address_map_requires_home_tiles():
    with pytest.raises(ValueError):
        AddressMap(MemoryConfig(), home_tiles=[])


@given(addr=st.integers(min_value=0, max_value=2**40), n=st.integers(min_value=1, max_value=64))
def test_home_tile_is_stable_and_line_granular(addr, n):
    amap = AddressMap(MemoryConfig(), home_tiles=list(range(n)))
    home = amap.home_tile(addr)
    assert 0 <= home < n
    # Every address in the same line has the same home.
    assert amap.home_tile(amap.line_of(addr)) == home
    assert amap.home_tile(amap.line_of(addr) + 15) == home


# --------------------------------------------------------------------------- #
# SetAssociativeCache
# --------------------------------------------------------------------------- #
def test_cache_insert_lookup_and_miss_counts():
    cache = SetAssociativeCache(1024, 16, 2)
    assert cache.lookup(0x100) is None
    cache.insert(0x100, CoherenceState.SHARED)
    entry = cache.lookup(0x100)
    assert entry is not None and entry.state is CoherenceState.SHARED
    assert cache.hits == 1
    assert cache.misses == 1


def test_cache_lru_eviction_order():
    # 2-way cache: third distinct line in a set evicts the least recently used.
    cache = SetAssociativeCache(line_bytes=16, assoc=2, size_bytes=16 * 2 * 4)  # 4 sets
    set_stride = 16 * cache.num_sets
    a, b, c = 0x0, set_stride, 2 * set_stride  # all map to set 0
    cache.insert(a, CoherenceState.SHARED)
    cache.insert(b, CoherenceState.SHARED)
    cache.lookup(a)  # touch a, so b becomes LRU
    victim = cache.insert(c, CoherenceState.SHARED)
    assert victim is not None and victim.line_addr == b
    assert a in cache and c in cache and b not in cache


def test_cache_invalidate_and_contains():
    cache = SetAssociativeCache(1024, 16, 4)
    cache.insert(0x40, CoherenceState.MODIFIED, dirty=True)
    assert 0x40 in cache
    removed = cache.invalidate(0x40)
    assert removed.dirty
    assert 0x40 not in cache
    assert cache.invalidate(0x40) is None


def test_cache_invalidate_all():
    cache = SetAssociativeCache(1024, 16, 4)
    for i in range(10):
        cache.insert(i * 16, CoherenceState.SHARED)
    assert cache.invalidate_all() == 10
    assert len(cache) == 0


def test_cache_geometry_validation():
    with pytest.raises(ValueError):
        SetAssociativeCache(1000, 16, 3)
    with pytest.raises(ValueError):
        SetAssociativeCache(0, 16, 1)


def test_cache_peek_does_not_touch_lru_or_stats():
    cache = SetAssociativeCache(line_bytes=16, assoc=2, size_bytes=16 * 2)
    cache.insert(0x00, CoherenceState.SHARED)
    cache.insert(0x20, CoherenceState.SHARED)
    hits_before = cache.hits
    cache.peek(0x00)
    assert cache.hits == hits_before
    # 0x00 is still LRU because peek did not touch it.
    victim = cache.insert(0x40, CoherenceState.SHARED)
    assert victim.line_addr == 0x00


@settings(max_examples=50, deadline=None)
@given(
    addresses=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=200),
)
def test_cache_never_exceeds_capacity_and_residency_is_consistent(addresses):
    cache = SetAssociativeCache(size_bytes=16 * 16, line_bytes=16, assoc=2)
    resident = set()
    for index in addresses:
        line = index * 16
        victim = cache.insert(line, CoherenceState.SHARED)
        resident.add(line)
        if victim is not None:
            resident.discard(victim.line_addr)
        assert len(cache) <= cache.capacity_lines
        # Per-set occupancy never exceeds associativity.
        assert len(cache) == len(resident)
    for line in resident:
        assert cache.peek(line) is not None


# --------------------------------------------------------------------------- #
# MainMemory
# --------------------------------------------------------------------------- #
def test_memory_word_roundtrip_and_default_zero():
    memory = MainMemory(MemoryConfig())
    assert memory.read_word(0x1000) == 0
    memory.write_word(0x1000, 42)
    assert memory.read_word(0x1000) == 42
    # Sub-word addresses alias onto the same word.
    assert memory.read_word(0x1004) == 42


def test_memory_read_modify_write_returns_old_value():
    memory = MainMemory(MemoryConfig())
    memory.write_word(0x2000, 5)
    old = memory.read_modify_write(0x2000, lambda v: v + 10)
    assert old == 5
    assert memory.read_word(0x2000) == 15


def test_memory_allocator_alignment_and_disjointness():
    memory = MainMemory(MemoryConfig())
    a = memory.allocate(100)
    b = memory.allocate(100)
    assert a % 16 == 0 and b % 16 == 0
    assert b >= a + 100
    c = memory.allocate(8, align=64)
    assert c % 64 == 0
