"""Tests for the online health-monitoring layer: windowed telemetry
streams (``repro.obs.monitor``), the declarative alert engine
(``repro.obs.alerts``), gauge merge modes, alert-driven fleet control, the
``alerting`` experiment's acceptance pins, and the perf/CLI wiring
(monitor-on fleet bench, ``repro alerts``, ``repro trend``)."""

import json
import os
import subprocess
import sys

import pytest

from repro.fleet.autoscaler import Autoscaler, AutoscalerConfig
from repro.fleet.cluster import FleetConfig, epoch_goodput, run_fleet
from repro.fleet.experiments import FLEET_TENANTS
from repro.fleet.node import NodeSpec
from repro.obs import (
    AUTOSCALER_RULES,
    DEFAULT_RULES,
    AlertEngine,
    AlertEvent,
    AlertRule,
    MetricsRegistry,
    MetricsSnapshot,
    TelemetryMonitor,
    TelemetryStream,
    score_alerts,
)
from repro.serve.experiments import run_serve
from repro.serve.slo import SloMonitor

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# --------------------------------------------------------------------------- #
# Fakes for unit-driving the SLO hooks on a hand-rolled timeline
# --------------------------------------------------------------------------- #
class _Sim:
    now = 0.0


class _Req:
    """Just enough of ``repro.serve.request.Request`` for the SLO hooks."""

    def __init__(self, tenant="alpha", slo_ns=10_000.0, latency_ns=5_000.0):
        self.tenant = tenant
        self.slo_ns = slo_ns
        self.latency_ns = latency_ns
        self.queue_wait_ns = 0.0
        self.start_ns = 0.0
        self.finish_ns = latency_ns
        self.slo_met = latency_ns <= slo_ns


def _monitored(window_ns=100.0):
    sim = _Sim()
    monitor = SloMonitor(sim)
    telemetry = TelemetryMonitor(monitor, window_ns)
    monitor.telemetry = telemetry
    return sim, monitor, telemetry


# --------------------------------------------------------------------------- #
# TelemetryMonitor window semantics
# --------------------------------------------------------------------------- #
def test_event_exactly_at_window_boundary_lands_in_the_window_it_opens():
    """Window k is [k·w, (k+1)·w): an event at exactly t=w closes window 0
    *first* and records into window 1 — the boundary is half-open."""
    sim, monitor, telemetry = _monitored(window_ns=100.0)
    sim.now = 50.0
    monitor.on_submit(_Req(), queue_depth=1)
    sim.now = 100.0  # exactly the window-0 boundary
    monitor.on_complete(_Req())
    telemetry.finalize(200.0)
    w0, w1 = telemetry.stream.samples
    assert (w0["submitted"], w0["completed"]) == (1, 0)
    assert (w1["submitted"], w1["completed"]) == (0, 1)
    assert w0["t_ps"] == 100_000 and w1["t_ps"] == 200_000  # ns -> ps


def test_zero_traffic_windows_emit_zero_bad_fraction_not_a_division_error():
    _, _, telemetry = _monitored(window_ns=100.0)
    telemetry.finalize(500.0)
    assert len(telemetry.stream.samples) == 5
    for sample in telemetry.stream.samples:
        assert sample["resolved"] == 0
        assert sample["bad_fraction"] == 0.0
        assert sample["shed_rate"] == 0.0
        assert sample["goodput_krps"] == 0.0


def test_burst_crossing_many_windows_attributes_deltas_to_the_last_window():
    """A quiet gap then a burst: the empty windows flush as zeros and the
    burst's counts land in the window the sim clock says they belong to."""
    sim, monitor, telemetry = _monitored(window_ns=100.0)
    sim.now = 350.0
    monitor.on_submit(_Req(), queue_depth=1)
    monitor.on_complete(_Req())
    telemetry.finalize(400.0)
    counts = [(s["submitted"], s["completed"])
              for s in telemetry.stream.samples]
    assert counts == [(0, 0), (0, 0), (0, 0), (1, 1)]


def test_stream_merge_rejects_mismatched_windows_and_sorts_totally():
    a = TelemetryStream(window_ps=100, samples=[
        {"epoch": 1, "t_ps": 5, "node_id": 0, "seq": 0, "submitted": 1}])
    b = TelemetryStream(window_ps=100, samples=[
        {"epoch": 0, "t_ps": 9, "node_id": 1, "seq": 0, "submitted": 2}])
    merged = TelemetryStream.merged([a, b])
    assert [s["epoch"] for s in merged.samples] == [0, 1]
    with pytest.raises(ValueError, match="different windows"):
        merged.merge(TelemetryStream(window_ps=7, samples=[]))


def test_stream_series_and_sliding_reads():
    stream = TelemetryStream(window_ps=1, samples=[
        {"epoch": 0, "t_ps": t, "node_id": 0, "seq": t, "goodput_krps": v}
        for t, v in enumerate([4.0, 0.0, 2.0])])
    assert stream.series("goodput_krps") == [(0, 4.0), (1, 0.0), (2, 2.0)]
    assert stream.sliding("goodput_krps", 2) == [(0, 4.0), (1, 2.0), (2, 1.0)]
    with pytest.raises(KeyError, match="unknown telemetry metric"):
        stream.series("nope")


# --------------------------------------------------------------------------- #
# Gauge merge modes (per-gauge max/min/sum/last)
# --------------------------------------------------------------------------- #
def test_gauge_merge_modes_min_sum_last_and_default_max():
    left = MetricsSnapshot(gauges={"peak": 3.0, "floor": 2.0, "total": 1.0,
                                   "latest": 1.0},
                           gauge_modes={"floor": "min", "total": "sum",
                                        "latest": "last"})
    right = MetricsSnapshot(gauges={"peak": 1.0, "floor": 5.0, "total": 2.0,
                                    "latest": 9.0},
                            gauge_modes={"floor": "min", "total": "sum",
                                         "latest": "last"})
    merged = MetricsSnapshot.merged((left, right))
    assert merged.gauges == {"peak": 3.0, "floor": 2.0, "total": 3.0,
                             "latest": 9.0}
    # Round trip preserves the modes; the pre-mode dict shape is kept for
    # snapshots that only use the default.
    assert MetricsSnapshot.from_dict(merged.as_dict()) == merged
    assert "gauge_modes" not in MetricsSnapshot(gauges={"g": 1.0}).as_dict()


def test_gauge_mode_conflict_refuses_to_merge():
    left = MetricsSnapshot(gauges={"g": 1.0}, gauge_modes={"g": "min"})
    right = MetricsSnapshot(gauges={"g": 2.0}, gauge_modes={"g": "sum"})
    with pytest.raises(ValueError, match="previously merged as"):
        MetricsSnapshot.merged((left, right))


def test_registry_gauge_mode_is_sticky_and_validated():
    registry = MetricsRegistry("t")
    gauge = registry.gauge("free", mode="min")
    gauge.set(4.0)
    assert registry.gauge("free", mode="min") is gauge
    with pytest.raises(ValueError, match="mode"):
        registry.gauge("free", mode="max")
    with pytest.raises(ValueError, match="mode"):
        registry.gauge("fresh", mode="median")
    assert registry.snapshot().gauge_modes == {"free": "min"}


def test_fleet_free_capacity_gauge_merges_as_min_across_nodes():
    """The regression the mode system exists for: cluster headroom is the
    *minimum* free capacity over nodes — a max-merge would report the
    least-loaded node and hide exhaustion on the hottest one."""
    outcome = run_fleet(FleetConfig(nodes=2, epochs=2, epoch_us=200.0),
                        FLEET_TENANTS, total_rate_rps=200_000.0)
    snapshot = outcome.metrics
    assert snapshot.gauge_modes.get("free_capacity") == "min"
    per_node = []
    for report in outcome.reports:
        node_snapshot = MetricsSnapshot.from_dict(report["metrics"])
        per_node.append(node_snapshot.gauges["free_capacity"])
    assert snapshot.gauges["free_capacity"] == min(per_node)


# --------------------------------------------------------------------------- #
# Alert rules and the engine
# --------------------------------------------------------------------------- #
def _sample(t, node=0, epoch=0, **metrics):
    base = {"t_ps": t, "node_id": node, "epoch": epoch, "bad": 0,
            "resolved": 0, "shed_rate": 0.0, "queue_depth": 0.0,
            "busy_fraction": 0.5, "bad_fraction": 0.0}
    base.update(metrics)
    return base


def test_alert_rule_validation():
    with pytest.raises(ValueError, match="kind"):
        AlertRule(name="r", kind="sigma")
    with pytest.raises(ValueError, match="severity"):
        AlertRule(name="r", kind="threshold", severity="fatal")
    with pytest.raises(ValueError, match="short_windows"):
        AlertRule(name="r", kind="burn_rate", short_windows=3, long_windows=2)
    with pytest.raises(ValueError, match="duplicate rule names"):
        AlertEngine([AlertRule(name="r", kind="threshold"),
                     AlertRule(name="r", kind="ewma")])


def test_threshold_rule_hysteresis_resolve_and_rearm():
    rule = AlertRule(name="hot", kind="threshold", metric="shed_rate",
                     op=">", value=0.5, for_windows=2, clear_windows=2)
    engine = AlertEngine([rule])
    readings = [0.9, 0.9,          # fire on the 2nd consecutive breach
                0.0, 0.9,          # one clear does NOT resolve
                0.0, 0.0,          # two consecutive clears resolve + re-arm
                0.9, 0.9]          # a fresh streak fires a second event
    for t, value in enumerate(readings):
        engine.observe(_sample(t, shed_rate=value))
    assert [(e.t_ps, e.event) for e in engine.events] == [
        (1, "fired"), (5, "resolved"), (7, "fired")]
    assert engine.is_firing("hot", 0)


def test_burn_rate_needs_short_and_long_windows_and_survives_zero_traffic():
    rule = AlertRule(name="burn", kind="burn_rate", budget=0.1,
                     burn_threshold=5.0, short_windows=1, long_windows=4,
                     severity="critical")
    engine = AlertEngine([rule])
    # Zero-traffic windows: resolved == 0 must read as burn 0, not 1/0.
    for t in range(4):
        assert engine.observe(_sample(t)) == []
    # One bad window lights the short burn but the long window still
    # remembers three clean ones... make them count-bearing.
    engine2 = AlertEngine([rule])
    for t in range(3):
        engine2.observe(_sample(t, bad=0, resolved=100))
    assert engine2.observe(_sample(3, bad=90, resolved=100)) == []
    # Second bad window: short burn 9.5x but the 4-window long burn is
    # still diluted to 4.6x by the clean history -> still quiet.
    assert engine2.observe(_sample(4, bad=95, resolved=100)) == []
    # Sustained badness pushes the long burn over too -> fires.
    events = engine2.observe(_sample(5, bad=95, resolved=100))
    assert [e.event for e in events] == ["fired"]
    assert events[0].family == "burn_rate"
    assert events[0].severity == "critical"


def test_ewma_rule_fires_on_a_spike_after_warmup_only():
    rule = AlertRule(name="queue", kind="ewma", metric="queue_depth",
                     warmup_windows=4, z_threshold=3.0, min_std=1.0,
                     for_windows=1)
    engine = AlertEngine([rule])
    for t in range(4):
        engine.observe(_sample(t, queue_depth=2.0))  # warmup: never fires
    assert engine.events == []
    assert engine.observe(_sample(4, queue_depth=2.0)) == []
    events = engine.observe(_sample(5, queue_depth=50.0))
    assert [e.event for e in events] == ["fired"]
    assert events[0].value > 3.0


def test_firing_respects_the_severity_floor_and_sorts():
    engine = AlertEngine(AUTOSCALER_RULES)
    for t in range(6):
        engine.observe(_sample(t, node=1, busy_fraction=0.0,
                               shed_rate=0.9))
    assert engine.firing("info") == [("fleet_idle", 1), ("shed_spike", 1)]
    assert engine.firing("warning") == [("shed_spike", 1)]
    assert engine.firing("critical") == []


def test_engine_export_mirrors_the_log_as_trace_instants():
    from repro.obs import Tracer

    engine = AlertEngine([AlertRule(name="hot", kind="threshold",
                                    metric="shed_rate", value=0.5)])
    engine.observe(_sample(3, shed_rate=0.9))
    tracer = Tracer()
    engine.export(tracer)
    instant = tracer.instants[0]
    assert instant.name == "hot:fired"
    assert instant.args["node"] == 0 and instant.args["seq"] == 0


def test_score_alerts_latency_recall_and_false_alarms():
    truth = [{"kind": "fabric", "node_id": 0, "t_ps": 100},
             {"kind": "seu", "node_id": 1, "t_ps": 500}]
    fired = [
        AlertEvent(150, "slo_fast_burn", "burn_rate", 0, "fired",
                   "critical", 9.0, 0),          # detects fault 0, latency 50
        AlertEvent(900, "shed_spike", "threshold", 2, "fired",
                   "warning", 0.9, 0),           # wrong node: false alarm
        AlertEvent(90, "slo_fast_burn", "burn_rate", 0, "resolved",
                   "critical", 0.0, 0),          # resolved events never score
    ]
    score = score_alerts(fired, truth, horizon_ps=200)
    assert score["faults"] == 2 and score["detected"] == 1
    assert score["recall"] == 0.5
    assert score["false_alarms"] == 1 and score["true_alarms"] == 1
    assert score["precision"] == 0.5
    assert score["max_detection_latency_ps"] == 50
    assert score["by_family"]["threshold"]["false_alarm_rate"] == 1.0
    kill_only = score_alerts(fired, truth, horizon_ps=200, kinds=("fabric",))
    assert kill_only["faults"] == 1 and kill_only["recall"] == 1.0


# --------------------------------------------------------------------------- #
# Monitor-off ≡ monitor-on bit-identity, serial ≡ process, hashseed pins
# --------------------------------------------------------------------------- #
def test_attaching_telemetry_never_perturbs_serve_results():
    kwargs = dict(tenant_mix="duo", arrival_rate_krps=250.0,
                  duration_us=400.0)
    plain = run_serve("affinity", **kwargs)
    watched = run_serve("affinity", telemetry_window_us=50.0, **kwargs)
    assert plain["rows"] == watched["rows"]
    assert plain["elapsed_ns"] == watched["elapsed_ns"]
    assert plain["metrics"].as_dict() == watched["metrics"].as_dict()
    assert plain["telemetry"] is None
    assert len(watched["telemetry"].samples) > 0


def test_attaching_telemetry_never_perturbs_fleet_results():
    kwargs = dict(tenants=FLEET_TENANTS, total_rate_rps=200_000.0, seed=7)
    plain = run_fleet(FleetConfig(nodes=2, epochs=2, epoch_us=200.0),
                      **kwargs)
    watched = run_fleet(FleetConfig(nodes=2, epochs=2, epoch_us=200.0,
                                    telemetry_window_us=50.0), **kwargs)
    assert plain.rows == watched.rows
    assert plain.metrics == watched.metrics
    assert plain.telemetry is None and plain.alerts is None
    assert watched.alerts == []
    assert watched.telemetry.node_ids() == [0, 1]


def test_fleet_telemetry_and_alerts_are_serial_process_bit_identical():
    kwargs = dict(tenants=FLEET_TENANTS, total_rate_rps=250_000.0, seed=7)
    configs = [FleetConfig(nodes=2, epochs=3, epoch_us=300.0,
                           telemetry_window_us=50.0,
                           node_executor=executor,
                           workers=2 if executor == "process" else None)
               for executor in ("serial", "process")]
    serial = run_fleet(configs[0], **kwargs)
    pooled = run_fleet(configs[1], **kwargs)
    assert serial.rows == pooled.rows
    assert serial.telemetry.as_dict() == pooled.telemetry.as_dict()
    assert serial.alerts == pooled.alerts


def test_alert_log_is_pythonhashseed_independent():
    """The typed alert log (and the stream that feeds it) must not depend
    on string-hash ordering: three interpreters with different hash
    randomization emit identical JSON."""
    script = (
        "import json, sys\n"
        "from repro.obs.alerting import alerts_report\n"
        "report = alerts_report(fault='kill', control='alerts')\n"
        "sys.stdout.write(json.dumps(\n"
        "    {'alerts': report['alerts'], 'truth': report['truth'],\n"
        "     'score': report['score']}, sort_keys=True))\n"
    )
    outputs = []
    for hashseed in ("0", "1", "31337"):
        env = dict(os.environ,
                   PYTHONPATH=os.path.join(REPO_ROOT, "src"),
                   PYTHONHASHSEED=hashseed)
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True, env=env,
                              cwd=REPO_ROOT, timeout=300)
        assert proc.returncode == 0, proc.stderr
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1] == outputs[2]
    assert json.loads(outputs[0])["score"]["recall"] == 1.0


# --------------------------------------------------------------------------- #
# Alert-driven control: autoscaler + chaos failover
# --------------------------------------------------------------------------- #
class _FakeEngine:
    def __init__(self, hot=(), idle=()):
        self._hot = list(hot)
        self._idle = set(idle)

    def firing(self, min_severity="info"):
        return list(self._hot)

    def is_firing(self, rule, node_id):
        return rule == "fleet_idle" and node_id in self._idle


def test_autoscaler_config_rejects_unknown_signal_sources():
    with pytest.raises(ValueError, match="signal source"):
        AutoscalerConfig(signal="vibes")


def test_fleet_config_alerts_modes_require_telemetry():
    with pytest.raises(ValueError, match="chaos_control"):
        FleetConfig(chaos_control="psychic")
    with pytest.raises(ValueError, match="telemetry_window_us"):
        FleetConfig(chaos_control="alerts")
    with pytest.raises(ValueError, match="telemetry_window_us"):
        FleetConfig(autoscaler=AutoscalerConfig(enabled=True,
                                                signal="alerts"))


def test_decide_from_alerts_grows_shrinks_and_cools_down():
    template = NodeSpec(node_id=0)
    config = AutoscalerConfig(enabled=True, signal="alerts",
                              cooldown_epochs=1)
    scaler = Autoscaler(config, template)
    # Pressure on an active node -> grow.
    assert scaler.decide_from_alerts(
        _FakeEngine(hot=[("shed_spike", 0)]), [0, 1]) == 1
    # Pressure only on a node that already left the fleet -> hold.
    assert scaler.decide_from_alerts(
        _FakeEngine(hot=[("shed_spike", 9)]), [0, 1]) == 0
    # fleet_idle on every node -> shrink.
    assert scaler.decide_from_alerts(
        _FakeEngine(idle={0, 1}), [0, 1]) == -1
    # ... but idle on only one node -> hold.
    assert scaler.decide_from_alerts(_FakeEngine(idle={0}), [0, 1]) == 0
    # Cooldown: after acting, the next decision is forced to hold.
    scaler._record(0, "grow", "+n1")
    assert scaler.decide_from_alerts(
        _FakeEngine(hot=[("shed_spike", 0)]), [0, 1]) == 0
    assert scaler.decide_from_alerts(
        _FakeEngine(hot=[("shed_spike", 0)]), [0, 1]) == 1


def test_alerts_mode_autoscaler_grows_a_pressured_fleet():
    """End to end: a 1-node fleet under heavy load, autoscaler reading
    alerts only — it must grow without touching the raw signals."""
    config = FleetConfig(
        nodes=3, epochs=4, epoch_us=300.0,
        autoscaler=AutoscalerConfig(enabled=True, signal="alerts",
                                    min_nodes=1, max_nodes=3,
                                    cooldown_epochs=0),
        telemetry_window_us=50.0)
    outcome = run_fleet(config, FLEET_TENANTS, total_rate_rps=700_000.0,
                        seed=7)
    grows = [e for e in outcome.autoscaler.events if e["action"] == "grow"]
    assert grows, outcome.autoscaler.events


# --------------------------------------------------------------------------- #
# The alerting experiment's acceptance pins
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def alerting_rows():
    from repro.obs.alerting import alerting_cell

    rows = []
    for fault in ("none", "kill"):
        for control in ("omniscient", "alerts"):
            rows.extend(alerting_cell(fault, control))
    return rows


def test_kill_detection_recall_and_latency_pins(alerting_rows):
    """From telemetry alone: the whole-node kill is detected with recall
    1.0 within one epoch by the default burn-rate rule."""
    row = next(r for r in alerting_rows
               if r["fault"] == "kill" and r["control"] == "alerts")
    assert row["recall"] == 1.0
    assert row["detection_latency_epochs"] <= 1.0
    assert row["fired_burn_rate"] >= 1
    assert row["recall_burn_rate"] == 1.0


def test_fault_free_sweep_cell_has_zero_false_alarms(alerting_rows):
    row = next(r for r in alerting_rows
               if r["fault"] == "none" and r["control"] == "alerts")
    assert row["alerts_fired"] == 0
    assert row["false_alarm_rate"] == 0.0


def test_alert_driven_recovery_matches_omniscient_goodput(alerting_rows):
    from repro.obs.alerting import ALERT_RECOVERY_FLOOR, alerting_summary

    summary = alerting_summary(alerting_rows)
    assert summary["kill_detected_within_horizon"]
    assert summary["alert_recovery_ratio"] >= ALERT_RECOVERY_FLOOR
    assert summary["fault_free_false_alarm_rate"] == 0.0


def test_alert_chaos_control_promotes_the_spare_from_alerts_alone():
    from repro.chaos.experiments import build_schedule
    from repro.chaos.inject import ChaosConfig

    config = FleetConfig(
        nodes=3, placement="affinity", policy="affinity", epochs=4,
        epoch_us=600.0, spares=1,
        chaos=ChaosConfig(build_schedule(0.0), recovery=True),
        telemetry_window_us=100.0, chaos_control="alerts")
    outcome = run_fleet(config, FLEET_TENANTS, total_rate_rps=300_000.0)
    assert outcome.chaos["promotions"] == 1
    assert 0 in outcome.chaos["dead_nodes"]
    # The detection fired before the control plane acted.
    assert any(e.event == "fired" and e.severity == "critical"
               for e in outcome.alerts)
    goodput = epoch_goodput(outcome.reports)
    assert goodput[-1] >= 0.8 * goodput[0]


def test_alerting_experiment_is_registered_with_both_axes():
    from repro.api.registry import get_experiment

    spec = get_experiment("alerting")
    assert spec.num_cells() == 8
    assert set(spec.grid["control"]) == {"omniscient", "alerts"}
    assert "none" in spec.grid["fault"] and "kill" in spec.grid["fault"]


def test_ground_truth_covers_every_epoch_node_and_sorts():
    from repro.chaos.schedule import FaultSchedule, FaultSpec

    schedule = FaultSchedule(seed=9, specs=(
        FaultSpec(kind="seu", rate_per_epoch=2.0),))
    truth = schedule.ground_truth(3, [1, 0], 2, 1000.0)
    assert truth == sorted(
        truth, key=lambda t: (t["t_ps"], t["node_id"], t["kind"]))
    for record in truth:
        assert record["kind"] == "seu"
        assert record["node_id"] in (0, 1) and 0 <= record["epoch"] < 3
        assert record["t_ps"] == int(round(
            record["t_ps"] / 1.0))  # integral ps
    # The oracle re-runs the same draws as events(): counts must agree.
    expected = sum(len(schedule.events(e, n, 2, 1000.0))
                   for e in range(3) for n in (0, 1))
    assert len(truth) == expected


# --------------------------------------------------------------------------- #
# Perf + CLI wiring
# --------------------------------------------------------------------------- #
def test_monitor_bench_is_in_suite_and_gated():
    from repro.perf import SUITE
    from repro.perf.harness import DEFAULT_GATES
    from repro.perf.micro import fleet_request_throughput

    names = [spec.name for spec in SUITE]
    assert "fleet_requests_per_sec_monitor_on" in names
    assert "fleet_requests_per_sec_monitor_on" in DEFAULT_GATES
    assert fleet_request_throughput(nodes=2, epochs=2, epoch_us=200.0,
                                    monitoring=True) > 0


def test_alerts_cli_emits_the_log_and_scores(capsys):
    from repro.api.cli import main

    assert main(["alerts", "--fault", "kill", "--control", "alerts"]) == 0
    out = capsys.readouterr().out
    assert "slo_fast_burn" in out
    assert "recall: 1.000" in out


def test_trend_tool_normalizes_by_calibration(tmp_path):
    from repro.api.cli import main
    from repro.perf.harness import SCHEMA
    from repro.perf.trend import format_trend, load_reports, trend_report

    def report(path, value, calibration, name="fleet_requests_per_sec"):
        payload = {
            "schema": SCHEMA, "created_at": "2026-08-08T00:00:00+00:00",
            "mode": "full", "interpreter": {"implementation": "cpython"},
            "calibration_sends_per_sec": calibration,
            "benchmarks": [{"name": name, "unit": "requests/s",
                            "direction": "higher", "value": value,
                            "params": {}}],
        }
        target = tmp_path / path
        target.write_text(json.dumps(payload))
        return str(target)

    # 2x the raw value on a 2x-faster machine = flat in calibrated terms.
    old = report("old.json", 100.0, 1e6)
    new = report("new.json", 200.0, 2e6)
    trend = trend_report(load_reports([old, new]))
    points = trend["benchmarks"]["fleet_requests_per_sec"]["points"]
    assert points[0]["ratio"] == pytest.approx(1.0)
    assert points[1]["ratio"] == pytest.approx(1.0)
    assert trend["benchmarks"]["fleet_requests_per_sec"]["anchor"] == "old.json"
    assert "anchor" in format_trend(trend)

    out_file = tmp_path / "BENCH_trend.json"
    assert main(["trend", old, new, "--out", str(out_file)]) == 0
    written = json.loads(out_file.read_text())
    assert written["schema"] == "duet-repro/bench-trend/v1"
    with pytest.raises(ValueError, match="not among the inputs"):
        trend_report(load_reports([old]), baseline_path="missing.json")


def test_trend_rejects_unknown_report_schemas(tmp_path):
    from repro.perf.trend import load_reports

    bogus = tmp_path / "BENCH_bogus.json"
    bogus.write_text(json.dumps({"schema": "other/v9", "benchmarks": []}))
    with pytest.raises(ValueError, match="unknown benchmark schema"):
        load_reports([str(bogus)])
