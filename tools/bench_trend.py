#!/usr/bin/env python3
"""Fold committed ``BENCH_*.json`` reports into one performance trend.

Thin wrapper over ``python -m repro trend`` (the logic lives in
:mod:`repro.perf.trend`) so CI and scripts can call it without spelling
the package path::

    python tools/bench_trend.py BENCH_kernel.json BENCH_obs.json \
        --out BENCH_trend.json

Each benchmark value is divided by its report's machine calibration
before ratios are taken, so reports recorded on different machines line
up; ratios anchor to each benchmark's first appearance (oldest report
first).  CI runs this over every committed baseline and uploads the
``BENCH_trend.json`` artifact.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["trend", *sys.argv[1:]]))
