"""Cache-coherent memory hierarchy (the OpenPiton P-Mesh substitute).

Dolly's memory system (Sec. IV): per-core private write-back L2 caches, a
shared L3 (LLC) distributed as 64 KB shards across all tiles, and a
directory-based MESI protocol over the 2D-mesh NoC.  This package models
that system at transaction level:

* :class:`AddressMap` — line math and home-shard interleaving.
* :class:`SetAssociativeCache` — LRU tag store used by L1/L2/LLC/proxy/soft
  caches.
* :class:`PrivateCacheAgent` — an L1 + private L2 pair that speaks the
  directory protocol; it is also reused (unmodified, as in the paper) as the
  hardware half of the Duet Proxy Cache.
* :class:`DirectoryShard` — an LLC shard plus its slice of the directory.
* :class:`MainMemory` — flat-latency DRAM with a word-granular backing store
  so workloads can keep functional values in simulated memory.
"""

from repro.mem.address import AddressMap
from repro.mem.cache_store import CacheEntry, SetAssociativeCache
from repro.mem.config import MemoryConfig
from repro.mem.dram import MainMemory
from repro.mem.protocol import CoherenceState, DirectoryState, MESI_STABLE_STATES
from repro.mem.directory import DirectoryShard
from repro.mem.private_cache import PrivateCacheAgent

__all__ = [
    "AddressMap",
    "CacheEntry",
    "SetAssociativeCache",
    "MemoryConfig",
    "MainMemory",
    "CoherenceState",
    "DirectoryState",
    "MESI_STABLE_STATES",
    "DirectoryShard",
    "PrivateCacheAgent",
]
