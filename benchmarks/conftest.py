"""Benchmark-harness configuration.

Each ``bench_*.py`` file regenerates one table or figure of the paper.  Set
``DUET_BENCH_FULL=1`` to run the full-size experiments (all frequencies,
all processor counts, 512-quad-word transfers); the default is a reduced
sweep that preserves every trend but keeps the pure-Python simulation fast.
"""

import os
import sys

# Make the benchmarks importable when pytest's rootdir is the repository.
sys.path.insert(0, os.path.dirname(__file__))

FULL = os.environ.get("DUET_BENCH_FULL", "0") == "1"
