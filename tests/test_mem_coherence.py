"""Integration tests for the directory-MESI protocol across the NoC."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem import CoherenceState, DirectoryState
from tests.conftest import build_mini_system


def run(system, *generators):
    """Run each generator as a process and return their results in order."""
    processes = [system.sim.process(gen, name=f"test-proc-{i}") for i, gen in enumerate(generators)]
    system.sim.run(max_events=2_000_000)
    for process in processes:
        assert process.finished, "test process did not finish"
    return [process.done.value for process in processes]


# --------------------------------------------------------------------------- #
# Single-agent behaviour
# --------------------------------------------------------------------------- #
def test_load_miss_installs_exclusive(mini_system):
    agent = mini_system.agents[0]

    def body():
        value = yield from agent.load(0x1000)
        return value

    [value] = run(mini_system, body())
    assert value == 0
    assert agent.state_of(0x1000) is CoherenceState.EXCLUSIVE
    home = mini_system.address_map.home_tile(0x1000)
    entry = mini_system.directories[home].entry(mini_system.address_map.line_of(0x1000))
    assert entry.state is DirectoryState.EXCLUSIVE
    assert entry.owner == (agent.node, agent.target)


def test_store_miss_installs_modified_and_value_visible(mini_system):
    agent = mini_system.agents[0]

    def writer():
        yield from agent.store(0x2000, 77)
        value = yield from agent.load(0x2000)
        return value

    [value] = run(mini_system, writer())
    assert value == 77
    assert agent.state_of(0x2000) is CoherenceState.MODIFIED


def test_second_load_hits_in_private_cache(mini_system):
    agent = mini_system.agents[0]
    times = {}

    def body():
        start = mini_system.sim.now
        yield from agent.load(0x3000)
        times["miss"] = mini_system.sim.now - start
        start = mini_system.sim.now
        yield from agent.load(0x3000)
        times["hit"] = mini_system.sim.now - start

    run(mini_system, body())
    assert times["hit"] < times["miss"]
    assert agent.stats.counter("l1_hits").value >= 1


def test_load_latency_includes_noc_and_llc(mini_system):
    """A cold miss takes roughly NoC + LLC + DRAM time, not just a cycle."""
    agent = mini_system.agents[0]

    def body():
        start = mini_system.sim.now
        yield from agent.load(0x4000)
        return mini_system.sim.now - start

    [latency] = run(mini_system, body())
    assert latency > mini_system.config.dram_latency_ns


# --------------------------------------------------------------------------- #
# Two-agent coherence
# --------------------------------------------------------------------------- #
def test_store_then_remote_load_transfers_data(mini_system):
    writer, reader = mini_system.agents

    def write_body():
        yield from writer.store(0x5000, 123)

    def read_body():
        # Wait for the writer to finish, then read.
        yield mini_system.sim.timeout(500.0)
        value = yield from reader.load(0x5000)
        return value

    _, value = run(mini_system, write_body(), read_body())
    assert value == 123
    # After the forward, both caches hold the line in SHARED state.
    assert writer.state_of(0x5000) is CoherenceState.SHARED
    assert reader.state_of(0x5000) is CoherenceState.SHARED
    home = mini_system.address_map.home_tile(0x5000)
    entry = mini_system.directories[home].entry(mini_system.address_map.line_of(0x5000))
    assert entry.state is DirectoryState.SHARED
    assert len(entry.sharers) == 2


def test_remote_store_invalidates_sharer(mini_system):
    a, b = mini_system.agents

    def body_a():
        yield from a.load(0x6000)
        yield mini_system.sim.timeout(1500.0)
        return a.state_of(0x6000)

    def body_b():
        # Load first so the line becomes SHARED between both agents, then
        # upgrade to MODIFIED, which must invalidate the other sharer.
        yield mini_system.sim.timeout(300.0)
        yield from b.load(0x6000)
        yield from b.store(0x6000, 9)
        return b.state_of(0x6000)

    state_a, state_b = run(mini_system, body_a(), body_b())
    assert state_a is CoherenceState.INVALID
    assert state_b is CoherenceState.MODIFIED
    assert a.stats.counter("invalidations").value == 1


def test_ownership_transfer_on_write_after_write(mini_system):
    a, b = mini_system.agents

    def body_a():
        yield from a.store(0x7000, 1)

    def body_b():
        yield mini_system.sim.timeout(400.0)
        yield from b.store(0x7000, 2)

    run(mini_system, body_a(), body_b())
    assert a.state_of(0x7000) is CoherenceState.INVALID
    assert b.state_of(0x7000) is CoherenceState.MODIFIED
    assert mini_system.memory.read_word(0x7000) == 2
    home = mini_system.address_map.home_tile(0x7000)
    entry = mini_system.directories[home].entry(mini_system.address_map.line_of(0x7000))
    assert entry.owner == (b.node, b.target)


def test_read_write_ping_pong_preserves_values(mini_system):
    """Alternating writers see each other's latest values."""
    a, b = mini_system.agents
    addr = 0x8000

    def body_a():
        observed = []
        for i in range(5):
            yield from a.store(addr, 10 + i)
            yield mini_system.sim.timeout(600.0)
            observed.append((yield from a.load(addr)))
        return observed

    def body_b():
        observed = []
        for i in range(5):
            yield mini_system.sim.timeout(300.0)
            observed.append((yield from b.load(addr)))
            yield from b.store(addr, 100 + i)
            yield mini_system.sim.timeout(300.0)
        return observed

    results_a, results_b = run(mini_system, body_a(), body_b())
    assert results_b == [10, 11, 12, 13, 14]
    assert results_a == [100, 101, 102, 103, 104]


def test_amo_is_atomic_under_contention():
    """Concurrent atomic increments never lose updates."""
    system = build_mini_system(width=2, height=2, num_agents=4)
    addr = 0x9000
    increments_per_agent = 20

    def body(agent):
        for _ in range(increments_per_agent):
            yield from agent.amo(addr, lambda v: v + 1)

    processes = [system.sim.process(body(agent)) for agent in system.agents]
    system.sim.run(max_events=5_000_000)
    assert all(process.finished for process in processes)
    assert system.memory.read_word(addr) == 4 * increments_per_agent


def test_eviction_writes_back_and_line_can_be_reloaded():
    """Filling a set past its associativity evicts and writes back dirty lines."""
    config_system = build_mini_system()
    agent = config_system.agents[0]
    config = config_system.config
    # Addresses that all map to the same L2 set.
    set_stride = config.l2_size_bytes // config.l2_assoc
    addresses = [0x10000 + i * set_stride for i in range(config.l2_assoc + 2)]

    def body():
        for i, addr in enumerate(addresses):
            yield from agent.store(addr, i)
        # Reload the first (evicted) address; value must survive the writeback.
        value = yield from agent.load(addresses[0])
        return value

    [value] = run(config_system, body())
    assert value == 0
    assert agent.stats.counter("evictions").value >= 1


def test_mshr_limit_allows_many_outstanding_lines():
    system = build_mini_system()
    agent = system.agents[0]

    def body():
        for i in range(32):
            yield from agent.load(0x20000 + i * 16)

    run(system, body())
    assert agent.stats.counter("load_misses").value == 32


def test_store_larger_than_port_rejected(mini_system):
    agent = mini_system.agents[0]

    def body():
        yield from agent.store(0x100, 0, size_bytes=16)

    mini_system.sim.process(body())
    with pytest.raises(ValueError):
        mini_system.sim.run()


# --------------------------------------------------------------------------- #
# Property test: protocol keeps single-writer / multi-reader invariant
# --------------------------------------------------------------------------- #
@settings(max_examples=15, deadline=None)
@given(
    operations=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),   # agent index
            st.sampled_from(["load", "store"]),
            st.integers(min_value=0, max_value=7),   # line index
        ),
        min_size=1,
        max_size=40,
    )
)
def test_coherence_invariants_random_traffic(operations):
    system = build_mini_system(width=2, height=2, num_agents=4)
    base = 0x40000

    def body(agent, ops):
        for kind, line_index in ops:
            addr = base + line_index * system.config.line_bytes
            if kind == "load":
                yield from agent.load(addr)
            else:
                yield from agent.store(addr, agent.node)

    per_agent = {i: [] for i in range(4)}
    for agent_index, kind, line_index in operations:
        per_agent[agent_index].append((kind, line_index))
    processes = [
        system.sim.process(body(system.agents[i], ops)) for i, ops in per_agent.items() if ops
    ]
    system.sim.run(max_events=5_000_000)
    assert all(process.finished for process in processes)

    # Invariant: for every line, at most one agent holds it writable, and if
    # someone does, nobody else holds it at all.
    for line_index in range(8):
        line = base + line_index * system.config.line_bytes
        states = [agent.state_of(line) for agent in system.agents]
        writers = [s for s in states if s.can_write]
        readers = [s for s in states if s is not CoherenceState.INVALID]
        assert len(writers) <= 1
        if writers:
            assert len(readers) == 1
        # Directory owner matches the holder when exclusively owned.
        home = system.address_map.home_tile(line)
        entry = system.directories[home].entry(line)
        if entry.state is DirectoryState.EXCLUSIVE:
            owner_index = entry.owner[0]
            assert states[owner_index].can_write or states[owner_index] is CoherenceState.EXCLUSIVE
