"""Lightweight statistics collection.

Components accumulate counters and latency samples into a :class:`StatSet`;
the analysis layer reads them back to build the latency breakdowns and
bandwidth numbers reported in the paper's figures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


@dataclass
class Counter:
    """A monotonically increasing event counter."""

    name: str
    value: int = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0


@dataclass
class Histogram:
    """Accumulates scalar samples and reports summary statistics."""

    name: str
    samples: List[float] = field(default_factory=list)

    def record(self, value: float) -> None:
        self.samples.append(value)

    def reset(self) -> None:
        self.samples.clear()

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.samples else 0.0

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def percentile(self, fraction: float) -> float:
        """Return the ``fraction`` percentile (0..1) using nearest-rank."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
        return ordered[rank]


@dataclass
class TimeSeries:
    """A sequence of ``(time_ns, value)`` samples in non-decreasing time order.

    The power layer records one sample per governor/accounting epoch
    (average power, eFPGA frequency, per-epoch energy); experiments read the
    trace back to plot policies against each other.  Samples must be
    appended in non-decreasing time order — the recorder is a simulation
    process, so that comes for free.
    """

    name: str
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def record(self, time_ns: float, value: float) -> None:
        if self.times and time_ns < self.times[-1]:
            raise ValueError(
                f"{self.name}: sample at {time_ns}ns is earlier than the "
                f"last recorded sample at {self.times[-1]}ns"
            )
        self.times.append(time_ns)
        self.values.append(value)

    def reset(self) -> None:
        self.times.clear()
        self.values.clear()

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def last(self) -> float:
        return self.values[-1] if self.values else 0.0

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    def time_weighted_mean(self) -> float:
        """Mean of the samples weighted by the interval each one covers.

        Sample ``i`` is taken to hold from the previous sample's time (or
        the first sample's time for ``i == 0``) until its own timestamp —
        the convention the power traces use, where each epoch records its
        *average* value at the epoch's end.  With fewer than two samples
        (no interval information) this degrades to the plain mean.
        """
        if len(self.values) < 2:
            return self.mean
        total = 0.0
        span = 0.0
        for index in range(1, len(self.values)):
            dt = self.times[index] - self.times[index - 1]
            total += self.values[index] * dt
            span += dt
        return total / span if span > 0 else self.mean

    def as_pairs(self) -> List[tuple]:
        return list(zip(self.times, self.values))


class StatSet:
    """A named collection of counters, histograms and time series.

    Components create their stats lazily with :meth:`counter`,
    :meth:`histogram` and :meth:`series`, so tests and experiments can
    introspect whatever was actually exercised.
    """

    def __init__(self, name: str = "stats") -> None:
        self.name = name
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            if name in self._series:
                raise ValueError(
                    f"{self.name}: {name!r} is already a time series; "
                    "histograms and series share the flattened key space"
                )
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def series(self, name: str) -> TimeSeries:
        if name not in self._series:
            if name in self._histograms:
                raise ValueError(
                    f"{self.name}: {name!r} is already a histogram; "
                    "histograms and series share the flattened key space"
                )
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def counters(self) -> Dict[str, int]:
        return {name: counter.value for name, counter in self._counters.items()}

    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    def serieses(self) -> Dict[str, TimeSeries]:
        return dict(self._series)

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
        for histogram in self._histograms.values():
            histogram.reset()
        for series in self._series.values():
            series.reset()

    def merge(self, other: "StatSet") -> None:
        """Fold ``other``'s counters and samples into this set.

        Time series from the two sets may cover overlapping time ranges
        (e.g. per-subsystem traces of the same run); the merged series
        interleaves them by timestamp, keeping this set's samples first on
        ties, so the time-ordering invariant survives the merge.
        """
        for name, counter in other._counters.items():
            self.counter(name).increment(counter.value)
        for name, histogram in other._histograms.items():
            self.histogram(name).samples.extend(histogram.samples)
        for name, series in other._series.items():
            merged = self.series(name)
            pairs = sorted(
                list(zip(merged.times, merged.values))
                + list(zip(series.times, series.values)),
                key=lambda pair: pair[0],
            )
            merged.times = [time_ns for time_ns, _ in pairs]
            merged.values = [value for _, value in pairs]

    def as_dict(self) -> Dict[str, float]:
        """Flatten to a plain dict (counters plus histogram/series summaries)."""
        flat: Dict[str, float] = {}
        for name, counter in self._counters.items():
            flat[name] = counter.value
        for name, histogram in self._histograms.items():
            flat[f"{name}.mean"] = histogram.mean
            flat[f"{name}.count"] = histogram.count
        for name, series in self._series.items():
            flat[f"{name}.mean"] = series.mean
            flat[f"{name}.count"] = series.count
        return flat


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values (0 for an empty input)."""
    values = list(values)
    if not values:
        return 0.0
    if any(value <= 0 for value in values):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(value) for value in values) / len(values))
