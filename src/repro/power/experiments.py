"""The power/efficiency experiments: ``power_efficiency`` and ``dvfs_policy``.

``power_efficiency`` reruns the popcount application benchmark with energy
accounting enabled, sweeping system kind x P/M shape x eFPGA clock, and
reports the efficiency metrics the paper's evaluation implies but never
shows: total energy, energy-delay product and perf-per-watt.

``dvfs_policy`` drives a *bursty* accelerator workload (compute bursts
separated by long idle gaps) under each DVFS governor and reports the same
metrics plus the governor's retune activity — the experiment that shows a
utilization ladder beating any fixed clock choice on energy at equal or
better runtime (race-to-idle).

Cells are module-level and seed-deterministic, so they are picklable for
the process-pool executor and cacheable by the runner.  This module must
not import anything from :mod:`repro.api` (the registry imports *us*); the
:class:`~repro.api.spec.ExperimentSpec` objects wrapping these cells are
built and registered in :mod:`repro.api.registry`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.registers import RegisterKind, RegisterSpec
from repro.fpga.accelerator import SoftAccelerator
from repro.fpga.synthesis import AcceleratorDesign
from repro.platform.config import DollyConfig, SystemKind
from repro.platform.dolly import build_system
from repro.power.governor import (
    DEFAULT_LADDER,
    EnergyCapGovernor,
    FixedGovernor,
    Governor,
    LadderGovernor,
)
from repro.power.model import PowerConfig
from repro.workloads import popcount
from repro.workloads.common import WorkloadParams

DEFAULT_SEED = 2023

#: P/M shapes swept by ``power_efficiency`` (``"2x2"`` = Dolly-P2M2; the
#: CPU-only baseline uses the processor count and drops the hubs).
PM_SHAPES: Tuple[str, ...] = ("1x1", "2x2")


def _parse_pm(pm: str) -> Tuple[int, int]:
    try:
        processors, _, hubs = pm.partition("x")
        return int(processors), int(hubs)
    except ValueError:
        raise ValueError(f"bad P/M shape {pm!r}; expected e.g. '1x1' or '2x2'") from None


def _efficiency_metrics(runtime_ns: float, energy_nj: float, ops: int) -> Dict[str, float]:
    """The headline efficiency columns, shared by both experiments.

    * ``edp_nj_ms`` — energy-delay product, nanojoules x milliseconds;
    * ``perf_per_watt`` — (ops/second) per watt == ops per joule.

    ``avg_power_mw`` is *not* derived here: it comes from
    :func:`~repro.workloads.common.finalize_result` (pJ / ns == mW over
    the measured window) so there is exactly one formula for it.
    """
    runtime_ms = runtime_ns * 1e-6
    energy_j = energy_nj * 1e-9
    return {
        "energy_nj": energy_nj,
        "edp_nj_ms": energy_nj * runtime_ms,
        "perf_per_watt": ops / energy_j if energy_j > 0 else 0.0,
    }


# --------------------------------------------------------------------------- #
# power_efficiency: system kind x P/M x eFPGA clock -> energy / EDP / perf-per-W
# --------------------------------------------------------------------------- #
def power_efficiency_cell(system: str, pm: str, fpga_mhz: float,
                          vectors: int = 12, seed: int = DEFAULT_SEED,
                          cpu_anchor_mhz: float = 50.0) -> List[Dict[str, Any]]:
    """Run popcount on one configuration with energy accounting enabled.

    The CPU-only baseline has no eFPGA, so its measurement is independent
    of the swept ``fpga_mhz``; to keep the grid a plain cartesian product
    without simulating (and reporting) the identical baseline once per
    clock, CPU-only cells run only at the ``cpu_anchor_mhz`` grid point and
    return no rows elsewhere.  Override ``cpu_anchor_mhz`` alongside a
    custom ``fpga_mhz`` axis that does not include the default anchor.
    """
    kind = SystemKind(system)
    if kind is SystemKind.CPU_ONLY and fpga_mhz != cpu_anchor_mhz:
        return []
    processors, hubs = _parse_pm(pm)
    params = WorkloadParams(
        num_processors=processors,
        num_memory_hubs=0 if kind is SystemKind.CPU_ONLY else hubs,
        fpga_mhz=None if kind is SystemKind.CPU_ONLY else fpga_mhz,
        seed=seed,
        power=PowerConfig(enabled=True),
    )
    result = popcount.run(kind, params, vectors=vectors)
    energy_nj = result.extra["energy_nj"]
    breakdown = result.extra["energy_breakdown_nj"]
    row: Dict[str, Any] = {
        "system": kind.value,
        "system_name": result.system_name,
        "pm": pm,
        "fpga_mhz_requested": None if kind is SystemKind.CPU_ONLY else fpga_mhz,
        "fpga_mhz": result.fpga_mhz,
        "runtime_ns": result.runtime_ns,
        "correct": result.correct,
        "chip_area_mm2": result.chip_area_mm2,
        "avg_power_mw": result.extra["avg_power_mw"],
    }
    row.update(_efficiency_metrics(result.runtime_ns, energy_nj, vectors))
    for category, value_nj in breakdown.items():
        row[f"e_{category}_nj"] = value_nj
    return [row]


def power_efficiency_summary(rows: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Name the most efficient cell by each headline metric."""
    def label(row: Dict[str, Any]) -> str:
        mhz = row["fpga_mhz"]
        suffix = f"@{mhz:.0f}MHz" if mhz else ""
        return f"{row['system_name']}{suffix}"

    usable = [row for row in rows if row["energy_nj"] > 0]
    if not usable:
        return {}
    best_edp = min(usable, key=lambda row: row["edp_nj_ms"])
    best_ppw = max(usable, key=lambda row: row["perf_per_watt"])
    least_energy = min(usable, key=lambda row: row["energy_nj"])
    return {
        "best_edp": label(best_edp),
        "best_perf_per_watt": label(best_ppw),
        "least_energy": label(least_energy),
    }


# --------------------------------------------------------------------------- #
# The bursty workload driven by dvfs_policy
# --------------------------------------------------------------------------- #
REG_COMMAND = 0      # FPGA-bound FIFO: item index to process (or STOP)
REG_RESULT = 1       # CPU-bound FIFO: per-item checksum
REG_BASE_ADDR = 2    # plain register: base address of the item array

STOP_COMMAND = (1 << 62)
#: One cache line per item (the default MemoryConfig line size).
ITEM_BYTES = 16


class BurstComputeAccelerator(SoftAccelerator):
    """Loads one line per item, then burns a fixed compute-cycle budget.

    The compute budget dominates the per-item latency, so the item rate is
    roughly proportional to the eFPGA clock — the regime where a DVFS
    governor's frequency choice actually shows up in both the runtime and
    the energy column.  Shallow logic keeps the post-route Fmax near
    500 MHz so the default governor ladder is usable unclamped.
    """

    DESIGN = AcceleratorDesign(
        name="burst-compute",
        luts=1200,
        ffs=1200,
        bram_kbits=16,
        dsps=0,
        logic_depth=4,
        routing_pressure=0.2,
        mem_ports=1,
        description="line-load + fixed-latency compute kernel (bursty driver)",
    )

    def __init__(self, compute_cycles: int = 64, name: str = "burst-compute") -> None:
        super().__init__(name)
        self.compute_cycles = compute_cycles
        self.processed = 0

    #: Compute advances in stage-sized chunks so a mid-item governor retune
    #: takes effect at the next chunk boundary instead of after the whole
    #: item (a monolithic ``cycles(N)`` would pin the item to the frequency
    #: it started at).
    STAGE_CYCLES = 8

    def behavior(self):
        while True:
            command = yield from self.regs.pop_request(REG_COMMAND)
            if command == STOP_COMMAND:
                return self.processed
            base = yield from self.regs.read(REG_BASE_ADDR)
            words = yield from self.mem.load_line(base + command * ITEM_BYTES)
            remaining = self.compute_cycles
            while remaining > 0:
                chunk = min(self.STAGE_CYCLES, remaining)
                yield self.cycles(chunk)
                remaining -= chunk
            checksum = 0
            for word in words:
                checksum ^= word
            yield from self.regs.push_response(REG_RESULT, checksum & 0xFFFF_FFFF)
            self.processed += 1


def _burst_registers() -> List[RegisterSpec]:
    return [
        RegisterSpec(REG_COMMAND, RegisterKind.FPGA_BOUND_FIFO, "command"),
        RegisterSpec(REG_RESULT, RegisterKind.CPU_BOUND_FIFO, "result"),
        RegisterSpec(REG_BASE_ADDR, RegisterKind.PLAIN, "base_addr"),
    ]


#: Governor factories for the ``dvfs_policy`` grid.  The fixed points pin
#: the ladder's bottom, middle and top rungs so the policies are compared
#: over the same frequency range.
GOVERNOR_KINDS: Tuple[str, ...] = (
    "fixed_min", "fixed_mid", "fixed_max", "ladder", "energy_cap",
)

#: Governor epoch; well below a burst's duration so the ladder's step-up
#: lag stays a small fraction of every burst.
GOVERNOR_EPOCH_NS = 500.0


def make_governor(kind: str, epoch_ns: float = GOVERNOR_EPOCH_NS) -> Governor:
    ladder = DEFAULT_LADDER
    if kind == "fixed_min":
        return FixedGovernor(freq_mhz=ladder[0], epoch_ns=epoch_ns)
    if kind == "fixed_mid":
        return FixedGovernor(freq_mhz=ladder[len(ladder) // 2], epoch_ns=epoch_ns)
    if kind == "fixed_max":
        return FixedGovernor(freq_mhz=ladder[-1], epoch_ns=epoch_ns)
    if kind == "ladder":
        return LadderGovernor(freqs_mhz=ladder, epoch_ns=epoch_ns)
    if kind == "energy_cap":
        # Between the bursty workload's idle floor (~2.9 mW at the top rung)
        # and its busy peaks (~4 mW): binding during bursts, slack when idle.
        return EnergyCapGovernor(budget_mw=3.2, freqs_mhz=ladder, epoch_ns=epoch_ns)
    known = ", ".join(GOVERNOR_KINDS)
    raise ValueError(f"unknown governor {kind!r}; known governors: {known}")


def run_bursty(governor_kind: str, bursts: int = 4, items_per_burst: int = 6,
               idle_ns: float = 20_000.0, compute_cycles: int = 64,
               seed: int = DEFAULT_SEED,
               governor: Optional[Governor] = None) -> Dict[str, Any]:
    """Run the bursty workload on Dolly-P1M1 under one governor.

    Each burst pushes ``items_per_burst`` items through the accelerator's
    command FIFO back to back; between bursts the core stalls for
    ``idle_ns`` of system-clock time (idle duration is frequency-
    independent, as a device waiting for work would be).  Pass a ready
    ``governor`` to drive the same workload under a custom configuration
    (e.g. an :class:`EnergyCapGovernor` with a non-default budget);
    ``governor_kind`` then only labels the row.
    """
    import random

    config = DollyConfig.dolly(1, 1, power=PowerConfig(enabled=True))
    system = build_system(config)
    accelerator = BurstComputeAccelerator(compute_cycles=compute_cycles)
    system.install_accelerator(accelerator, registers=_burst_registers())
    if governor is None:
        governor = make_governor(governor_kind)
    governor.attach(system)
    system.start_accelerator()
    adapter = system.adapter

    rng = random.Random(seed)
    total_items = bursts * items_per_burst
    base = system.memory.allocate(total_items * ITEM_BYTES, align=64)
    words_per_item = ITEM_BYTES // 8
    expected: List[int] = []
    for item in range(total_items):
        checksum = 0
        for word_index in range(words_per_item):
            word = rng.getrandbits(64)
            system.memory.write_word(base + item * ITEM_BYTES + word_index * 8, word)
            checksum ^= word
        expected.append(checksum & 0xFFFF_FFFF)
    results: List[int] = []
    idle_cycles = max(1, int(round(idle_ns / system.sys_clock.period_ns)))

    def program(ctx):
        yield from ctx.mmio_write(adapter.register_addr(REG_BASE_ADDR), base)
        item = 0
        for burst in range(bursts):
            if burst:
                yield from ctx.stall(idle_cycles)
            for _ in range(items_per_burst):
                yield from ctx.mmio_write(adapter.register_addr(REG_COMMAND), item)
                checksum = yield from ctx.mmio_read(adapter.register_addr(REG_RESULT))
                results.append(checksum)
                item += 1
        yield from ctx.mmio_write(adapter.register_addr(REG_COMMAND), STOP_COMMAND)
        return item

    _, runtime_ns = system.run_single(program)
    energy = system.energy
    energy_nj = energy.last_window_pj / 1000.0
    # Frequency statistics over the *measured window* only, matching the
    # window-scoped energy totals (the post-run drain, where the governor
    # keeps easing the idle clock down, would otherwise skew them).
    trace = energy.window_series("fpga_mhz")
    row: Dict[str, Any] = {
        "governor": governor_kind,
        "workload": "bursty_compute",
        "bursts": bursts,
        "items": total_items,
        "correct": results == expected,
        "runtime_ns": runtime_ns,
        "avg_power_mw": energy.last_window_avg_power_mw,
        "retunes": governor.retunes,
        "fpga_mhz_mean": trace.time_weighted_mean(),
        "fpga_mhz_min": min(trace.values) if trace.values else 0.0,
        "fpga_mhz_max": max(trace.values) if trace.values else 0.0,
    }
    row.update(_efficiency_metrics(runtime_ns, energy_nj, total_items))
    for category, value_nj in sorted(energy.last_window_breakdown.items()):
        row[f"e_{category}_nj"] = value_nj / 1000.0
    return row


def dvfs_policy_cell(governor: str, bursts: int = 4, items_per_burst: int = 6,
                     idle_ns: float = 20_000.0, compute_cycles: int = 64,
                     seed: int = DEFAULT_SEED) -> List[Dict[str, Any]]:
    return [run_bursty(governor, bursts=bursts, items_per_burst=items_per_burst,
                       idle_ns=idle_ns, compute_cycles=compute_cycles, seed=seed)]


def dvfs_policy_summary(rows: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Compare every policy against the fixed points it shares rungs with."""
    by_governor = {row["governor"]: row for row in rows}
    summary: Dict[str, Any] = {}
    ladder = by_governor.get("ladder")
    fixed_mid = by_governor.get("fixed_mid")
    fixed_max = by_governor.get("fixed_max")
    if ladder and fixed_mid and fixed_mid["energy_nj"] > 0:
        summary["ladder_energy_vs_fixed_mid"] = (
            ladder["energy_nj"] / fixed_mid["energy_nj"])
        summary["ladder_runtime_vs_fixed_mid"] = (
            ladder["runtime_ns"] / fixed_mid["runtime_ns"])
    if ladder and fixed_max and fixed_max["energy_nj"] > 0:
        summary["ladder_energy_vs_fixed_max"] = (
            ladder["energy_nj"] / fixed_max["energy_nj"])
        summary["ladder_runtime_vs_fixed_max"] = (
            ladder["runtime_ns"] / fixed_max["runtime_ns"])
    usable = [row for row in rows if row["energy_nj"] > 0]
    if usable:
        summary["best_edp_governor"] = min(
            usable, key=lambda row: row["edp_nj_ms"])["governor"]
    return summary


