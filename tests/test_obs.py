"""Tests for ``repro.obs``: tracer nesting/ordering invariants (Hypothesis
over arbitrary begin/end sequences), the deterministic Chrome-trace export
and its pinned golden, the hooks-off ≡ hooks-on bit-identity contract, the
unified metrics registry (serial ≡ process fleet merge), ``ResultSet.cdf``,
and the ``latency_decomposition`` acceptance pins."""

import json
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.api.registry import get_experiment
from repro.api.results import ResultSet
from repro.api.runner import Runner
from repro.fleet.cluster import FleetConfig, run_fleet
from repro.fleet.experiments import FLEET_TENANTS
from repro.obs import (
    ALL_TENANTS,
    STAGES,
    CounterGroup,
    MetricsRegistry,
    MetricsSnapshot,
    Tracer,
    cdf_points,
)
from repro.obs.decompose import fraction_at, request_stages
from repro.obs.experiments import (
    latency_decomposition_cell,
    latency_decomposition_summary,
    trace_experiment,
)
from repro.serve.experiments import run_serve

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: The tiny pinned run behind the trace golden.  Regenerate after an
#: intentional hook change with:
#:   PYTHONPATH=src python -c "
#:   from tests.test_obs import tiny_traced_run
#:   open('tests/data/obs_trace_golden.json', 'w').write(
#:       tiny_traced_run().to_json())"
TINY = dict(tenant_mix="duo", arrival_rate_krps=250.0, duration_us=100.0)


def tiny_traced_run() -> Tracer:
    tracer = Tracer()
    run_serve("affinity", tracer=tracer, **TINY)
    return tracer


# --------------------------------------------------------------------------- #
# Tracer recording surface
# --------------------------------------------------------------------------- #
def test_complete_rejects_negative_duration():
    tracer = Tracer()
    with pytest.raises(ValueError, match="negative duration"):
        tracer.complete("x", "fabric0", 10, -1)


def test_begin_end_is_lifo_and_merges_args():
    tracer = Tracer()
    tracer.begin("outer", "fabric0", 0, args={"t": "alpha"})
    tracer.begin("inner", "fabric0", 5)
    inner = tracer.end("fabric0", 7)
    outer = tracer.end("fabric0", 12, args={"id": 3})
    assert (inner.name, inner.start_ps, inner.dur_ps) == ("inner", 5, 2)
    assert (outer.name, outer.start_ps, outer.dur_ps) == ("outer", 0, 12)
    assert outer.args == {"t": "alpha", "id": 3}
    assert tracer.open_depth("fabric0") == 0


def test_end_with_no_open_span_raises():
    tracer = Tracer()
    with pytest.raises(ValueError, match="no open span"):
        tracer.end("fabric0", 5)


def test_end_before_start_raises_and_keeps_the_span_open():
    tracer = Tracer()
    tracer.begin("s", "fabric0", 100)
    with pytest.raises(ValueError, match="before its start"):
        tracer.end("fabric0", 50)
    # The failed end() must not have consumed the open span.
    assert tracer.open_depth("fabric0") == 1
    assert tracer.end("fabric0", 150).dur_ps == 50


def test_tracks_are_isolated_per_pid():
    tracer = Tracer()
    tracer.begin("a", "fabric0", 0, pid=1)
    tracer.begin("b", "fabric0", 2, pid=2)
    assert tracer.open_depth("fabric0", pid=1) == 1
    assert tracer.end("fabric0", 9, pid=2).name == "b"
    assert tracer.end("fabric0", 10, pid=1).name == "a"


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["begin", "end"]),
                          st.sampled_from(["a", "b"]),
                          st.integers(min_value=0, max_value=5)),
                max_size=40))
def test_begin_end_sequences_keep_nesting_and_ordering_invariants(ops):
    """Arbitrary begin/end sequences with monotonic timestamps: spans on a
    track are always properly nested (contained or disjoint, never partially
    overlapping), sequence numbers follow record order, and the export is
    sorted by timestamp."""
    tracer = Tracer()
    now = 0
    depth = {"a": 0, "b": 0}
    for op, tid, advance in ops:
        now += advance
        if op == "begin":
            tracer.begin(f"s{now}", tid, now)
            depth[tid] += 1
        elif depth[tid] > 0:
            tracer.end(tid, now)
            depth[tid] -= 1
        else:
            with pytest.raises(ValueError):
                tracer.end(tid, now)
    for tid in ("a", "b"):
        while depth[tid]:
            now += 1
            tracer.end(tid, now)
            depth[tid] -= 1
        assert tracer.open_depth(tid) == 0
    spans = tracer.spans
    assert [span.seq for span in spans] == sorted(span.seq for span in spans)
    for tid in ("a", "b"):
        track = [span for span in spans if span.tid == tid]
        for index, first in enumerate(track):
            for second in track[index + 1:]:
                a0, a1 = first.start_ps, first.start_ps + first.dur_ps
                b0, b1 = second.start_ps, second.start_ps + second.dur_ps
                assert (a1 <= b0 or b1 <= a0
                        or (a0 <= b0 and b1 <= a1)
                        or (b0 <= a0 and a1 <= b1)), "partial overlap"
    body = [event for event in tracer.chrome_trace()["traceEvents"]
            if event["ph"] != "M"]
    keys = [(event["ts"], event["pid"], event["tid"]) for event in body]
    assert keys == sorted(keys)


def test_track_ids_assigned_by_sorted_label_not_insertion_order():
    tracer = Tracer()
    tracer.instant("x", "zeta", 0)
    tracer.instant("y", "alpha", 1)
    names = {event["tid"]: event["args"]["name"]
             for event in tracer.chrome_trace()["traceEvents"]
             if event["ph"] == "M" and event["name"] == "thread_name"}
    assert names == {1: "alpha", 2: "zeta"}


# --------------------------------------------------------------------------- #
# Deterministic export + golden
# --------------------------------------------------------------------------- #
def test_tiny_serve_trace_matches_golden():
    """Byte-level pin of the whole pipeline: hook placement, timestamps,
    track-id assignment and serialization.  If this moved and the change
    was intentional, regenerate (see the TINY comment above)."""
    with open(os.path.join(DATA_DIR, "obs_trace_golden.json")) as handle:
        golden = handle.read()
    assert tiny_traced_run().to_json() == golden


def test_trace_json_is_byte_identical_across_runs():
    assert tiny_traced_run().to_json() == tiny_traced_run().to_json()


def test_trace_json_is_perfetto_shaped():
    trace = tiny_traced_run().chrome_trace()
    assert trace["otherData"] == {"clock": "sim-ps"}
    events = trace["traceEvents"]
    phases = {event["ph"] for event in events}
    assert phases == {"M", "X", "i"}
    for event in events:
        assert isinstance(event["ts" if event["ph"] != "M" else "tid"], int)
        if event["ph"] == "X":
            assert event["dur"] >= 0
        if event["ph"] == "i":
            assert event["s"] == "t"


def test_trace_bytes_are_pythonhashseed_independent():
    """No hash()-ordered structure may leak into the export: three
    interpreters with different string-hash randomization must emit the
    same bytes."""
    script = (
        "import sys\n"
        "from repro.obs.experiments import trace_experiment\n"
        "tracer = trace_experiment('serve_policy',\n"
        "                          overrides={'duration_us': 200.0})\n"
        "sys.stdout.write(tracer.to_json())\n"
    )
    outputs = []
    for hashseed in ("0", "1", "31337"):
        env = dict(os.environ,
                   PYTHONPATH=os.path.join(REPO_ROOT, "src"),
                   PYTHONHASHSEED=hashseed)
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True, env=env,
                              cwd=REPO_ROOT, timeout=300)
        assert proc.returncode == 0, proc.stderr
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1] == outputs[2]


def test_trace_experiment_rejects_unknown_names():
    with pytest.raises(KeyError, match="no trace driver"):
        trace_experiment("fig9")


def test_trace_experiment_covers_every_layer():
    """Each driver actually records events from its subsystem's hooks."""
    chaos = trace_experiment("chaos", overrides={"duration_us": 400.0,
                                                 "fault_rate": 4.0})
    assert any(inst.name.startswith("fault_") for inst in chaos.instants)
    fleet = trace_experiment("fleet_scaling",
                             overrides={"nodes": 2, "epochs": 2,
                                        "epoch_us": 200.0})
    assert {span.name for span in fleet.spans} == {"epoch0", "epoch1"}
    regional = trace_experiment("reconfig", overrides={"duration_us": 200.0})
    assert any("/" in span.tid for span in regional.spans)


# --------------------------------------------------------------------------- #
# Hooks are free when off and invisible when on
# --------------------------------------------------------------------------- #
def test_tracing_never_perturbs_results():
    """The entire hook layer is behind ``if tracer is not None`` *reads* —
    attaching a tracer must not move a single byte of the result rows, in
    whole-fabric, region and chaos modes."""
    from repro.chaos.inject import ChaosConfig
    from repro.obs.experiments import noise_schedule

    for kwargs in (
        dict(duration_us=300.0),
        dict(duration_us=300.0, regions=4),
        dict(duration_us=300.0,
             chaos=ChaosConfig(noise_schedule(4.0))),
    ):
        plain = run_serve("affinity", **kwargs)
        traced = run_serve("affinity", tracer=Tracer(), **kwargs)
        assert plain["rows"] == traced["rows"], kwargs


def test_fleet_tracer_records_epochs_without_perturbing_rows():
    config = FleetConfig(nodes=2, epochs=2, epoch_us=200.0)
    plain = run_fleet(config, FLEET_TENANTS, total_rate_rps=200_000.0)
    tracer = Tracer()
    traced = run_fleet(config, FLEET_TENANTS, total_rate_rps=200_000.0,
                       tracer=tracer)
    assert plain.rows == traced.rows
    assert {span.pid for span in tracer.spans} == {"node0", "node1"}
    assert traced.metrics is not None


# --------------------------------------------------------------------------- #
# Metrics registry
# --------------------------------------------------------------------------- #
def test_counter_group_keeps_the_dict_surface():
    registry = MetricsRegistry("t")
    group = registry.counter_group(("faults", "replays"))
    assert isinstance(group, CounterGroup)
    group["faults"] += 2
    group["replays"] = 5
    assert group["faults"] == 2 and len(group) == 2
    assert "faults" in group and "nope" not in group
    assert dict(group) == {"faults": 2, "replays": 5}
    assert registry.counter("faults").value == 2
    with pytest.raises(KeyError):
        group["nope"] += 1


def test_snapshot_merge_semantics_and_round_trip():
    left = MetricsSnapshot(counters={"a": 1, "b": 2}, gauges={"g": 1.0},
                           histograms={"h": [1.0]}, series={"s": [(0.0, 1.0)]})
    right = MetricsSnapshot(counters={"b": 3, "c": 4}, gauges={"g": 0.5,
                                                              "k": 2.0},
                            histograms={"h": [2.0], "j": [9.0]},
                            series={"s": [(1.0, 0.0)]})
    merged = MetricsSnapshot.merged((left, right))
    assert merged.counters == {"a": 1, "b": 5, "c": 4}
    assert merged.gauges == {"g": 1.0, "k": 2.0}  # max, not last-write
    assert merged.histograms == {"h": [1.0, 2.0], "j": [9.0]}
    assert merged.series == {"s": [(0.0, 1.0), (1.0, 0.0)]}
    assert MetricsSnapshot.from_dict(merged.as_dict()) == merged
    # And the dict form survives an actual JSON round trip (node reports).
    rehydrated = MetricsSnapshot.from_dict(
        json.loads(json.dumps(merged.as_dict())))
    assert rehydrated == merged


def test_serve_outcome_carries_a_unified_snapshot():
    outcome = run_serve("affinity", duration_us=300.0)
    snapshot = outcome["metrics"]
    aggregate = next(row for row in outcome["rows"]
                     if row["tenant"] == "__all__")
    assert snapshot.counters["completed_total"] == aggregate["completed"]
    assert snapshot.counters["faults_injected"] == 0
    assert "queue_depth" in snapshot.series


def test_fleet_metrics_merge_is_serial_process_bit_identical():
    kwargs = dict(tenants=FLEET_TENANTS, total_rate_rps=200_000.0, seed=7)
    serial = run_fleet(FleetConfig(nodes=2, epochs=2, epoch_us=200.0,
                                   node_executor="serial"), **kwargs)
    pooled = run_fleet(FleetConfig(nodes=2, epochs=2, epoch_us=200.0,
                                   node_executor="process", workers=2),
                       **kwargs)
    assert serial.rows == pooled.rows
    assert serial.metrics == pooled.metrics
    assert serial.metrics.counters["completed_total"] > 0


# --------------------------------------------------------------------------- #
# Deep-tail SLO columns (p99.9 / max)
# --------------------------------------------------------------------------- #
def test_slo_rows_carry_the_deep_tail():
    rows = run_serve("affinity", duration_us=300.0)["rows"]
    for row in rows:
        assert row["p99_latency_us"] <= row["p999_latency_us"]
        assert row["p999_latency_us"] <= row["max_latency_us"]
    aggregate = next(row for row in rows if row["tenant"] == "__all__")
    assert aggregate["max_latency_us"] == max(
        row["max_latency_us"] for row in rows)


# --------------------------------------------------------------------------- #
# cdf_points / ResultSet.cdf
# --------------------------------------------------------------------------- #
def test_cdf_points_handles_empty_ragged_and_duplicates():
    assert cdf_points([]) == []
    assert cdf_points(["x", None, True]) == []
    points = cdf_points([3.0, 1.0, "bad", 1.0, None, 2.0])
    assert points == [(1.0, 0.5), (2.0, 0.75), (3.0, 1.0)]
    values = [point[0] for point in points]
    assert values == sorted(set(values))
    assert points[-1][1] == 1.0


def test_fraction_at_reads_the_step_function():
    points = cdf_points([1.0, 1.0, 2.0, 4.0])
    assert fraction_at(points, 0.5) == 0.0
    assert fraction_at(points, 1.0) == 0.5
    assert fraction_at(points, 3.0) == 0.75
    assert fraction_at(points, 100.0) == 1.0
    assert fraction_at([], 1.0) == 0.0


def test_resultset_cdf_matches_percentile_filtering():
    results = ResultSet("t", [{"v": 2.0}, {"v": 1.0}, {"w": 9.0},
                              {"v": "bad"}, {"v": True}, {"v": 2.0}])
    assert results.cdf("v") == [(1.0, 1 / 3), (2.0, 1.0)]
    assert results.cdf("missing") == []


# --------------------------------------------------------------------------- #
# latency_decomposition acceptance pins
# --------------------------------------------------------------------------- #
def test_decomposition_shares_sum_to_one_and_match_the_scheduler():
    """The pinned duo/affinity point: stage shares sum to 1.0 ± 1e-9 for
    every row, and the trace-derived reconfig-transfer share agrees with
    the scheduler's own ``reconfig_overhead`` accounting — two independent
    code paths, one number."""
    rows = latency_decomposition_cell("affinity")
    assert [row["tenant"] for row in rows] == [ALL_TENANTS, "alpha", "beta"]
    for row in rows:
        share_sum = sum(row[f"{stage}_share"] for stage in STAGES)
        assert abs(share_sum - 1.0) <= 1e-9
    aggregate = rows[0]
    assert aggregate["requests"] > 0
    trace_share = (aggregate["program_us"]
                   / (aggregate["program_us"] + aggregate["service_us"]))
    assert trace_share == pytest.approx(aggregate["reconfig_overhead"],
                                        rel=1e-6)


def test_decomposition_program_share_consistent_with_the_region_pin():
    """PR 8 pinned regions=4 affinity at ≤ 0.5× whole-fabric reconfig
    overhead; the trace-derived decomposition must tell the same story."""
    def transfer_share(rows):
        aggregate = rows[0]
        return (aggregate["program_us"]
                / (aggregate["program_us"] + aggregate["service_us"]))

    whole = latency_decomposition_cell("affinity", regions=1)
    regional = latency_decomposition_cell("affinity", regions=4)
    assert transfer_share(whole) > 0
    assert transfer_share(regional) <= 0.5 * transfer_share(whole)


def test_decomposition_under_faults_still_sums_to_one():
    rows = latency_decomposition_cell("affinity", fault_rate=4.0,
                                      duration_us=800.0)
    for row in rows:
        share_sum = sum(row[f"{stage}_share"] for stage in STAGES)
        assert abs(share_sum - 1.0) <= 1e-9


def test_decomposition_summary_reports_every_point():
    rows = latency_decomposition_cell("fcfs", duration_us=400.0)
    summary = latency_decomposition_summary(rows)
    assert summary["queue_share[fcfs/r1@rate0]"] > 0
    assert 0.0 <= summary["share_under_2x_p50[fcfs/r1@rate0]"] <= 1.0


def test_request_stages_excludes_incomplete_requests():
    tracer = tiny_traced_run()
    stages = request_stages(tracer)
    completed = {(inst.args["t"], inst.args["id"])
                 for inst in tracer.instants if inst.name == "complete"}
    assert set(stages) == completed
    for entry in stages.values():
        assert entry["latency_ps"] >= 0
        assert entry["blackout_ps"] >= 0


def test_latency_decomposition_registered_serial_matches_process():
    spec = get_experiment("latency_decomposition")
    assert spec.num_cells() == 8
    overrides = dict(policy=("affinity",), regions=(1,), fault_rate=(0.0,),
                     duration_us=600.0)
    serial = Runner().run("latency_decomposition", **overrides)
    parallel = Runner(executor="process", workers=2).run(
        "latency_decomposition", **overrides)
    assert serial.rows == parallel.rows
    assert serial.summary == parallel.summary


# --------------------------------------------------------------------------- #
# Perf wiring
# --------------------------------------------------------------------------- #
def test_tracing_bench_is_in_suite_and_gated():
    from repro.perf import SUITE
    from repro.perf.harness import DEFAULT_GATES
    from repro.perf.micro import serve_request_throughput

    names = [spec.name for spec in SUITE]
    assert "serve_requests_per_sec_tracing_on" in names
    assert "serve_requests_per_sec_tracing_on" in DEFAULT_GATES
    assert serve_request_throughput(duration_us=300.0, tracing=True) > 0
