"""Unit tests for the statistics helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import Counter, Histogram, StatSet
from repro.sim.stats import geometric_mean


def test_counter_increment_and_reset():
    counter = Counter("hits")
    counter.increment()
    counter.increment(4)
    assert counter.value == 5
    counter.reset()
    assert counter.value == 0


def test_histogram_summary_statistics():
    histogram = Histogram("latency")
    for value in [1.0, 2.0, 3.0, 4.0]:
        histogram.record(value)
    assert histogram.count == 4
    assert histogram.mean == pytest.approx(2.5)
    assert histogram.minimum == 1.0
    assert histogram.maximum == 4.0
    assert histogram.total == pytest.approx(10.0)


def test_histogram_percentile_nearest_rank():
    histogram = Histogram("latency")
    for value in range(1, 101):
        histogram.record(float(value))
    assert histogram.percentile(0.5) == 50.0
    assert histogram.percentile(0.99) == 99.0
    assert histogram.percentile(1.0) == 100.0


def test_empty_histogram_is_safe():
    histogram = Histogram("empty")
    assert histogram.mean == 0.0
    assert histogram.percentile(0.5) == 0.0


def test_statset_lazily_creates_and_flattens():
    stats = StatSet("cache")
    stats.counter("hits").increment(3)
    stats.histogram("latency").record(7.0)
    flat = stats.as_dict()
    assert flat["hits"] == 3
    assert flat["latency.mean"] == pytest.approx(7.0)
    assert flat["latency.count"] == 1


def test_statset_merge_accumulates():
    a = StatSet("a")
    b = StatSet("b")
    a.counter("hits").increment(2)
    b.counter("hits").increment(5)
    b.histogram("latency").record(1.0)
    a.merge(b)
    assert a.counter("hits").value == 7
    assert a.histogram("latency").count == 1


def test_statset_reset_clears_everything():
    stats = StatSet()
    stats.counter("x").increment(9)
    stats.histogram("y").record(1.0)
    stats.reset()
    assert stats.counter("x").value == 0
    assert stats.histogram("y").count == 0


def test_geometric_mean_known_values():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    assert geometric_mean([]) == 0.0


def test_geometric_mean_rejects_nonpositive():
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])


@given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=20))
def test_geometric_mean_between_min_and_max(values):
    mean = geometric_mean(values)
    assert min(values) - 1e-9 <= mean <= max(values) + 1e-9
