"""Plain-text reporting helpers used by the benchmark harness and examples.

:func:`format_table` is also what :meth:`repro.api.results.ResultSet.to_table`
renders through, so every experiment in the registry shares one table style.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render a simple aligned text table (monospace, benchmark-log friendly).

    Ragged input is tolerated: rows shorter than ``headers`` are padded with
    empty cells, and rows longer than ``headers`` extend the table with
    unnamed columns instead of raising.
    """
    headers = [str(header) for header in headers]
    rendered_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    num_columns = max([len(headers)] + [len(row) for row in rendered_rows], default=0)
    headers = headers + [""] * (num_columns - len(headers))
    rendered_rows = [row + [""] * (num_columns - len(row)) for row in rendered_rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(num_columns)))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.3f}"
    return str(cell)
