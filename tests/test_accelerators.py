"""Unit tests for the accelerator kernels (algorithmic pieces, no full system)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.accel.barnes_hut import decode_request, encode_request, from_fixed, to_fixed
from repro.accel.dijkstra import pack_edge, unpack_edge
from repro.accel.pdes_scheduler import decode_event, encode_event
from repro.accel.sortnet import (
    SortingNetworkAccelerator,
    pack_elements,
    sorting_network_stages,
    unpack_words,
)
from repro.accel.tangent import from_fixed as tan_from_fixed
from repro.accel.tangent import piecewise_linear_tangent, to_fixed as tan_to_fixed
from repro.analysis.experiments import run_table1, run_table2


# --------------------------------------------------------------------------- #
# Tangent approximation
# --------------------------------------------------------------------------- #
@given(st.floats(min_value=-1.45, max_value=1.45))
@settings(max_examples=200)
def test_piecewise_tangent_error_bound(angle):
    exact = math.tan(angle)
    if abs(exact) < 1e-2:
        return
    approx = piecewise_linear_tangent(angle)
    assert abs(approx - exact) / abs(exact) < 0.01


def test_tangent_fixed_point_roundtrip():
    for value in (-3.5, 0.0, 0.125, 123.456):
        assert tan_from_fixed(tan_to_fixed(value)) == pytest.approx(value, abs=1e-5)


# --------------------------------------------------------------------------- #
# Encodings
# --------------------------------------------------------------------------- #
@given(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=2**20),
       st.integers(min_value=0, max_value=2**20))
def test_barnes_hut_request_encoding_roundtrip(thread, target, particle):
    assert decode_request(encode_request(thread, target, particle)) == (thread, target, particle)


def test_barnes_hut_fixed_point_handles_negative_values():
    assert from_fixed(to_fixed(-2.5)) == pytest.approx(-2.5, abs=1e-4)


@given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=0, max_value=2**20))
def test_dijkstra_edge_packing_roundtrip(dst, weight):
    assert unpack_edge(pack_edge(dst, weight)) == (dst, weight)


@given(st.integers(min_value=0, max_value=2**27), st.integers(min_value=0, max_value=2**31))
def test_pdes_event_encoding_roundtrip(timestamp, payload):
    assert decode_event(encode_event(timestamp, payload)) == (timestamp, payload)


# --------------------------------------------------------------------------- #
# Sorting-network helpers
# --------------------------------------------------------------------------- #
def test_sorting_network_stage_counts():
    assert sorting_network_stages(32) == 15
    assert sorting_network_stages(64) == 21
    assert sorting_network_stages(128) == 28


@given(st.lists(st.integers(min_value=0, max_value=2**31 - 1), min_size=2, max_size=64))
def test_pack_unpack_elements_roundtrip(elements):
    if len(elements) % 2:
        elements = elements[:-1]
    assert unpack_words(pack_elements(elements), len(elements)) == elements


def test_sorting_network_supported_sizes_only():
    with pytest.raises(ValueError):
        SortingNetworkAccelerator(48)
    for size in (32, 64, 128):
        assert SortingNetworkAccelerator(size).design.mem_ports == 2


# --------------------------------------------------------------------------- #
# Tables I / II runners
# --------------------------------------------------------------------------- #
def test_table1_rows_match_paper_constants():
    rows = run_table1()
    by_name = {row["component"]: row for row in rows}
    assert by_name["Ariane"]["scaled_area_mm2"] == pytest.approx(1.56)
    assert by_name["P-Mesh Socket"]["scaled_freq_mhz"] == pytest.approx(711.0)


def test_table2_covers_all_seven_benchmarks_with_sane_values():
    rows = run_table2()
    names = {row["benchmark"] for row in rows}
    assert {"tangent", "popcount", "sort32", "sort64", "sort128",
            "dijkstra", "barnes-hut", "bfs", "pdes"} <= names
    for row in rows:
        # All accelerators run at 5%-50% of the 1 GHz system clock, like the
        # paper's 8%-28% range.
        assert 50.0 <= row["measured_fmax_mhz"] <= 500.0
        assert 0.0 < row["measured_clb_util"] <= 1.0
        assert 0.0 <= row["measured_bram_util"] <= 1.0
        assert row["measured_norm_area"] > 0.0
