"""Tests for the performance harness (repro.perf) and its CLI surface."""

import json

import pytest

from repro.perf import (
    BENCH_FILENAME,
    DEFAULT_GATES,
    SCHEMA,
    SUITE,
    BenchSpec,
    compare_reports,
    format_comparisons,
    has_gated_regression,
    load_report,
    run_suite,
    write_report,
)
from repro.perf import micro


# --------------------------------------------------------------------------- #
# Harness mechanics (no real timing — tiny synthetic benches)
# --------------------------------------------------------------------------- #
def _toy_suite(value=100.0):
    return [
        BenchSpec(name="toy_rate", fn=lambda scale=1.0: value * scale,
                  unit="1/s", params={"scale": 1.0}, repeats=3, quick_repeats=1),
        BenchSpec(name="toy_wall", fn=lambda: 2.0, unit="s",
                  direction="lower", repeats=2, quick_repeats=1),
    ]


def test_run_suite_schema_and_modes():
    report = run_suite(_toy_suite(), quick=False)
    assert report["schema"] == SCHEMA
    assert report["mode"] == "full"
    names = [bench["name"] for bench in report["benchmarks"]]
    assert names == ["toy_rate", "toy_wall"]
    rate = report["benchmarks"][0]
    assert rate["value"] == 100.0
    assert rate["repeats"] == 3 and len(rate["samples"]) == 3
    assert rate["params"] == {"scale": 1.0}

    quick = run_suite(_toy_suite(), quick=True)
    assert quick["mode"] == "quick"
    assert quick["benchmarks"][0]["repeats"] == 1


def test_quick_params_override_only_in_quick_mode():
    spec = BenchSpec(name="b", fn=lambda n=1: float(n), unit="x",
                     params={"n": 10}, quick_params={"n": 2},
                     repeats=1, quick_repeats=1)
    assert spec.run(quick=False)["value"] == 10.0
    assert spec.run(quick=True)["value"] == 2.0


def test_report_roundtrip_and_schema_check(tmp_path):
    report = run_suite(_toy_suite(), quick=True)
    path = tmp_path / BENCH_FILENAME
    write_report(report, str(path))
    loaded = load_report(str(path))
    assert loaded == report

    bad = dict(report, schema="other/v9")
    bad_path = tmp_path / "bad.json"
    bad_path.write_text(json.dumps(bad))
    with pytest.raises(ValueError):
        load_report(str(bad_path))


def test_compare_reports_directions_and_gating():
    baseline = run_suite(_toy_suite(value=100.0), quick=True)
    # Throughput halves (bad), wall time unchanged.
    current = run_suite(_toy_suite(value=50.0), quick=True)
    # Pin the calibrations equal: this test is about direction/gating logic,
    # not cross-machine normalization.
    current["calibration_sends_per_sec"] = baseline["calibration_sends_per_sec"]
    comparisons = compare_reports(current, baseline, tolerance=0.2,
                                  gates=("toy_rate",))
    by_name = {c.name: c for c in comparisons}
    assert by_name["toy_rate"].ratio == pytest.approx(0.5)
    assert by_name["toy_rate"].regressed and by_name["toy_rate"].gated
    assert by_name["toy_wall"].ratio == pytest.approx(1.0)
    assert not by_name["toy_wall"].regressed
    assert has_gated_regression(comparisons)
    assert "REGRESSED" in format_comparisons(comparisons)

    # Same numbers -> no regression.
    same = compare_reports(baseline, baseline, gates=("toy_rate",))
    assert not has_gated_regression(same)


def test_lower_is_better_direction_flips_ratio():
    fast = run_suite([BenchSpec(name="w", fn=lambda: 1.0, unit="s",
                                direction="lower", repeats=1)], quick=False)
    slow = run_suite([BenchSpec(name="w", fn=lambda: 4.0, unit="s",
                                direction="lower", repeats=1)], quick=False)
    slow["calibration_sends_per_sec"] = fast["calibration_sends_per_sec"]
    comparison = compare_reports(slow, fast, tolerance=0.2, gates=("w",))[0]
    assert comparison.ratio == pytest.approx(0.25)
    assert comparison.regressed


def test_calibration_normalizes_cross_machine_comparisons():
    """A slower machine (lower calibration) producing proportionally lower
    absolute numbers must not read as a regression."""
    baseline = run_suite(_toy_suite(value=100.0), quick=True)
    baseline["calibration_sends_per_sec"] = 2_000_000.0

    current = run_suite(_toy_suite(value=50.0), quick=True)  # half the speed...
    current["calibration_sends_per_sec"] = 1_000_000.0       # ...on a half-speed box
    # toy_wall is a constant 2.0s in both, so on the slower box it reads as
    # a 2x improvement after normalization; the rate bench reads as parity.
    comparisons = compare_reports(current, baseline, tolerance=0.2,
                                  gates=("toy_rate",))
    by_name = {c.name: c for c in comparisons}
    assert by_name["toy_rate"].ratio == pytest.approx(1.0)
    assert not has_gated_regression(comparisons)


def test_reports_carry_machine_calibration():
    report = run_suite(_toy_suite(), quick=True)
    assert report["calibration_sends_per_sec"] > 0


def test_reports_record_the_interpreter():
    from repro.perf import harness

    report = run_suite(_toy_suite(), quick=True)
    interp = report["interpreter"]
    assert interp["implementation"] in ("cpython", "pypy")
    assert interp["version"] == report["python"]
    # On this (CPython) test run the PyPy probe must be off.
    assert harness.IS_PYPY == (interp["implementation"] == "pypy")


def test_pypy_probe_skips_calibration(monkeypatch):
    """Under PyPy the CPython-specific calibration is skipped: reports carry
    null and comparisons degrade to raw (scale-1) ratios."""
    from repro.perf import harness

    monkeypatch.setattr(harness, "IS_PYPY", True)
    assert harness.machine_calibration() is None
    report = run_suite(_toy_suite(value=100.0), quick=True)
    assert report["calibration_sends_per_sec"] is None

    monkeypatch.setattr(harness, "IS_PYPY", False)
    baseline = run_suite(_toy_suite(value=100.0), quick=True)
    assert baseline["calibration_sends_per_sec"] > 0
    # Uncalibrated current vs calibrated baseline: raw ratio, no crash.
    comparisons = compare_reports(report, baseline, gates=("toy_rate",))
    by_name = {c.name: c for c in comparisons}
    assert by_name["toy_rate"].ratio == pytest.approx(1.0)
    assert not has_gated_regression(comparisons)


def test_cli_perf_warns_on_cross_interpreter_comparison(tmp_path, monkeypatch, capsys):
    from repro.api import cli
    from repro import perf

    monkeypatch.setattr(perf, "SUITE", _toy_suite())
    baseline_path = tmp_path / "baseline.json"
    assert cli.main(["perf", "--quick", "--out", str(baseline_path)]) == 0
    baseline = json.loads(baseline_path.read_text())
    baseline["interpreter"] = {"implementation": "pypy", "version": "3.10.14"}
    baseline_path.write_text(json.dumps(baseline))
    capsys.readouterr()
    out = tmp_path / "current.json"
    assert cli.main(["perf", "--quick", "--out", str(out),
                     "--baseline", str(baseline_path), "--gate", "toy_rate"]) == 0
    assert "uncalibrated across interpreters" in capsys.readouterr().err


def test_unknown_baseline_benchmarks_are_skipped():
    baseline = run_suite(_toy_suite(), quick=True)
    current = run_suite([BenchSpec(name="brand_new", fn=lambda: 1.0,
                                   unit="x", repeats=1)], quick=True)
    assert compare_reports(current, baseline) == []


# --------------------------------------------------------------------------- #
# The real microbenchmarks (smallest sizes — correctness, not speed)
# --------------------------------------------------------------------------- #
def test_kernel_microbenchmarks_return_positive_rates():
    assert micro.kernel_throughput(iterations=200) > 0
    assert micro.kernel_zero_delay_throughput(iterations=200) > 0
    assert micro.channel_handoff(items=100) > 0
    assert micro.noc_hop_throughput(messages=20) > 0


def test_power_microbenchmarks_return_positive_rates():
    assert micro.noc_message_throughput(messages=20, power_hooks=True) > 0
    assert micro.energy_sample_rate(samples=200) > 0


def test_serve_microbenchmark_returns_positive_rate():
    assert micro.serve_request_throughput(duration_us=300.0) > 0


def test_default_suite_is_well_formed():
    names = [spec.name for spec in SUITE]
    assert "kernel_events_per_sec" in names
    # The energy-accounting overhead twins ship in the default suite (the
    # hooks-on NoC bench is CI-gated; see docs/power.md).
    assert "noc_messages_per_sec_hooks_on" in names
    assert "energy_samples_per_sec" in names
    # The serving subsystem's end-to-end rate ships and is CI-gated
    # (see docs/serving.md).
    assert "serve_requests_per_sec" in names
    assert "serve_requests_per_sec" in DEFAULT_GATES
    assert len(names) == len(set(names))
    for spec in SUITE:
        assert spec.direction in ("higher", "lower")


# --------------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------------- #
def test_cli_perf_writes_report_and_gates(tmp_path, monkeypatch, capsys):
    from repro.api import cli
    from repro import perf

    # Substitute a fast suite so the CLI path stays quick under test.
    monkeypatch.setattr(perf, "SUITE", _toy_suite())
    out = tmp_path / "BENCH_kernel.json"
    assert cli.main(["perf", "--quick", "--out", str(out)]) == 0
    report = json.loads(out.read_text())
    assert report["schema"] == SCHEMA
    capsys.readouterr()

    # Gate against a baseline demanding double the throughput -> exit 1.
    inflated = json.loads(out.read_text())
    for bench in inflated["benchmarks"]:
        if bench["name"] == "toy_rate":
            bench["value"] *= 2
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps(inflated))
    code = cli.main(["perf", "--quick", "--out", str(out),
                     "--baseline", str(baseline_path), "--gate", "toy_rate"])
    assert code == 1
    captured = capsys.readouterr()
    assert "REGRESSED" in captured.out


def test_cli_perf_refuses_to_overwrite_its_own_baseline(tmp_path, monkeypatch, capsys):
    from repro.api import cli
    from repro import perf

    monkeypatch.setattr(perf, "SUITE", _toy_suite())
    baseline_path = tmp_path / "BENCH_kernel.json"
    assert cli.main(["perf", "--quick", "--out", str(baseline_path)]) == 0
    before = baseline_path.read_text()
    capsys.readouterr()
    # Same file as --out (explicitly or via the default filename) -> refuse.
    code = cli.main(["perf", "--quick", "--out", str(baseline_path),
                     "--baseline", str(baseline_path)])
    assert code == 2
    assert baseline_path.read_text() == before
    assert "refusing to overwrite" in capsys.readouterr().err


def test_cli_perf_fails_when_gated_benchmark_is_not_comparable(tmp_path, monkeypatch, capsys):
    """A gate that silently vanishes from the comparison must fail the run,
    not pass vacuously."""
    from repro.api import cli
    from repro import perf

    monkeypatch.setattr(perf, "SUITE", _toy_suite())
    baseline_path = tmp_path / "baseline.json"
    out = tmp_path / "current.json"
    assert cli.main(["perf", "--quick", "--out", str(baseline_path)]) == 0
    capsys.readouterr()
    code = cli.main(["perf", "--quick", "--out", str(out),
                     "--baseline", str(baseline_path),
                     "--gate", "renamed_bench"])
    assert code == 1
    assert "missing from the comparison" in capsys.readouterr().err
