"""Unified experiment API: registry, runner, typed results and the CLI.

This package turns every table/figure of the paper's evaluation — plus each
Fig. 12 application configuration — into a named, discoverable experiment:

* :mod:`repro.api.spec` — :class:`ExperimentSpec`, a declarative description
  of one experiment: a cell function plus a parameter grid (mechanisms ×
  frequencies × processor counts × system kinds);
* :mod:`repro.api.registry` — ``@register_experiment`` and the global
  registry that the six paper experiments (``table1``, ``table2``, ``fig9``
  .. ``fig12``) and the thirteen ``app/<name>`` experiments register into;
* :mod:`repro.api.runner` — :class:`Runner` with serial and process-pool
  executors and on-disk JSON result caching keyed by (experiment, params);
* :mod:`repro.api.results` — the typed :class:`ResultSet`/:class:`Row` model
  with ``filter``/``group_by``/``pivot``/``to_json``/``to_csv``/``to_table``
  and paper-vs-measured deviation reporting;
* :mod:`repro.api.cli` — the ``python -m repro`` command line
  (``list`` / ``run`` / ``report`` / ``sweep``).

Quick tour::

    from repro.api import Runner, list_experiments

    print([spec.name for spec in list_experiments()])
    results = Runner().run("fig9", fpga_mhz=(100.0, 500.0))
    print(results.to_table())
"""

from repro.api.registry import (
    get_experiment,
    list_experiments,
    register_experiment,
)
from repro.api.results import ResultSet, Row, RunStats
from repro.api.runner import Runner, run_experiment
from repro.api.spec import ExperimentSpec

__all__ = [
    "ExperimentSpec",
    "register_experiment",
    "get_experiment",
    "list_experiments",
    "Runner",
    "run_experiment",
    "ResultSet",
    "Row",
    "RunStats",
]
