"""Cluster-scale serving: epochs of parallel node simulation, merged
deterministically.

:func:`run_fleet` drives N share-nothing nodes (:mod:`repro.fleet.node`)
through ``epochs`` control epochs.  Within an epoch every node simulates
independently — serially or fanned out over a
``concurrent.futures.ProcessPoolExecutor`` (one pool per run, reused across
epochs, mirroring the :class:`~repro.api.runner.Runner`'s shared pool) —
and the per-node reports are merged **sorted by node id**, so the merged
rows are bit-identical regardless of executor, worker count or completion
order.  Between epochs the control plane runs, in order:

1. the :class:`~repro.fleet.autoscaler.Autoscaler` grows/shrinks the node
   set (or per-node fabric counts) from the epoch's queue/shed signals —
   a node-set change triggers a full placement recompute, and every tenant
   whose node changed is marked *migrated*;
2. otherwise the :class:`~repro.fleet.router.Router` performs watermark
   migration off sustained-hot nodes.

Migrated tenants pay their re-program + state-transfer stall at the start
of the next epoch on the target node.  Epoch boundaries are also where
heterogeneous offered load enters: ``rate_profile`` scales the cluster
rate per epoch, which is what gives the autoscaler something to chase.

Determinism contract (tested in ``tests/test_fleet.py``): rows depend only
on ``(FleetConfig, tenants, total_rate_rps, rate_profile, seed)`` — not on
the node executor, the worker count, ``PYTHONHASHSEED`` or wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.chaos import ChaosConfig
from repro.fleet.autoscaler import Autoscaler, AutoscalerConfig
from repro.fleet.node import NodeSpec, TenantShare, simulate_node
from repro.fleet.router import Router, make_placement
from repro.obs.metrics import MetricsSnapshot
from repro.serve.slo import REPORT_PERCENTILES
from repro.serve.traffic import TenantSpec
from repro.sim.stats import Histogram

NODE_EXECUTORS: Tuple[str, ...] = ("serial", "process")

#: How the epoch-boundary failover step learns about dead nodes:
#: ``omniscient`` reads the simulator's ground-truth damage reports (the
#: historical behaviour); ``alerts`` trusts only alerts fired from the
#: telemetry stream — the operations-realistic mode the ``alerting``
#: experiment scores against the omniscient baseline.
CHAOS_CONTROL_MODES: Tuple[str, ...] = ("omniscient", "alerts")

#: Hot spares get node ids in this range so they never collide with the
#: autoscaler's fresh ids (template id + 1, +2, ...).
SPARE_ID_BASE = 1000


@dataclass(frozen=True)
class FleetConfig:
    """Static configuration of one fleet deployment."""

    nodes: int = 4
    placement: str = "affinity"
    #: Per-node scheduling policy (the PR 5 FabricScheduler policy).
    policy: str = "fcfs"
    fabrics_per_node: int = 1
    system_mhz: float = 1000.0
    fpga_mhz: Optional[float] = None
    queue_capacity: Optional[int] = 64
    patience_ns: float = 100_000.0
    epochs: int = 3
    epoch_us: float = 400.0
    migrate_watermark: float = 8.0
    state_transfer_ns: float = 25_000.0
    autoscaler: AutoscalerConfig = field(default_factory=AutoscalerConfig)
    power: bool = False
    #: ``serial`` or ``process`` — how node simulations execute.
    node_executor: str = "serial"
    workers: Optional[int] = None
    #: Fault schedule + recovery policy; ``None`` injects nothing and keeps
    #: every row bit-identical to a chaos-free build.
    chaos: Optional[ChaosConfig] = None
    #: Hot spares: powered-on idle nodes (they burn cost and, with
    #: ``power=True``, idle energy every epoch) that chaos recovery promotes
    #: when a node loses all of its fabrics.
    spares: int = 0
    #: Streaming telemetry window (µs); ``None`` (the default) attaches no
    #: monitor and keeps node reports bit-identical to a pre-telemetry build.
    telemetry_window_us: Optional[float] = None
    #: ``omniscient`` or ``alerts`` (see :data:`CHAOS_CONTROL_MODES`).
    chaos_control: str = "omniscient"
    #: Alert rule set for the ``alerts`` paths; ``None`` picks
    #: :data:`repro.obs.alerts.AUTOSCALER_RULES` when the autoscaler reads
    #: alerts, else :data:`repro.obs.alerts.DEFAULT_RULES`.
    alert_rules: Optional[Tuple[Any, ...]] = None

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"need >= 1 node, got {self.nodes}")
        if self.spares < 0:
            raise ValueError(f"spares cannot be negative, got {self.spares}")
        if self.epochs < 1:
            raise ValueError(f"need >= 1 epoch, got {self.epochs}")
        if self.epoch_us <= 0:
            raise ValueError(f"epoch_us must be positive, got {self.epoch_us}")
        if self.node_executor not in NODE_EXECUTORS:
            raise ValueError(
                f"node_executor must be one of {NODE_EXECUTORS}, "
                f"got {self.node_executor!r}")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.chaos_control not in CHAOS_CONTROL_MODES:
            raise ValueError(
                f"chaos_control must be one of {CHAOS_CONTROL_MODES}, "
                f"got {self.chaos_control!r}")
        if self.telemetry_window_us is not None and self.telemetry_window_us <= 0:
            raise ValueError(
                f"telemetry_window_us must be positive, "
                f"got {self.telemetry_window_us}")
        if self.telemetry_window_us is None:
            if self.chaos_control == "alerts":
                raise ValueError(
                    "chaos_control='alerts' needs telemetry_window_us set — "
                    "alert-driven control is blind without a telemetry stream")
            if self.autoscaler.signal == "alerts":
                raise ValueError(
                    "autoscaler signal='alerts' needs telemetry_window_us set")
        make_placement(self.placement)  # fail fast on typos

    def initial_nodes(self) -> List[NodeSpec]:
        count = (max(self.autoscaler.min_nodes, 1)
                 if self.autoscaler.enabled else self.nodes)
        count = min(count, self.nodes)
        return [NodeSpec(node_id=index, fabrics=self.fabrics_per_node,
                         system_mhz=self.system_mhz, fpga_mhz=self.fpga_mhz)
                for index in range(count)]

    def spare_nodes(self) -> List[NodeSpec]:
        return [NodeSpec(node_id=SPARE_ID_BASE + index,
                         fabrics=self.fabrics_per_node,
                         system_mhz=self.system_mhz, fpga_mhz=self.fpga_mhz,
                         spare=True)
                for index in range(self.spares)]


def _node_cell(kwargs: Dict[str, Any]) -> Dict[str, Any]:
    """Module-level trampoline so the pool pickles only plain data."""
    return simulate_node(**kwargs)


@dataclass
class FleetOutcome:
    """Everything :func:`run_fleet` learned, pre-merge and merged."""

    rows: List[Dict[str, Any]]
    reports: List[Dict[str, Any]]
    router: Router
    autoscaler: Autoscaler
    elapsed_ns: float
    #: Chaos control-plane summary (``None`` on a chaos-free run):
    #: promotions, dead node ids, and per-epoch cluster goodput.
    chaos: Optional[Dict[str, Any]] = None
    #: Per-node :class:`~repro.obs.metrics.MetricsSnapshot`\\ s folded in
    #: sorted ``(epoch, node_id)`` order — bit-identical serial vs process.
    metrics: Optional[MetricsSnapshot] = None
    #: Merged :class:`~repro.obs.monitor.TelemetryStream` (``None`` unless
    #: the fleet ran with ``telemetry_window_us`` set).
    telemetry: Optional[Any] = None
    #: The typed alert log (:class:`repro.obs.alerts.AlertEvent` list) the
    #: engine produced over the merged stream; ``None`` when telemetry off.
    alerts: Optional[List[Any]] = None


def run_fleet(
    config: FleetConfig,
    tenants: Tuple[TenantSpec, ...],
    total_rate_rps: float,
    rate_profile: Optional[Sequence[float]] = None,
    seed: int = 2023,
    extra_columns: Optional[Dict[str, Any]] = None,
    tracer: Optional[Any] = None,
) -> FleetOutcome:
    """Run the fleet to completion and merge per-node results into rows.

    When a :class:`~repro.obs.trace.Tracer` is supplied, the parent-side
    control plane records per-(node, epoch) spans and migration/failover
    instants.  Node-internal request lifecycles cannot cross the process
    pool, so fleet traces are epoch-granular by design; attach the tracer
    to :func:`repro.serve.experiments.run_serve` for request granularity.
    Tracing never perturbs the simulation — rows are bit-identical with
    and without a tracer attached.
    """
    if not tenants:
        raise ValueError("need >= 1 tenant")
    if total_rate_rps <= 0:
        raise ValueError(f"total_rate_rps must be positive, got {total_rate_rps}")
    profile = tuple(rate_profile) if rate_profile else (1.0,) * config.epochs
    if len(profile) != config.epochs:
        raise ValueError(
            f"rate_profile needs one multiplier per epoch "
            f"({config.epochs}), got {len(profile)}")

    nodes = config.initial_nodes()
    template = NodeSpec(node_id=max(n.node_id for n in nodes),
                        fabrics=config.fabrics_per_node,
                        system_mhz=config.system_mhz, fpga_mhz=config.fpga_mhz)
    router = Router(config.placement, migrate_watermark=config.migrate_watermark)
    autoscaler = Autoscaler(config.autoscaler, template)
    engine = None
    if config.telemetry_window_us is not None:
        from repro.obs.alerts import (AUTOSCALER_RULES, DEFAULT_RULES,
                                      AlertEngine)

        rules = config.alert_rules
        if rules is None:
            rules = (AUTOSCALER_RULES if config.autoscaler.signal == "alerts"
                     else DEFAULT_RULES)
        engine = AlertEngine(rules)
    epoch_ns = config.epoch_us * 1000.0
    #: Epoch length on the trace timeline (integer ps), so parent-side
    #: events line up with node-internal sim-ps timestamps.
    epoch_ps = int(round(config.epoch_us * 1e6))
    open_weight = sum(t.weight for t in tenants if t.pattern != "closed")

    pool = None
    if config.node_executor == "process":
        from concurrent.futures import ProcessPoolExecutor

        from repro.api.runner import _available_cpus
        workers = config.workers or min(len(nodes), _available_cpus())
        pool = ProcessPoolExecutor(max_workers=workers)

    reports: List[Dict[str, Any]] = []
    migrated: set = set()
    placed = False
    # -- chaos control-plane state -------------------------------------- #
    spare_pool = config.spare_nodes()
    #: node_id -> fabric indices that died permanently in earlier epochs.
    persistent_dead: Dict[int, Tuple[int, ...]] = {}
    #: node_id -> ((tenant, lost_count), ...) to re-offer next epoch.
    replay_map: Dict[int, Tuple[Tuple[str, int], ...]] = {}
    promotions = 0
    dead_nodes: List[int] = []
    try:
        for epoch in range(config.epochs):
            rate = total_rate_rps * profile[epoch]
            shares = tuple(
                TenantShare(
                    tenant=tenant,
                    rate_rps=(rate * tenant.weight / open_weight
                              if tenant.pattern != "closed" and open_weight > 0
                              else 0.0),
                    migrated=tenant.name in migrated,
                )
                for tenant in tenants
            )
            if tracer is not None and migrated:
                # Migration stalls are paid at the start of this epoch on
                # the target node — stamp the instants there.
                for name in sorted(migrated):
                    tracer.instant("migrate", "router", epoch * epoch_ps,
                                   cat="fleet", pid="fleet.ctrl",
                                   args={"t": name, "epoch": epoch})
            if not placed:
                router.place(shares, nodes)
                placed = True
            by_node: Dict[int, List[TenantShare]] = {n.node_id: [] for n in nodes}
            for share in shares:
                node_id = router.placement[share.tenant.name]
                by_node[node_id].append(share)
            # Spares simulate alongside active nodes (idle: no shares, no
            # faults) so their cost and idle energy land in the totals.
            ordered_nodes = sorted(nodes + spare_pool, key=lambda n: n.node_id)
            calls = []
            for node in ordered_nodes:
                call = dict(
                    node=node,
                    shares=tuple(by_node.get(node.node_id, ())),
                    policy=config.policy,
                    epoch_ns=epoch_ns,
                    epoch=epoch,
                    seed=seed,
                    queue_capacity=config.queue_capacity,
                    patience_ns=config.patience_ns,
                    state_transfer_ns=config.state_transfer_ns,
                    power=config.power,
                )
                if config.telemetry_window_us is not None:
                    call.update(telemetry_window_us=config.telemetry_window_us)
                if config.chaos is not None and not node.spare:
                    # Fault draws resolve HERE, in the parent, to plain
                    # data — the events a node sees never depend on which
                    # process simulates it (serial ≡ process under faults).
                    call.update(
                        chaos_events=config.chaos.schedule.events(
                            epoch, node.node_id, node.fabrics, epoch_ns),
                        chaos_recovery=config.chaos.recovery,
                        failed_fabrics=persistent_dead.get(node.node_id, ()),
                        replays=replay_map.get(node.node_id, ()),
                    )
                calls.append(call)
            if pool is not None:
                # Futures are collected in submission (= node id) order, so
                # the merge is independent of completion interleaving.
                epoch_reports = [future.result()
                                 for future in [pool.submit(_node_cell, call)
                                                for call in calls]]
            else:
                epoch_reports = [_node_cell(call) for call in calls]
            reports.extend(epoch_reports)
            if tracer is not None:
                for report in epoch_reports:
                    tracer.complete(
                        f"epoch{epoch}", "node", epoch * epoch_ps,
                        int(round(report["elapsed_ns"] * 1000.0)),
                        cat="fleet", pid=f"node{report['node_id']}",
                        args={"epoch": epoch,
                              "spare": bool(report.get("spare"))})
            if engine is not None:
                # Stream this epoch's windows through the alert engine in
                # the canonical merged order — the same samples whatever
                # executor produced them, so the alert log (and any control
                # decision read off it) is serial ≡ process bit-identical.
                from repro.obs.monitor import TelemetryStream

                engine.consume(TelemetryStream.merged(
                    TelemetryStream.from_dict(report["telemetry"])
                    for report in epoch_reports if report.get("telemetry")))

            if epoch == config.epochs - 1:
                break
            signals = {report["node_id"]: report for report in epoch_reports
                       if not report.get("spare")}
            migrated = set()
            if config.chaos is not None:
                if config.chaos_control == "alerts":
                    (nodes, spare_pool, persistent_dead, replay_map, migrated,
                     epoch_promotions, epoch_dead, handled) = _alert_chaos_control(
                        config, epoch_reports, shares, nodes, spare_pool,
                        router, engine)
                else:
                    (nodes, spare_pool, persistent_dead, replay_map, migrated,
                     epoch_promotions, epoch_dead, handled) = _chaos_control(
                        config, epoch_reports, shares, nodes, spare_pool, router)
                promotions += epoch_promotions
                dead_nodes.extend(epoch_dead)
                if tracer is not None:
                    boundary_ps = (epoch + 1) * epoch_ps
                    for node_id in epoch_dead:
                        tracer.instant("failover", "chaos", boundary_ps,
                                       cat="fleet", pid="fleet.ctrl",
                                       args={"node": node_id})
                    for index in range(epoch_promotions):
                        tracer.instant("promote", "chaos", boundary_ps,
                                       cat="fleet", pid="fleet.ctrl",
                                       args={"n": index})
                if handled:
                    # A failover re-placed the survivors this boundary;
                    # don't let the autoscaler fight it in the same breath.
                    continue
            if config.autoscaler.signal == "alerts":
                decision = autoscaler.decide_from_alerts(
                    engine, [n.node_id for n in nodes])
            else:
                decision = autoscaler.decide(signals)
            resized = autoscaler.apply(decision, nodes, signals, epoch)
            if resized is not None:
                node_set_changed = ({n.node_id for n in resized}
                                    != {n.node_id for n in nodes})
                nodes = resized
                if node_set_changed:
                    migrated = router.place(shares, nodes)
                    continue
            migrated = router.rebalance(signals, shares, nodes)
    finally:
        if pool is not None:
            pool.shutdown()

    rows = _merge_reports(reports, tenants, config, extra_columns or {})
    elapsed_ns = sum(
        max(r["elapsed_ns"] for r in reports if r["epoch"] == epoch)
        for epoch in range(config.epochs))
    chaos_summary = None
    if config.chaos is not None:
        chaos_summary = {
            "promotions": promotions,
            "dead_nodes": sorted(dead_nodes),
            "epoch_goodput": epoch_goodput(reports),
        }
        for row in rows:
            row["spare_promotions"] = promotions
            row["dead_nodes"] = len(dead_nodes)
    for row in rows:
        row["elapsed_us"] = elapsed_ns / 1000.0
    snapshots = [MetricsSnapshot.from_dict(report["metrics"])
                 for report in sorted(reports,
                                      key=lambda r: (r["epoch"], r["node_id"]))
                 if report.get("metrics") is not None]
    metrics = MetricsSnapshot.merged(snapshots) if snapshots else None
    telemetry = None
    alerts = None
    if engine is not None:
        from repro.obs.monitor import TelemetryStream

        telemetry = TelemetryStream.merged(
            TelemetryStream.from_dict(report["telemetry"])
            for report in reports if report.get("telemetry"))
        alerts = engine.events
        if tracer is not None:
            engine.export(tracer)
    return FleetOutcome(rows=rows, reports=reports, router=router,
                        autoscaler=autoscaler, elapsed_ns=elapsed_ns,
                        chaos=chaos_summary, metrics=metrics,
                        telemetry=telemetry, alerts=alerts)


def epoch_goodput(reports: List[Dict[str, Any]]) -> List[int]:
    """Cluster-wide within-SLO completions per epoch — the recovery signal
    the chaos acceptance pins steer on."""
    epochs = sorted({report["epoch"] for report in reports})
    return [
        sum(account["good"]
            for report in reports if report["epoch"] == epoch
            for account in report["tenants"].values())
        for epoch in epochs
    ]


def _chaos_control(
    config: FleetConfig,
    epoch_reports: List[Dict[str, Any]],
    shares: Tuple[TenantShare, ...],
    nodes: List[NodeSpec],
    spare_pool: List[NodeSpec],
    router: Router,
):
    """The epoch-boundary failover step (see ``docs/chaos.md``).

    Reads each node's end-of-epoch fault damage and decides what the next
    epoch looks like: nodes that lost *every* fabric are (with recovery on)
    removed and replaced by promoting hot spares, the survivors re-placed
    through the router's real migration path, and the dead nodes' lost
    requests queued for replay on whichever node their tenant lands on.
    Partially-damaged nodes soldier on with their dead fabrics carried
    forward.  With recovery off nothing is replaced: a dead node keeps its
    tenants and sheds everything — the ablation the chaos experiment
    quantifies against.
    """
    recovery = config.chaos.recovery if config.chaos is not None else True
    persistent_dead: Dict[int, Tuple[int, ...]] = {}
    fully_dead: List[Dict[str, Any]] = []
    for report in epoch_reports:
        if report.get("spare") or not report.get("chaos"):
            continue
        dead = tuple(report["chaos"]["dead_fabrics"])
        if not dead:
            continue
        if len(dead) >= report["fabrics"] and recovery:
            fully_dead.append(report)
        else:
            # Partial damage (or no recovery at all): carry it forward.
            persistent_dead[report["node_id"]] = dead
    if not fully_dead:
        return (nodes, spare_pool, persistent_dead, {}, set(), 0, [], False)

    promotions = 0
    epoch_dead: List[int] = []
    survivors = list(nodes)
    for report in sorted(fully_dead, key=lambda r: r["node_id"]):
        if len(survivors) <= 1 and not spare_pool:
            # Never fail over to an empty cluster; the last node stays (and
            # keeps shedding) rather than leaving tenants unplaceable.
            persistent_dead[report["node_id"]] = tuple(
                report["chaos"]["dead_fabrics"])
            continue
        epoch_dead.append(report["node_id"])
        survivors = [n for n in survivors if n.node_id != report["node_id"]]
        if spare_pool:
            survivors.append(replace(spare_pool.pop(0), spare=False))
            promotions += 1
    survivors.sort(key=lambda n: n.node_id)
    migrated = router.place(shares, survivors)
    # Replay what the dead nodes lost, on whichever node each tenant
    # landed.  sorted() keeps the burst order canonical.
    replay_lists: Dict[int, List[Tuple[str, int]]] = {}
    for report in fully_dead:
        if report["node_id"] not in epoch_dead:
            continue
        for name, account in report["tenants"].items():
            lost = int(account.get("fault_shed", 0))
            target = router.placement.get(name)
            if lost > 0 and target is not None:
                replay_lists.setdefault(target, []).append((name, lost))
    replay_map = {node_id: tuple(sorted(pairs))
                  for node_id, pairs in replay_lists.items()}
    return (survivors, spare_pool, persistent_dead, replay_map, migrated,
            promotions, epoch_dead, True)


def _alert_chaos_control(
    config: FleetConfig,
    epoch_reports: List[Dict[str, Any]],
    shares: Tuple[TenantShare, ...],
    nodes: List[NodeSpec],
    spare_pool: List[NodeSpec],
    router: Router,
    engine,
):
    """The epoch-boundary failover step, driven by fired alerts only.

    The omniscient :func:`_chaos_control` reads the simulator's damage
    reports; here the control plane is allowed exactly what a real one
    has — the alert engine's firing state over the telemetry stream.
    Physics still propagates regardless (a broken fabric stays broken
    next epoch whether or not anyone noticed), but the *decisions* —
    which node to fail over, when to promote a spare, what to replay —
    key off critical alerts.  Replay counts come from the failed node's
    per-tenant ``fault_shed`` telemetry totals, which are observable (a
    router retains what it forwarded and saw shed back).
    """
    recovery = config.chaos.recovery if config.chaos is not None else True
    # Plant state: dead fabrics carry forward unconditionally — damage
    # does not wait for detection.
    persistent_dead: Dict[int, Tuple[int, ...]] = {}
    for report in epoch_reports:
        if report.get("spare") or not report.get("chaos"):
            continue
        dead = tuple(report["chaos"]["dead_fabrics"])
        if dead:
            persistent_dead[report["node_id"]] = dead
    active_ids = {node.node_id for node in nodes}
    suspects = sorted({node_id for _, node_id in engine.firing("critical")
                       if node_id in active_ids}) if recovery else []
    if not suspects:
        return (nodes, spare_pool, persistent_dead, {}, set(), 0, [], False)

    by_node = {report["node_id"]: report for report in epoch_reports}
    promotions = 0
    epoch_dead: List[int] = []
    survivors = list(nodes)
    for node_id in suspects:
        if len(survivors) <= 1 and not spare_pool:
            continue
        epoch_dead.append(node_id)
        survivors = [n for n in survivors if n.node_id != node_id]
        if spare_pool:
            survivors.append(replace(spare_pool.pop(0), spare=False))
            promotions += 1
    if not epoch_dead:
        return (nodes, spare_pool, persistent_dead, {}, set(), 0, [], False)
    survivors.sort(key=lambda n: n.node_id)
    migrated = router.place(shares, survivors)
    replay_lists: Dict[int, List[Tuple[str, int]]] = {}
    for node_id in epoch_dead:
        persistent_dead.pop(node_id, None)  # the node left the cluster
        report = by_node.get(node_id)
        if report is None:
            continue
        for name, account in report["tenants"].items():
            lost = int(account.get("fault_shed", 0))
            target = router.placement.get(name)
            if lost > 0 and target is not None:
                replay_lists.setdefault(target, []).append((name, lost))
    replay_map = {node_id: tuple(sorted(pairs))
                  for node_id, pairs in replay_lists.items()}
    return (survivors, spare_pool, persistent_dead, replay_map, migrated,
            promotions, epoch_dead, True)


# --------------------------------------------------------------------------- #
# The deterministic merge
# --------------------------------------------------------------------------- #
def _merge_reports(reports: List[Dict[str, Any]],
                   tenants: Tuple[TenantSpec, ...],
                   config: FleetConfig,
                   extra: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Fold per-(node, epoch) reports into per-tenant + ``__all__`` rows.

    Reports are consumed sorted by ``(epoch, node_id)`` — the canonical
    order no matter which executor produced them — so sample concatenation
    (and therefore every percentile) is reproducible bit for bit.
    """
    ordered = sorted(reports, key=lambda r: (r["epoch"], r["node_id"]))
    chaos = config.chaos is not None
    per_tenant: Dict[str, Dict[str, Any]] = {}
    for report in ordered:
        for name, account in report["tenants"].items():
            bucket = per_tenant.setdefault(name, {
                "submitted": 0, "completed": 0, "shed": 0, "good": 0,
                "slo_violations": 0, "slo_ns": account["slo_ns"],
                "service_ns_total": 0.0, "queue_wait_ns_total": 0.0,
                "samples": [],
                "fault_shed": 0, "replayed": 0, "recovery_time_ns": 0.0,
            })
            for key in ("submitted", "completed", "shed", "good",
                        "slo_violations"):
                bucket[key] += account[key]
            bucket["service_ns_total"] += account["service_ns_total"]
            bucket["queue_wait_ns_total"] += account["queue_wait_ns_total"]
            bucket["samples"].extend(account["latency_samples"])
            if chaos:
                bucket["fault_shed"] += account.get("fault_shed", 0)
                bucket["replayed"] += account.get("replayed", 0)
                bucket["recovery_time_ns"] += account.get("recovery_time_ns", 0.0)

    epochs = sorted({r["epoch"] for r in ordered})
    elapsed_ns = sum(max(r["elapsed_ns"] for r in ordered if r["epoch"] == e)
                     for e in epochs)
    nodes_per_epoch = [sum(1 for r in ordered if r["epoch"] == e) for e in epochs]
    epoch_ns = config.epoch_us * 1000.0
    totals = {
        "nodes_mean": sum(nodes_per_epoch) / len(nodes_per_epoch),
        "nodes_max": max(nodes_per_epoch),
        # The cost axis: node-microseconds (and fabric-us) actually powered
        # on, cost_weight-scaled for heterogeneous fleets.
        "node_us": sum(r["cost_weight"] * epoch_ns / 1000.0 for r in ordered),
        "fabric_us": sum(r["fabrics"] * epoch_ns / 1000.0 for r in ordered),
        "migrations": sum(r["migrations"] for r in ordered),
        "migration_stall_us": sum(r["migration_stall_ns"] for r in ordered) / 1000.0,
        "reconfigurations": sum(r["reconfigurations"] for r in ordered),
        "reconfig_us_total": sum(r["reconfig_us_total"] for r in ordered),
        "service_us_total": sum(r["service_us_total"] for r in ordered),
    }
    if config.power:
        totals["energy_nj"] = sum(r["energy_pj"] for r in ordered) / 1000.0
    if chaos:
        chaos_reports = [r["chaos"] for r in ordered if r.get("chaos")]
        for key in ("faults_injected", "fabric_faults", "requests_lost",
                    "seu_scrubs", "link_faults"):
            totals[key] = sum(c[key] for c in chaos_reports)
        totals["spare_us"] = sum(
            r["cost_weight"] * epoch_ns / 1000.0
            for r in ordered if r.get("spare"))

    rows: List[Dict[str, Any]] = []
    cluster = {"submitted": 0, "completed": 0, "shed": 0, "good": 0,
               "slo_violations": 0, "slo_ns": 0.0,
               "service_ns_total": 0.0, "queue_wait_ns_total": 0.0,
               "samples": [],
               "fault_shed": 0, "replayed": 0, "recovery_time_ns": 0.0}
    for name in sorted(per_tenant):
        bucket = per_tenant[name]
        rows.append(_row(name, bucket, elapsed_ns, extra, totals, chaos=chaos))
        for key in ("submitted", "completed", "shed", "good", "slo_violations",
                    "fault_shed", "replayed"):
            cluster[key] += bucket[key]
        cluster["service_ns_total"] += bucket["service_ns_total"]
        cluster["queue_wait_ns_total"] += bucket["queue_wait_ns_total"]
        cluster["recovery_time_ns"] += bucket["recovery_time_ns"]
        cluster["samples"].extend(bucket["samples"])
    rows.append(_row("__all__", cluster, elapsed_ns, extra, totals, chaos=chaos))
    return rows


def _row(name: str, bucket: Dict[str, Any], elapsed_ns: float,
         extra: Dict[str, Any], totals: Dict[str, Any],
         chaos: bool = False) -> Dict[str, Any]:
    histogram = Histogram(name, samples=bucket["samples"])
    completed = bucket["completed"]
    row: Dict[str, Any] = dict(extra)
    row.update({
        "tenant": name,
        "submitted": bucket["submitted"],
        "completed": completed,
        "shed": bucket["shed"],
        "slo_violations": bucket["slo_violations"],
        "slo_ns": bucket["slo_ns"],
        "goodput_krps": bucket["good"] / elapsed_ns * 1e6 if elapsed_ns else 0.0,
        "throughput_krps": completed / elapsed_ns * 1e6 if elapsed_ns else 0.0,
        "mean_latency_us": histogram.mean / 1000.0,
        "mean_queue_wait_us": (bucket["queue_wait_ns_total"] / completed / 1000.0
                               if completed else 0.0),
    })
    for label, fraction in REPORT_PERCENTILES:
        row[f"{label}_latency_us"] = histogram.percentile(fraction) / 1000.0
    row["max_latency_us"] = histogram.maximum / 1000.0
    if chaos:
        row["fault_shed"] = bucket["fault_shed"]
        row["replayed"] = bucket["replayed"]
        row["recovery_time_ns"] = bucket["recovery_time_ns"]
    row.update(totals)
    busy_us = totals["service_us_total"] + totals["reconfig_us_total"]
    row["reconfig_overhead"] = (totals["reconfig_us_total"] / busy_us
                                if busy_us > 0 else 0.0)
    return row
