"""Unit and integration tests for system composition and the area model."""

import pytest

from repro.platform import (
    AreaModel,
    DollyConfig,
    SystemKind,
    TilePlan,
    TileRole,
    build_system,
)
from repro.platform.area import linear_scale_area, linear_scale_frequency


def test_config_naming_matches_paper_convention():
    assert DollyConfig.dolly(2, 2).name == "Dolly-P2M2"
    assert DollyConfig.fpsoc(1, 1).name == "FPSoC-P1M1"
    assert DollyConfig.cpu_only(4).name == "CPU-P4"


def test_config_validation():
    with pytest.raises(ValueError):
        DollyConfig(num_processors=0)
    with pytest.raises(ValueError):
        DollyConfig(num_processors=1, num_memory_hubs=1, kind=SystemKind.CPU_ONLY)


def test_config_rejects_nonpositive_frequencies():
    """Zero/negative clocks must fail at configuration time with a clear
    message, not deep inside ClockDomain at build time."""
    with pytest.raises(ValueError, match="system_mhz must be positive"):
        DollyConfig(system_mhz=0.0)
    with pytest.raises(ValueError, match="system_mhz must be positive"):
        DollyConfig(system_mhz=-1000.0)
    with pytest.raises(ValueError, match="fpga_mhz must be positive"):
        DollyConfig(fpga_mhz=0.0)
    with pytest.raises(ValueError, match="fpga_mhz must be positive"):
        DollyConfig.dolly(1, 1, fpga_mhz=-100.0)
    # None stays the "use the accelerator's Fmax" sentinel.
    assert DollyConfig.dolly(1, 1, fpga_mhz=None).fpga_mhz is None
    assert DollyConfig.dolly(1, 1, fpga_mhz=250.0).fpga_mhz == 250.0


def test_config_validates_noc_topology_at_config_time():
    """Unknown topology names must raise when the config is built — naming
    every valid fabric — not later inside make_topology during system
    construction."""
    from repro.noc.topology import TOPOLOGY_KINDS

    with pytest.raises(ValueError) as excinfo:
        DollyConfig.dolly(1, 1, noc_topology="hypercube")
    message = str(excinfo.value)
    assert "hypercube" in message
    for kind in TOPOLOGY_KINDS:
        assert kind in message
    # Case and whitespace are normalized, not rejected.
    assert DollyConfig.dolly(1, 1, noc_topology="Torus").noc_topology == "torus"
    assert DollyConfig.dolly(1, 1, noc_topology=" mesh ").noc_topology == "mesh"


def test_tile_plan_roles_cover_p_c_and_m_tiles():
    plan = TilePlan.plan(DollyConfig.dolly(2, 2))
    assert len(plan.processor_tiles) == 2
    assert isinstance(plan.control_tile, int)
    assert len(plan.memory_tiles) == 1  # C-tile hosts the first Memory Hub
    assert plan.width * plan.height >= 4


def test_tile_plan_cpu_only_has_no_control_tile():
    plan = TilePlan.plan(DollyConfig.cpu_only(4))
    assert len(plan.processor_tiles) == 4
    with pytest.raises(LookupError):
        plan.control_tile


def test_build_system_dolly_p2m2_matches_fig8():
    system = build_system(DollyConfig.dolly(2, 2, fpga_mhz=100.0))
    assert len(system.cores) == 2
    assert system.adapter is not None
    assert system.adapter.num_memory_hubs == 2
    assert len(system.directories) == system.plan.width * system.plan.height


def test_build_system_cpu_only_has_no_adapter():
    system = build_system(DollyConfig.cpu_only(2))
    assert system.adapter is None
    assert system.fpga_domain is None


def test_warm_cache_preloads_lines():
    system = build_system(DollyConfig.cpu_only(1))
    base = system.memory.allocate(256)
    system.warm_cache(0, base, 256)

    def program(ctx):
        start = ctx.now
        for offset in range(0, 256, 16):
            yield from ctx.load(base + offset)
        return ctx.now - start

    elapsed, _ = system.run_single(program)
    # All warm hits: a couple of cycles per access, no DRAM latency anywhere.
    assert elapsed < 16 * 10


def test_run_programs_reports_elapsed_and_results():
    system = build_system(DollyConfig.cpu_only(2))

    def program(ctx, amount):
        yield from ctx.compute(amount)
        return amount

    results, elapsed = system.run_programs([(0, program, (100,)), (1, program, (300,))])
    assert results == [100, 300]
    assert elapsed >= 300.0


# --------------------------------------------------------------------------- #
# Area model
# --------------------------------------------------------------------------- #
def test_table1_constants_exposed():
    model = AreaModel()
    assert model.ariane_mm2 == pytest.approx(1.56)
    assert model.pmesh_socket_mm2 == pytest.approx(1.10)
    assert model.control_hub_mm2 == pytest.approx(0.21)
    assert model.coherent_mem_intf_mm2 == pytest.approx(0.04)
    assert model.reference_block_mm2 == pytest.approx(2.66)


def test_area_accounting_orders_systems_correctly():
    model = AreaModel()
    cpu = model.processor_only_area(4)
    fpsoc = model.fpsoc_area(4, efpga_mm2=3.0)
    duet = model.duet_area(4, 1, efpga_mm2=3.0)
    assert cpu < fpsoc < duet
    # The Duet Adapter adds little on top of the FPSoC (Sec. V-B).
    assert duet - fpsoc < model.reference_block_mm2


def test_adp_normalization():
    model = AreaModel()
    assert model.normalized_adp(10.0, 100.0, 10.0, 100.0) == pytest.approx(1.0)
    assert model.normalized_adp(20.0, 50.0, 10.0, 100.0) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        model.normalized_adp(1.0, 1.0, 0.0, 1.0)


def test_linear_scaling_model():
    assert linear_scale_area(1.0, 22.0, 44.0) == pytest.approx(4.0)
    assert linear_scale_frequency(1000.0, 22.0, 44.0) == pytest.approx(500.0)
