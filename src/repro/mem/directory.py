"""LLC shard + directory slice.

Each tile hosts one 64 KB LLC shard and the directory slice for the lines
whose home it is.  The directory runs a blocking protocol: one outstanding
transaction per line, with later requests for the same line queued in
arrival order.  Forward traffic (invalidations, ownership transfers) uses
the FORWARD NoC plane and acknowledgements return on the RESPONSE plane, so
queuing requests never blocks the messages needed to finish the current
transaction.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Set, Tuple

from repro.mem.address import AddressMap
from repro.mem.cache_store import SetAssociativeCache
from repro.mem.config import MemoryConfig
from repro.mem.dram import MainMemory
from repro.mem.protocol import CoherenceState, DirectoryState, MsgKind
from repro.noc import MessagePlane, NocMessage, TileRouter
from repro.sim import ClockDomain, Simulator, StatSet

#: A coherence participant is identified by its (node, target) pair.
AgentId = Tuple[int, str]


@dataclass
class DirectoryEntry:
    """Per-line directory state."""

    state: DirectoryState = DirectoryState.UNOWNED
    owner: Optional[AgentId] = None
    sharers: Set[AgentId] = field(default_factory=set)


@dataclass
class _AckCollector:
    """Tracks the acknowledgements the in-flight transaction is waiting for."""

    event: "Event"  # noqa: F821 - sim Event
    needed: int
    received: int = 0


class DirectoryShard:
    """One tile's LLC shard plus its slice of the MESI directory."""

    TARGET = "llc"

    def __init__(
        self,
        sim: Simulator,
        domain: ClockDomain,
        tile_router: TileRouter,
        address_map: AddressMap,
        config: MemoryConfig,
        memory: MainMemory,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.domain = domain
        self.node = tile_router.node
        self.address_map = address_map
        self.config = config
        self.memory = memory
        self.name = name or f"llc{self.node}"
        self.port = tile_router.port(self.TARGET, self._handle)
        self.data_store = SetAssociativeCache(
            config.llc_shard_size_bytes, config.line_bytes, config.llc_assoc, name=f"{self.name}.data"
        )
        self._entries: Dict[int, DirectoryEntry] = {}
        self._busy: Set[int] = set()
        self._queued: Dict[int, Deque[NocMessage]] = {}
        self._collectors: Dict[int, _AckCollector] = {}
        #: Energy-accounting hook (see ``repro.power``); ``None`` unless the
        #: system was built with ``PowerConfig(enabled=True)``.
        self.power_probe = None
        self.stats = StatSet(f"{self.name}.stats")
        # Hot-loop stat objects, resolved once instead of per request.
        self._c_llc_hits = self.stats.counter("llc_hits")
        self._c_llc_misses = self.stats.counter("llc_misses")
        self._c_requests = {
            kind: self.stats.counter(f"req_{kind}") for kind in MsgKind.REQUESTS
        }
        self._ack_wait_name = f"{self.name}.acks"
        self._serve_name = f"{self.name}-serve"

    # ------------------------------------------------------------------ #
    # Directory state access
    # ------------------------------------------------------------------ #
    def entry(self, line_addr: int) -> DirectoryEntry:
        if line_addr not in self._entries:
            self._entries[line_addr] = DirectoryEntry()
        return self._entries[line_addr]

    def debug_install(self, line_addr: int, agent: AgentId, modified: bool) -> None:
        """Directly record ``agent`` as holder of ``line_addr`` (pre-sim warm-up only)."""
        entry = self.entry(line_addr)
        if modified:
            entry.state = DirectoryState.EXCLUSIVE
            entry.owner = agent
            entry.sharers = set()
        else:
            if entry.state is DirectoryState.EXCLUSIVE:
                raise RuntimeError("cannot add a sharer to an exclusively-owned line")
            entry.state = DirectoryState.SHARED
            entry.sharers.add(agent)
        self.data_store.insert(line_addr, CoherenceState.SHARED)

    # ------------------------------------------------------------------ #
    # NoC handling
    # ------------------------------------------------------------------ #
    def _handle(self, message: NocMessage) -> None:
        if message.kind in MsgKind.REQUESTS:
            line = self.address_map.line_of(message.addr)
            if line in self._busy:
                self.stats.counter("requests_queued").increment()
                self._queued.setdefault(line, deque()).append(message)
            else:
                self._busy.add(line)
                self.sim.process(self._serve(message), name=self._serve_name)
        elif message.kind in (MsgKind.INV_ACK, MsgKind.WB_DATA, MsgKind.TRANSFER_ACK):
            self._collect_ack(message)
        else:
            raise RuntimeError(f"{self.name}: unexpected message kind {message.kind!r}")

    def _collect_ack(self, message: NocMessage) -> None:
        line = self.address_map.line_of(message.addr)
        collector = self._collectors.get(line)
        if collector is None:
            # A late ack for a transaction that already completed (benign).
            self.stats.counter("stray_acks").increment()
            return
        collector.received += 1
        if message.kind == MsgKind.WB_DATA:
            self.data_store.insert(line, CoherenceState.SHARED, dirty=True)
        if collector.received >= collector.needed:
            del self._collectors[line]
            collector.event.succeed(message)

    # ------------------------------------------------------------------ #
    # Request serving
    # ------------------------------------------------------------------ #
    def _serve(self, message: NocMessage):
        line = self.address_map.line_of(message.addr)
        requester: AgentId = (message.meta["reply_node"], message.meta["reply_target"])
        self._c_requests[message.kind].value += 1
        probe = self.power_probe
        if probe is not None:
            probe.directory_lookups += 1
        yield self.domain.wait_cycles(self.config.llc_latency_cycles)
        if message.kind == MsgKind.GET_S:
            yield from self._serve_get_s(message, line, requester)
        elif message.kind == MsgKind.GET_M:
            yield from self._serve_get_m(message, line, requester)
        elif message.kind in (MsgKind.PUT_M, MsgKind.PUT_S):
            yield from self._serve_put(message, line, requester)
        self._release(line)

    def _serve_get_s(self, message: NocMessage, line: int, requester: AgentId):
        entry = self.entry(line)
        if entry.state is DirectoryState.UNOWNED:
            yield from self._access_data(line)
            entry.state = DirectoryState.EXCLUSIVE
            entry.owner = requester
            entry.sharers = set()
            self._send_data(requester, line, grant="E")
        elif entry.state is DirectoryState.SHARED:
            yield from self._access_data(line)
            entry.sharers.add(requester)
            self._send_data(requester, line, grant="S")
        else:  # EXCLUSIVE
            owner = entry.owner
            if owner == requester:
                self._send_data(requester, line, grant="E")
                return
            done = self._expect_acks(line, 1)
            self.port.send(
                owner[0],
                owner[1],
                MsgKind.FWD_GET_S,
                addr=line,
                plane=MessagePlane.FORWARD,
                requester_node=requester[0],
                requester_target=requester[1],
            )
            yield done
            entry.state = DirectoryState.SHARED
            entry.sharers = {owner, requester}
            entry.owner = None

    def _serve_get_m(self, message: NocMessage, line: int, requester: AgentId):
        entry = self.entry(line)
        if entry.state is DirectoryState.UNOWNED:
            yield from self._access_data(line)
            entry.state = DirectoryState.EXCLUSIVE
            entry.owner = requester
            entry.sharers = set()
            self._send_data(requester, line, grant="M")
        elif entry.state is DirectoryState.SHARED:
            # Sorted so invalidations fan out in a deterministic order —
            # set iteration over (node, target) pairs would vary with string
            # hash randomization and make multi-sharer runs irreproducible.
            others = sorted(sharer for sharer in entry.sharers if sharer != requester)
            if others:
                done = self._expect_acks(line, len(others))
                for sharer in others:
                    self.port.send(
                        sharer[0],
                        sharer[1],
                        MsgKind.INV,
                        addr=line,
                        plane=MessagePlane.FORWARD,
                    )
                yield done
            yield from self._access_data(line)
            already_had_data = requester in entry.sharers
            entry.state = DirectoryState.EXCLUSIVE
            entry.owner = requester
            entry.sharers = set()
            self._send_data(requester, line, grant="M", data=not already_had_data)
        else:  # EXCLUSIVE
            owner = entry.owner
            if owner == requester:
                self._send_data(requester, line, grant="M", data=False)
                return
            done = self._expect_acks(line, 1)
            self.port.send(
                owner[0],
                owner[1],
                MsgKind.FWD_GET_M,
                addr=line,
                plane=MessagePlane.FORWARD,
                requester_node=requester[0],
                requester_target=requester[1],
            )
            yield done
            entry.owner = requester
            entry.sharers = set()

    def _serve_put(self, message: NocMessage, line: int, requester: AgentId):
        entry = self.entry(line)
        if entry.state is DirectoryState.EXCLUSIVE and entry.owner == requester:
            entry.state = DirectoryState.UNOWNED
            entry.owner = None
            if message.kind == MsgKind.PUT_M:
                self.data_store.insert(line, CoherenceState.SHARED, dirty=True)
        elif entry.state is DirectoryState.SHARED and requester in entry.sharers:
            entry.sharers.discard(requester)
            if not entry.sharers:
                entry.state = DirectoryState.UNOWNED
        # else: stale eviction that raced with a forward — nothing to update.
        yield self.domain.wait_cycles(1)
        self.port.reply(message, MsgKind.PUT_ACK)

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _access_data(self, line: int):
        """Charge the LLC data access; on a miss, add the DRAM latency."""
        if self.data_store.lookup(line) is None:
            self._c_llc_misses.value += 1
            probe = self.memory.power_probe
            if probe is not None:
                probe.dram_activations += 1
            yield self.domain.sim.timeout(self.memory.latency_ns)
            self.data_store.insert(line, CoherenceState.SHARED)
        else:
            self._c_llc_hits.value += 1
        return None

    def _expect_acks(self, line: int, needed: int):
        event = self.sim.event(self._ack_wait_name)
        self._collectors[line] = _AckCollector(event=event, needed=needed)
        return event

    def _send_data(self, requester: AgentId, line: int, grant: str, data: bool = True) -> None:
        self.port.send(
            requester[0],
            requester[1],
            MsgKind.DATA,
            addr=line,
            plane=MessagePlane.RESPONSE,
            size_bytes=self.config.line_bytes if data else 0,
            grant=grant,
        )

    def _release(self, line: int) -> None:
        queued = self._queued.get(line)
        if queued:
            next_message = queued.popleft()
            if not queued:
                del self._queued[line]
            self.sim.process(self._serve(next_message), name=self._serve_name)
        else:
            self._busy.discard(line)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DirectoryShard {self.name} node={self.node}>"
