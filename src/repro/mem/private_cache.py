"""Private cache agent: an L1 + write-back L2 pair speaking directory MESI.

One agent backs every core (its L1D + private L2) and — unchanged, exactly
as the paper does with the P-Mesh L2 ("Dolly implements the Proxy Cache by
adding a coherent memory interface to the unmodified P-Mesh L2 cache") —
every Memory Hub's Proxy Cache.  The agent exposes blocking ``load`` /
``store`` / ``amo`` generators to its client and reacts to directory
forwards (invalidations, ownership transfers) independently of whatever the
client is doing, which is what lets a core wait on its own miss while still
acknowledging invalidations.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.mem.address import AddressMap
from repro.mem.cache_store import SetAssociativeCache
from repro.mem.config import MemoryConfig
from repro.mem.dram import MainMemory
from repro.mem.protocol import CoherenceState, MsgKind
from repro.noc import MessagePlane, NocMessage, TileRouter
from repro.sim import ClockDomain, Event, Simulator, StatSet

#: Callback invoked when the agent loses a line (invalidation / ownership
#: transfer).  The Duet Memory Hub uses this hook to forward invalidations
#: into the eFPGA-emulated soft cache without requiring an acknowledgement.
LineListener = Callable[[int, str], None]


class PrivateCacheAgent:
    """A coherent private cache (L1 + L2) attached to one NoC tile."""

    def __init__(
        self,
        sim: Simulator,
        domain: ClockDomain,
        tile_router: TileRouter,
        address_map: AddressMap,
        config: MemoryConfig,
        memory: MainMemory,
        name: str = "",
        target: str = "l2",
        include_l1: bool = True,
    ) -> None:
        self.sim = sim
        self.domain = domain
        self.node = tile_router.node
        self.address_map = address_map
        self.config = config
        self.memory = memory
        self.name = name or f"l2@{self.node}"
        self.target = target
        self.port = self._attach(tile_router, target)
        self.include_l1 = include_l1
        self.l1 = (
            SetAssociativeCache(
                config.l1_size_bytes, config.line_bytes, config.l1_assoc, name=f"{self.name}.l1"
            )
            if include_l1
            else None
        )
        self.l2 = SetAssociativeCache(
            config.l2_size_bytes, config.line_bytes, config.l2_assoc, name=f"{self.name}.l2"
        )
        self._pending: Dict[int, Event] = {}
        self._writeback_buffer: Dict[int, bool] = {}
        self._mshr_free: Optional[Event] = None
        self._line_listeners: list = []
        #: Energy-accounting hook (see ``repro.power``); ``None`` unless the
        #: system was built with ``PowerConfig(enabled=True)``.
        self.power_probe = None
        self.stats = StatSet(f"{self.name}.stats")
        # Hot-loop stat objects, resolved once instead of per access.
        self._c_loads = self.stats.counter("loads")
        self._c_l1_hits = self.stats.counter("l1_hits")
        self._c_l2_hits = self.stats.counter("l2_hits")
        self._c_load_misses = self.stats.counter("load_misses")
        self._c_stores = self.stats.counter("stores")
        self._c_store_hits = self.stats.counter("store_hits")
        self._c_store_misses = self.stats.counter("store_misses")
        self._miss_wait_name = f"{self.name}.miss"
        self._fwd_name = f"{self.name}-fwd"

    def _attach(self, tile_router: TileRouter, target: str):
        """Create the agent's NoC port.

        Subclasses (notably the FPSoC-style slow cache, which lives in the
        eFPGA clock domain) override this to interpose clock-domain-crossing
        FIFOs between the agent and the mesh.
        """
        return tile_router.port(target, self._handle)

    # ------------------------------------------------------------------ #
    # Client-facing blocking interface (drive with ``yield from``)
    # ------------------------------------------------------------------ #
    def load(self, addr: int, size_bytes: int = 8) -> Any:
        """Read ``addr``; returns the functional word value."""
        line = self.address_map.line_of(addr)
        self._c_loads.value += 1
        probe = self.power_probe
        if probe is not None:
            probe.cache_accesses += 1
        yield self.domain.wait_cycles(self.config.l1_latency_cycles)
        if self._l1_hit(line):
            self._c_l1_hits.value += 1
            return self.memory.read_word(addr)
        yield self.domain.wait_cycles(self.config.l2_latency_cycles)
        entry = self.l2.lookup(line)
        if entry is not None and entry.state.can_read:
            self._c_l2_hits.value += 1
            self._fill_l1(line)
            return self.memory.read_word(addr)
        self._c_load_misses.value += 1
        yield from self._miss(line, want_modified=False)
        self._fill_l1(line)
        return self.memory.read_word(addr)

    def store(self, addr: int, value: int = 0, size_bytes: int = 8) -> None:
        """Write ``value`` to ``addr``; obtains write permission first."""
        if size_bytes > self.config.max_store_bytes:
            raise ValueError(
                f"{self.name}: store of {size_bytes}B exceeds the "
                f"{self.config.max_store_bytes}B L2 store port"
            )
        line = self.address_map.line_of(addr)
        self._c_stores.value += 1
        probe = self.power_probe
        if probe is not None:
            probe.cache_accesses += 1
        yield self.domain.wait_cycles(self.config.l1_latency_cycles)
        yield self.domain.wait_cycles(self.config.l2_latency_cycles)
        entry = self.l2.lookup(line)
        if entry is not None and entry.state.can_write:
            self._c_store_hits.value += 1
            entry.state = CoherenceState.MODIFIED
            entry.dirty = True
        else:
            self._c_store_misses.value += 1
            yield from self._miss(line, want_modified=True)
        self._fill_l1(line)
        self.memory.write_word(addr, value)
        return None

    def amo(self, addr: int, fn: Callable[[int], int]) -> int:
        """Atomic read-modify-write (LR/SC or AMO equivalent); returns the old value."""
        line = self.address_map.line_of(addr)
        self.stats.counter("amos").increment()
        probe = self.power_probe
        if probe is not None:
            probe.cache_accesses += 1
        yield self.domain.wait_cycles(self.config.l1_latency_cycles)
        yield self.domain.wait_cycles(self.config.l2_latency_cycles)
        entry = self.l2.lookup(line)
        if entry is None or not entry.state.can_write:
            yield from self._miss(line, want_modified=True)
        else:
            entry.state = CoherenceState.MODIFIED
            entry.dirty = True
        self._fill_l1(line)
        old = self.memory.read_modify_write(addr, fn)
        return old

    def flush_line(self, addr: int) -> None:
        """Write back and drop one line (used by explicit cache flushes)."""
        line = self.address_map.line_of(addr)
        entry = self.l2.peek(line)
        if entry is None:
            return
        yield self.domain.wait_cycles(self.config.l2_latency_cycles)
        self._drop_line(line, notify="flush")
        yield from self._evict(line, entry.state)
        return None

    # ------------------------------------------------------------------ #
    # State inspection / warm-up
    # ------------------------------------------------------------------ #
    def state_of(self, addr: int) -> CoherenceState:
        entry = self.l2.peek(self.address_map.line_of(addr))
        return entry.state if entry is not None else CoherenceState.INVALID

    def debug_install(self, addr: int, state: CoherenceState) -> None:
        """Directly install a line (pre-simulation warm-up only)."""
        line = self.address_map.line_of(addr)
        self.l2.insert(line, state, dirty=state is CoherenceState.MODIFIED)
        self._fill_l1(line)

    def add_line_listener(self, listener: LineListener) -> None:
        """Register a callback fired whenever the agent loses a line."""
        self._line_listeners.append(listener)

    # ------------------------------------------------------------------ #
    # Miss handling
    # ------------------------------------------------------------------ #
    def _miss(self, line: int, want_modified: bool):
        while True:
            pending = self._pending.get(line)
            if pending is None:
                break
            yield pending
            entry = self.l2.peek(line)
            if entry is not None and (
                entry.state.can_write if want_modified else entry.state.can_read
            ):
                return None
        while len(self._pending) >= self.config.max_outstanding_misses:
            if self._mshr_free is None:
                self._mshr_free = self.sim.event(f"{self.name}.mshr-free")
            yield self._mshr_free
        completion = Event(self.sim, self._miss_wait_name)
        self._pending[line] = completion
        home = self.address_map.home_tile(line)
        kind = MsgKind.GET_M if want_modified else MsgKind.GET_S
        self.port.send(home, "llc", kind, addr=line, plane=MessagePlane.REQUEST)
        response: NocMessage = yield completion
        grant = response.meta.get("grant", "S")
        state = {
            "M": CoherenceState.MODIFIED,
            "E": CoherenceState.EXCLUSIVE,
            "S": CoherenceState.SHARED,
        }[grant]
        victim = self.l2.insert(line, state, dirty=state is CoherenceState.MODIFIED)
        del self._pending[line]
        if self._mshr_free is not None:
            self._mshr_free.succeed()
            self._mshr_free = None
        if victim is not None and victim.valid:
            if self.l1 is not None:
                self.l1.invalidate(victim.line_addr)
            self._notify_listeners(victim.line_addr, "evicted")
            yield from self._evict(victim.line_addr, victim.state)
        return None

    def _evict(self, line: int, state: CoherenceState):
        home = self.address_map.home_tile(line)
        if state is CoherenceState.MODIFIED:
            kind = MsgKind.PUT_M
            size = self.config.line_bytes
        else:
            kind = MsgKind.PUT_S
            size = 0
        self.stats.counter("evictions").increment()
        self._writeback_buffer[line] = True
        self.port.send(home, "llc", kind, addr=line, plane=MessagePlane.REQUEST, size_bytes=size)
        yield self.domain.wait_cycles(1)
        return None

    # ------------------------------------------------------------------ #
    # NoC message handling (always reactive, never blocks the client)
    # ------------------------------------------------------------------ #
    def _handle(self, message: NocMessage) -> None:
        if message.kind == MsgKind.DATA:
            line = self.address_map.line_of(message.addr)
            completion = self._pending.get(line)
            if completion is None:
                raise RuntimeError(f"{self.name}: unsolicited Data for line 0x{line:x}")
            completion.succeed(message)
        elif message.kind == MsgKind.PUT_ACK:
            line = self.address_map.line_of(message.addr)
            self._writeback_buffer.pop(line, None)
        elif message.kind in (MsgKind.INV, MsgKind.FWD_GET_S, MsgKind.FWD_GET_M):
            self.sim.process(self._serve_forward(message), name=self._fwd_name)
        else:
            raise RuntimeError(f"{self.name}: unexpected message kind {message.kind!r}")

    def _serve_forward(self, message: NocMessage):
        line = self.address_map.line_of(message.addr)
        yield self.domain.wait_cycles(self.config.l2_latency_cycles)
        if message.kind == MsgKind.INV:
            self.stats.counter("invalidations").increment()
            self._drop_line(line, notify="invalidated")
            self.port.reply(message, MsgKind.INV_ACK)
        elif message.kind == MsgKind.FWD_GET_S:
            self.stats.counter("fwd_get_s").increment()
            entry = self.l2.peek(line)
            if entry is not None:
                entry.state = CoherenceState.SHARED
                entry.dirty = False
            requester = (message.meta["requester_node"], message.meta["requester_target"])
            self.port.send(
                requester[0],
                requester[1],
                MsgKind.DATA,
                addr=line,
                plane=MessagePlane.RESPONSE,
                size_bytes=self.config.line_bytes,
                grant="S",
            )
            self.port.reply(message, MsgKind.WB_DATA, size_bytes=self.config.line_bytes)
        elif message.kind == MsgKind.FWD_GET_M:
            self.stats.counter("fwd_get_m").increment()
            self._drop_line(line, notify="invalidated")
            requester = (message.meta["requester_node"], message.meta["requester_target"])
            self.port.send(
                requester[0],
                requester[1],
                MsgKind.DATA,
                addr=line,
                plane=MessagePlane.RESPONSE,
                size_bytes=self.config.line_bytes,
                grant="M",
            )
            self.port.reply(message, MsgKind.TRANSFER_ACK)
        return None

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _l1_hit(self, line: int) -> bool:
        if self.l1 is None:
            return False
        l1_entry = self.l1.lookup(line)
        if l1_entry is None:
            return False
        l2_entry = self.l2.peek(line)
        return l2_entry is not None and l2_entry.state.can_read

    def _fill_l1(self, line: int) -> None:
        if self.l1 is not None:
            self.l1.insert(line, CoherenceState.SHARED)

    def _drop_line(self, line: int, notify: str) -> None:
        if self.l1 is not None:
            self.l1.invalidate(line)
        self.l2.invalidate(line)
        self._notify_listeners(line, notify)

    def _notify_listeners(self, line: int, reason: str) -> None:
        for listener in self._line_listeners:
            listener(line, reason)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PrivateCacheAgent {self.name} node={self.node}>"
