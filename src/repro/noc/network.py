"""Transaction-level NoC with per-link contention and batched reservation.

Each directed link carries one flit per NoC cycle and serves messages in
reservation order; each of the three planes has its own set of link
resources.  A message of ``F`` flits crossing ``H`` hops therefore takes
roughly ``H * (router_latency + F)`` cycles when the network is idle, and
longer under contention — enough fidelity for the bandwidth and scalability
studies of Sec. V-C without simulating individual flits.

**Batched link reservation.**  Injection reserves the *whole route* in one
pass: every hop's start and finish is computed arithmetically against the
per-link ``_link_free_at`` table at injection time, and a single delivery
callback is scheduled at the final finish instant.  Compared to the seed's
per-hop generator loop this eliminates ``H`` process resumptions and ``H``
heap operations per message (one process, one alignment delay and ``H``
timed delays collapse into one ``schedule_at``).  The per-hop float
arithmetic is mirrored operation for operation — ``t = t + ((start +
transfer) - t)`` exactly as the kernel advanced the old transfer process —
so delivery times are bit-identical to the per-hop model (guarded by the
golden test in ``tests/test_noc_topologies.py``); the scheduled delivery
lands on the same integer-picosecond heap key the per-hop version produced.
Reservations happen in ``send()`` call order, which is the same order the
seed's transfer processes started in, so per-link FIFO order is preserved.
See ``docs/noc.md`` for the contention model and its invariants.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Union

from repro.noc.message import MessagePlane, NocMessage
from repro.noc.topology import Mesh2D, Topology, make_topology
from repro.sim import ClockDomain, Event, Simulator, StatSet

#: Signature of an endpoint's message handler.
MessageHandler = Callable[[NocMessage], None]


class NocEndpoint:
    """Mixin-ish helper describing what the network expects from an endpoint."""

    def handle_noc_message(self, message: NocMessage) -> None:  # pragma: no cover
        raise NotImplementedError


class NocNetwork:
    """A NoC over any :class:`~repro.noc.topology.Topology`, in the system
    (fast) clock domain.

    ``topology`` may be a ready :class:`Topology` instance, a kind string
    (``"mesh"``, ``"torus"``, ``"ring"``, ``"crossbar"`` — built over
    ``width`` x ``height`` nodes via :func:`make_topology`), or omitted
    entirely for the default 2D mesh.  Endpoints attach a handler per node;
    :meth:`send` injects a message and returns an :class:`Event` that fires
    at delivery time (most senders ignore it).  Delivery calls the
    destination handler synchronously at the delivery instant, so handlers
    should only enqueue work or spawn processes, never block.
    """

    def __init__(
        self,
        sim: Simulator,
        domain: ClockDomain,
        width: Optional[int] = None,
        height: Optional[int] = None,
        router_latency_cycles: int = 1,
        name: str = "noc",
        topology: Union[Topology, str, None] = None,
    ) -> None:
        self.sim = sim
        self.domain = domain
        if topology is None or isinstance(topology, str):
            if width is None or height is None:
                raise ValueError("width and height are required without a Topology instance")
            topology = make_topology(topology or Mesh2D.kind, width, height)
        self.topology = topology
        self.router_latency_cycles = router_latency_cycles
        self.name = name
        self._handlers: Dict[int, MessageHandler] = {}
        # (plane, src, dst) -> time the link becomes free
        self._link_free_at: Dict[Tuple[int, int, int], float] = {}
        #: Energy-accounting hook (see ``repro.power``); ``None`` unless the
        #: system was built with ``PowerConfig(enabled=True)``.
        self.power_probe = None
        self.stats = StatSet(f"{name}.stats")
        # The per-message stat objects, resolved once instead of per send.
        self._messages_sent = self.stats.counter("messages_sent")
        self._flits_sent = self.stats.counter("flits_sent")
        self._link_wait_ns = self.stats.histogram("link_wait_ns")
        self._message_latency_ns = self.stats.histogram("message_latency_ns")
        # Pre-bound delivery callback: one bound method for the network's
        # lifetime instead of one per send.
        self._deliver_bound = self._deliver

    # ------------------------------------------------------------------ #
    # Endpoint management
    # ------------------------------------------------------------------ #
    def attach(self, node: int, handler: MessageHandler) -> None:
        """Register the message handler for ``node`` (exactly one per node)."""
        self.topology._check_node(node)
        if node in self._handlers:
            raise ValueError(f"node {node} already has a handler attached")
        self._handlers[node] = handler

    def detach(self, node: int) -> None:
        self._handlers.pop(node, None)

    # ------------------------------------------------------------------ #
    # Message injection
    # ------------------------------------------------------------------ #
    def send(self, message: NocMessage) -> Event:
        """Inject ``message``; returns an event fired at delivery.

        The whole route is reserved here, at injection: each hop's start is
        the later of the message's arrival at that hop and the link's
        ``_link_free_at`` entry, each hop's finish extends the link's busy
        window, and one delivery callback is scheduled at the final finish.
        The float arithmetic below intentionally mirrors the retired
        per-hop generator loop step for step (``t + (delay)`` rather than
        the algebraically-equal running sum) so delivery instants stay
        bit-identical to the seed mesh behaviour.
        """
        if message.dst not in self._handlers:
            raise ValueError(f"no handler attached at destination node {message.dst}")
        sim = self.sim
        delivered = Event(sim, "delivered")
        now = sim.now
        message.stamp("injected", now)
        self._messages_sent.value += 1
        self._flits_sent.value += message.flits
        # Injection is aligned to the NoC clock even for local (same-tile)
        # delivery: the endpoint's NoC interface still clocks the packet in.
        domain = self.domain
        target = domain.edge_after(now, 1)
        align_delay = target - now
        t = now if align_delay <= 0.0 else now + align_delay
        cycle = domain.period_ns
        transfer_ns = (self.router_latency_cycles + message.flits) * cycle
        route = self.topology.route(message.src, message.dst)
        probe = self.power_probe
        if probe is not None:
            # A local delivery still clocks the packet through one router.
            probe.noc_flit_hops += message.flits * (len(route) or 1)
        if route:
            plane = int(message.plane)
            link_free_at = self._link_free_at
            record_wait = self._link_wait_ns.record
            for src, dst in route:
                key = (plane, src, dst)
                # Reserve the link in injection order: the message occupies
                # the link from the later of its arrival and "link free",
                # for its serialization time.  Injection order equals the
                # order the seed's transfer processes started in, keeping
                # per-link FIFO order identical.
                start = link_free_at.get(key, 0.0)
                if start > t:
                    record_wait(start - t)
                else:
                    start = t
                end = start + transfer_ns
                link_free_at[key] = end
                t = t + (end - t)
        else:
            # Local delivery still pays one router traversal.
            t = t + self.router_latency_cycles * cycle
        sim.schedule_at(t, self._deliver_bound, (message, delivered))
        return delivered

    def _deliver(self, pair: Tuple[NocMessage, Event]) -> None:
        message, delivered = pair
        sim = self.sim
        message.stamp("delivered", sim.now)
        self._message_latency_ns.record(message.noc_latency())
        handler = self._handlers.get(message.dst)
        if handler is None:
            raise RuntimeError(f"handler for node {message.dst} detached mid-flight")
        handler(message)
        delivered.succeed(sim.now)

    # ------------------------------------------------------------------ #
    # Link faults (delegated to the topology; see repro.chaos)
    # ------------------------------------------------------------------ #
    def fail_link(self, a: int, b: int, bidirectional: bool = True) -> None:
        """Kill the physical link ``a <-> b``: later sends route around it.

        Messages already injected keep their reserved route (the flits are
        in flight); only routes computed after the fault avoid the link.
        """
        self.topology.fail_link(a, b, bidirectional=bidirectional)
        self.stats.counter("link_faults").increment()

    def heal_link(self, a: int, b: int, bidirectional: bool = True) -> None:
        """Restore a failed link; later sends may use it again."""
        self.topology.heal_link(a, b, bidirectional=bidirectional)
        self.stats.counter("link_repairs").increment()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def node_count(self) -> int:
        return self.topology.node_count

    def mean_latency_ns(self) -> float:
        """Mean in-network latency over all delivered messages (0.0 if none).

        Reuses the pre-resolved ``message_latency_ns`` histogram rather
        than re-looking it up through the :class:`StatSet` on every call.
        """
        histogram = self._message_latency_ns
        return histogram.mean if histogram.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NocNetwork {self.topology!r} @{self.domain.freq_mhz}MHz>"


#: Backwards-compatible alias — the seed's mesh-only network class.
MeshNetwork = NocNetwork
