"""Experiment runners and reporting for every table and figure of the paper.

The measurement logic lives in the experiment registry
(:mod:`repro.api.registry`): each table/figure is a named
:class:`~repro.api.spec.ExperimentSpec` with a declarative parameter grid,
run by :class:`repro.api.runner.Runner` (serial or process-pool, with
optional on-disk JSON caching under ``<cache_dir>/<experiment>/<key>.json``)
and returned as a typed :class:`~repro.api.results.ResultSet`.  Discover and
run everything from the command line with ``python -m repro list`` /
``python -m repro run fig9``.

The ``run_*`` functions re-exported here are backward-compatible shims that
keep the original list-of-dicts return shapes.
"""

from repro.analysis.experiments import (
    APPLICATION_CONFIGS,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_table1,
    run_table2,
)
from repro.analysis.reporting import format_table

__all__ = [
    "APPLICATION_CONFIGS",
    "run_table1",
    "run_table2",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "format_table",
]
