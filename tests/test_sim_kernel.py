"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import Delay, SimulationError, Simulator


def test_schedule_runs_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(5.0, order.append, "b")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(10.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 10.0


def test_same_time_events_run_in_scheduling_order():
    sim = Simulator()
    order = []
    for label in "abcde":
        sim.schedule(3.0, order.append, label)
    sim.run()
    assert order == list("abcde")


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_run_until_stops_before_future_events():
    sim = Simulator()
    fired = []
    sim.schedule(100.0, fired.append, True)
    sim.run(until=50.0)
    assert fired == []
    assert sim.now == 50.0
    sim.run()
    assert fired == [True]


def test_process_delay_and_return_value():
    sim = Simulator()

    def body():
        yield Delay(10.0)
        yield 5.0
        return "done"

    result = sim.run_process(body())
    assert result == "done"
    assert sim.now == 15.0


def test_process_waits_on_event():
    sim = Simulator()
    event = sim.event("go")

    def waiter():
        value = yield event
        return value

    process = sim.process(waiter())
    sim.schedule(7.0, event.succeed, 42)
    sim.run()
    assert process.finished
    assert process.done.value == 42
    assert sim.now == 7.0


def test_process_waits_on_other_process():
    sim = Simulator()

    def child():
        yield Delay(3.0)
        return 99

    def parent():
        value = yield sim.process(child())
        return value * 2

    assert sim.run_process(parent()) == 198


def test_yield_none_does_not_advance_time():
    sim = Simulator()

    def body():
        yield None
        return sim.now

    assert sim.run_process(body()) == 0.0


def test_unsupported_command_raises():
    sim = Simulator()

    def body():
        yield "not-a-command"

    sim.process(body())
    with pytest.raises(SimulationError):
        sim.run()


def test_max_events_guard():
    sim = Simulator()

    def forever():
        while True:
            yield Delay(1.0)

    sim.process(forever())
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_event_cannot_trigger_twice():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(RuntimeError):
        event.succeed(2)


def test_run_process_detects_unfinished_process():
    sim = Simulator()

    def body():
        yield sim.event("never")

    with pytest.raises(SimulationError):
        sim.run_process(body())


def test_all_of_event_group():
    from repro.sim.event import all_of

    sim = Simulator()
    events = [sim.event(str(i)) for i in range(3)]

    def waiter():
        values = yield all_of(sim, events)
        return values

    process = sim.process(waiter())
    sim.schedule(1.0, events[1].succeed, "b")
    sim.schedule(2.0, events[0].succeed, "a")
    sim.schedule(3.0, events[2].succeed, "c")
    sim.run()
    assert process.done.value == ["a", "b", "c"]
