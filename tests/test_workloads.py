"""End-to-end tests of the application workloads and the synthetic studies.

These are the integration tests closest to the paper's evaluation: each one
runs a (scaled-down) benchmark on at least two of the three systems and
checks functional correctness plus the headline performance relationship.
"""

import pytest

from repro.platform import SystemKind
from repro.workloads import bfs, dijkstra, pdes, popcount, sort, tangent
from repro.workloads.common import WorkloadParams
from repro.workloads.synthetic import measure_bandwidth, measure_latency


# --------------------------------------------------------------------------- #
# Fine-grained acceleration benchmarks
# --------------------------------------------------------------------------- #
def test_tangent_correct_and_duet_faster_than_cpu():
    cpu = tangent.run(SystemKind.CPU_ONLY, WorkloadParams(1, 0), calls=16)
    duet = tangent.run(SystemKind.DUET, WorkloadParams(1, 0), calls=16)
    assert cpu.correct and duet.correct
    assert duet.speedup_over(cpu) > 1.0


def test_popcount_correct_on_all_three_systems():
    results = {
        kind: popcount.run(kind, WorkloadParams(1, 1), vectors=8)
        for kind in (SystemKind.CPU_ONLY, SystemKind.FPSOC, SystemKind.DUET)
    }
    checksums = {result.checksum for result in results.values()}
    assert len(checksums) == 1
    assert all(result.correct for result in results.values())
    assert results[SystemKind.DUET].runtime_ns < results[SystemKind.FPSOC].runtime_ns


def test_sort_accelerated_produces_sorted_output_and_beats_fpsoc():
    duet = sort.run(SystemKind.DUET, WorkloadParams(1, 2), total_elements=128, slice_size=32)
    fpsoc = sort.run(SystemKind.FPSOC, WorkloadParams(1, 2), total_elements=128, slice_size=32)
    assert duet.correct and fpsoc.correct
    assert duet.runtime_ns < fpsoc.runtime_ns


def test_dijkstra_distances_match_reference():
    duet = dijkstra.run(SystemKind.DUET, WorkloadParams(1, 1), vertices=24, degree=4)
    cpu = dijkstra.run(SystemKind.CPU_ONLY, WorkloadParams(1, 1), vertices=24, degree=4)
    assert duet.correct and cpu.correct
    assert duet.checksum == cpu.checksum


# --------------------------------------------------------------------------- #
# Hardware-augmentation benchmarks
# --------------------------------------------------------------------------- #
def test_pdes_processes_all_events_on_both_systems():
    cpu = pdes.run(SystemKind.CPU_ONLY, WorkloadParams(2, 1), gates=12, max_events=40)
    duet = pdes.run(SystemKind.DUET, WorkloadParams(2, 1), gates=12, max_events=40)
    assert cpu.correct and duet.correct
    assert duet.runtime_ns < cpu.runtime_ns


def test_bfs_levels_match_reference_and_duet_beats_cpu():
    cpu = bfs.run(SystemKind.CPU_ONLY, WorkloadParams(4, 0), vertices=48, degree=3)
    duet = bfs.run(SystemKind.DUET, WorkloadParams(4, 0), vertices=48, degree=3)
    assert cpu.correct and duet.correct
    assert duet.checksum == cpu.checksum
    assert duet.runtime_ns < cpu.runtime_ns


# --------------------------------------------------------------------------- #
# Synthetic communication studies (Sec. V-C)
# --------------------------------------------------------------------------- #
def test_latency_shadow_beats_normal_and_proxy_is_frequency_insensitive():
    shadow = measure_latency("shadow_reg", 100.0)
    normal = measure_latency("normal_reg", 100.0)
    assert shadow.roundtrip_ns < normal.roundtrip_ns
    proxy_slow_clock = measure_latency("cpu_pull_proxy", 50.0)
    proxy_fast_clock = measure_latency("cpu_pull_proxy", 500.0)
    # The Proxy Cache keeps the eFPGA off the critical path: CPU-pull latency
    # barely moves across a 10x eFPGA clock change.
    assert abs(proxy_slow_clock.roundtrip_ns - proxy_fast_clock.roundtrip_ns) < 25.0


def test_latency_slow_cache_penalized_at_low_frequency():
    slow = measure_latency("cpu_pull_slow", 50.0)
    proxy = measure_latency("cpu_pull_proxy", 50.0)
    assert slow.roundtrip_ns > proxy.roundtrip_ns


def test_bandwidth_proxy_beats_slow_cache_for_efpga_pull():
    proxy = measure_bandwidth("efpga_pull_proxy", 100.0, quad_words=32)
    slow = measure_bandwidth("efpga_pull_slow", 100.0, quad_words=32)
    assert proxy.mbytes_per_s > slow.mbytes_per_s
    assert proxy.bytes_moved == 32 * 8


def test_result_accounting_speedup_and_adp_helpers():
    cpu = tangent.run(SystemKind.CPU_ONLY, WorkloadParams(1, 0), calls=8)
    duet = tangent.run(SystemKind.DUET, WorkloadParams(1, 0), calls=8)
    assert duet.chip_area_mm2 > cpu.chip_area_mm2
    assert duet.adp() == pytest.approx(duet.chip_area_mm2 * duet.runtime_ns)
    assert duet.normalized_adp(cpu) > 0.0
