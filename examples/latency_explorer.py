"""Communication-mechanism explorer (the Sec. V-C studies, interactively).

Run with:  python examples/latency_explorer.py [efpga_mhz ...]

For each requested eFPGA frequency the script measures the round-trip
latency of all six CPU–eFPGA communication mechanisms (Fig. 9) and the
bandwidth of the register-based mechanisms (Fig. 10), printing a comparison
of Duet's Proxy Cache / Shadow Registers against the FPSoC-style slow cache
and normal soft registers.
"""

import sys

from repro.analysis import format_table
from repro.workloads.synthetic import (
    LATENCY_MECHANISMS,
    measure_bandwidth,
    measure_latency,
)


def main():
    frequencies = [float(arg) for arg in sys.argv[1:]] or [100.0, 500.0]
    latency_rows = []
    for mechanism in LATENCY_MECHANISMS:
        for freq in frequencies:
            result = measure_latency(mechanism, freq)
            latency_rows.append([mechanism, freq, result.roundtrip_ns])
    print(format_table(
        ["Mechanism", "eFPGA MHz", "Round trip (ns)"], latency_rows,
        title="CPU-eFPGA round-trip latency (single transaction)",
    ))
    print()
    bandwidth_rows = []
    for mechanism in ("shadow_reg", "normal_reg"):
        for freq in frequencies:
            result = measure_bandwidth(mechanism, freq, quad_words=64)
            bandwidth_rows.append([mechanism, freq, result.mbytes_per_s])
    print(format_table(
        ["Mechanism", "eFPGA MHz", "Bandwidth (MB/s)"], bandwidth_rows,
        title="Register bandwidth, 64 quad-words",
    ))


if __name__ == "__main__":
    main()
