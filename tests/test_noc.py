"""Unit and property tests for the NoC substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.noc import Mesh2D, MeshNetwork, MessagePlane, NocMessage
from repro.sim import ClockDomain, Delay, Simulator


# --------------------------------------------------------------------------- #
# Topology
# --------------------------------------------------------------------------- #
def test_mesh_coordinates_roundtrip():
    mesh = Mesh2D(4, 3)
    for node in range(mesh.node_count):
        x, y = mesh.coordinates(node)
        assert mesh.node_at(x, y) == node


def test_mesh_hop_count_is_manhattan_distance():
    mesh = Mesh2D(4, 4)
    assert mesh.hop_count(0, 0) == 0
    assert mesh.hop_count(0, 3) == 3
    assert mesh.hop_count(0, 15) == 6


def test_mesh_route_is_xy_ordered():
    mesh = Mesh2D(3, 3)
    route = mesh.route(0, 8)  # (0,0) -> (2,2)
    assert route == ((0, 1), (1, 2), (2, 5), (5, 8))


def test_mesh_route_empty_for_same_node():
    mesh = Mesh2D(2, 2)
    assert mesh.route(3, 3) == ()


def test_mesh_rejects_bad_nodes_and_dims():
    with pytest.raises(ValueError):
        Mesh2D(0, 3)
    mesh = Mesh2D(2, 2)
    with pytest.raises(ValueError):
        mesh.coordinates(4)
    with pytest.raises(ValueError):
        mesh.node_at(2, 0)


def test_mesh_neighbors_corner_and_center():
    mesh = Mesh2D(3, 3)
    assert sorted(mesh.neighbors(0)) == [1, 3]
    assert sorted(mesh.neighbors(4)) == [1, 3, 5, 7]


@given(
    width=st.integers(min_value=1, max_value=6),
    height=st.integers(min_value=1, max_value=6),
    data=st.data(),
)
def test_route_length_matches_hop_count(width, height, data):
    mesh = Mesh2D(width, height)
    src = data.draw(st.integers(min_value=0, max_value=mesh.node_count - 1))
    dst = data.draw(st.integers(min_value=0, max_value=mesh.node_count - 1))
    route = mesh.route(src, dst)
    assert len(route) == mesh.hop_count(src, dst)
    # Route is contiguous and ends at dst.
    current = src
    for a, b in route:
        assert a == current
        assert b in mesh.neighbors(a)
        current = b
    assert current == dst


# --------------------------------------------------------------------------- #
# Messages
# --------------------------------------------------------------------------- #
def test_message_flit_count():
    header_only = NocMessage(src=0, dst=1, kind="req", size_bytes=0)
    assert header_only.flits == 1
    line = NocMessage(src=0, dst=1, kind="data", size_bytes=16)
    assert line.flits == 3
    partial = NocMessage(src=0, dst=1, kind="data", size_bytes=9)
    assert partial.flits == 3


def test_message_ids_are_unique():
    a = NocMessage(src=0, dst=1, kind="x")
    b = NocMessage(src=0, dst=1, kind="x")
    assert a.msg_id != b.msg_id


def test_message_stamp_first_occurrence_wins():
    msg = NocMessage(src=0, dst=1, kind="x")
    msg.stamp("injected", 5.0)
    msg.stamp("injected", 9.0)
    assert msg.timestamps["injected"] == 5.0


# --------------------------------------------------------------------------- #
# Network
# --------------------------------------------------------------------------- #
def _build_network(width=2, height=2, freq=1000.0):
    sim = Simulator()
    clk = ClockDomain(sim, freq, "sys")
    network = MeshNetwork(sim, clk, width, height)
    return sim, clk, network


def test_network_delivers_to_handler():
    sim, _, network = _build_network()
    received = []
    network.attach(3, received.append)
    network.attach(0, lambda m: None)
    msg = NocMessage(src=0, dst=3, kind="ping")
    done = network.send(msg)
    sim.run()
    assert received == [msg]
    assert done.triggered
    assert msg.timestamps["delivered"] > msg.timestamps["injected"]


def test_network_requires_attached_destination():
    sim, _, network = _build_network()
    network.attach(0, lambda m: None)
    with pytest.raises(ValueError):
        network.send(NocMessage(src=0, dst=1, kind="ping"))


def test_network_rejects_double_attach():
    _, _, network = _build_network()
    network.attach(0, lambda m: None)
    with pytest.raises(ValueError):
        network.attach(0, lambda m: None)


def test_network_latency_scales_with_distance():
    sim, _, network = _build_network(width=4, height=4)
    latencies = {}
    for node in range(16):
        network.attach(node, lambda m: None)

    def measure(dst):
        msg = NocMessage(src=0, dst=dst, kind="ping")
        done = network.send(msg)
        yield done
        return msg.noc_latency()

    latencies[1] = sim.run_process(measure(1))
    latencies[15] = sim.run_process(measure(15))
    assert latencies[15] > latencies[1]


def test_network_point_to_point_ordering():
    """Messages between the same pair arrive in injection order."""
    sim, _, network = _build_network(width=4, height=1)
    received = []
    for node in range(4):
        network.attach(node, lambda m: received.append(m.meta["seq"]) if m.dst == 3 else None)

    def sender():
        for seq in range(20):
            network.send(NocMessage(src=0, dst=3, kind="data", size_bytes=16, meta={"seq": seq}))
            yield Delay(0.1)

    sim.process(sender())
    sim.run()
    assert received == list(range(20))


def test_network_contention_increases_latency():
    """Two senders sharing a link see more latency than one alone."""
    def run(num_senders):
        sim, _, network = _build_network(width=4, height=1)
        for node in range(4):
            network.attach(node, lambda m: None)
        last_delivery = {}

        def sender(src):
            events = []
            for _ in range(50):
                msg = NocMessage(src=src, dst=3, kind="data", size_bytes=16)
                events.append((network.send(msg), msg))
            for event, msg in events:
                yield event
            last_delivery[src] = sim.now

        for src in range(num_senders):
            sim.process(sender(src))
        sim.run()
        return max(last_delivery.values())

    assert run(2) > run(1)


def test_network_plane_isolation():
    """Traffic on one plane does not serialize behind another plane."""
    sim, _, network = _build_network(width=4, height=1)
    for node in range(4):
        network.attach(node, lambda m: None)
    latencies = {}

    def sender(plane, key):
        msgs = []
        for _ in range(20):
            msg = NocMessage(src=0, dst=3, kind="data", size_bytes=16, plane=plane)
            msgs.append((network.send(msg), msg))
        for event, msg in msgs:
            yield event
        latencies[key] = sim.now

    sim.process(sender(MessagePlane.REQUEST, "req"))
    sim.process(sender(MessagePlane.RESPONSE, "resp"))
    sim.run()
    contended_finish = max(latencies.values())

    # Same load on a single plane takes longer than split across two planes.
    sim2 = Simulator()
    clk2 = ClockDomain(sim2, 1000.0)
    network2 = MeshNetwork(sim2, clk2, 4, 1)
    for node in range(4):
        network2.attach(node, lambda m: None)
    finish = {}

    def sender2(key):
        msgs = []
        for _ in range(40):
            msg = NocMessage(src=0, dst=3, kind="data", size_bytes=16, plane=MessagePlane.REQUEST)
            msgs.append(network2.send(msg))
        for event in msgs:
            yield event
        finish[key] = sim2.now

    sim2.process(sender2("all"))
    sim2.run()
    assert finish["all"] > contended_finish


def test_network_local_delivery_pays_router_latency():
    sim, clk, network = _build_network()
    network.attach(0, lambda m: None)

    def body():
        msg = NocMessage(src=0, dst=0, kind="loopback")
        done = network.send(msg)
        yield done
        return msg.noc_latency()

    latency = sim.run_process(body())
    assert latency >= clk.period_ns
