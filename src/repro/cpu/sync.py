"""Software synchronization primitives built on the coherent memory system.

The processor-only baselines of the hardware-augmentation benchmarks rely on
these: PDES arbitrates its shared event queue with MCS locks (the paper
cites Mellor-Crummey & Scott), and BFS synchronizes its frontier queues with
a spin lock plus a sense-reversing barrier.  Their contention — cache-line
ping-pong on the lock word — is exactly the software overhead the
eFPGA-emulated schedulers and lock-free queues eliminate, so the primitives
are implemented with real atomics over the simulated memory system rather
than being approximated with fixed delays.
"""

from __future__ import annotations

from typing import Dict

from repro.cpu.core import CpuContext
from repro.mem.dram import MainMemory


class SpinLock:
    """A test-and-test-and-set spin lock on a single memory word."""

    def __init__(self, memory: MainMemory, name: str = "spinlock") -> None:
        self.addr = memory.allocate(memory.config.line_bytes)
        self.name = name

    def acquire(self, ctx: CpuContext):
        while True:
            old = yield from ctx.swap(self.addr, 1)
            if old == 0:
                return None
            # Spin on a plain load until the lock looks free, then retry.
            while True:
                value = yield from ctx.load(self.addr)
                if value == 0:
                    break
                yield from ctx.compute(2)

    def release(self, ctx: CpuContext):
        yield from ctx.store(self.addr, 0)
        return None


class McsLock:
    """The MCS queue lock used by the paper's PDES baseline.

    Each contender spins on its own queue node (one cache line per core), so
    under contention the coherence traffic is a hand-off per critical
    section rather than a global ping-pong — but the hand-off latency is
    still what limits scaling, which is the effect the PDES benchmark needs
    to reproduce.
    """

    _NO_NODE = 0

    def __init__(self, memory: MainMemory, max_threads: int, name: str = "mcs") -> None:
        self.name = name
        self.memory = memory
        line = memory.config.line_bytes
        self.tail_addr = memory.allocate(line)
        # Per-thread queue nodes: a "locked" flag and a "next" pointer, each
        # on its own line to avoid false sharing.
        self._locked_addr: Dict[int, int] = {}
        self._next_addr: Dict[int, int] = {}
        for thread in range(max_threads):
            self._locked_addr[thread] = memory.allocate(line)
            self._next_addr[thread] = memory.allocate(line)

    def _node_id(self, thread: int) -> int:
        # Encode "thread t's node" as t+1 so 0 can mean "no node".
        return thread + 1

    def acquire(self, ctx: CpuContext, thread: int):
        my_locked = self._locked_addr[thread]
        my_next = self._next_addr[thread]
        yield from ctx.store(my_next, self._NO_NODE)
        yield from ctx.store(my_locked, 1)
        predecessor = yield from ctx.swap(self.tail_addr, self._node_id(thread))
        if predecessor == self._NO_NODE:
            return None
        # Link behind the predecessor and spin on our own flag.
        yield from ctx.store(self._next_addr[predecessor - 1], self._node_id(thread))
        while True:
            flag = yield from ctx.load(my_locked)
            if flag == 0:
                return None
            yield from ctx.compute(2)

    def release(self, ctx: CpuContext, thread: int):
        my_next = self._next_addr[thread]
        successor = yield from ctx.load(my_next)
        if successor == self._NO_NODE:
            # Nobody queued behind us (we think): try to swing tail back.
            swapped = yield from ctx.cas(self.tail_addr, self._node_id(thread), self._NO_NODE)
            if swapped:
                return None
            # A successor is in the middle of linking; wait for the link.
            while True:
                successor = yield from ctx.load(my_next)
                if successor != self._NO_NODE:
                    break
                yield from ctx.compute(2)
        yield from ctx.store(self._locked_addr[successor - 1], 0)
        return None


class Barrier:
    """A sense-reversing centralized barrier for ``num_threads`` participants."""

    def __init__(self, memory: MainMemory, num_threads: int, name: str = "barrier") -> None:
        if num_threads < 1:
            raise ValueError("barrier needs at least one participant")
        self.num_threads = num_threads
        self.name = name
        line = memory.config.line_bytes
        self.count_addr = memory.allocate(line)
        self.sense_addr = memory.allocate(line)
        # Per-thread local sense, kept in simulated memory for fidelity.
        self._local_sense: Dict[int, int] = {thread: 1 for thread in range(num_threads)}

    def wait(self, ctx: CpuContext, thread: int):
        local_sense = self._local_sense[thread]
        arrived = yield from ctx.fetch_add(self.count_addr, 1)
        if arrived + 1 == self.num_threads:
            # Last arrival: reset the count and flip the global sense.
            yield from ctx.store(self.count_addr, 0)
            yield from ctx.store(self.sense_addr, local_sense)
        else:
            while True:
                sense = yield from ctx.load(self.sense_addr)
                if sense == local_sense:
                    break
                yield from ctx.compute(2)
        self._local_sense[thread] = 1 - local_sense
        return None
