"""Declarative alert rules evaluated over a telemetry stream.

Three rule families, all evaluated per ``(rule, node)`` on the window
samples a :class:`~repro.obs.monitor.TelemetryMonitor` emits:

* ``threshold`` — compare one sample metric against a constant; fire
  after ``for_windows`` consecutive breaches, resolve after
  ``clear_windows`` consecutive clears (hysteresis, so a metric grazing
  the line does not flap).
* ``burn_rate`` — multi-window SLO burn rate à la error budgets: the
  bad fraction (requests that resolved without meeting their SLO, over
  requests that resolved) divided by the error ``budget``.  The rule
  fires only when **both** a short window (``short_windows`` samples)
  and a long window (``long_windows`` samples) burn at ≥
  ``burn_threshold`` — the short window gives detection latency, the
  long window immunity to single-window blips.  Burn is computed from
  summed counts, so zero-traffic windows contribute burn 0 rather than
  a division by zero.
* ``ewma`` — z-score anomaly detection: an exponentially-weighted mean
  and variance track one metric; a sample more than ``z_threshold``
  deviations out (with ``min_std`` flooring the denominator and
  ``warmup_windows`` samples of grace) breaches.  Deliberately
  conservative defaults: on a deterministic stream a rule tuned to zero
  false alarms stays at zero false alarms.

The engine records a typed, append-only :class:`AlertEvent` log
(``fired`` / ``resolved`` transitions with integer-ps timestamps and
severity), exposes the currently-firing set for control loops, exports
the log as Perfetto-visible trace instants, and scores itself against a
chaos ground truth (:func:`score_alerts`) — detection latency,
precision/recall and false-alarm rate per rule family, something only a
simulator with a known fault oracle can measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, NamedTuple, Optional, Tuple

RULE_KINDS = ("threshold", "burn_rate", "ewma")
SEVERITIES = ("info", "warning", "critical")
_OPS = (">", ">=", "<", "<=")


@dataclass(frozen=True)
class AlertRule:
    """One declarative rule; frozen so rule sets are shareable/hashable."""

    name: str
    kind: str
    metric: str = "bad_fraction"
    severity: str = "warning"
    # -- threshold family ---------------------------------------------- #
    op: str = ">"
    value: float = 0.0
    #: Consecutive breaching windows required to fire.
    for_windows: int = 1
    # -- burn_rate family ----------------------------------------------- #
    #: Error budget: the bad fraction considered "spend as planned".
    budget: float = 0.1
    #: Fire when burn (bad_fraction / budget) reaches this in both windows.
    burn_threshold: float = 5.0
    short_windows: int = 1
    long_windows: int = 4
    # -- ewma family ----------------------------------------------------- #
    alpha: float = 0.3
    z_threshold: float = 8.0
    warmup_windows: int = 8
    min_std: float = 1.0
    # -- common ---------------------------------------------------------- #
    #: Consecutive clear windows required to resolve (and re-arm).
    clear_windows: int = 2

    def __post_init__(self) -> None:
        if self.kind not in RULE_KINDS:
            raise ValueError(f"rule kind must be one of {RULE_KINDS}, "
                             f"got {self.kind!r}")
        if self.severity not in SEVERITIES:
            raise ValueError(f"severity must be one of {SEVERITIES}, "
                             f"got {self.severity!r}")
        if self.op not in _OPS:
            raise ValueError(f"op must be one of {_OPS}, got {self.op!r}")
        if self.kind == "burn_rate":
            if self.budget <= 0:
                raise ValueError(f"budget must be positive, got {self.budget}")
            if self.short_windows < 1 or self.long_windows < self.short_windows:
                raise ValueError(
                    f"need 1 <= short_windows <= long_windows, got "
                    f"{self.short_windows}/{self.long_windows}")
        if self.for_windows < 1 or self.clear_windows < 1:
            raise ValueError("for_windows and clear_windows must be >= 1")


class AlertEvent(NamedTuple):
    """One ``fired``/``resolved`` transition in the typed alert log."""

    t_ps: int
    rule: str
    family: str
    node_id: int
    event: str          # "fired" | "resolved"
    severity: str
    value: float        # the reading that crossed (burn, metric, or z)
    epoch: int

    def as_dict(self) -> Dict[str, Any]:
        return dict(self._asdict())


#: The stock rule set: a fast-burn SLO rule (the detection workhorse — a
#: dead node burns its error budget ~10× over, healthy load well under
#: 1×), a sustained-shed threshold, and a queue-depth anomaly tracker.
DEFAULT_RULES: Tuple[AlertRule, ...] = (
    AlertRule(name="slo_fast_burn", kind="burn_rate", severity="critical",
              budget=0.1, burn_threshold=5.0, short_windows=1, long_windows=4),
    AlertRule(name="shed_spike", kind="threshold", metric="shed_rate",
              op=">", value=0.5, for_windows=2, severity="warning"),
    AlertRule(name="queue_runaway", kind="ewma", metric="queue_depth",
              severity="warning", alpha=0.3, z_threshold=8.0,
              warmup_windows=8, min_std=2.0),
)

#: DEFAULT_RULES plus the idle detector the alerts-mode autoscaler uses
#: to scale *down* (info severity: idleness is not an incident).
AUTOSCALER_RULES: Tuple[AlertRule, ...] = DEFAULT_RULES + (
    AlertRule(name="fleet_idle", kind="threshold", metric="busy_fraction",
              op="<", value=0.30, for_windows=4, severity="info"),
)


class _RuleState:
    """Mutable evaluation state for one (rule, node) pair."""

    __slots__ = ("firing", "breach_streak", "clear_streak",
                 "window", "ewma_mean", "ewma_var", "seen")

    def __init__(self) -> None:
        self.firing = False
        self.breach_streak = 0
        self.clear_streak = 0
        #: burn_rate: deque-ish list of (bad, resolved) count pairs.
        self.window: List[Tuple[int, int]] = []
        self.ewma_mean = 0.0
        self.ewma_var = 0.0
        self.seen = 0


def _compare(value: float, op: str, threshold: float) -> bool:
    if op == ">":
        return value > threshold
    if op == ">=":
        return value >= threshold
    if op == "<":
        return value < threshold
    return value <= threshold


def _burn(pairs: Iterable[Tuple[int, int]], budget: float) -> float:
    bad = resolved = 0
    for b, r in pairs:
        bad += b
        resolved += r
    if resolved == 0:
        return 0.0
    return (bad / resolved) / budget


class AlertEngine:
    """Evaluates a rule set on-stream, keeping firing/resolved state.

    Feed it window samples in the stream's canonical order
    (:meth:`consume` handles a whole :class:`TelemetryStream`); the
    engine is deterministic given the same sample sequence — the alert
    log is part of the reproducibility contract and is pinned
    hashseed-independent in ``tests/test_alerts.py``.
    """

    def __init__(self, rules: Iterable[AlertRule] = DEFAULT_RULES) -> None:
        self.rules: Tuple[AlertRule, ...] = tuple(rules)
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names: {names}")
        self.events: List[AlertEvent] = []
        self._states: Dict[Tuple[str, int], _RuleState] = {}

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def observe(self, sample: Dict[str, Any]) -> List[AlertEvent]:
        """Evaluate every rule against one window sample; returns the
        transitions this sample caused (also appended to the log)."""
        emitted: List[AlertEvent] = []
        node_id = sample["node_id"]
        for rule in self.rules:
            state = self._states.setdefault((rule.name, node_id), _RuleState())
            if rule.kind == "threshold":
                reading = float(sample[rule.metric])
                breach = _compare(reading, rule.op, rule.value)
            elif rule.kind == "burn_rate":
                state.window.append((sample["bad"], sample["resolved"]))
                if len(state.window) > rule.long_windows:
                    del state.window[0]
                short = _burn(state.window[-rule.short_windows:], rule.budget)
                long_ = _burn(state.window, rule.budget)
                reading = min(short, long_)
                breach = (short >= rule.burn_threshold
                          and long_ >= rule.burn_threshold)
            else:  # ewma
                x = float(sample[rule.metric])
                if state.seen < rule.warmup_windows:
                    breach = False
                    reading = 0.0
                else:
                    std = max(state.ewma_var ** 0.5, rule.min_std)
                    reading = abs(x - state.ewma_mean) / std
                    breach = reading > rule.z_threshold
                # Update after evaluation so a spike is judged against
                # the pre-spike baseline.
                delta = x - state.ewma_mean
                state.ewma_mean += rule.alpha * delta
                state.ewma_var = ((1.0 - rule.alpha)
                                  * (state.ewma_var + rule.alpha * delta * delta))
                state.seen += 1
            transition = self._advance(rule, state, breach)
            if transition is not None:
                event = AlertEvent(
                    t_ps=sample["t_ps"], rule=rule.name, family=rule.kind,
                    node_id=node_id, event=transition,
                    severity=rule.severity, value=reading,
                    epoch=sample["epoch"])
                self.events.append(event)
                emitted.append(event)
        return emitted

    @staticmethod
    def _advance(rule: AlertRule, state: _RuleState,
                 breach: bool) -> Optional[str]:
        if breach:
            state.breach_streak += 1
            state.clear_streak = 0
            if not state.firing and state.breach_streak >= rule.for_windows:
                state.firing = True
                return "fired"
        else:
            state.clear_streak += 1
            state.breach_streak = 0
            if state.firing and state.clear_streak >= rule.clear_windows:
                # Resolve *re-arms* the rule: a later breach streak fires
                # a fresh event (pinned in tests/test_alerts.py).
                state.firing = False
                return "resolved"
        return None

    def consume(self, stream) -> List[AlertEvent]:
        """Observe every sample of a (merged, sorted) stream."""
        emitted: List[AlertEvent] = []
        for sample in stream.samples:
            emitted.extend(self.observe(sample))
        return emitted

    # ------------------------------------------------------------------ #
    # Control-facing queries
    # ------------------------------------------------------------------ #
    def is_firing(self, rule: str, node_id: int) -> bool:
        state = self._states.get((rule, node_id))
        return state is not None and state.firing

    def firing(self, min_severity: str = "info") -> List[Tuple[str, int]]:
        """Currently-firing ``(rule, node_id)`` pairs at or above
        ``min_severity``, in deterministic sorted order."""
        floor = SEVERITIES.index(min_severity)
        by_name = {rule.name: rule for rule in self.rules}
        active = [(name, node) for (name, node), state
                  in self._states.items()
                  if state.firing
                  and SEVERITIES.index(by_name[name].severity) >= floor]
        return sorted(active)

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def export(self, tracer) -> None:
        """Mirror the alert log into a tracer as Perfetto-visible
        instants on an ``alerts`` track."""
        for seq, event in enumerate(self.events):
            tracer.instant(
                f"{event.rule}:{event.event}", "alerts", event.t_ps,
                cat="alert",
                args={"node": event.node_id, "severity": event.severity,
                      "family": event.family, "value": event.value,
                      "seq": seq})

    def log_as_dicts(self) -> List[Dict[str, Any]]:
        return [event.as_dict() for event in self.events]


# ---------------------------------------------------------------------- #
# Scoring against the chaos ground truth
# ---------------------------------------------------------------------- #
def score_alerts(events: Iterable[AlertEvent],
                 truth: Iterable[Dict[str, Any]],
                 horizon_ps: int,
                 kinds: Optional[Iterable[str]] = None) -> Dict[str, Any]:
    """Score fired alerts against ground-truth fault records.

    ``truth`` rows come from ``FaultSchedule.ground_truth`` (plain dicts
    with ``kind``/``node_id``/``t_ps``).  A fault is *detected* when any
    alert fired on its node within ``horizon_ps`` after its injection
    instant; an alert firing is a *true alarm* when any fault on its node
    precedes it within the horizon, else a *false alarm*.  Returns
    overall and per-rule-family precision/recall, false-alarm counts and
    detection-latency stats (ps).
    """
    truth_rows = [t for t in truth
                  if kinds is None or t["kind"] in set(kinds)]
    fired = sorted((e for e in events if e.event == "fired"),
                   key=lambda e: (e.t_ps, e.node_id, e.rule))

    def covered(alert: AlertEvent) -> bool:
        return any(t["node_id"] == alert.node_id
                   and t["t_ps"] <= alert.t_ps <= t["t_ps"] + horizon_ps
                   for t in truth_rows)

    def score(alerts: List[AlertEvent]) -> Dict[str, Any]:
        latencies: List[int] = []
        detected = 0
        for fault in truth_rows:
            hits = [a.t_ps - fault["t_ps"] for a in alerts
                    if a.node_id == fault["node_id"]
                    and fault["t_ps"] <= a.t_ps <= fault["t_ps"] + horizon_ps]
            if hits:
                detected += 1
                latencies.append(min(hits))
        true_alarms = sum(1 for a in alerts if covered(a))
        false_alarms = len(alerts) - true_alarms
        return {
            "faults": len(truth_rows),
            "detected": detected,
            "recall": detected / len(truth_rows) if truth_rows else 1.0,
            "fired": len(alerts),
            "true_alarms": true_alarms,
            "false_alarms": false_alarms,
            "false_alarm_rate": false_alarms / len(alerts) if alerts else 0.0,
            "precision": true_alarms / len(alerts) if alerts else 1.0,
            "mean_detection_latency_ps": (
                sum(latencies) / len(latencies) if latencies else 0.0),
            "max_detection_latency_ps": max(latencies) if latencies else 0,
        }

    result = score(fired)
    result["by_family"] = {
        family: score([a for a in fired if a.family == family])
        for family in sorted({a.family for a in fired})
    }
    return result
