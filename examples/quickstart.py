"""Quickstart: build a Dolly-P1M1 system, program an accelerator, talk to it.

Run with:  python examples/quickstart.py

(For the paper's full evaluation, the experiment registry is one command
away: ``python -m repro list`` enumerates every table/figure experiment and
``python -m repro run fig9`` reproduces one — see README.md.)

The example builds the smallest interesting Duet system — one Ariane-like
core plus one Duet Adapter with a single Memory Hub — programs a tiny
"echo + add" accelerator onto the eFPGA, and shows the two sides
communicating through Shadow Registers and coherent shared memory.
"""

from repro.core import RegisterKind, RegisterSpec
from repro.fpga import AcceleratorDesign, SoftAccelerator
from repro.platform import DollyConfig, build_system


class AddConstantAccelerator(SoftAccelerator):
    """Pops a value, adds a constant read from shared memory, pushes the sum."""

    DESIGN = AcceleratorDesign(name="add-constant", luts=300, ffs=400, mem_ports=1)
    STOP = (1 << 62)

    def behavior(self):
        processed = 0
        while True:
            value = yield from self.regs.pop_request(0)
            if value == self.STOP:
                return processed
            constant_addr = yield from self.regs.read(2)
            constant = yield from self.mem.load(constant_addr)
            yield self.cycles(2)  # the "datapath"
            yield from self.regs.push_response(1, value + constant)
            processed += 1


def main():
    # 1. Describe and build the system: Dolly-P1M1 with the eFPGA at 100 MHz.
    config = DollyConfig.dolly(processors=1, memory_hubs=1, fpga_mhz=100.0)
    system = build_system(config)
    print(f"built {config.name}: {system.plan.width}x{system.plan.height} mesh, "
          f"{len(system.cores)} core(s), {system.adapter.num_memory_hubs} memory hub(s)")

    # 2. Install the accelerator (synthesis -> bitstream -> programming).
    registers = [
        RegisterSpec(0, RegisterKind.FPGA_BOUND_FIFO, "operand"),
        RegisterSpec(1, RegisterKind.CPU_BOUND_FIFO, "result"),
        RegisterSpec(2, RegisterKind.PLAIN, "constant_addr"),
    ]
    synthesis = system.install_accelerator(AddConstantAccelerator(), registers=registers,
                                           fpga_mhz=100.0)
    system.start_accelerator()
    print(f"accelerator implemented at {synthesis.fmax_mhz:.0f} MHz max, "
          f"{synthesis.area_mm2:.2f} mm^2 of eFPGA, "
          f"CLB utilization {synthesis.clb_utilization:.0%}")

    # 3. Software: store the constant in coherent memory, then stream operands.
    adapter = system.adapter
    constant_addr = system.memory.allocate(16)

    def program(ctx):
        yield from ctx.store(constant_addr, 1000)
        yield from ctx.mmio_write(adapter.register_addr(2), constant_addr)
        results = []
        for operand in range(5):
            yield from ctx.mmio_write(adapter.register_addr(0), operand)
            results.append((yield from ctx.mmio_read(adapter.register_addr(1))))
        yield from ctx.mmio_write(adapter.register_addr(0), AddConstantAccelerator.STOP)
        return results

    results, elapsed_ns = system.run_single(program)
    print(f"results from the eFPGA: {results}")
    print(f"elapsed simulated time: {elapsed_ns:.0f} ns "
          f"({elapsed_ns / len(results):.0f} ns per round trip)")


if __name__ == "__main__":
    main()
