"""Behavioural soft accelerators for the seven application benchmarks.

Each accelerator mirrors the design described in Sec. V-D: the fine-grained
accelerators (tangent, popcount, sorting networks, Dijkstra, Barnes-Hut) and
the hardware-augmentation widgets (the PDES task scheduler and the BFS
lock-free queues).  Every accelerator carries an
:class:`~repro.fpga.synthesis.AcceleratorDesign` resource descriptor so the
synthesis model can reproduce Table II, and declares the soft register
layout its software driver expects.
"""

from repro.accel.tangent import TangentAccelerator
from repro.accel.popcount import PopcountAccelerator
from repro.accel.sortnet import SortingNetworkAccelerator
from repro.accel.dijkstra import DijkstraRelaxAccelerator
from repro.accel.barnes_hut import BarnesHutForceAccelerator
from repro.accel.pdes_scheduler import PdesSchedulerAccelerator
from repro.accel.lockfree_queue import FrontierQueueAccelerator

__all__ = [
    "TangentAccelerator",
    "PopcountAccelerator",
    "SortingNetworkAccelerator",
    "DijkstraRelaxAccelerator",
    "BarnesHutForceAccelerator",
    "PdesSchedulerAccelerator",
    "FrontierQueueAccelerator",
]
