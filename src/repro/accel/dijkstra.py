"""Dijkstra relaxation accelerator (Dolly-P1M1, fine-grained acceleration).

The paper accelerates Dijkstra's shortest-path algorithm with a Catapult-HLS
kernel and "use[s] a soft cache to exploit data locality between consecutive
calls to the accelerator".  The software/hardware split modelled here keeps
the priority queue on the processor (dynamic control flow, pointer-heavy)
and offloads the per-vertex edge relaxation: given a settled vertex, the
accelerator walks its adjacency list in coherent memory, computes tentative
distances and writes back any improvement, returning the number of updated
vertices so the processor can refresh its queue.

Memory layout (all 8-byte words):
    dist[i]            at  dist_base + 8*i
    row_ptr[i]         at  rowptr_base + 8*i      (CSR offsets, n+1 entries)
    col_idx[k], w[k]   packed at edges_base + 8*k as (weight << 32) | dst
"""

from __future__ import annotations

from typing import List

from repro.core.registers import RegisterKind, RegisterSpec
from repro.fpga.accelerator import SoftAccelerator
from repro.fpga.synthesis import AcceleratorDesign

STOP_COMMAND = (1 << 62)
INFINITY = (1 << 40)

REG_COMMAND = 0      # FPGA-bound FIFO: settled vertex id
REG_UPDATED = 1      # CPU-bound FIFO: number of distances improved
REG_DIST_BASE = 2    # plain: base of the distance array
REG_ROWPTR_BASE = 3  # plain: base of the CSR row-pointer array
REG_EDGES_BASE = 4   # plain: base of the packed edge array


def register_layout() -> List[RegisterSpec]:
    return [
        RegisterSpec(REG_COMMAND, RegisterKind.FPGA_BOUND_FIFO, "command", depth=16),
        RegisterSpec(REG_UPDATED, RegisterKind.CPU_BOUND_FIFO, "updated", depth=16),
        RegisterSpec(REG_DIST_BASE, RegisterKind.PLAIN, "dist_base"),
        RegisterSpec(REG_ROWPTR_BASE, RegisterKind.PLAIN, "rowptr_base"),
        RegisterSpec(REG_EDGES_BASE, RegisterKind.PLAIN, "edges_base"),
    ]


def pack_edge(dst: int, weight: int) -> int:
    return (weight << 32) | dst


def unpack_edge(word: int):
    return word & 0xFFFF_FFFF, word >> 32


class DijkstraRelaxAccelerator(SoftAccelerator):
    """Relaxes every outgoing edge of one settled vertex per invocation."""

    DESIGN = AcceleratorDesign(
        name="dijkstra",
        luts=3100,
        ffs=3400,
        bram_kbits=96,
        dsps=2,
        logic_depth=14,
        routing_pressure=0.5,
        mem_ports=1,
        description="Catapult-HLS edge-relaxation kernel with a soft cache",
    )

    #: Per-edge compare/add pipeline latency.
    EDGE_CYCLES = 2

    def __init__(self, name: str = "dijkstra") -> None:
        super().__init__(name)
        self.relaxations = 0

    def behavior(self):
        while True:
            vertex = yield from self.regs.pop_request(REG_COMMAND)
            if vertex == STOP_COMMAND:
                return self.relaxations
            dist_base = yield from self.regs.read(REG_DIST_BASE)
            rowptr_base = yield from self.regs.read(REG_ROWPTR_BASE)
            edges_base = yield from self.regs.read(REG_EDGES_BASE)
            start = yield from self.mem.load(rowptr_base + 8 * vertex)
            end = yield from self.mem.load(rowptr_base + 8 * (vertex + 1))
            source_dist = yield from self.mem.load(dist_base + 8 * vertex)
            updated = 0
            for edge_index in range(start, end):
                packed = yield from self.mem.load(edges_base + 8 * edge_index)
                dst, weight = unpack_edge(packed)
                yield self.cycles(self.EDGE_CYCLES)
                candidate = source_dist + weight
                current = yield from self.mem.load(dist_base + 8 * dst)
                if candidate < current:
                    yield from self.mem.store(dist_base + 8 * dst, candidate)
                    updated += 1
                self.relaxations += 1
            yield from self.regs.push_response(REG_UPDATED, updated)
            self.stats.counter("vertices").increment()
