"""Cluster-scale Dolly serving: many nodes, one front tier.

Layers (see ``docs/fleet.md``):

* :mod:`repro.fleet.node` — one share-nothing simulated node (a PR 5
  :class:`~repro.serve.scheduler.FabricScheduler` deployment) plus the
  migration cost model;
* :mod:`repro.fleet.router` — tenant→node placement (consistent-hash /
  least-loaded / bitstream-affinity) and watermark migration;
* :mod:`repro.fleet.autoscaler` — reactive node/fabric scaling from
  queue-depth and shed-rate signals;
* :mod:`repro.fleet.cluster` — the epoch driver: fans node simulations
  over a process pool and merges results bit-identically to a serial run;
* :mod:`repro.fleet.experiments` — the ``fleet_scaling`` experiment cells.
"""

from repro.fleet.autoscaler import SCALING_MODES, Autoscaler, AutoscalerConfig
from repro.fleet.cluster import (
    NODE_EXECUTORS,
    FleetConfig,
    FleetOutcome,
    run_fleet,
)
from repro.fleet.node import (
    DEFAULT_STATE_TRANSFER_NS,
    NodeSpec,
    TenantShare,
    migration_stall_ns,
    node_seed,
    simulate_node,
)
from repro.fleet.router import (
    PLACEMENT_KINDS,
    AffinityPlacement,
    HashPlacement,
    LeastLoadedPlacement,
    PlacementPolicy,
    Router,
    make_placement,
)

__all__ = [
    "SCALING_MODES",
    "Autoscaler",
    "AutoscalerConfig",
    "NODE_EXECUTORS",
    "FleetConfig",
    "FleetOutcome",
    "run_fleet",
    "DEFAULT_STATE_TRANSFER_NS",
    "NodeSpec",
    "TenantShare",
    "migration_stall_ns",
    "node_seed",
    "simulate_node",
    "PLACEMENT_KINDS",
    "AffinityPlacement",
    "HashPlacement",
    "LeastLoadedPlacement",
    "PlacementPolicy",
    "Router",
    "make_placement",
]
