"""repro.chaos — deterministic fault injection and reliability testing.

Seeded :class:`FaultSchedule`\\ s resolve to plain-data
:class:`FaultEvent`\\ s before any simulation runs; a
:class:`FaultInjector` applies them to a live serving deployment, and the
serve/fleet layers recover (failover + replay + image scrubbing) or shed,
depending on :class:`ChaosConfig`.  See ``docs/chaos.md``.
"""

from repro.chaos.inject import ChaosConfig, FaultInjector
from repro.chaos.schedule import (
    FAULT_KINDS,
    FAULT_SCOPES,
    FaultEvent,
    FaultSchedule,
    FaultSpec,
)

__all__ = [
    "FAULT_KINDS",
    "FAULT_SCOPES",
    "ChaosConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
]
