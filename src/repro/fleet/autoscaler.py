"""Reactive fleet autoscaling from queue-depth and shed-rate signals.

The :class:`Autoscaler` looks at the cluster's last-epoch signals and
decides to grow, hold or shrink capacity:

* **grow** when tenants are visibly hurting — the cluster shed more than
  ``up_shed_fraction`` of offered requests, or the mean per-node queue
  depth sustained above ``up_queue_depth`` (the same time-weighted
  queue-depth :class:`~repro.sim.stats.TimeSeries` the router's watermark
  migration reads);
* **shrink** when capacity is obviously idle — every node's busy fraction
  below ``down_busy_fraction`` and nothing shed;
* otherwise **hold**.  A ``cooldown_epochs`` guard keeps the scaler from
  flapping on the epoch right after it acted.

Two scaling modes: ``nodes`` adds/removes whole nodes (cloned from the
template spec; removal picks the least-busy node and the router migrates
its tenants away), ``fabrics`` grows/shrinks the per-node fabric count
instead (the most-queued node gains a fabric; the least-busy node with
more than one loses one) — elastic capacity without new machines.

Two *signal sources* (``AutoscalerConfig.signal``): ``raw`` (the
historical default) reads the omniscient end-of-epoch node signals
directly; ``alerts`` consumes the fired-alert state of a
:class:`repro.obs.alerts.AlertEngine` instead (:meth:`Autoscaler.\
decide_from_alerts`) — grow when any warning-or-worse alert is firing,
shrink when the ``fleet_idle`` detector fires on every node and nothing
else is wrong.  Same cooldown, same ``apply`` mechanics; only the
decision input changes, which is exactly what makes the omniscient-vs-
telemetry comparison in the ``alerting`` experiment a controlled one.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.fleet.node import NodeSpec

SCALING_MODES: Tuple[str, ...] = ("nodes", "fabrics")
SIGNAL_SOURCES: Tuple[str, ...] = ("raw", "alerts")


@dataclass(frozen=True)
class AutoscalerConfig:
    """Watermarks and bounds for one autoscaling fleet."""

    enabled: bool = False
    mode: str = "nodes"
    #: ``raw`` reads omniscient epoch signals; ``alerts`` reads fired
    #: alerts from the telemetry stream (requires the fleet to run with
    #: ``telemetry_window_us`` set).
    signal: str = "raw"
    min_nodes: int = 1
    max_nodes: int = 16
    #: Per-node fabric bound in ``fabrics`` mode.
    max_fabrics: int = 4
    #: Grow when cluster shed / submitted exceeds this ...
    up_shed_fraction: float = 0.005
    #: ... or the mean node queue depth sustains above this.
    up_queue_depth: float = 4.0
    #: Shrink when every node's busy fraction is below this (and no shed).
    down_busy_fraction: float = 0.30
    cooldown_epochs: int = 1

    def __post_init__(self) -> None:
        if self.mode not in SCALING_MODES:
            known = ", ".join(SCALING_MODES)
            raise ValueError(f"unknown scaling mode {self.mode!r}; known: {known}")
        if self.signal not in SIGNAL_SOURCES:
            known = ", ".join(SIGNAL_SOURCES)
            raise ValueError(
                f"unknown signal source {self.signal!r}; known: {known}")
        if not (1 <= self.min_nodes <= self.max_nodes):
            raise ValueError(
                f"need 1 <= min_nodes <= max_nodes, got "
                f"{self.min_nodes}/{self.max_nodes}")
        if self.max_fabrics < 1:
            raise ValueError(f"max_fabrics must be >= 1, got {self.max_fabrics}")
        if self.cooldown_epochs < 0:
            raise ValueError(
                f"cooldown_epochs cannot be negative, got {self.cooldown_epochs}")


class Autoscaler:
    """Applies :class:`AutoscalerConfig` decisions to a node list."""

    def __init__(self, config: AutoscalerConfig, template: NodeSpec) -> None:
        self.config = config
        #: New nodes are clones of this spec (fresh ids).
        self.template = template
        self.events: List[Dict[str, object]] = []
        self._cooldown = 0
        self._next_id = template.node_id + 1

    # ------------------------------------------------------------------ #
    def decide(self, signals: Dict[int, Dict[str, float]]) -> int:
        """+1 grow, -1 shrink, 0 hold — from the last epoch's signals."""
        if not self.config.enabled or not signals:
            return 0
        if self._cooldown > 0:
            self._cooldown -= 1
            return 0
        submitted = sum(sig["submitted"] for sig in signals.values())
        shed = sum(sig["shed"] for sig in signals.values())
        shed_fraction = shed / submitted if submitted else 0.0
        queue_mean = (sum(sig["queue_depth_mean"] for sig in signals.values())
                      / len(signals))
        if (shed_fraction > self.config.up_shed_fraction
                or queue_mean > self.config.up_queue_depth):
            return 1
        if (shed == 0
                and all(sig["busy_fraction"] < self.config.down_busy_fraction
                        for sig in signals.values())):
            return -1
        return 0

    def decide_from_alerts(self, engine, node_ids: List[int]) -> int:
        """+1 grow, -1 shrink, 0 hold — from fired alerts alone.

        ``engine`` is a :class:`repro.obs.alerts.AlertEngine` that has
        consumed the epoch's telemetry.  Pressure = any warning-or-worse
        alert firing on an active node; idleness = the ``fleet_idle``
        rule firing on *every* active node with nothing else wrong.  The
        same cooldown guard as :meth:`decide` applies.
        """
        if not self.config.enabled or not node_ids:
            return 0
        if self._cooldown > 0:
            self._cooldown -= 1
            return 0
        active = set(node_ids)
        hot = [(rule, node) for rule, node in engine.firing("warning")
               if node in active]
        if hot:
            return 1
        if all(engine.is_firing("fleet_idle", node) for node in node_ids):
            return -1
        return 0

    def apply(self, decision: int, nodes: List[NodeSpec],
              signals: Dict[int, Dict[str, float]],
              epoch: int) -> Optional[List[NodeSpec]]:
        """Returns the new node list, or ``None`` when nothing changed."""
        if decision == 0:
            return None
        config = self.config
        if config.mode == "nodes":
            if decision > 0 and len(nodes) < config.max_nodes:
                fresh = replace(self.template, node_id=self._next_id)
                self._next_id += 1
                self._record(epoch, "grow", f"+{fresh.name}")
                return nodes + [fresh]
            if decision < 0 and len(nodes) > config.min_nodes:
                victim = min(nodes, key=lambda node: (
                    signals.get(node.node_id, {}).get("busy_fraction", 0.0),
                    -node.node_id))
                self._record(epoch, "shrink", f"-{victim.name}")
                return [node for node in nodes if node.node_id != victim.node_id]
            return None
        # fabrics mode: resize one node in place.
        if decision > 0:
            candidates = [node for node in nodes if node.fabrics < config.max_fabrics]
            if not candidates:
                return None
            target = max(candidates, key=lambda node: (
                signals.get(node.node_id, {}).get("queue_depth_mean", 0.0),
                -node.node_id))
            self._record(epoch, "grow", f"{target.name}:fabrics+1")
            return [replace(node, fabrics=node.fabrics + 1)
                    if node.node_id == target.node_id else node
                    for node in nodes]
        candidates = [node for node in nodes if node.fabrics > 1]
        if not candidates:
            return None
        target = min(candidates, key=lambda node: (
            signals.get(node.node_id, {}).get("busy_fraction", 0.0),
            -node.node_id))
        self._record(epoch, "shrink", f"{target.name}:fabrics-1")
        return [replace(node, fabrics=node.fabrics - 1)
                if node.node_id == target.node_id else node
                for node in nodes]

    def _record(self, epoch: int, action: str, detail: str) -> None:
        self.events.append({"epoch": epoch, "action": action, "detail": detail})
        self._cooldown = self.config.cooldown_epochs
