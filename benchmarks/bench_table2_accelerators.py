"""Table II: clock frequency and area of the soft accelerators."""

from repro.analysis import format_table, run_table2


def test_table2_soft_accelerators(benchmark):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    print()
    print(format_table(
        ["Benchmark", "Fmax (MHz)", "Paper Fmax", "Norm. Area", "Paper Area",
         "CLB util", "Paper CLB", "BRAM util", "Paper BRAM"],
        [[r["benchmark"], r["measured_fmax_mhz"], r["paper_fmax_mhz"],
          r["measured_norm_area"], r["paper_norm_area"],
          r["measured_clb_util"], r["paper_clb_util"],
          r["measured_bram_util"], r["paper_bram_util"]] for r in rows],
        title="Table II — Clock Frequency and Area of Soft Accelerators",
    ))
    by_name = {r["benchmark"]: r for r in rows}
    # Shape checks against the paper: every accelerator lands in the
    # "8%-28% of the 1 GHz processor clock" range the paper reports, the
    # sorting networks grow with size, and Barnes-Hut is the largest design.
    for row in rows:
        assert 50.0 <= row["measured_fmax_mhz"] <= 500.0
    assert (by_name["sort32"]["measured_norm_area"]
            < by_name["sort64"]["measured_norm_area"]
            < by_name["sort128"]["measured_norm_area"])
    assert by_name["barnes-hut"]["measured_norm_area"] == max(
        r["measured_norm_area"] for r in rows
    )
