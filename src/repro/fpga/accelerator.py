"""Soft accelerator base class and the environment it runs in.

A *soft accelerator* (the paper's umbrella term for fine-grained
accelerators and hardware-augmentation widgets) is modelled behaviourally: a
process in the eFPGA clock domain whose body expresses the pipeline's
latency and throughput, reading and writing memory through the Memory Hubs
and talking to software through the Control Hub's soft/shadow registers.

The accelerator does not know whether its memory ports go through a Proxy
Cache (Duet), a slow FPGA-side cache (the FPSoC baseline) or a soft cache —
the platform wires that up — which mirrors the paper's claim that the same
accelerator RTL runs on both Dolly and the FPSoC model.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.fpga.scratchpad import Scratchpad
from repro.fpga.synthesis import AcceleratorDesign
from repro.sim import ClockDomain, Simulator, StatSet


class FpgaMemoryPort(abc.ABC):
    """What a soft accelerator sees of one Memory Hub.

    The Proxy Cache reduces the protocol to "two request types (Load and
    Store) and three response types (LoadAck, StoreAck and Invalidation)"
    (Sec. II-C); atomics are an optional extension.  All methods are
    generators to be driven with ``yield from``.
    """

    @abc.abstractmethod
    def load(self, addr: int) -> Any:
        """Load one word; returns its value."""

    @abc.abstractmethod
    def store(self, addr: int, value: int) -> None:
        """Store one word (write-through as far as the accelerator knows)."""

    @abc.abstractmethod
    def load_line(self, addr: int) -> List[int]:
        """Load a full cache line; returns its words."""

    def amo(self, addr: int, fn: Callable[[int], int]) -> int:  # pragma: no cover
        """Optional atomic support (feature-switch controlled)."""
        raise NotImplementedError("this memory port does not support atomics")

    # -- split transactions ------------------------------------------------ #
    # Ports backed by a Duet Memory Hub support pipelined (issue/wait)
    # operation; other ports fall back to executing the operation eagerly,
    # which keeps accelerator code identical across cache organizations.
    def issue(self, op: str, addr: int, value: int = 0, fn: Callable[[int], int] = None,
              corrupt: bool = False):
        """Issue an operation; returns a handle to pass to :meth:`wait`."""
        if op == "load":
            result = yield from self.load(addr)
        elif op == "load_line":
            result = yield from self.load_line(addr)
        elif op == "store":
            result = yield from self.store(addr, value)
        elif op == "amo":
            result = yield from self.amo(addr, fn)
        else:
            raise ValueError(f"unknown memory operation {op!r}")
        return _CompletedOperation(result)

    def wait(self, handle):
        """Wait for a previously issued operation and return its result."""
        if isinstance(handle, _CompletedOperation):
            return handle.value
            yield  # pragma: no cover - keeps this a generator
        raise TypeError(f"unexpected completion handle {handle!r}")


@dataclass
class _CompletedOperation:
    """Handle returned by the eager fallback of :meth:`FpgaMemoryPort.issue`."""

    value: Any


class RegisterFileView(abc.ABC):
    """FPGA-side view of the Control Hub's soft register interface."""

    @abc.abstractmethod
    def read(self, index: int) -> Any:
        """Read soft register ``index`` (generator)."""

    @abc.abstractmethod
    def write(self, index: int, value: int) -> None:
        """Write soft register ``index`` (generator)."""

    @abc.abstractmethod
    def pop_request(self, index: int) -> Any:
        """Block until software pushes into FPGA-bound FIFO ``index`` (generator)."""

    @abc.abstractmethod
    def push_response(self, index: int, value: int) -> None:
        """Push into CPU-bound FIFO ``index`` (generator)."""


@dataclass
class AcceleratorEnvironment:
    """Everything the platform hands to a programmed accelerator."""

    sim: Simulator
    domain: ClockDomain
    mem_ports: List[FpgaMemoryPort] = field(default_factory=list)
    registers: Optional[RegisterFileView] = None
    scratchpad: Optional[Scratchpad] = None
    #: Extra, platform-specific hooks (e.g. the Duet Adapter for tests).
    extra: dict = field(default_factory=dict)


class SoftAccelerator(abc.ABC):
    """Base class for every behavioural accelerator in :mod:`repro.accel`."""

    #: Subclasses override with their post-synthesis resource descriptor.
    DESIGN: AcceleratorDesign = None

    def __init__(self, name: str = "") -> None:
        self.name = name or type(self).__name__
        self.env: Optional[AcceleratorEnvironment] = None
        self.stats = StatSet(f"{self.name}.stats")
        #: Energy-accounting hook (see ``repro.power``); installed by the
        #: platform when the hosting system has power modeling enabled.
        self.power_probe = None
        self._running = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def design(self) -> AcceleratorDesign:
        if self.DESIGN is None:
            raise NotImplementedError(f"{type(self).__name__} must define DESIGN")
        return self.DESIGN

    def attach(self, env: AcceleratorEnvironment) -> None:
        """Called by the platform once the bitstream is loaded."""
        required = self.design.mem_ports
        if len(env.mem_ports) < required:
            raise ValueError(
                f"{self.name} needs {required} memory port(s), "
                f"got {len(env.mem_ports)}"
            )
        self.env = env

    def start(self) -> "Process":  # noqa: F821
        """Spawn the accelerator's behaviour process (reset release)."""
        if self.env is None:
            raise RuntimeError(f"{self.name} has not been attached to an eFPGA")
        if self._running:
            raise RuntimeError(f"{self.name} already started")
        self._running = True
        return self.env.sim.process(self._run(), name=f"{self.name}.behavior")

    def _run(self):
        try:
            result = yield from self.behavior()
        finally:
            self._running = False
        return result

    @abc.abstractmethod
    def behavior(self):
        """The accelerator's main process body (a generator)."""

    # ------------------------------------------------------------------ #
    # Conveniences for subclasses
    # ------------------------------------------------------------------ #
    @property
    def domain(self) -> ClockDomain:
        return self.env.domain

    @property
    def mem(self) -> FpgaMemoryPort:
        return self.env.mem_ports[0]

    @property
    def regs(self) -> RegisterFileView:
        if self.env.registers is None:
            raise RuntimeError(f"{self.name}: no register interface attached")
        return self.env.registers

    def cycles(self, count: int):
        """Command: advance ``count`` eFPGA cycles (pipeline latency).

        These are the accelerator's *active* cycles — the LUT-toggle energy
        events of the power model — as opposed to cycles spent blocked on a
        memory port or a register FIFO.
        """
        probe = self.power_probe
        if probe is not None:
            probe.fpga_active_cycles += count
        return self.domain.wait_cycles(count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SoftAccelerator {self.name}>"
