"""Feature switches.

Both the Memory Hubs and the Control Hub expose a bank of feature switches
that "allow the processors to configure the [hubs] according to the state of
the eFPGA and the specifications of the soft accelerator" (Sec. II-B): the
hubs must be deactivated during reconfiguration, invalidation forwarding is
enabled only when soft caches are used, the TLB can be bypassed for trusted
firmware-style widgets, atomics are opt-in, and the exception timeout is
programmable.
"""

from __future__ import annotations

from typing import Callable, Dict, List


class FeatureSwitches:
    """A named bank of boolean switches plus a few integer settings."""

    #: Switch names used by the Memory Hub and Control Hub.
    ACTIVE = "active"
    FORWARD_INVALIDATIONS = "forward_invalidations"
    TLB_ENABLED = "tlb_enabled"
    ATOMICS_ENABLED = "atomics_enabled"
    WRITE_ALLOCATE = "write_allocate"

    _DEFAULT_SWITCHES = {
        ACTIVE: True,
        FORWARD_INVALIDATIONS: False,
        TLB_ENABLED: False,
        ATOMICS_ENABLED: False,
        WRITE_ALLOCATE: True,
    }

    #: Integer settings (values, not booleans).
    TIMEOUT_CYCLES = "timeout_cycles"

    _DEFAULT_SETTINGS = {
        TIMEOUT_CYCLES: 20_000,
    }

    def __init__(self, name: str = "switches") -> None:
        self.name = name
        self._switches: Dict[str, bool] = dict(self._DEFAULT_SWITCHES)
        self._settings: Dict[str, int] = dict(self._DEFAULT_SETTINGS)
        self._observers: List[Callable[[str, object], None]] = []

    # ------------------------------------------------------------------ #
    # Boolean switches
    # ------------------------------------------------------------------ #
    def enabled(self, switch: str) -> bool:
        if switch not in self._switches:
            raise KeyError(f"{self.name}: unknown switch {switch!r}")
        return self._switches[switch]

    def set(self, switch: str, value: bool) -> None:
        if switch not in self._switches:
            raise KeyError(f"{self.name}: unknown switch {switch!r}")
        self._switches[switch] = bool(value)
        self._notify(switch, bool(value))

    # ------------------------------------------------------------------ #
    # Integer settings
    # ------------------------------------------------------------------ #
    def setting(self, key: str) -> int:
        if key not in self._settings:
            raise KeyError(f"{self.name}: unknown setting {key!r}")
        return self._settings[key]

    def configure(self, key: str, value: int) -> None:
        if key not in self._settings:
            raise KeyError(f"{self.name}: unknown setting {key!r}")
        if value < 0:
            raise ValueError(f"{self.name}: {key} must be non-negative")
        self._settings[key] = int(value)
        self._notify(key, int(value))

    # ------------------------------------------------------------------ #
    # Observation (hubs react to switch flips)
    # ------------------------------------------------------------------ #
    def observe(self, callback: Callable[[str, object], None]) -> None:
        self._observers.append(callback)

    def _notify(self, key: str, value: object) -> None:
        for observer in self._observers:
            observer(key, value)

    def snapshot(self) -> Dict[str, object]:
        state: Dict[str, object] = dict(self._switches)
        state.update(self._settings)
        return state
