"""Observability: request-lifecycle tracing, unified metrics, decomposition.

The cross-cutting layer the serving stack reports through:

* :mod:`repro.obs.trace` — a slotted, allocation-light :class:`Tracer`
  recording spans/instants on the integer-ps sim timeline, exportable as
  deterministic Chrome trace-event JSON (Perfetto-loadable);
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`, counters/gauges/
  histograms over :mod:`repro.sim.stats` with a picklable
  :class:`MetricsSnapshot` that merges deterministically across the
  fleet process pool;
* :mod:`repro.obs.decompose` — per-request stage attribution
  (queue/program/retune/service/blackout) and the empirical-CDF helper
  behind ``ResultSet.cdf``;
* :mod:`repro.obs.monitor` — streaming telemetry: tumbling/sliding
  window reads (goodput, shed rate, p99-over-window, queue slope)
  emitted as a picklable :class:`TelemetryStream` that merges across the
  fleet pool like :class:`MetricsSnapshot`;
* :mod:`repro.obs.alerts` — declarative :class:`AlertRule`\\ s
  (threshold / multi-window SLO burn-rate / EWMA z-score) evaluated
  on-stream by an :class:`AlertEngine` with a typed alert log, trace
  export and ground-truth scoring (:func:`score_alerts`);
* :mod:`repro.obs.experiments` — the ``latency_decomposition`` cell and
  the ``python -m repro trace`` drivers;
* :mod:`repro.obs.alerting` — the ``alerting`` detection-quality
  experiment and the ``python -m repro alerts`` driver.

Every hook in the stack is behind ``if tracer is not None`` /
``if telemetry is not None`` — with nothing attached, runs are
bit-identical to a build without this package (pinned in
``tests/test_obs.py`` and ``tests/test_alerts.py``).  See
``docs/observability.md`` and ``docs/alerting.md``.
"""

from repro.obs.alerts import (AUTOSCALER_RULES, DEFAULT_RULES, AlertEngine,
                              AlertEvent, AlertRule, score_alerts)
from repro.obs.decompose import (ALL_TENANTS, STAGES, cdf_points,
                                 decompose_rows, request_stages)
from repro.obs.metrics import (GAUGE_MERGE_MODES, CounterGroup, Gauge,
                               MetricsRegistry, MetricsSnapshot)
from repro.obs.monitor import TelemetryMonitor, TelemetryStream
from repro.obs.trace import Instant, Span, Tracer

__all__ = [
    "ALL_TENANTS",
    "AUTOSCALER_RULES",
    "DEFAULT_RULES",
    "GAUGE_MERGE_MODES",
    "STAGES",
    "AlertEngine",
    "AlertEvent",
    "AlertRule",
    "CounterGroup",
    "Gauge",
    "Instant",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Span",
    "TelemetryMonitor",
    "TelemetryStream",
    "Tracer",
    "cdf_points",
    "decompose_rows",
    "request_stages",
    "score_alerts",
]
