"""Multi-tenant accelerator serving (see ``docs/serving.md``).

Turns the simulation stack into a *served* system: tenants emit request
traffic (:mod:`repro.serve.traffic`) against one or more eFPGA fabrics
multiplexed by a reconfiguration-aware scheduler
(:mod:`repro.serve.scheduler`), with per-tenant tail-latency/goodput/SLO
accounting (:mod:`repro.serve.slo`).  The ``serve_policy`` and
``serve_energy`` experiments are registered in :mod:`repro.api.registry`.
"""

from repro.serve.catalog import (
    ACCELERATOR_NAMES,
    SERVE_ACCELERATORS,
    ServedAccelerator,
    ServedAcceleratorSpec,
    materialize,
    resolve_accelerator,
)
from repro.serve.scheduler import (
    POLICY_KINDS,
    AffinityPolicy,
    FabricContext,
    FabricScheduler,
    FcfsPolicy,
    PriorityPolicy,
    SchedulingPolicy,
    ServeConfig,
    SjfPolicy,
    make_policy,
)
from repro.serve.slo import REPORT_PERCENTILES, SloMonitor, TenantAccount
from repro.serve.traffic import (
    ARRIVAL_PATTERNS,
    Request,
    TenantSpec,
    TrafficSource,
    build_sources,
)

__all__ = [
    "ACCELERATOR_NAMES",
    "ARRIVAL_PATTERNS",
    "AffinityPolicy",
    "FabricContext",
    "FabricScheduler",
    "FcfsPolicy",
    "POLICY_KINDS",
    "PriorityPolicy",
    "REPORT_PERCENTILES",
    "Request",
    "SERVE_ACCELERATORS",
    "SchedulingPolicy",
    "ServeConfig",
    "ServedAccelerator",
    "ServedAcceleratorSpec",
    "SjfPolicy",
    "SloMonitor",
    "TenantAccount",
    "TenantSpec",
    "TrafficSource",
    "build_sources",
    "make_policy",
    "materialize",
    "resolve_accelerator",
]
