"""Tests for the ``repro.fleet`` cluster layer: placement policies, the
router's watermark migration, the autoscaler, per-node simulation and its
migration-cost accounting, the deterministic serial==process merge, and
the ``fleet_scaling`` acceptance pins (affinity placement beats
consistent-hash on p99 at equal node count; autoscaling matches static
goodput at lower node-cost)."""

import json
import os
import subprocess
import sys

import pytest

from repro.fleet import (
    Autoscaler,
    AutoscalerConfig,
    FleetConfig,
    NodeSpec,
    Router,
    TenantShare,
    make_placement,
    migration_stall_ns,
    node_seed,
    run_fleet,
    simulate_node,
)
from repro.fleet.experiments import (
    DEFAULT_RATE_PROFILE,
    FLEET_TENANTS,
    fleet_scaling_cell,
    fleet_scaling_summary,
    pareto_front,
)
from repro.serve.scheduler import FabricScheduler, ServeConfig
from repro.serve.traffic import ClientPopulation, TenantSpec
from repro.sim import Simulator

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def aggregate_row(rows):
    return next(row for row in rows if row["tenant"] == "__all__")


def make_shares(tenants=FLEET_TENANTS, rate_rps=40_000.0):
    return tuple(TenantShare(tenant=t, rate_rps=rate_rps) for t in tenants)


def make_nodes(count, fabrics=1):
    return [NodeSpec(node_id=i, fabrics=fabrics) for i in range(count)]


# --------------------------------------------------------------------------- #
# Specs and validation
# --------------------------------------------------------------------------- #
def test_spec_validation():
    with pytest.raises(ValueError, match="node_id"):
        NodeSpec(node_id=-1)
    with pytest.raises(ValueError, match="fabric"):
        NodeSpec(node_id=0, fabrics=0)
    with pytest.raises(ValueError, match="cost_weight"):
        NodeSpec(node_id=0, cost_weight=0.0)
    with pytest.raises(ValueError, match="node"):
        FleetConfig(nodes=0)
    with pytest.raises(ValueError, match="epoch"):
        FleetConfig(epochs=0)
    with pytest.raises(ValueError, match="node_executor"):
        FleetConfig(node_executor="threads")
    with pytest.raises(ValueError, match="placement"):
        FleetConfig(placement="random")
    with pytest.raises(ValueError, match="mode"):
        AutoscalerConfig(mode="pods")
    with pytest.raises(ValueError, match="min_nodes"):
        AutoscalerConfig(min_nodes=5, max_nodes=2)
    with pytest.raises(ValueError, match="watermark"):
        Router("hash", migrate_watermark=0.0)
    with pytest.raises(ValueError, match="placement"):
        make_placement("round_robin")


def test_node_seed_streams_are_distinct_and_bounded():
    seeds = {node_seed(2023, node, epoch)
             for node in range(16) for epoch in range(8)}
    assert len(seeds) == 16 * 8  # no collisions across the whole fleet grid
    assert all(0 <= s <= 0x7FFFFFFF for s in seeds)
    assert node_seed(2023, 3, 1) != node_seed(2024, 3, 1)


def test_client_population_thinning():
    population = ClientPopulation(clients=1_000_000, think_ms=50.0,
                                  thin_factor=50.0)
    assert population.offered_rps == pytest.approx(20_000_000.0)
    assert population.thinned_rps == pytest.approx(400_000.0)
    split = population.split(FLEET_TENANTS)
    assert sum(split.values()) == pytest.approx(population.thinned_rps)
    with pytest.raises(ValueError, match="client"):
        ClientPopulation(clients=0)
    with pytest.raises(ValueError, match="thin_factor"):
        ClientPopulation(clients=10, thin_factor=0.0)


# --------------------------------------------------------------------------- #
# Placement policies
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("kind", ["hash", "least_loaded", "affinity"])
def test_placement_covers_every_tenant_deterministically(kind):
    policy = make_placement(kind)
    shares, nodes = make_shares(), make_nodes(4)
    placement = policy.place(shares, nodes)
    assert set(placement) == {s.tenant.name for s in shares}
    assert set(placement.values()) <= {n.node_id for n in nodes}
    assert placement == policy.place(shares, nodes)  # pure function


def test_hash_placement_moves_only_arc_neighbours_on_growth():
    """The consistent-hash property: adding a node re-places tenants only
    onto the new node — nobody shuffles between surviving nodes."""
    policy = make_placement("hash")
    shares = make_shares()
    before = policy.place(shares, make_nodes(4))
    after = policy.place(shares, make_nodes(5))
    for name in before:
        assert after[name] in (before[name], 4)


def test_least_loaded_placement_balances_per_fabric():
    policy = make_placement("least_loaded")
    shares = make_shares()
    # Homogeneous nodes: the greedy packing keeps the spread tight.
    placement = policy.place(shares, make_nodes(4))
    loads = {nid: 0.0 for nid in range(4)}
    for share in shares:
        loads[placement[share.tenant.name]] += share.load_proxy()
    assert max(loads.values()) <= 2.0 * min(loads.values())
    # A 3-fabric node absorbs the bulk of the load.
    fat = [NodeSpec(node_id=0, fabrics=3), NodeSpec(node_id=1, fabrics=1)]
    fat_placement = policy.place(shares, fat)
    fat_load = sum(s.load_proxy() for s in shares
                   if fat_placement[s.tenant.name] == 0)
    assert fat_load > sum(s.load_proxy() for s in shares) / 2


def test_affinity_placement_keeps_bitstream_groups_together():
    policy = make_placement("affinity")
    placement = policy.place(make_shares(), make_nodes(4))
    node_of = {}
    for tenant in FLEET_TENANTS:
        node = placement[tenant.name]
        assert node_of.setdefault(tenant.accelerator, node) == node
    # Four accelerator groups over four nodes: one bitstream per node.
    assert len(set(node_of.values())) == 4


# --------------------------------------------------------------------------- #
# Router: placement bookkeeping and watermark migration
# --------------------------------------------------------------------------- #
def test_router_first_place_moves_nobody():
    router = Router("affinity")
    moved = router.place(make_shares(), make_nodes(4))
    assert moved == set() and router.migrations == 0
    assert set(router.placement) == {t.name for t in FLEET_TENANTS}


def test_router_replace_counts_moves_after_node_set_change():
    router = Router("affinity")
    shares = make_shares()
    router.place(shares, make_nodes(4))
    before = dict(router.placement)
    moved = router.place(shares, make_nodes(2))
    assert moved == {name for name in before
                    if router.placement[name] != before[name]}
    assert router.migrations == len(moved) > 0


def signals_for(nodes, queue_depth, busy):
    return {node.node_id: {"queue_depth_mean": queue_depth[node.node_id],
                           "busy_fraction": busy[node.node_id]}
            for node in nodes}


def test_router_watermark_migration_drains_hot_node():
    router = Router("least_loaded", migrate_watermark=8.0)
    shares, nodes = make_shares(), make_nodes(2)
    router.place(shares, nodes)
    hot = router.placement[shares[0].tenant.name]
    cold = 1 - hot
    moved = router.rebalance(
        signals_for(nodes, queue_depth={hot: 20.0, cold: 0.5},
                    busy={hot: 1.0, cold: 0.2}),
        shares, nodes)
    assert len(moved) == 1
    victim = next(iter(moved))
    # The victim was the hot node's largest-load tenant; it is now cold-side.
    hot_shares = [s for s in shares if s.tenant.name == victim
                  or router.placement[s.tenant.name] == hot]
    assert all(s.load_proxy() <= next(sh.load_proxy() for sh in shares
                                      if sh.tenant.name == victim)
               for s in hot_shares)
    assert router.placement[victim] == cold
    assert router.migrations == 1


def test_router_holds_migration_when_no_cool_target():
    router = Router("least_loaded", migrate_watermark=8.0)
    shares, nodes = make_shares(), make_nodes(2)
    router.place(shares, nodes)
    before = dict(router.placement)
    moved = router.rebalance(
        signals_for(nodes, queue_depth={0: 20.0, 1: 30.0},
                    busy={0: 1.0, 1: 1.0}),
        shares, nodes)
    # Both nodes above watermark: migrating would just reshuffle the pain.
    assert moved == set() and router.placement == before


# --------------------------------------------------------------------------- #
# Autoscaler
# --------------------------------------------------------------------------- #
def autoscaler(enabled=True, **kwargs):
    kwargs.setdefault("cooldown_epochs", 0)
    config = AutoscalerConfig(enabled=enabled, min_nodes=1, max_nodes=4,
                              **kwargs)
    return Autoscaler(config, NodeSpec(node_id=3))


def sig(submitted=100, shed=0, queue=0.0, busy=0.5):
    return {"submitted": submitted, "shed": shed,
            "queue_depth_mean": queue, "busy_fraction": busy}


def test_autoscaler_decisions():
    scaler = autoscaler()
    assert scaler.decide({0: sig(shed=10)}) == 1          # shedding -> grow
    assert scaler.decide({0: sig(queue=9.0)}) == 1        # deep queue -> grow
    assert scaler.decide({0: sig(busy=0.1)}) == -1        # idle -> shrink
    assert scaler.decide({0: sig(busy=0.6)}) == 0         # steady -> hold
    assert autoscaler(enabled=False).decide({0: sig(shed=50)}) == 0


def test_autoscaler_cooldown_suppresses_flapping():
    scaler = autoscaler(cooldown_epochs=2)
    nodes = make_nodes(2)
    grown = scaler.apply(1, nodes, {n.node_id: sig() for n in nodes}, epoch=0)
    assert len(grown) == 3
    assert scaler.decide({0: sig(shed=10)}) == 0  # cooling down
    assert scaler.decide({0: sig(shed=10)}) == 0
    assert scaler.decide({0: sig(shed=10)}) == 1  # cooldown expired


def test_autoscaler_grow_and_shrink_nodes_respect_bounds():
    scaler = autoscaler()
    nodes = make_nodes(4)
    signals = {n.node_id: sig() for n in nodes}
    assert scaler.apply(1, nodes, signals, epoch=0) is None  # at max_nodes
    grown = scaler.apply(1, make_nodes(2), signals, epoch=0)
    assert [n.node_id for n in grown] == [0, 1, 4]  # fresh id, not reused
    one = make_nodes(1)
    assert scaler.apply(-1, one, {0: sig(busy=0.1)}, epoch=1) is None
    signals = {0: sig(busy=0.9), 1: sig(busy=0.05)}
    shrunk = scaler.apply(-1, make_nodes(2), signals, epoch=1)
    assert [n.node_id for n in shrunk] == [0]  # least-busy node drained
    assert [e["action"] for e in scaler.events] == ["grow", "shrink"]


def test_autoscaler_fabrics_mode_resizes_in_place():
    scaler = Autoscaler(AutoscalerConfig(enabled=True, mode="fabrics",
                                         max_fabrics=2, cooldown_epochs=0),
                        NodeSpec(node_id=1))
    nodes = make_nodes(2)
    signals = {0: sig(queue=5.0), 1: sig(queue=0.1)}
    grown = scaler.apply(1, nodes, signals, epoch=0)
    assert [n.fabrics for n in grown] == [2, 1]  # most-queued node grew
    capped = scaler.apply(1, [NodeSpec(node_id=0, fabrics=2),
                              NodeSpec(node_id=1, fabrics=2)], signals, epoch=1)
    assert capped is None  # every node at max_fabrics
    shrunk = scaler.apply(-1, grown, {0: sig(busy=0.1), 1: sig(busy=0.9)},
                          epoch=2)
    assert [n.fabrics for n in shrunk] == [1, 1]


# --------------------------------------------------------------------------- #
# Node simulation and migration cost
# --------------------------------------------------------------------------- #
def test_simulate_node_report_is_deterministic_and_complete():
    node = NodeSpec(node_id=0, fabrics=1)
    shares = make_shares(FLEET_TENANTS[:2], rate_rps=60_000.0)
    kwargs = dict(node=node, shares=shares, policy="fcfs",
                  epoch_ns=200_000.0, epoch=0, seed=2023)
    report = simulate_node(**kwargs)
    assert report == simulate_node(**kwargs)
    assert report != simulate_node(**{**kwargs, "seed": 2024})
    assert report["submitted"] > 0
    assert set(report["tenants"]) == {s.tenant.name for s in shares}
    assert 0.0 < report["busy_fraction"] <= 1.0
    assert report["migrations"] == 0 and report["migration_stall_ns"] == 0.0
    json.dumps(report)  # picklable/serializable: plain data only


def test_migration_stall_charges_programming_plus_state_transfer():
    sim = Simulator()
    config = ServeConfig(accelerators=("popcount",))
    scheduler = FabricScheduler(sim, config)
    bitstream = scheduler.accelerators["popcount"].bitstream
    bits_per_cycle = config.control_hub.programming_bits_per_cycle
    expected_program_ns = -(-bitstream.config_bits // bits_per_cycle) * 1.0
    stall = migration_stall_ns(scheduler, "popcount", system_mhz=1000.0,
                               state_transfer_ns=25_000.0)
    assert stall == pytest.approx(expected_program_ns + 25_000.0)
    # Faster system clock programs faster; the state transfer is fixed.
    faster = migration_stall_ns(scheduler, "popcount", system_mhz=2000.0,
                                state_transfer_ns=25_000.0)
    assert faster == pytest.approx(expected_program_ns / 2 + 25_000.0)


def test_migrated_tenant_pays_the_blackout():
    node = NodeSpec(node_id=0)
    tenant = FLEET_TENANTS[0]
    kwargs = dict(node=node, policy="fcfs", epoch_ns=400_000.0, epoch=0,
                  seed=2023)
    settled = simulate_node(
        shares=(TenantShare(tenant=tenant, rate_rps=100_000.0),), **kwargs)
    migrated = simulate_node(
        shares=(TenantShare(tenant=tenant, rate_rps=100_000.0, migrated=True),),
        **kwargs)
    assert migrated["migrations"] == 1
    assert migrated["migration_stall_ns"] > 25_000.0
    # Requests that would have arrived during the blackout never get served.
    assert migrated["submitted"] < settled["submitted"]


def test_blackout_swallowing_the_whole_epoch_keeps_the_tenant_row():
    """Regression: a migration blackout longer than the epoch leaves the
    tenant with zero submissions — it must still report a zeroed account
    (the monitor pre-registers every placed share), and a closed-loop
    tenant's clients must terminate instead of idling past the epoch."""
    node = NodeSpec(node_id=0)
    tenants = (FLEET_TENANTS[0],
               TenantSpec(name="closedloop", accelerator="popcount",
                          pattern="closed", clients=2, think_ns=5_000.0))
    shares = tuple(TenantShare(tenant=t, rate_rps=100_000.0, migrated=True)
                   for t in tenants)
    report = simulate_node(node=node, shares=shares, policy="fcfs",
                           epoch_ns=50_000.0, epoch=0, seed=2023,
                           state_transfer_ns=80_000.0)
    assert set(report["tenants"]) == {t.name for t in tenants}
    for name, account in report["tenants"].items():
        assert account["submitted"] == 0, name
        assert account["completed"] == 0, name
    assert report["migration_stall_ns"] > 2 * 80_000.0


# --------------------------------------------------------------------------- #
# The cluster driver: deterministic merge, serial == process
# --------------------------------------------------------------------------- #
def run_small_fleet(node_executor="serial", workers=None, seed=2023,
                    autoscale=False, placement="least_loaded"):
    config = FleetConfig(
        nodes=3, placement=placement, epochs=3, epoch_us=300.0,
        migrate_watermark=2.0,
        autoscaler=AutoscalerConfig(enabled=autoscale, min_nodes=1,
                                    max_nodes=3, up_queue_depth=0.75,
                                    cooldown_epochs=0),
        node_executor=node_executor, workers=workers)
    return run_fleet(config, FLEET_TENANTS, total_rate_rps=300_000.0,
                     rate_profile=(0.5, 1.0, 0.5), seed=seed)


def test_run_fleet_process_rows_are_bit_identical_to_serial():
    serial = run_small_fleet("serial")
    process = run_small_fleet("process", workers=2)
    assert serial.rows == process.rows
    assert serial.elapsed_ns == process.elapsed_ns
    # Reports are collected in submission (node id) order per epoch, so the
    # raw report streams agree too — not just the merged rows.
    assert ([(r["epoch"], r["node_id"]) for r in process.reports]
            == [(r["epoch"], r["node_id"]) for r in serial.reports])


def test_run_fleet_autoscaled_process_matches_serial():
    # Control decisions feed back into later epochs; the merge must still
    # be executor-independent when the node set changes mid-run.
    serial = run_small_fleet("serial", autoscale=True)
    process = run_small_fleet("process", workers=3, autoscale=True)
    assert serial.rows == process.rows
    assert serial.autoscaler.events == process.autoscaler.events
    assert serial.router.placement == process.router.placement


def test_run_fleet_is_seeded_and_validates_inputs():
    assert run_small_fleet(seed=2023).rows == run_small_fleet(seed=2023).rows
    assert run_small_fleet(seed=2023).rows != run_small_fleet(seed=9).rows
    config = FleetConfig(nodes=2, epochs=2)
    with pytest.raises(ValueError, match="tenant"):
        run_fleet(config, (), total_rate_rps=1000.0)
    with pytest.raises(ValueError, match="rate"):
        run_fleet(config, FLEET_TENANTS, total_rate_rps=0.0)
    with pytest.raises(ValueError, match="rate_profile"):
        run_fleet(config, FLEET_TENANTS, total_rate_rps=1000.0,
                  rate_profile=(1.0,))


def test_fleet_rows_are_pythonhashseed_independent():
    """Placement and RNG streams use CRC-32/arithmetic mixing only, so two
    interpreters with different string-hash randomization agree bit for bit."""
    script = (
        "import json, sys\n"
        "from repro.fleet.experiments import fleet_scaling_cell\n"
        "rows = fleet_scaling_cell('affinity', 2, False, epochs=2,\n"
        "                          epoch_us=200.0)\n"
        "json.dump(rows, sys.stdout, sort_keys=True)\n"
    )
    outputs = []
    for hashseed in ("0", "1", "31337"):
        env = dict(os.environ,
                   PYTHONPATH=os.path.join(REPO_ROOT, "src"),
                   PYTHONHASHSEED=hashseed)
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True, env=env,
                              cwd=REPO_ROOT, timeout=300)
        assert proc.returncode == 0, proc.stderr
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1] == outputs[2]


def test_migration_accounting_rolls_up_into_rows():
    # A tight watermark on a deliberately imbalanced placement forces
    # watermark migrations; their stalls must surface in the merged rows.
    outcome = run_small_fleet(placement="hash")
    aggregate = aggregate_row(outcome.rows)
    assert aggregate["migrations"] == sum(r["migrations"]
                                          for r in outcome.reports)
    if aggregate["migrations"] > 0:
        assert aggregate["migration_stall_us"] > 0.0
    assert outcome.router.migrations >= aggregate["migrations"]


# --------------------------------------------------------------------------- #
# The fleet_scaling experiment: registration and acceptance pins
# --------------------------------------------------------------------------- #
def test_fleet_scaling_is_registered_with_full_grid():
    from repro.api.registry import get_experiment

    spec = get_experiment("fleet_scaling")
    assert spec.num_cells() == 3 * 3 * 2  # placement x nodes x autoscale
    assert "fleet" in spec.tags


def test_fleet_scaling_cell_rows_are_deterministic():
    kwargs = dict(placement="affinity", nodes=2, autoscale=False, epochs=2)
    assert fleet_scaling_cell(**kwargs) == fleet_scaling_cell(**kwargs)


def test_pinned_affinity_beats_hash_on_p99_at_equal_nodes():
    """The acceptance pin: at 4 static nodes, bitstream-affinity placement
    beats consistent-hash sharding on cluster p99 (hash mixes accelerators
    per node and thrashes on reconfiguration) without giving up goodput."""
    hash_row = aggregate_row(fleet_scaling_cell("hash", 4, False))
    affinity = aggregate_row(fleet_scaling_cell("affinity", 4, False))
    assert affinity["p99_latency_us"] < 0.5 * hash_row["p99_latency_us"]
    assert affinity["goodput_krps"] > 0.8 * hash_row["goodput_krps"]
    assert affinity["reconfigurations"] < hash_row["reconfigurations"]


def test_pinned_autoscaler_matches_static_goodput_at_lower_cost():
    """The second pin: over the ramp profile, the autoscaled fleet keeps
    >= 90% of the static fleet's goodput while spending fewer cost-weighted
    node-microseconds."""
    static = aggregate_row(fleet_scaling_cell("affinity", 4, False))
    scaled = aggregate_row(fleet_scaling_cell("affinity", 4, True))
    assert scaled["goodput_krps"] >= 0.9 * static["goodput_krps"]
    assert scaled["node_us"] < 0.9 * static["node_us"]
    assert scaled["scale_events"] > 0
    assert scaled["nodes_max"] <= 4


def test_fleet_scaling_summary_reports_pins_and_pareto():
    rows = []
    for placement in ("hash", "affinity"):
        for autoscale in (False, True):
            rows.extend(fleet_scaling_cell(placement, 4, autoscale))
    summary = fleet_scaling_summary(rows)
    assert summary["affinity_p99_vs_hash[4n]"] < 1.0
    assert summary["autoscale_node_us_vs_static[affinity@4n]"] < 1.0
    assert summary["autoscale_goodput_vs_static[affinity@4n]"] >= 0.9
    assert summary["pareto_front"]


def test_pareto_front_drops_dominated_points():
    rows = [
        {"placement": "a", "nodes": 2, "autoscale": False,
         "node_us": 100.0, "p99_latency_us": 50.0, "goodput_krps": 10.0},
        {"placement": "b", "nodes": 2, "autoscale": False,
         "node_us": 100.0, "p99_latency_us": 60.0, "goodput_krps": 9.0},
        {"placement": "c", "nodes": 4, "autoscale": False,
         "node_us": 200.0, "p99_latency_us": 10.0, "goodput_krps": 12.0},
    ]
    front = pareto_front(rows)
    assert [row["placement"] for row in front] == ["a", "c"]


def test_default_rate_profile_ramps_up_and_down():
    assert max(DEFAULT_RATE_PROFILE) == 1.0
    assert DEFAULT_RATE_PROFILE[0] < 1.0
    assert DEFAULT_RATE_PROFILE[-1] < 1.0


def test_fleet_tenant_weights_are_normalized():
    assert sum(t.weight for t in FLEET_TENANTS) == pytest.approx(1.0)
    assert len({t.name for t in FLEET_TENANTS}) == len(FLEET_TENANTS)
