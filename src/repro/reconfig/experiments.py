"""The ``reconfig`` experiment: regions x policy x tenant mix x scale.

Sweeps the region-grid size (1 = the whole-fabric baseline), scheduling
policy, tenant mix and grid provisioning scale, reporting the
reconfiguration-overhead fraction, fragmentation, eviction counts and the
usual tail-latency/goodput columns.  The summary normalizes every
region-granular point against the whole-fabric baseline of the same
policy/mix — the pinned acceptance is ``affinity`` on ``duo`` with 4
regions at scale 1: overhead <= 0.5x and p99 <= 0.8x of whole-fabric.

Cells are module-level and seed-deterministic (picklable for the
process-pool executor).  This module must not import anything from
:mod:`repro.api` — the registry imports *us*.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.serve.experiments import DEFAULT_SEED, run_serve

#: Region columns merged into every row so the sweep table is rectangular
#: (``run_serve`` itself only emits them when regions > 1 — the default-off
#: contract pins regions=1 rows to the pre-region golden shape).
_REGION_DEFAULTS: Dict[str, Any] = {
    "regions": 1,
    "region_capacity_tiles": 0,
    "region_programmings": 0,
    "regions_programmed": 0,
    "region_evictions": 0,
    "fragmentation_mean": 0.0,
}


def reconfig_cell(regions: int, policy: str, tenant_mix: str,
                  fabric_scale: float = 1.0,
                  arrival_rate_krps: float = 250.0,
                  duration_us: float = 2_000.0,
                  queue_capacity: int = 64,
                  patience_ns: float = 100_000.0,
                  seed: int = DEFAULT_SEED) -> List[Dict[str, Any]]:
    outcome = run_serve(
        policy, tenant_mix=tenant_mix, arrival_rate_krps=arrival_rate_krps,
        duration_us=duration_us, num_fabrics=1,
        queue_capacity=queue_capacity, patience_ns=patience_ns, seed=seed,
        regions=regions, region_fabric_scale=fabric_scale,
    )
    rows = outcome["rows"]
    for row in rows:
        for column, default in _REGION_DEFAULTS.items():
            row.setdefault(column, default)
        row["region_fabric_scale"] = fabric_scale
    return rows


def reconfig_summary(rows: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Normalize each region-granular point against its whole-fabric twin."""
    aggregates = [row for row in rows if row.get("tenant") == "__all__"]
    baselines = {
        (row["policy"], row["tenant_mix"]): row
        for row in aggregates
        if row["regions"] == 1 and row["region_fabric_scale"] == 1.0
    }
    summary: Dict[str, Any] = {}
    for row in sorted(
            (row for row in aggregates if row["regions"] > 1),
            key=lambda row: (row["policy"], row["tenant_mix"],
                             row["regions"], row["region_fabric_scale"])):
        base = baselines.get((row["policy"], row["tenant_mix"]))
        if base is None:
            continue
        label = (f"{row['policy']}/{row['tenant_mix']}"
                 f"@{row['regions']}r/s{row['region_fabric_scale']:g}")
        if base["reconfig_overhead"] > 0:
            summary[f"overhead_vs_whole[{label}]"] = (
                row["reconfig_overhead"] / base["reconfig_overhead"])
        if base["p99_latency_us"] > 0:
            summary[f"p99_vs_whole[{label}]"] = (
                row["p99_latency_us"] / base["p99_latency_us"])
        if base["goodput_krps"] > 0:
            summary[f"goodput_vs_whole[{label}]"] = (
                row["goodput_krps"] / base["goodput_krps"])
        summary[f"evictions[{label}]"] = row["region_evictions"]
        summary[f"fragmentation[{label}]"] = row["fragmentation_mean"]
    return summary
