#!/usr/bin/env python3
"""Enforce per-package line-coverage floors from a pytest-cov JSON report.

The CI ``coverage`` job runs the tier-1 suite with ``pytest-cov`` (a
CI-only dependency; the floors were measured locally with a stdlib tracer
and committed with margin), writes ``coverage.json``, and this script
compares each package listed in ``COVERAGE_floor.json`` against its floor::

    python tools/check_coverage.py coverage.json COVERAGE_floor.json

A package's coverage is the statement-weighted aggregate over every file
under its path prefix.  Exits non-zero listing every package below floor —
the gate catches *coverage regressions* (a new untested subsystem riding
into ``repro.serve``/``repro.fleet``/``repro.chaos``), not absolute
quality; raise the floors when real coverage grows.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, Optional


def package_coverage(report: Dict, prefix: str) -> Optional[Dict[str, float]]:
    """Aggregate covered/total statements over files under ``prefix``."""
    covered = statements = 0
    for path, entry in report.get("files", {}).items():
        if path.replace("\\", "/").startswith(prefix):
            summary = entry["summary"]
            covered += summary["covered_lines"]
            statements += summary["num_statements"]
    if statements == 0:
        return None
    return {"covered": covered, "statements": statements,
            "percent": 100.0 * covered / statements}


def main(argv) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    with open(argv[1]) as handle:
        report = json.load(handle)
    with open(argv[2]) as handle:
        floors = json.load(handle)["floors"]

    failures = []
    for prefix in sorted(floors):
        floor = floors[prefix]
        stats = package_coverage(report, prefix)
        if stats is None:
            print(f"{prefix:24s} -- no files measured (floor {floor:.1f}%)")
            failures.append(f"{prefix}: no files in the coverage report")
            continue
        below = stats["percent"] < floor
        status = "BELOW FLOOR" if below else "OK"
        print(f"{prefix:24s} {stats['percent']:6.1f}% "
              f"({stats['covered']}/{stats['statements']} statements, "
              f"floor {floor:.1f}%)  {status}")
        if below:
            failures.append(
                f"{prefix}: {stats['percent']:.1f}% < floor {floor:.1f}%")
    if failures:
        print("\ncoverage floor violations:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
