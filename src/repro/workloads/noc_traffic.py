"""Synthetic NoC traffic for the topology scaling study (``noc_scaling``).

A standalone network (no cores, no caches) is driven with uniform-random
traffic: every node runs an injector process that sends fixed-size messages
to uniformly-random destinations with exponentially-distributed gaps whose
mean is set by ``injection_rate`` (messages per node per NoC cycle).  The
experiment reports *simulated-time* quantities — delivered throughput,
latency percentiles, link-wait time — so it measures the interconnect
model, not the host; wall-clock NoC speed is tracked separately by
``repro.perf.micro.noc_message_throughput``.

Everything is seeded and deterministic: per-node PRNGs derive from the
experiment seed, so a (topology, size, rate, seed) cell always reproduces
the same numbers, which is what lets the experiment runner cache results.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict

from repro.noc import NocMessage, NocNetwork, make_topology
from repro.sim import ClockDomain, Delay, Simulator

#: System (NoC) clock used by the scaling study, matching Sec. V-A's 1 GHz.
NOC_CLOCK_MHZ = 1000.0


@dataclass
class NocTrafficResult:
    """Aggregate statistics of one uniform-random traffic run."""

    topology: str
    nodes: int
    injection_rate: float
    messages: int
    sim_ns: float
    mean_latency_ns: float
    p95_latency_ns: float
    max_latency_ns: float
    mean_link_wait_ns: float
    delivered_per_node_per_cycle: float

    def as_row(self) -> Dict[str, float]:
        return {
            "topology": self.topology,
            "nodes": self.nodes,
            "injection_rate": self.injection_rate,
            "messages": self.messages,
            "sim_ns": self.sim_ns,
            "mean_latency_ns": self.mean_latency_ns,
            "p95_latency_ns": self.p95_latency_ns,
            "max_latency_ns": self.max_latency_ns,
            "mean_link_wait_ns": self.mean_link_wait_ns,
            "delivered_per_node_per_cycle": self.delivered_per_node_per_cycle,
        }


def run_uniform_traffic(
    topology: str,
    size: int,
    injection_rate: float,
    messages_per_node: int = 25,
    payload_bytes: int = 16,
    seed: int = 0,
) -> NocTrafficResult:
    """Drive ``size`` x ``size`` nodes of ``topology`` with random traffic.

    ``size`` is the linear dimension: mesh/torus build a ``size`` x ``size``
    grid, ring/crossbar the same ``size**2`` node count — so topologies are
    compared at equal scale.
    """
    if injection_rate <= 0:
        raise ValueError(f"injection rate must be positive, got {injection_rate}")
    sim = Simulator()
    domain = ClockDomain(sim, NOC_CLOCK_MHZ, "noc")
    network = NocNetwork(sim, domain, topology=make_topology(topology, size, size))
    node_count = network.node_count
    for node in range(node_count):
        network.attach(node, lambda message: None)

    period = domain.period_ns
    mean_gap_cycles = 1.0 / injection_rate

    def injector(node: int):
        rng = random.Random((seed << 20) ^ (node * 2654435761 % 2**32))
        for _ in range(messages_per_node):
            yield Delay(rng.expovariate(1.0) * mean_gap_cycles * period)
            dst = rng.randrange(node_count)
            network.send(NocMessage(src=node, dst=dst, kind="traffic",
                                    size_bytes=payload_bytes))

    for node in range(node_count):
        sim.process(injector(node), name=f"inject{node}")
    sim.run()

    latency = network.stats.histogram("message_latency_ns")
    link_wait = network.stats.histogram("link_wait_ns")
    delivered = latency.count
    sim_ns = sim.now
    cycles = sim_ns / period if sim_ns else 0.0
    return NocTrafficResult(
        topology=topology,
        nodes=node_count,
        injection_rate=injection_rate,
        messages=delivered,
        sim_ns=sim_ns,
        mean_latency_ns=latency.mean,
        p95_latency_ns=latency.percentile(0.95),
        max_latency_ns=latency.maximum,
        mean_link_wait_ns=link_wait.mean,
        delivered_per_node_per_cycle=(delivered / (node_count * cycles)
                                      if cycles else 0.0),
    )
