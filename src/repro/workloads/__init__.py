"""Software workloads: baselines, accelerated drivers and microbenchmarks.

Each application module provides ``run(kind, params)`` returning a
:class:`~repro.workloads.common.BenchmarkResult`, where ``kind`` selects the
processor-only baseline, the FPSoC-like baseline or Duet — the three systems
compared in Fig. 12.  :mod:`repro.workloads.synthetic` implements the
latency / bandwidth / scalability microbenchmarks of Sec. V-C (Figs. 9-11).
"""

from repro.workloads.common import BenchmarkResult, WorkloadParams

__all__ = [
    "BenchmarkResult",
    "WorkloadParams",
]
