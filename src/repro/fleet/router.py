"""The fleet's front tier: tenant→node placement and migration.

The :class:`Router` owns the tenant→node map.  Three placement policies
ship (:data:`PLACEMENT_KINDS`):

* ``hash`` — consistent-hash sharding: nodes project ``VIRTUAL_POINTS``
  CRC-32 points onto a ring and a tenant lands on the first point at or
  after its own CRC-32 key.  No load information, but node arrivals and
  departures move only the tenants whose arc changed — the cheapest policy
  under autoscaling.
* ``least_loaded`` — greedy balanced sharding: tenants in descending
  offered-load order, each onto the node with the least accumulated load
  per fabric.  Ignores bitstream identity, so a node typically hosts a mix
  of accelerators and pays reconfiguration to serve them.
* ``affinity`` — bitstream-affinity-aware sharding: tenants are grouped by
  accelerator and whole groups placed least-loaded-first, minimizing the
  number of distinct bitstreams per node — the cluster-level analogue of
  the PR 5 reconfiguration-affinity scheduling policy, and the reason the
  ``fleet_scaling`` pareto front bends (see ``docs/fleet.md``).

Placements are recomputed when the node set changes (autoscaling); between
scale events the router performs *watermark migration*: when a node's
queue-depth :class:`~repro.sim.stats.TimeSeries` sustained a time-weighted
mean above ``migrate_watermark`` over the last epoch, its largest-load
tenant is re-placed onto the least-busy node.  The moved tenant pays the
migration cost on arrival (see :func:`repro.fleet.node.migration_stall_ns`).

Everything is CRC-32/arithmetic — no ``hash()`` — so placement is
bit-identical across machines and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Sequence, Set, Tuple

from repro.fleet.node import NodeSpec, TenantShare

PLACEMENT_KINDS: Tuple[str, ...] = ("hash", "least_loaded", "affinity")

#: Virtual points per node on the consistent-hash ring; enough that two
#: hash-adjacent nodes split tenant arcs roughly evenly.
VIRTUAL_POINTS = 64


class PlacementPolicy:
    """Maps tenant shares onto nodes; pure function of its arguments."""

    kind = "hash"

    def place(self, shares: Sequence[TenantShare],
              nodes: Sequence[NodeSpec]) -> Dict[str, int]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class HashPlacement(PlacementPolicy):
    """Consistent-hash tenant sharding over a CRC-32 ring."""

    kind = "hash"

    @staticmethod
    def _ring(nodes: Sequence[NodeSpec]) -> List[Tuple[int, int]]:
        points = []
        for node in nodes:
            for virtual in range(VIRTUAL_POINTS * node.fabrics):
                key = zlib.crc32(f"node:{node.node_id}:v:{virtual}".encode())
                points.append((key, node.node_id))
        points.sort()
        return points

    def place(self, shares: Sequence[TenantShare],
              nodes: Sequence[NodeSpec]) -> Dict[str, int]:
        ring = self._ring(nodes)
        placement = {}
        for share in shares:
            key = zlib.crc32(share.tenant.name.encode())
            # First ring point at or after the tenant's key, wrapping.
            chosen = ring[0][1]
            for point, node_id in ring:
                if point >= key:
                    chosen = node_id
                    break
            placement[share.tenant.name] = chosen
        return placement


class LeastLoadedPlacement(PlacementPolicy):
    """Greedy balance by offered load, normalized per fabric."""

    kind = "least_loaded"

    def place(self, shares: Sequence[TenantShare],
              nodes: Sequence[NodeSpec]) -> Dict[str, int]:
        loads = {node.node_id: 0.0 for node in nodes}
        fabrics = {node.node_id: node.fabrics for node in nodes}
        placement = {}
        ordered = sorted(shares, key=lambda s: (-s.load_proxy(), s.tenant.name))
        for share in ordered:
            target = min(loads, key=lambda nid: (loads[nid] / fabrics[nid], nid))
            placement[share.tenant.name] = target
            loads[target] += share.load_proxy()
        return placement


class AffinityPlacement(PlacementPolicy):
    """Group tenants by accelerator; place whole groups least-loaded-first.

    Minimizing distinct bitstreams per node minimizes reconfiguration —
    the dominant serving overhead (~70% of FCFS busy time in the PR 5
    acceptance pin).
    """

    kind = "affinity"

    def place(self, shares: Sequence[TenantShare],
              nodes: Sequence[NodeSpec]) -> Dict[str, int]:
        groups: Dict[str, List[TenantShare]] = {}
        for share in shares:
            groups.setdefault(share.tenant.accelerator, []).append(share)
        loads = {node.node_id: 0.0 for node in nodes}
        fabrics = {node.node_id: node.fabrics for node in nodes}
        placement = {}
        ordered = sorted(
            groups.items(),
            key=lambda item: (-sum(s.load_proxy() for s in item[1]), item[0]))
        for _accelerator, members in ordered:
            target = min(loads, key=lambda nid: (loads[nid] / fabrics[nid], nid))
            for share in members:
                placement[share.tenant.name] = target
            loads[target] += sum(share.load_proxy() for share in members)
        return placement


def make_placement(kind: str) -> PlacementPolicy:
    if kind == "hash":
        return HashPlacement()
    if kind == "least_loaded":
        return LeastLoadedPlacement()
    if kind == "affinity":
        return AffinityPlacement()
    known = ", ".join(PLACEMENT_KINDS)
    raise ValueError(f"unknown placement policy {kind!r}; known policies: {known}")


class Router:
    """Front-tier state: the tenant→node map plus migration bookkeeping."""

    def __init__(self, placement: str, migrate_watermark: float = 8.0) -> None:
        if migrate_watermark <= 0:
            raise ValueError(
                f"migrate_watermark must be positive, got {migrate_watermark}")
        self.policy = make_placement(placement)
        self.migrate_watermark = migrate_watermark
        self.placement: Dict[str, int] = {}
        self.migrations = 0

    # ------------------------------------------------------------------ #
    def place(self, shares: Sequence[TenantShare],
              nodes: Sequence[NodeSpec]) -> Set[str]:
        """(Re)compute the full placement; returns tenants that moved.

        Called initially and after every node-set change.  The first call
        moves nobody (there is no previous node to migrate from).
        """
        fresh = self.policy.place(shares, nodes)
        moved = {name for name, node_id in fresh.items()
                 if self.placement and self.placement.get(name) != node_id}
        self.migrations += len(moved)
        self.placement = fresh
        return moved

    def rebalance(self, signals: Dict[int, Dict[str, float]],
                  shares: Sequence[TenantShare],
                  nodes: Sequence[NodeSpec]) -> Set[str]:
        """Watermark migration: drain one tenant off each sustained-hot node.

        ``signals`` maps node_id → the node's last epoch report (the fields
        used here: ``queue_depth_mean``, ``busy_fraction``).  Hot nodes are
        handled hottest-first; each moves its largest-load tenant to the
        least-busy node.  Returns the set of migrated tenant names.
        """
        by_node: Dict[int, List[TenantShare]] = {}
        for share in shares:
            node_id = self.placement.get(share.tenant.name)
            if node_id is not None:
                by_node.setdefault(node_id, []).append(share)
        active = {node.node_id for node in nodes}
        hot = sorted(
            (node_id for node_id, sig in signals.items()
             if node_id in active
             and sig["queue_depth_mean"] > self.migrate_watermark
             and len(by_node.get(node_id, ())) > 1),
            key=lambda nid: (-signals[nid]["queue_depth_mean"], nid))
        moved: Set[str] = set()
        for node_id in hot:
            targets = [nid for nid in active if nid != node_id and nid in signals]
            if not targets:
                break
            target = min(targets,
                         key=lambda nid: (signals[nid]["busy_fraction"], nid))
            if signals[target]["queue_depth_mean"] > self.migrate_watermark:
                continue  # nowhere cool enough to absorb the tenant
            victim = max(by_node[node_id],
                         key=lambda s: (s.load_proxy(), s.tenant.name))
            self.placement[victim.tenant.name] = target
            by_node[node_id].remove(victim)
            by_node.setdefault(target, []).append(victim)
            moved.add(victim.tenant.name)
        self.migrations += len(moved)
        return moved
