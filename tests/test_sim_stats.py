"""Unit tests for the statistics helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import ClockDomain, Counter, Histogram, Simulator, StatSet, TimeSeries
from repro.sim.stats import geometric_mean


def test_counter_increment_and_reset():
    counter = Counter("hits")
    counter.increment()
    counter.increment(4)
    assert counter.value == 5
    counter.reset()
    assert counter.value == 0


def test_histogram_summary_statistics():
    histogram = Histogram("latency")
    for value in [1.0, 2.0, 3.0, 4.0]:
        histogram.record(value)
    assert histogram.count == 4
    assert histogram.mean == pytest.approx(2.5)
    assert histogram.minimum == 1.0
    assert histogram.maximum == 4.0
    assert histogram.total == pytest.approx(10.0)


def test_histogram_percentile_nearest_rank():
    histogram = Histogram("latency")
    for value in range(1, 101):
        histogram.record(float(value))
    assert histogram.percentile(0.5) == 50.0
    assert histogram.percentile(0.99) == 99.0
    assert histogram.percentile(1.0) == 100.0


def test_empty_histogram_is_safe():
    histogram = Histogram("empty")
    assert histogram.mean == 0.0
    assert histogram.percentile(0.5) == 0.0
    assert histogram.count == 0
    assert histogram.total == 0.0
    assert histogram.minimum == 0.0
    assert histogram.maximum == 0.0


def test_single_sample_percentiles_are_that_sample():
    histogram = Histogram("one")
    histogram.record(42.0)
    for fraction in (0.0, 0.01, 0.5, 0.99, 1.0):
        assert histogram.percentile(fraction) == 42.0
    assert histogram.minimum == histogram.maximum == histogram.mean == 42.0


def test_histogram_reset_then_reuse_reports_fresh_statistics():
    histogram = Histogram("reuse")
    histogram.record(100.0)
    histogram.reset()
    histogram.record(2.0)
    assert histogram.count == 1
    assert histogram.mean == 2.0
    assert histogram.maximum == 2.0


def test_stat_reset_after_clock_retune_starts_clean():
    """The governor pattern: retune a ClockDomain mid-run, reset the stats,
    and keep recording — old samples must not bleed into the new regime."""
    sim = Simulator()
    domain = ClockDomain(sim, 100.0, "dvfs")
    stats = StatSet("retune")
    stats.histogram("period_ns").record(domain.period_ns)
    assert stats.histogram("period_ns").mean == pytest.approx(10.0)
    domain.freq_mhz = 400.0  # the retune path (also invalidates edge cache)
    stats.reset()
    stats.histogram("period_ns").record(domain.period_ns)
    histogram = stats.histogram("period_ns")
    assert histogram.count == 1
    assert histogram.mean == pytest.approx(2.5)
    # The retuned domain produces edges on the new period.
    first = domain.next_edge(0.1)
    assert domain.next_edge(first + 0.1) - first == pytest.approx(2.5)


# --------------------------------------------------------------------------- #
# TimeSeries (the power traces)
# --------------------------------------------------------------------------- #
def test_time_series_records_in_order_and_summarizes():
    series = TimeSeries("power_mw")
    assert series.count == 0 and series.last == 0.0 and series.mean == 0.0
    series.record(10.0, 2.0)
    series.record(20.0, 4.0)
    series.record(40.0, 1.0)
    assert series.count == 3
    assert series.last == 1.0
    assert series.mean == pytest.approx(7.0 / 3.0)
    assert series.as_pairs() == [(10.0, 2.0), (20.0, 4.0), (40.0, 1.0)]


def test_time_series_time_weighted_mean_weights_by_interval():
    series = TimeSeries("power_mw")
    series.record(0.0, 0.0)
    series.record(10.0, 4.0)   # covers 10 ns
    series.record(40.0, 1.0)   # covers 30 ns
    assert series.time_weighted_mean() == pytest.approx((4.0 * 10 + 1.0 * 30) / 40)
    # Degrades to the plain mean without interval information.
    single = TimeSeries("one")
    single.record(5.0, 3.0)
    assert single.time_weighted_mean() == 3.0
    assert TimeSeries("none").time_weighted_mean() == 0.0


def test_time_series_rejects_out_of_order_samples():
    series = TimeSeries("t")
    series.record(10.0, 1.0)
    with pytest.raises(ValueError, match="earlier than"):
        series.record(5.0, 2.0)
    # Equal timestamps are fine (two epochs may close at one instant).
    series.record(10.0, 3.0)


def test_statset_series_lazily_created_reset_and_merged():
    stats = StatSet("s")
    stats.series("trace").record(1.0, 5.0)
    other = StatSet("o")
    other.series("trace").record(2.0, 7.0)
    other.series("fresh").record(0.5, 1.0)
    stats.merge(other)
    assert stats.series("trace").as_pairs() == [(1.0, 5.0), (2.0, 7.0)]
    assert stats.series("fresh").count == 1
    flat = stats.as_dict()
    assert flat["trace.count"] == 2
    assert flat["trace.mean"] == pytest.approx(6.0)
    stats.reset()
    assert stats.series("trace").count == 0
    assert "trace" in stats.serieses()


def test_statset_rejects_histogram_series_name_collisions():
    """Histograms and series flatten into the same `{name}.mean/.count`
    keys, so one name cannot be both kinds."""
    stats = StatSet("collide")
    stats.histogram("power_mw")
    with pytest.raises(ValueError, match="already a histogram"):
        stats.series("power_mw")
    stats.series("trace")
    with pytest.raises(ValueError, match="already a time series"):
        stats.histogram("trace")


def test_statset_merge_interleaves_overlapping_series():
    """Two subsystems' traces of the same run overlap in time; merging must
    interleave by timestamp (self first on ties), not crash on ordering."""
    a = StatSet("a")
    a.series("power").record(10.0, 1.0)
    a.series("power").record(30.0, 3.0)
    b = StatSet("b")
    b.series("power").record(5.0, 0.5)
    b.series("power").record(10.0, 9.0)
    b.series("power").record(20.0, 2.0)
    a.merge(b)
    merged = a.series("power")
    assert merged.times == [5.0, 10.0, 10.0, 20.0, 30.0]
    assert merged.values == [0.5, 1.0, 9.0, 2.0, 3.0]  # self first on the tie
    # The merged series still accepts in-order appends.
    merged.record(40.0, 4.0)
    assert merged.last == 4.0


def test_statset_lazily_creates_and_flattens():
    stats = StatSet("cache")
    stats.counter("hits").increment(3)
    stats.histogram("latency").record(7.0)
    flat = stats.as_dict()
    assert flat["hits"] == 3
    assert flat["latency.mean"] == pytest.approx(7.0)
    assert flat["latency.count"] == 1


def test_statset_merge_accumulates():
    a = StatSet("a")
    b = StatSet("b")
    a.counter("hits").increment(2)
    b.counter("hits").increment(5)
    b.histogram("latency").record(1.0)
    a.merge(b)
    assert a.counter("hits").value == 7
    assert a.histogram("latency").count == 1


def test_statset_reset_clears_everything():
    stats = StatSet()
    stats.counter("x").increment(9)
    stats.histogram("y").record(1.0)
    stats.reset()
    assert stats.counter("x").value == 0
    assert stats.histogram("y").count == 0


def test_geometric_mean_known_values():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    assert geometric_mean([]) == 0.0


def test_geometric_mean_rejects_nonpositive():
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])


@given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=20))
def test_geometric_mean_between_min_and_max(values):
    mean = geometric_mean(values)
    assert min(values) - 1e-9 <= mean <= max(values) + 1e-9
