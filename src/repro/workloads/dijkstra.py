"""Dijkstra benchmark (Dolly-P1M1, fine-grained acceleration).

Single-source shortest paths on a random sparse graph stored in CSR form in
coherent memory.  The processor-only baseline runs the full algorithm in
software; the accelerated versions keep the priority-queue scan on the
processor and offload the per-vertex edge relaxation to the accelerator,
which runs behind a soft cache to exploit locality between consecutive
calls (Sec. V-D).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.accel.dijkstra import (
    DijkstraRelaxAccelerator,
    INFINITY,
    REG_COMMAND,
    REG_DIST_BASE,
    REG_EDGES_BASE,
    REG_ROWPTR_BASE,
    REG_UPDATED,
    STOP_COMMAND,
    pack_edge,
    register_layout,
)
from repro.core.soft_cache import SoftCacheConfig
from repro.platform.config import SystemKind
from repro.workloads.common import BenchmarkResult, WorkloadParams, build_benchmark_system, finalize_result

DEFAULT_VERTICES = 48
DEFAULT_DEGREE = 8
WORD_BYTES = 8
#: Software costs (instructions) in the baseline inner loops.  Relaxation is
#: floating-point in the reference C kernel (distance accumulation), which is
#: what makes it worth offloading despite its small size.
RELAX_OPS = 16
SCAN_OPS = 3


def _make_graph(vertices: int, degree: int, seed: int) -> List[List[Tuple[int, int]]]:
    """Random connected digraph as adjacency lists of (dst, weight)."""
    rng = random.Random(seed)
    adjacency: List[List[Tuple[int, int]]] = [[] for _ in range(vertices)]
    # A ring guarantees connectivity; extra random edges add shortcuts.
    for vertex in range(vertices):
        adjacency[vertex].append(((vertex + 1) % vertices, rng.randint(1, 9)))
        for _ in range(degree - 1):
            dst = rng.randrange(vertices)
            if dst != vertex:
                adjacency[vertex].append((dst, rng.randint(1, 20)))
    return adjacency


def _reference_distances(adjacency: List[List[Tuple[int, int]]], source: int = 0) -> List[int]:
    import heapq

    distances = [INFINITY] * len(adjacency)
    distances[source] = 0
    heap = [(0, source)]
    while heap:
        dist, vertex = heapq.heappop(heap)
        if dist > distances[vertex]:
            continue
        for dst, weight in adjacency[vertex]:
            candidate = dist + weight
            if candidate < distances[dst]:
                distances[dst] = candidate
                heapq.heappush(heap, (candidate, dst))
    return distances


def _layout_csr(system, adjacency) -> Dict[str, int]:
    """Store the graph in CSR form in simulated memory; returns base addresses."""
    vertices = len(adjacency)
    edges = sum(len(edges) for edges in adjacency)
    dist_base = system.memory.allocate((vertices + 1) * WORD_BYTES, align=64)
    rowptr_base = system.memory.allocate((vertices + 2) * WORD_BYTES, align=64)
    edges_base = system.memory.allocate((edges + 1) * WORD_BYTES, align=64)
    offset = 0
    for vertex, edge_list in enumerate(adjacency):
        system.memory.write_word(rowptr_base + vertex * WORD_BYTES, offset)
        for dst, weight in edge_list:
            system.memory.write_word(edges_base + offset * WORD_BYTES, pack_edge(dst, weight))
            offset += 1
    system.memory.write_word(rowptr_base + vertices * WORD_BYTES, offset)
    for vertex in range(vertices):
        system.memory.write_word(dist_base + vertex * WORD_BYTES, INFINITY)
    system.memory.write_word(dist_base, 0)
    return {"dist": dist_base, "rowptr": rowptr_base, "edges": edges_base,
            "vertices": vertices, "edge_count": offset}


def run_cpu(params: Optional[WorkloadParams] = None, vertices: int = DEFAULT_VERTICES,
            degree: int = DEFAULT_DEGREE) -> BenchmarkResult:
    params = params or WorkloadParams(num_processors=1)
    system = build_benchmark_system(SystemKind.CPU_ONLY, params)
    adjacency = _make_graph(vertices, degree, params.seed)
    layout = _layout_csr(system, adjacency)
    expected = _reference_distances(adjacency)
    system.warm_cache(0, layout["rowptr"], (vertices + 1) * WORD_BYTES)
    system.warm_cache(0, layout["edges"], layout["edge_count"] * WORD_BYTES)
    system.warm_cache(0, layout["dist"], vertices * WORD_BYTES, modified=True)

    def program(ctx):
        settled = [False] * vertices
        for _ in range(vertices):
            # Linear scan for the unsettled vertex with the smallest distance
            # (the array-based priority queue a bare-metal kernel would use).
            best, best_dist = -1, INFINITY + 1
            for vertex in range(vertices):
                yield from ctx.compute(SCAN_OPS)
                if settled[vertex]:
                    continue
                dist = yield from ctx.load(layout["dist"] + vertex * WORD_BYTES)
                if dist < best_dist:
                    best, best_dist = vertex, dist
            if best < 0 or best_dist >= INFINITY:
                break
            settled[best] = True
            start = yield from ctx.load(layout["rowptr"] + best * WORD_BYTES)
            end = yield from ctx.load(layout["rowptr"] + (best + 1) * WORD_BYTES)
            for edge_index in range(start, end):
                packed = yield from ctx.load(layout["edges"] + edge_index * WORD_BYTES)
                dst, weight = packed & 0xFFFF_FFFF, packed >> 32
                yield from ctx.compute(RELAX_OPS, fp=True)
                current = yield from ctx.load(layout["dist"] + dst * WORD_BYTES)
                if best_dist + weight < current:
                    yield from ctx.store(layout["dist"] + dst * WORD_BYTES, best_dist + weight)
        return True

    _, elapsed = system.run_single(program, max_events=150_000_000)
    measured = [system.memory.read_word(layout["dist"] + v * WORD_BYTES) for v in range(vertices)]
    return finalize_result(
        "dijkstra", SystemKind.CPU_ONLY, system, elapsed,
        correct=measured == expected, checksum=sum(measured),
    )


def run_accelerated(kind: SystemKind, params: Optional[WorkloadParams] = None,
                    vertices: int = DEFAULT_VERTICES, degree: int = DEFAULT_DEGREE) -> BenchmarkResult:
    params = params or WorkloadParams(num_processors=1, num_memory_hubs=1)
    system = build_benchmark_system(kind, params)
    accelerator = DijkstraRelaxAccelerator()
    synthesis = system.install_accelerator(
        accelerator,
        registers=register_layout(),
        fpga_mhz=params.fpga_mhz,
        soft_cache=SoftCacheConfig(size_bytes=8192, assoc=4) if kind is SystemKind.DUET else None,
    )
    system.start_accelerator()
    adapter = system.adapter
    adjacency = _make_graph(vertices, degree, params.seed)
    layout = _layout_csr(system, adjacency)
    expected = _reference_distances(adjacency)

    def program(ctx):
        yield from ctx.mmio_write(adapter.register_addr(REG_DIST_BASE), layout["dist"])
        yield from ctx.mmio_write(adapter.register_addr(REG_ROWPTR_BASE), layout["rowptr"])
        yield from ctx.mmio_write(adapter.register_addr(REG_EDGES_BASE), layout["edges"])
        settled = [False] * vertices
        for _ in range(vertices):
            best, best_dist = -1, INFINITY + 1
            for vertex in range(vertices):
                yield from ctx.compute(SCAN_OPS)
                if settled[vertex]:
                    continue
                dist = yield from ctx.load(layout["dist"] + vertex * WORD_BYTES)
                if dist < best_dist:
                    best, best_dist = vertex, dist
            if best < 0 or best_dist >= INFINITY:
                break
            settled[best] = True
            yield from ctx.mmio_write(adapter.register_addr(REG_COMMAND), best)
            yield from ctx.mmio_read(adapter.register_addr(REG_UPDATED))
        yield from ctx.mmio_write(adapter.register_addr(REG_COMMAND), STOP_COMMAND)
        return True

    _, elapsed = system.run_single(program, max_events=150_000_000)
    measured = [system.memory.read_word(layout["dist"] + v * WORD_BYTES) for v in range(vertices)]
    return finalize_result(
        "dijkstra", kind, system, elapsed,
        correct=measured == expected, checksum=sum(measured),
        efpga_area_mm2=synthesis.area_mm2,
        extra={"fmax_mhz": synthesis.fmax_mhz},
    )


def run(kind: SystemKind, params: Optional[WorkloadParams] = None,
        vertices: int = DEFAULT_VERTICES, degree: int = DEFAULT_DEGREE) -> BenchmarkResult:
    if kind is SystemKind.CPU_ONLY:
        return run_cpu(params, vertices, degree)
    return run_accelerated(kind, params, vertices, degree)
