"""The Duet Adapter — the paper's primary contribution.

A Duet Adapter turns an embedded FPGA into a first-class, cache-coherent
peer on the NoC without touching the processor design.  It is composed of:

* one or more :class:`MemoryHub` s, each with a hardware :class:`ProxyCache`
  (the hybrid cache-organization of Sec. II-C), an optional eFPGA-emulated
  :class:`SoftCache`, a :class:`Tlb` for virtualized accelerators, an
  :class:`ExceptionHandler` and :class:`FeatureSwitches`;
* one :class:`ControlHub` with the FPGA manager (programming engine,
  programmable clock generator) and the Soft Register Interface, augmented
  with the fast-clock-domain :class:`ShadowRegisterFile` of Sec. II-F;
* the :class:`DuetAdapter` that composes them and programs accelerators.

The FPSoC-like baseline of Sec. V (FPGA-side cache in the slow clock
domain, shadow registers downgraded to normal soft registers) is provided
by :class:`SlowCacheAgent` plus the ``downgrade_shadow`` switch of the
Control Hub, so the exact comparison of Figs. 9-12 can be reproduced.
"""

from repro.core.feature_switches import FeatureSwitches
from repro.core.exceptions import DuetError, ErrorCode, ExceptionHandler
from repro.core.tlb import PageFault, Tlb
from repro.core.proxy_cache import ProxyCache
from repro.core.slow_cache import SlowCacheAgent
from repro.core.soft_cache import SoftCache, SoftCacheConfig
from repro.core.memory_hub import HubMemoryPort, MemoryHub
from repro.core.registers import RegisterKind, RegisterLayout, RegisterSpec
from repro.core.shadow_registers import FpgaRegisterView, SoftRegisterInterface
from repro.core.control_hub import ControlHub, ControlHubConfig
from repro.core.adapter import AdapterConfig, DuetAdapter

__all__ = [
    "FeatureSwitches",
    "DuetError",
    "ErrorCode",
    "ExceptionHandler",
    "PageFault",
    "Tlb",
    "ProxyCache",
    "SlowCacheAgent",
    "SoftCache",
    "SoftCacheConfig",
    "MemoryHub",
    "HubMemoryPort",
    "RegisterKind",
    "RegisterSpec",
    "RegisterLayout",
    "SoftRegisterInterface",
    "FpgaRegisterView",
    "ControlHub",
    "ControlHubConfig",
    "DuetAdapter",
    "AdapterConfig",
]
