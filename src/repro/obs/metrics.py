"""A unified metrics registry over :mod:`repro.sim.stats`.

Before this module, each layer grew its own counter plumbing: the
scheduler kept a raw ``fault_stats`` dict, the SLO monitor its own
``StatSet``, the fleet merged ad-hoc report fields.  A
:class:`MetricsRegistry` wraps one :class:`~repro.sim.stats.StatSet`
(counters / histograms / time series) plus plain :class:`Gauge` values,
and adds the two things the fleet layer needs:

* :meth:`MetricsRegistry.snapshot` — a :class:`MetricsSnapshot` of plain
  dicts and lists, picklable across the fleet process pool exactly like
  node report dicts;
* :meth:`MetricsSnapshot.merged` — a deterministic fold: counters add,
  histogram samples and series points concatenate in merge order, and
  gauges fold by their declared merge mode (``max`` by default; ``min``
  for low-water marks like ``free_capacity``, ``sum`` for additive
  capacities, ``last`` for merge-order-final values).  Folding snapshots
  in the fleet's sorted ``(epoch, node_id)`` report order therefore
  gives the same bytes serial or process-pooled.

:class:`CounterGroup` is a dict-shaped view over a fixed set of registry
counters — it keeps call sites like ``fault_stats["replayed"] += 1`` and
``dict(fault_stats)`` working unchanged while the storage moves into the
registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.sim.stats import StatSet

#: Legal per-gauge merge modes (see :meth:`MetricsSnapshot.merge`).
GAUGE_MERGE_MODES = ("max", "min", "sum", "last")


class Gauge:
    """A last-written scalar (queue depth, busy fraction, ...).

    ``mode`` declares how the value folds when snapshots merge across the
    fleet pool: ``max`` (the historical default — correct for high-water
    marks), ``min`` (low-water marks such as free capacity), ``sum``
    (additive quantities) or ``last`` (merge-order-final wins).
    """

    __slots__ = ("name", "value", "mode")

    def __init__(self, name: str, value: float = 0.0, mode: str = "max") -> None:
        if mode not in GAUGE_MERGE_MODES:
            raise ValueError(
                f"gauge merge mode must be one of {GAUGE_MERGE_MODES}, got {mode!r}")
        self.name = name
        self.value = value
        self.mode = mode

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class MetricsSnapshot:
    """A picklable, mergeable point-in-time copy of a registry.

    Only plain containers — safe to send through the fleet process pool
    inside a node report dict and to serialize as JSON.
    """

    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, List[float]] = field(default_factory=dict)
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    #: Per-gauge merge mode overrides.  Only non-default (non-``max``)
    #: modes are recorded, so snapshots from before this field existed
    #: round-trip unchanged and merge exactly as they always did.
    gauge_modes: Dict[str, str] = field(default_factory=dict)

    def merge(self, other: "MetricsSnapshot") -> None:
        """Fold ``other`` into this snapshot (see module docstring for the
        per-kind semantics).  Merge order is the caller's contract: fold in
        sorted ``(epoch, node_id)`` order for serial ≡ process identity."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, mode in other.gauge_modes.items():
            mine = self.gauge_modes.get(name)
            if mine is not None and mine != mode:
                raise ValueError(
                    f"gauge {name!r} declares merge mode {mode!r} but was "
                    f"previously merged as {mine!r}")
            self.gauge_modes[name] = mode
        for name, value in other.gauges.items():
            current = self.gauges.get(name)
            if current is None:
                self.gauges[name] = value
                continue
            mode = self.gauge_modes.get(name, "max")
            if mode == "max":
                self.gauges[name] = max(current, value)
            elif mode == "min":
                self.gauges[name] = min(current, value)
            elif mode == "sum":
                self.gauges[name] = current + value
            else:  # "last": merge-order-final value wins
                self.gauges[name] = value
        for name, samples in other.histograms.items():
            self.histograms.setdefault(name, []).extend(samples)
        for name, points in other.series.items():
            self.series.setdefault(name, []).extend(points)

    @classmethod
    def merged(cls, snapshots: Iterable["MetricsSnapshot"]) -> "MetricsSnapshot":
        result = cls()
        for snapshot in snapshots:
            result.merge(snapshot)
        return result

    def as_dict(self) -> Dict[str, Any]:
        """JSON-shaped plain dict (sorted keys for stable serialization)."""
        data = {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {name: list(samples) for name, samples
                           in sorted(self.histograms.items())},
            "series": {name: [list(point) for point in points]
                       for name, points in sorted(self.series.items())},
        }
        if self.gauge_modes:
            # Key omitted when empty so pre-mode snapshot dicts (and the
            # node reports built from them) keep their exact shape.
            data["gauge_modes"] = dict(sorted(self.gauge_modes.items()))
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricsSnapshot":
        """Inverse of :meth:`as_dict` — node reports carry snapshots in
        dict form (reports are plain JSON data by contract) and the fleet
        merge reconstructs them here."""
        return cls(
            counters=dict(data.get("counters", {})),
            gauges=dict(data.get("gauges", {})),
            histograms={name: list(samples) for name, samples
                        in data.get("histograms", {}).items()},
            series={name: [tuple(point) for point in points]
                    for name, points in data.get("series", {}).items()},
            gauge_modes=dict(data.get("gauge_modes", {})),
        )


class CounterGroup:
    """Dict-shaped view over a fixed key set of registry counters.

    Supports exactly the mapping surface the existing ``fault_stats``
    call sites use — ``group[key]``, ``group[key] += n``, iteration,
    ``dict(group)`` — and nothing else; unknown keys raise ``KeyError``
    instead of growing the set silently.
    """

    __slots__ = ("_registry", "_keys")

    def __init__(self, registry: "MetricsRegistry", keys: Iterable[str]) -> None:
        self._registry = registry
        self._keys = tuple(keys)
        for key in self._keys:
            registry.counter(key)

    def _check(self, key: str) -> str:
        if key not in self._keys:
            raise KeyError(key)
        return key

    def __getitem__(self, key: str) -> int:
        return self._registry.counter(self._check(key)).value

    def __setitem__(self, key: str, value: int) -> None:
        self._registry.counter(self._check(key)).value = value

    def __contains__(self, key: object) -> bool:
        return key in self._keys

    def __iter__(self) -> Iterator[str]:
        return iter(self._keys)

    def __len__(self) -> int:
        return len(self._keys)

    def keys(self) -> Tuple[str, ...]:
        return self._keys

    def items(self) -> List[Tuple[str, int]]:
        return [(key, self[key]) for key in self._keys]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CounterGroup({dict(self.items())!r})"


class MetricsRegistry:
    """Counters/gauges/histograms/series with a picklable snapshot."""

    def __init__(self, name: str = "metrics",
                 stats: Optional[StatSet] = None) -> None:
        self.name = name
        #: The backing :class:`StatSet` — components that already speak
        #: StatSet (the SLO monitor) plug theirs in and gain snapshotting.
        self.stats = stats if stats is not None else StatSet(name)
        self._gauges: Dict[str, Gauge] = {}

    # Delegation: the registry *is* the StatSet plus gauges.
    def counter(self, name: str):
        return self.stats.counter(name)

    def histogram(self, name: str):
        return self.stats.histogram(name)

    def series(self, name: str):
        return self.stats.series(name)

    def gauge(self, name: str, mode: str = "max") -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name, mode=mode)
        elif gauge.mode != mode:
            raise ValueError(
                f"gauge {name!r} already registered with merge mode "
                f"{gauge.mode!r}, re-requested as {mode!r}")
        return gauge

    def counter_group(self, keys: Iterable[str]) -> CounterGroup:
        return CounterGroup(self, keys)

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            counters=dict(self.stats.counters()),
            gauges={name: gauge.value for name, gauge in self._gauges.items()},
            histograms={name: list(histogram.samples) for name, histogram
                        in self.stats.histograms().items()},
            series={name: list(zip(series.times, series.values))
                    for name, series in self.stats.serieses().items()},
            gauge_modes={name: gauge.mode
                         for name, gauge in self._gauges.items()
                         if gauge.mode != "max"},
        )
