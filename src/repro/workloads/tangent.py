"""Tangent benchmark (Dolly-P1M0, fine-grained acceleration).

The processor computes the tangent of a batch of angles.  The baseline uses
a libm-style argument-reduction + polynomial kernel in software; the
accelerated versions stream arguments to the tangent accelerator through an
FPGA-bound FIFO and read results back through a CPU-bound FIFO.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from repro.accel.tangent import (
    REG_ARGUMENT,
    REG_RESULT,
    STOP_COMMAND,
    TangentAccelerator,
    from_fixed,
    piecewise_linear_tangent,
    register_layout,
    to_fixed,
)
from repro.platform.config import SystemKind
from repro.workloads.common import BenchmarkResult, WorkloadParams, build_benchmark_system, finalize_result

#: Number of tangent evaluations per run.
DEFAULT_CALLS = 48
#: Instruction cost of one libm-style software tangent on the in-order core
#: (argument reduction, a 13-term polynomial and a division), mostly FP ops.
SOFTWARE_TANGENT_FP_OPS = 60
#: Maximum relative error accepted against math.tan (the paper quotes 0.3%).
ERROR_BOUND = 0.01


def _angles(count: int, seed: int) -> List[float]:
    rng = random.Random(seed)
    return [rng.uniform(-1.4, 1.4) for _ in range(count)]


def _within_error(approximations: List[float], angles: List[float]) -> bool:
    for approx, angle in zip(approximations, angles):
        exact = math.tan(angle)
        if abs(exact) < 1e-3:
            continue
        if abs(approx - exact) / abs(exact) > ERROR_BOUND:
            return False
    return True


def run_cpu(params: Optional[WorkloadParams] = None, calls: int = DEFAULT_CALLS) -> BenchmarkResult:
    params = params or WorkloadParams(num_processors=1, num_memory_hubs=0)
    system = build_benchmark_system(SystemKind.CPU_ONLY, params)
    angles = _angles(calls, params.seed)
    results: List[float] = []

    def program(ctx):
        for angle in angles:
            # Argument reduction + polynomial evaluation + division in libm.
            yield from ctx.compute(SOFTWARE_TANGENT_FP_OPS, fp=True)
            yield from ctx.compute(20)
            results.append(math.tan(angle))
        return len(results)

    _, elapsed = system.run_single(program)
    return finalize_result(
        "tangent", SystemKind.CPU_ONLY, system, elapsed,
        correct=_within_error(results, angles), checksum=round(sum(results), 3),
    )


def run_accelerated(kind: SystemKind, params: Optional[WorkloadParams] = None,
                    calls: int = DEFAULT_CALLS) -> BenchmarkResult:
    params = params or WorkloadParams(num_processors=1, num_memory_hubs=0)
    params.num_memory_hubs = max(params.num_memory_hubs, 0)
    system = build_benchmark_system(kind, params)
    accelerator = TangentAccelerator()
    synthesis = system.install_accelerator(
        accelerator, registers=register_layout(), fpga_mhz=params.fpga_mhz
    )
    system.start_accelerator()
    adapter = system.adapter
    angles = _angles(calls, params.seed)
    results: List[float] = []

    def program(ctx):
        for angle in angles:
            yield from ctx.mmio_write(adapter.register_addr(REG_ARGUMENT), to_fixed(angle))
            raw = yield from ctx.mmio_read(adapter.register_addr(REG_RESULT))
            results.append(from_fixed(raw))
            # The surrounding application does a little work per call.
            yield from ctx.compute(10)
        yield from ctx.mmio_write(adapter.register_addr(REG_ARGUMENT), STOP_COMMAND)
        return len(results)

    _, elapsed = system.run_single(program)
    return finalize_result(
        "tangent", kind, system, elapsed,
        correct=_within_error(results, angles), checksum=round(sum(results), 3),
        efpga_area_mm2=synthesis.area_mm2,
        extra={"fmax_mhz": synthesis.fmax_mhz},
    )


def run(kind: SystemKind, params: Optional[WorkloadParams] = None,
        calls: int = DEFAULT_CALLS) -> BenchmarkResult:
    if kind is SystemKind.CPU_ONLY:
        return run_cpu(params, calls)
    return run_accelerated(kind, params, calls)


def reference_result(calls: int = DEFAULT_CALLS, seed: int = 2023) -> float:
    """Software reference used by tests: the accelerator's own approximation."""
    return round(sum(piecewise_linear_tangent(a) for a in _angles(calls, seed)), 3)
