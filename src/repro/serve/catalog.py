"""The catalog of accelerators a serving fabric can host.

Serving multiplexes one physical eFPGA fabric across *bitstreams*: every
tenant names an accelerator from :mod:`repro.accel`, and switching between
two accelerators means reprogramming the fabric through the Control Hub's
programming engine — the cost the reconfiguration-affinity policy exists to
amortize.  Each catalog entry pre-computes what installation would compute:
the synthesis result (post-route Fmax, fabric instance, area) and the
deterministic :class:`~repro.fpga.bitstream.Bitstream`, whose
``config_bits`` drive the programming-transfer time exactly as they do in
:meth:`repro.core.control_hub.ControlHub.program`.

The request-service model is intentionally simple and deterministic: a
request of ``size`` work items occupies the fabric for
``base_cycles + size * cycles_per_item`` eFPGA cycles at the programmed
clock.  The constants are per-accelerator so SJF has real variance to
exploit and so the clock retune (each accelerator runs at its own Fmax
clamp) actually shows up in latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.accel import (
    DijkstraRelaxAccelerator,
    PopcountAccelerator,
    SortingNetworkAccelerator,
    TangentAccelerator,
)
from repro.fpga.bitstream import Bitstream
from repro.fpga.synthesis import AcceleratorDesign, SynthesisModel, SynthesisResult


@dataclass(frozen=True)
class ServedAcceleratorSpec:
    """One catalog entry: a design plus its request-service cost model."""

    name: str
    design: AcceleratorDesign
    #: Fixed per-request pipeline ramp (eFPGA cycles).
    base_cycles: int
    #: Marginal cost of one work item (eFPGA cycles).
    cycles_per_item: int

    def service_cycles(self, size: int) -> int:
        """eFPGA cycles one request of ``size`` items occupies the fabric."""
        return self.base_cycles + max(0, size) * self.cycles_per_item


@dataclass(frozen=True)
class ServedAccelerator:
    """A catalog entry with its synthesis result and bitstream materialized."""

    spec: ServedAcceleratorSpec
    synthesis: SynthesisResult
    bitstream: Bitstream

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def fmax_mhz(self) -> float:
        return self.synthesis.fmax_mhz

    @property
    def tiles_needed(self) -> int:
        """Fabric tiles the design occupies (the region-packing footprint)."""
        return self.synthesis.tiles_needed

    def service_cycles(self, size: int) -> int:
        return self.spec.service_cycles(size)


#: The serving catalog.  Four designs with distinct bitstreams, Fmax values
#: and service slopes — enough variety that policy choices matter.
SERVE_ACCELERATORS: Dict[str, ServedAcceleratorSpec] = {
    spec.name: spec
    for spec in (
        ServedAcceleratorSpec("popcount", PopcountAccelerator.DESIGN,
                              base_cycles=24, cycles_per_item=6),
        ServedAcceleratorSpec("sort64", SortingNetworkAccelerator(64).design,
                              base_cycles=40, cycles_per_item=10),
        ServedAcceleratorSpec("tangent", TangentAccelerator.DESIGN,
                              base_cycles=16, cycles_per_item=4),
        ServedAcceleratorSpec("dijkstra", DijkstraRelaxAccelerator.DESIGN,
                              base_cycles=48, cycles_per_item=12),
    )
}

ACCELERATOR_NAMES: Tuple[str, ...] = tuple(SERVE_ACCELERATORS)


def resolve_accelerator(name: str) -> ServedAcceleratorSpec:
    try:
        return SERVE_ACCELERATORS[name]
    except KeyError:
        known = ", ".join(sorted(SERVE_ACCELERATORS))
        raise KeyError(
            f"unknown served accelerator {name!r}; catalog: {known}"
        ) from None


def materialize(name: str, model: SynthesisModel = None) -> ServedAccelerator:
    """Synthesize ``name`` and generate its bitstream (done once per run)."""
    spec = resolve_accelerator(name)
    synthesis = (model or SynthesisModel()).implement(spec.design)
    bitstream = Bitstream.generate(spec.design, synthesis.fabric)
    return ServedAccelerator(spec=spec, synthesis=synthesis, bitstream=bitstream)
