"""Table II: clock frequency and area of the soft accelerators."""

from repro.api import Runner, get_experiment


def test_table2_soft_accelerators(benchmark):
    results = benchmark.pedantic(Runner().run, args=("table2",),
                                 rounds=1, iterations=1)
    print()
    print(results.to_table(
        columns=["benchmark", "measured_fmax_mhz", "paper_fmax_mhz",
                 "measured_norm_area", "paper_norm_area",
                 "measured_clb_util", "paper_clb_util",
                 "measured_bram_util", "paper_bram_util"],
        headers=["Benchmark", "Fmax (MHz)", "Paper Fmax", "Norm. Area", "Paper Area",
                 "CLB util", "Paper CLB", "BRAM util", "Paper BRAM"],
        title=get_experiment("table2").title,
    ))
    by_name = {r.benchmark: r for r in results}
    # Shape checks against the paper: every accelerator lands in the
    # "8%-28% of the 1 GHz processor clock" range the paper reports, the
    # sorting networks grow with size, and Barnes-Hut is the largest design.
    for row in results:
        assert 50.0 <= row.measured_fmax_mhz <= 500.0
    assert (by_name["sort32"].measured_norm_area
            < by_name["sort64"].measured_norm_area
            < by_name["sort128"].measured_norm_area)
    assert by_name["barnes-hut"].measured_norm_area == max(
        r.measured_norm_area for r in results
    )
