"""Processor model.

Dolly's P-Tiles host Ariane cores: 6-stage, single-issue, in-order, 64-bit
RISC-V processors.  The evaluation never depends on ISA details — what
matters is the per-instruction memory behaviour, the strict ordering of
MMIO accesses (which is what the Shadow Registers exist to soften), and the
synchronization primitives (spin locks, MCS locks, barriers) whose
contention the hardware-augmentation benchmarks eliminate.  This package
models exactly those aspects: an in-order core that executes Python
"programs" written against :class:`CpuContext`, an MMIO port with strict
ordering, and software synchronization built on the coherent memory system.
"""

from repro.cpu.mmio import MmioMap, MmioPort
from repro.cpu.core import Core, CoreConfig, CpuContext
from repro.cpu.sync import Barrier, McsLock, SpinLock

__all__ = [
    "MmioMap",
    "MmioPort",
    "Core",
    "CoreConfig",
    "CpuContext",
    "SpinLock",
    "McsLock",
    "Barrier",
]
