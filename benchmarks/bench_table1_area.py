"""Table I: area and typical frequency of Dolly's hard components."""

from repro.analysis import format_table, run_table1


def test_table1_area(benchmark):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    print()
    print(format_table(
        ["Component", "Technology", "Area (mm2)", "Freq (MHz)",
         "Scaled Area (mm2)", "Scaled Freq (MHz)"],
        [[r["component"], r["technology"], r["area_mm2"], r["freq_mhz"],
          r["scaled_area_mm2"], r["scaled_freq_mhz"]] for r in rows],
        title="Table I — Area and Typical Frequency of Dolly Components",
    ))
    # The Duet Adapter's hard logic is small relative to one core + socket
    # (the Sec. V-B "negligible hardware overhead" claim).
    adapter_row = rows[-1]
    assert adapter_row["area_mm2"] < 1.56 + 1.10
