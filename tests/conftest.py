"""Shared fixtures: a miniature coherent system used by memory-system tests."""

from dataclasses import dataclass, field
from typing import Dict, List

import pytest

from repro.mem import AddressMap, DirectoryShard, MainMemory, MemoryConfig, PrivateCacheAgent
from repro.noc import MeshNetwork, TileRouter
from repro.sim import ClockDomain, Simulator


@dataclass
class MiniSystem:
    """A bare manycore: mesh + directory shards + N private cache agents."""

    sim: Simulator
    clock: ClockDomain
    network: MeshNetwork
    config: MemoryConfig
    memory: MainMemory
    address_map: AddressMap
    routers: List[TileRouter] = field(default_factory=list)
    directories: List[DirectoryShard] = field(default_factory=list)
    agents: List[PrivateCacheAgent] = field(default_factory=list)
    extra: Dict = field(default_factory=dict)


def build_mini_system(width=2, height=2, num_agents=2, freq_mhz=1000.0, config=None,
                      topology=None) -> MiniSystem:
    sim = Simulator()
    clock = ClockDomain(sim, freq_mhz, "sys")
    network = MeshNetwork(sim, clock, width, height, topology=topology)
    config = config or MemoryConfig()
    memory = MainMemory(config)
    tiles = list(range(width * height))
    address_map = AddressMap(config, home_tiles=tiles)
    routers = [TileRouter(network, node) for node in tiles]
    directories = [
        DirectoryShard(sim, clock, routers[node], address_map, config, memory) for node in tiles
    ]
    agents = [
        PrivateCacheAgent(sim, clock, routers[node], address_map, config, memory, name=f"core{node}")
        for node in range(num_agents)
    ]
    return MiniSystem(
        sim=sim,
        clock=clock,
        network=network,
        config=config,
        memory=memory,
        address_map=address_map,
        routers=routers,
        directories=directories,
        agents=agents,
    )


@pytest.fixture
def mini_system():
    return build_mini_system()
