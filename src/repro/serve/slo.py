"""Per-tenant service-level accounting for the serving subsystem.

The monitor is pure observation: the scheduler reports admissions,
sheddings and completions, and everything lands in the standard
:mod:`repro.sim.stats` primitives — per-tenant latency
:class:`~repro.sim.stats.Histogram`\\ s (p50/p95/p99 via nearest-rank),
a queue-depth :class:`~repro.sim.stats.TimeSeries`, and plain counters
for completions, SLO violations and shed requests.  Goodput is defined the
strict way: only requests that *completed within their tenant's SLO* count,
so an overloaded policy cannot buy throughput by blowing the tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.serve.traffic import Request
from repro.sim import TimeSeries

#: The latency percentiles every tenant row reports, as (label, fraction).
#: ``p999`` (and the ``max_latency_us`` column next to the loop over this
#: tuple) arrived with :mod:`repro.obs`: chaos recovery spikes live beyond
#: p99, so tail analysis that stops there cannot see them.  The pre-p999
#: columns keep their exact values — goldens recorded before the extension
#: still match on every column they name.
REPORT_PERCENTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99),
                      ("p999", 0.999))


@dataclass
class TenantAccount:
    """Aggregated outcomes for one tenant."""

    name: str
    submitted: int = 0
    completed: int = 0
    shed: int = 0
    slo_violations: int = 0
    slo_ns: float = 0.0
    #: Completions that met the tenant's SLO (the goodput numerator).
    good: int = 0
    service_ns_total: float = 0.0
    queue_wait_ns_total: float = 0.0
    # -- chaos accounting (all zero unless faults were injected) -------- #
    #: Requests lost to a fault (dead fabric, corrupt image) and shed.
    fault_shed: int = 0
    #: Requests replayed through a surviving fabric after a fault.
    replayed: int = 0
    #: Sum over faults of (first post-fault completion - fault instant).
    recovery_time_ns: float = 0.0


class SloMonitor:
    """Collects per-tenant latency/queue/goodput statistics for one run."""

    def __init__(self, sim, name: str = "serve") -> None:
        self.sim = sim
        self.name = name
        #: Unified registry (:mod:`repro.obs.metrics`); ``self.stats`` is
        #: its backing StatSet, so every existing hook below is unchanged
        #: while the monitor gains a picklable, mergeable snapshot.
        self.metrics = MetricsRegistry(f"{name}.slo")
        self.stats = self.metrics.stats
        self.accounts: Dict[str, TenantAccount] = {}
        self.queue_depth: TimeSeries = self.stats.series("queue_depth")
        #: Streaming telemetry hook (:class:`repro.obs.monitor.TelemetryMonitor`);
        #: ``None`` (the default) keeps every hook below tick-free.  When
        #: attached, each recording hook first lets the telemetry layer
        #: close any window the sim clock has crossed — *before* recording,
        #: so boundary events land in the window they open.
        self.telemetry = None
        #: Number of fault instants observed (0 on every fault-free run).
        self.faults = 0
        # Tenants with an open recovery window: name -> fault instant (ns).
        self._recovery_pending: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # Scheduler-facing recording hooks
    # ------------------------------------------------------------------ #
    def _account(self, request: Request) -> TenantAccount:
        account = self.accounts.get(request.tenant)
        if account is None:
            account = TenantAccount(name=request.tenant, slo_ns=request.slo_ns)
            self.accounts[request.tenant] = account
        return account

    def register(self, tenant: str, slo_ns: float) -> TenantAccount:
        """Pre-create a tenant account so the tenant reports even when it
        never manages to submit (e.g. a migration blackout swallows its
        whole epoch).  Idempotent; returns the account."""
        account = self.accounts.get(tenant)
        if account is None:
            account = TenantAccount(name=tenant, slo_ns=slo_ns)
            self.accounts[tenant] = account
        return account

    def on_submit(self, request: Request, queue_depth: int) -> None:
        if self.telemetry is not None:
            self.telemetry.tick(self.sim.now)
        self._account(request).submitted += 1
        self.queue_depth.record(self.sim.now, queue_depth)

    def on_shed(self, request: Request) -> None:
        if self.telemetry is not None:
            self.telemetry.tick(self.sim.now)
        account = self._account(request)
        account.submitted += 1  # shed requests were still offered
        account.shed += 1
        self.stats.counter("shed_total").increment()

    def on_dequeue(self, queue_depth: int) -> None:
        if self.telemetry is not None:
            self.telemetry.tick(self.sim.now)
        self.queue_depth.record(self.sim.now, queue_depth)

    def on_complete(self, request: Request) -> None:
        if self.telemetry is not None:
            self.telemetry.tick(self.sim.now)
        account = self._account(request)
        account.completed += 1
        account.queue_wait_ns_total += request.queue_wait_ns
        account.service_ns_total += request.finish_ns - request.start_ns
        latency = request.latency_ns
        self.stats.histogram(f"latency_ns.{request.tenant}").record(latency)
        self.stats.counter("completed_total").increment()
        if request.slo_met:
            account.good += 1
        elif request.slo_ns > 0:
            account.slo_violations += 1
            self.stats.counter("slo_violations_total").increment()
        fault_at = self._recovery_pending.pop(request.tenant, None)
        if fault_at is not None:
            account.recovery_time_ns += self.sim.now - fault_at

    # ------------------------------------------------------------------ #
    # Chaos hooks (never called on a fault-free run)
    # ------------------------------------------------------------------ #
    def on_fault(self, time_ns: float) -> None:
        """A fault was injected: open a recovery window for every tenant.

        Each tenant's window closes at its first post-fault completion;
        the elapsed time accumulates into ``recovery_time_ns``.  Windows
        do not stack — a second fault before recovery extends nothing.
        """
        if self.telemetry is not None:
            self.telemetry.tick(time_ns)
        self.faults += 1
        self.stats.counter("faults_total").increment()
        for name in self.accounts:
            self._recovery_pending.setdefault(name, time_ns)

    def on_fault_shed(self, request: Request) -> None:
        """A previously-admitted request was lost to a fault and shed.

        Unlike :meth:`on_shed` this does *not* count a new submission —
        the request was already admitted once."""
        if self.telemetry is not None:
            self.telemetry.tick(self.sim.now)
        account = self._account(request)
        account.shed += 1
        account.fault_shed += 1
        self.stats.counter("fault_shed_total").increment()

    def on_replay(self, request: Request, queue_depth: int) -> None:
        """A fault-lost request re-entered the queue for another attempt."""
        if self.telemetry is not None:
            self.telemetry.tick(self.sim.now)
        self._account(request).replayed += 1
        self.stats.counter("replayed_total").increment()
        self.queue_depth.record(self.sim.now, queue_depth)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def latency_histogram(self, tenant: str):
        return self.stats.histogram(f"latency_ns.{tenant}")

    def tenant_rows(self, elapsed_ns: float,
                    extra: Optional[Dict[str, Any]] = None) -> List[Dict[str, Any]]:
        """One report row per tenant plus an ``__all__`` aggregate row.

        ``elapsed_ns`` is the measured window (goodput denominator);
        ``extra`` columns (policy, rate, ...) are prepended to every row.
        Rows are emitted in tenant-name order so reports are deterministic
        regardless of completion interleaving.
        """
        if elapsed_ns <= 0:
            raise ValueError(f"elapsed_ns must be positive, got {elapsed_ns}")
        rows: List[Dict[str, Any]] = []
        totals = TenantAccount(name="__all__")
        all_latencies: List[float] = []
        for name in sorted(self.accounts):
            account = self.accounts[name]
            histogram = self.latency_histogram(name)
            all_latencies.extend(histogram.samples)
            totals.submitted += account.submitted
            totals.completed += account.completed
            totals.shed += account.shed
            totals.slo_violations += account.slo_violations
            totals.good += account.good
            totals.service_ns_total += account.service_ns_total
            totals.queue_wait_ns_total += account.queue_wait_ns_total
            totals.fault_shed += account.fault_shed
            totals.replayed += account.replayed
            totals.recovery_time_ns += account.recovery_time_ns
            rows.append(self._row(account, histogram.samples, elapsed_ns, extra))
        rows.append(self._row(totals, all_latencies, elapsed_ns, extra))
        return rows

    def _row(self, account: TenantAccount, samples: List[float],
             elapsed_ns: float, extra: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        from repro.sim.stats import Histogram

        histogram = Histogram(account.name, samples=list(samples))
        row: Dict[str, Any] = dict(extra or {})
        completed = account.completed
        row.update({
            "tenant": account.name,
            "submitted": account.submitted,
            "completed": completed,
            "shed": account.shed,
            "slo_violations": account.slo_violations,
            "slo_ns": account.slo_ns,
            "goodput_krps": account.good / elapsed_ns * 1e6,
            "throughput_krps": completed / elapsed_ns * 1e6,
            "mean_latency_us": histogram.mean / 1000.0,
            "mean_queue_wait_us": (
                account.queue_wait_ns_total / completed / 1000.0 if completed else 0.0),
        })
        for label, fraction in REPORT_PERCENTILES:
            row[f"{label}_latency_us"] = histogram.percentile(fraction) / 1000.0
        row["max_latency_us"] = histogram.maximum / 1000.0
        if self.faults > 0:
            # Chaos columns only appear once a fault was actually injected,
            # so fault-free runs stay bit-identical to their goldens.
            row["fault_shed"] = account.fault_shed
            row["replayed"] = account.replayed
            row["recovery_time_ns"] = account.recovery_time_ns
        return row
