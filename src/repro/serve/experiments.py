"""The serving experiments: ``serve_policy`` and ``serve_energy``.

``serve_policy`` sweeps scheduling policy x offered arrival rate x tenant
mix and reports per-tenant tail latency (p50/p95/p99), goodput (completions
*within SLO* per second), shed counts and the fabric's reconfiguration
overhead.  It is the experiment that shows the reconfiguration-affinity
policy beating FCFS on p99 and goodput once two tenants contend for one
fabric with different bitstreams.

``serve_energy`` reruns a single-fabric deployment with the
:mod:`repro.power` accounting attached and reports energy per served
request, average power, and the energy share lost to reconfiguration —
the serving counterpart of the ``power_efficiency`` experiment.

Cells are module-level and seed-deterministic (picklable for the
process-pool executor, cacheable by the runner).  This module must not
import anything from :mod:`repro.api` — the registry imports *us*; the
:class:`~repro.api.spec.ExperimentSpec` objects wrapping these cells are
built in :mod:`repro.api.registry`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.serve.scheduler import FabricScheduler, ServeConfig
from repro.serve.slo import SloMonitor
from repro.serve.traffic import TenantSpec, build_sources
from repro.sim import Simulator

DEFAULT_SEED = 2023

#: Named tenant mixes for the sweep grids.  ``duo`` is the canonical
#: reconfiguration-pressure mix: two equal open-loop tenants whose
#: accelerators need different bitstreams on the same fabric.  ``quad``
#: adds a bursty batch tenant and a high-priority closed-loop tenant.
TENANT_MIXES: Dict[str, Tuple[TenantSpec, ...]] = {
    "mono": (
        TenantSpec(name="alpha", accelerator="popcount", pattern="poisson",
                   weight=1.0, slo_ns=25_000.0),
    ),
    "duo": (
        TenantSpec(name="alpha", accelerator="popcount", pattern="poisson",
                   weight=0.5, slo_ns=30_000.0),
        TenantSpec(name="beta", accelerator="sort64", pattern="poisson",
                   weight=0.5, slo_ns=30_000.0),
    ),
    "quad": (
        TenantSpec(name="alpha", accelerator="popcount", pattern="poisson",
                   weight=0.4, slo_ns=30_000.0),
        TenantSpec(name="beta", accelerator="sort64", pattern="bursty",
                   weight=0.4, slo_ns=50_000.0),
        TenantSpec(name="gamma", accelerator="tangent", pattern="diurnal",
                   weight=0.2, slo_ns=50_000.0),
        TenantSpec(name="delta", accelerator="dijkstra", pattern="closed",
                   clients=2, think_ns=80_000.0, priority=1, slo_ns=100_000.0),
    ),
}

MIX_NAMES: Tuple[str, ...] = tuple(TENANT_MIXES)


def get_mix(name: str) -> Tuple[TenantSpec, ...]:
    try:
        return TENANT_MIXES[name]
    except KeyError:
        known = ", ".join(TENANT_MIXES)
        raise KeyError(f"unknown tenant mix {name!r}; known mixes: {known}") from None


# --------------------------------------------------------------------------- #
# The serve driver shared by both experiments (and the perf benchmark)
# --------------------------------------------------------------------------- #
def run_serve(
    policy: str,
    tenant_mix: str = "duo",
    arrival_rate_krps: float = 150.0,
    duration_us: float = 2_000.0,
    num_fabrics: int = 1,
    queue_capacity: Optional[int] = 64,
    patience_ns: float = 100_000.0,
    seed: int = DEFAULT_SEED,
    power: bool = False,
    max_events: int = 20_000_000,
    chaos: Optional[Any] = None,
    regions: int = 1,
    region_fabric_scale: float = 1.0,
    tracer: Optional[Any] = None,
    telemetry_window_us: Optional[float] = None,
) -> Dict[str, Any]:
    """Run one serving deployment to completion; returns rows + aggregates.

    The run is *open*: traffic stops arriving after ``duration_us`` of
    simulated time, the scheduler then drains its queue, and the measured
    window covers everything from the first arrival opportunity to the last
    completion — so an overloaded policy pays for its backlog in the
    goodput denominator instead of hiding it.

    ``chaos`` (a :class:`repro.chaos.ChaosConfig`) arms the run's fault
    schedule against the deployment.  Fault draws for a serve run use the
    schedule's ``(epoch=0, node=0)`` stream over the traffic window.  A
    ``chaos`` whose schedule is empty injects nothing and the run stays
    bit-identical to a plain one (pinned by ``tests/test_chaos.py``).

    ``regions > 1`` switches every fabric to the region-granular path
    (:mod:`repro.reconfig`): co-located designs, span hot swaps, LRU
    eviction.  ``regions=1`` (the default) takes the whole-fabric path and
    is bit-identical to a build without region support — the region
    columns below only exist when regions > 1, same contract as the chaos
    columns.

    ``tracer`` (a :class:`repro.obs.Tracer`) attaches the observability
    hooks: per-request lifecycle spans plus chaos events, exportable as a
    Chrome trace and decomposable with :mod:`repro.obs.decompose`.  The
    default ``None`` records nothing and is bit-identical to a build
    without tracing (pinned by ``tests/test_obs.py``).

    ``telemetry_window_us`` attaches a
    :class:`repro.obs.monitor.TelemetryMonitor` with that tumbling
    window; the outcome gains a ``"telemetry"``
    :class:`~repro.obs.monitor.TelemetryStream`.  Windows close lazily
    inside the SLO hooks (no sim events), so even a monitor-on run is
    bit-identical to a monitor-off one (pinned by ``tests/test_alerts.py``).
    """
    if regions > 1 and power:
        raise ValueError(
            "power accounting is not supported with regions > 1: the "
            "EnergyModel tracks one shared eFPGA clock domain, but a "
            "region grid runs each resident design at its own clock")
    tenants = get_mix(tenant_mix)
    sim = Simulator()
    config = ServeConfig(
        policy=policy,
        num_fabrics=num_fabrics,
        queue_capacity=queue_capacity,
        patience_ns=patience_ns,
        accelerators=tuple(dict.fromkeys(t.accelerator for t in tenants)),
        regions=regions,
        region_fabric_scale=region_fabric_scale,
    )
    monitor = SloMonitor(sim)
    scheduler = FabricScheduler(sim, config, monitor=monitor)
    if tracer is not None:
        scheduler.attach_tracer(tracer)
    telemetry = None
    if telemetry_window_us is not None:
        from repro.obs.monitor import TelemetryMonitor

        telemetry = TelemetryMonitor(monitor, telemetry_window_us * 1000.0)
        scheduler.attach_telemetry(telemetry)

    energy = None
    if power:
        energy = _attach_energy(sim, scheduler)

    duration_ns = duration_us * 1000.0
    if chaos is not None:
        from repro.chaos import FaultInjector

        FaultInjector(
            sim, scheduler,
            chaos.schedule.events(
                epoch=0, node_id=0, fabrics=num_fabrics, epoch_ns=duration_ns),
            recovery=chaos.recovery,
        )
    sources = build_sources(
        sim, tenants, scheduler.submit,
        total_rate_rps=arrival_rate_krps * 1000.0,
        duration_ns=duration_ns, seed=seed,
    )
    processes = [process for source in sources for process in source.start()]

    def supervisor():
        for process in processes:
            if not process.finished:
                yield process
        scheduler.close()

    sim.process(supervisor(), name="serve.supervisor")
    if energy is not None:
        energy.begin_window()
    sim.run(max_events=max_events)
    if chaos is not None:
        # A chaos run can end with every fabric dead and requests stranded
        # in the queue; shed them so submitted == completed + shed holds.
        scheduler.flush_pending()
    elapsed_ns = max(sim.now, duration_ns)
    if energy is not None:
        energy.end_window()

    totals = scheduler.fabric_totals()
    extra: Dict[str, Any] = {
        "policy": policy,
        "tenant_mix": tenant_mix,
        "arrival_rate_krps": arrival_rate_krps,
        "num_fabrics": num_fabrics,
    }
    rows = monitor.tenant_rows(elapsed_ns, extra=extra)
    busy_us = totals["service_us_total"] + totals["reconfig_us_total"]
    for row in rows:
        row.update(totals)
        row["reconfig_overhead"] = (
            totals["reconfig_us_total"] / busy_us if busy_us > 0 else 0.0)
        row["elapsed_us"] = elapsed_ns / 1000.0
    if energy is not None:
        _add_energy_columns(rows, energy)
    if regions > 1:
        region_totals = scheduler.region_totals()
        for row in rows:
            row.update(region_totals)
            row["region_fabric_scale"] = region_fabric_scale
    if monitor.faults > 0:
        # Deployment-wide fault accounting; columns only exist once a
        # fault actually fired, so fault-free goldens never change shape.
        chaos_totals = scheduler.chaos_totals()
        for row in rows:
            row.update(chaos_totals)
    from repro.obs.metrics import MetricsSnapshot

    if telemetry is not None:
        telemetry.finalize(elapsed_ns)
    return {"rows": rows, "scheduler": scheduler, "monitor": monitor,
            "energy": energy, "elapsed_ns": elapsed_ns, "tracer": tracer,
            "metrics": MetricsSnapshot.merged(
                (scheduler.metrics.snapshot(), monitor.metrics.snapshot())),
            "telemetry": telemetry.stream if telemetry is not None else None,
            "chaos": scheduler.chaos_totals() if chaos is not None else None}


def _attach_energy(sim: Simulator, scheduler: FabricScheduler):
    """Wire a standalone :class:`EnergyModel` onto a one-fabric deployment."""
    from repro.power.model import EnergyModel, PowerConfig

    if len(scheduler.fabrics) != 1:
        raise ValueError(
            "energy accounting supports exactly one fabric per deployment "
            f"(the EnergyModel tracks one eFPGA clock domain), got "
            f"{len(scheduler.fabrics)}"
        )
    fabric = scheduler.fabrics[0]
    energy = EnergyModel(PowerConfig(enabled=True), sim, name="serve.energy")
    energy.sys_domain = scheduler.sys_domain
    energy.fpga_domain = fabric.clock_generator.fpga_domain
    # One control tile; the fabric silicon is provisioned for the largest
    # catalog bitstream it may host (fixed leakage area, like real silicon).
    energy.num_tiles = 1
    energy.set_efpga_area(max(
        accelerator.synthesis.area_mm2
        for accelerator in scheduler.accelerators.values()
    ))
    fabric.energy = energy
    return energy


def _add_energy_columns(rows: List[Dict[str, Any]], energy) -> None:
    window_nj = (energy.last_window_pj or 0.0) / 1000.0
    for row in rows:
        if row["tenant"] != "__all__":
            continue
        completed = row["completed"]
        row["energy_nj"] = window_nj
        row["energy_per_request_nj"] = window_nj / completed if completed else 0.0
        row["avg_power_mw"] = energy.last_window_avg_power_mw
        breakdown = energy.last_window_breakdown
        fpga_nj = breakdown.get("fpga", 0.0) / 1000.0
        row["e_fpga_nj"] = fpga_nj
        row["e_static_nj"] = breakdown.get("static", 0.0) / 1000.0
        row["e_clock_nj"] = breakdown.get("clock", 0.0) / 1000.0


# --------------------------------------------------------------------------- #
# Experiment cells
# --------------------------------------------------------------------------- #
def serve_policy_cell(policy: str, arrival_rate_krps: float, tenant_mix: str,
                      duration_us: float = 2_000.0, num_fabrics: int = 1,
                      queue_capacity: int = 64, patience_ns: float = 100_000.0,
                      seed: int = DEFAULT_SEED) -> List[Dict[str, Any]]:
    outcome = run_serve(
        policy, tenant_mix=tenant_mix, arrival_rate_krps=arrival_rate_krps,
        duration_us=duration_us, num_fabrics=num_fabrics,
        queue_capacity=queue_capacity, patience_ns=patience_ns, seed=seed,
    )
    return outcome["rows"]


def serve_policy_summary(rows: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Compare policies on the aggregate rows, per (mix, rate) point."""
    aggregates = [row for row in rows if row.get("tenant") == "__all__"]
    summary: Dict[str, Any] = {}
    points = sorted({(row["tenant_mix"], row["arrival_rate_krps"])
                     for row in aggregates})
    for mix, rate in points:
        cell = {row["policy"]: row for row in aggregates
                if row["tenant_mix"] == mix and row["arrival_rate_krps"] == rate}
        if not cell:
            continue
        label = f"{mix}@{rate:g}krps"
        best = min(cell.values(), key=lambda row: row["p99_latency_us"])
        summary[f"best_p99_policy[{label}]"] = best["policy"]
        fcfs, affinity = cell.get("fcfs"), cell.get("affinity")
        if fcfs and affinity and fcfs["p99_latency_us"] > 0:
            summary[f"affinity_p99_vs_fcfs[{label}]"] = (
                affinity["p99_latency_us"] / fcfs["p99_latency_us"])
        if fcfs and affinity and fcfs["goodput_krps"] > 0:
            summary[f"affinity_goodput_vs_fcfs[{label}]"] = (
                affinity["goodput_krps"] / fcfs["goodput_krps"])
    return summary


def serve_energy_cell(policy: str, arrival_rate_krps: float = 150.0,
                      tenant_mix: str = "duo", duration_us: float = 2_000.0,
                      queue_capacity: int = 64, patience_ns: float = 100_000.0,
                      seed: int = DEFAULT_SEED) -> List[Dict[str, Any]]:
    outcome = run_serve(
        policy, tenant_mix=tenant_mix, arrival_rate_krps=arrival_rate_krps,
        duration_us=duration_us, num_fabrics=1,
        queue_capacity=queue_capacity, patience_ns=patience_ns, seed=seed,
        power=True,
    )
    # Energy is deployment-wide, so the energy experiment reports only the
    # aggregate row per cell.
    return [row for row in outcome["rows"] if row["tenant"] == "__all__"]


def serve_energy_summary(rows: List[Dict[str, Any]]) -> Dict[str, Any]:
    usable = [row for row in rows if row.get("energy_per_request_nj", 0.0) > 0]
    if not usable:
        return {}
    best = min(usable, key=lambda row: row["energy_per_request_nj"])
    return {
        "least_energy_per_request_policy": best["policy"],
        "least_energy_per_request_nj": best["energy_per_request_nj"],
    }
