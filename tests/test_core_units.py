"""Unit tests for the Duet Adapter's building blocks."""

import pytest

from repro.core import (
    DuetError,
    ErrorCode,
    ExceptionHandler,
    FeatureSwitches,
    PageFault,
    RegisterKind,
    RegisterLayout,
    RegisterSpec,
    Tlb,
)
from repro.sim import ClockDomain, Delay, Simulator


# --------------------------------------------------------------------------- #
# Feature switches
# --------------------------------------------------------------------------- #
def test_feature_switch_defaults_and_toggling():
    switches = FeatureSwitches()
    assert switches.enabled(FeatureSwitches.ACTIVE)
    assert not switches.enabled(FeatureSwitches.FORWARD_INVALIDATIONS)
    switches.set(FeatureSwitches.FORWARD_INVALIDATIONS, True)
    assert switches.enabled(FeatureSwitches.FORWARD_INVALIDATIONS)


def test_feature_switch_unknown_names_rejected():
    switches = FeatureSwitches()
    with pytest.raises(KeyError):
        switches.enabled("nonsense")
    with pytest.raises(KeyError):
        switches.set("nonsense", True)
    with pytest.raises(KeyError):
        switches.configure("nonsense", 1)


def test_feature_switch_settings_and_observers():
    switches = FeatureSwitches()
    seen = []
    switches.observe(lambda key, value: seen.append((key, value)))
    switches.configure(FeatureSwitches.TIMEOUT_CYCLES, 500)
    switches.set(FeatureSwitches.ACTIVE, False)
    assert switches.setting(FeatureSwitches.TIMEOUT_CYCLES) == 500
    assert (FeatureSwitches.TIMEOUT_CYCLES, 500) in seen
    assert (FeatureSwitches.ACTIVE, False) in seen
    with pytest.raises(ValueError):
        switches.configure(FeatureSwitches.TIMEOUT_CYCLES, -1)
    snapshot = switches.snapshot()
    assert snapshot[FeatureSwitches.ACTIVE] is False


# --------------------------------------------------------------------------- #
# Exception handler
# --------------------------------------------------------------------------- #
def _handler(timeout_cycles=100):
    sim = Simulator()
    domain = ClockDomain(sim, 1000.0, "sys")
    return sim, ExceptionHandler(sim, domain, timeout_cycles=timeout_cycles)


def test_exception_first_error_wins_and_clear():
    sim, handler = _handler()
    observed = []
    handler.on_error(observed.append)
    handler.raise_error(ErrorCode.PARITY)
    handler.raise_error(ErrorCode.TIMEOUT)
    assert handler.error_code is ErrorCode.PARITY
    assert observed == [ErrorCode.PARITY]
    handler.clear()
    assert not handler.has_error


def test_exception_parity_check_detects_corruption():
    sim, handler = _handler()
    assert handler.check_parity({"corrupt": False})
    assert not handler.check_parity({"corrupt": True})
    assert handler.error_code is ErrorCode.PARITY


def test_exception_guard_returns_value_before_timeout():
    sim, handler = _handler(timeout_cycles=1000)
    event = sim.event()

    def body():
        value = yield from handler.guard(event)
        return value

    sim.schedule(50.0, event.succeed, "ok")
    assert sim.run_process(body()) == "ok"
    assert not handler.has_error


def test_exception_guard_times_out_and_latches_error():
    sim, handler = _handler(timeout_cycles=100)
    event = sim.event()  # never fired

    def body():
        value = yield from handler.guard(event)
        return value

    assert sim.run_process(body()) is None
    assert handler.error_code is ErrorCode.TIMEOUT
    assert sim.now >= 100.0


def test_exception_timeout_configuration_validation():
    _, handler = _handler()
    with pytest.raises(ValueError):
        handler.set_timeout_cycles(0)
    handler.set_timeout_cycles(42)
    assert handler.timeout_cycles == 42


# --------------------------------------------------------------------------- #
# TLB
# --------------------------------------------------------------------------- #
def _tlb(**kwargs):
    sim = Simulator()
    domain = ClockDomain(sim, 1000.0, "sys")
    return sim, Tlb(sim, domain, **kwargs)


def test_tlb_hit_translates_and_preserves_offset():
    sim, tlb = _tlb()
    tlb.install(vpn=0x12, ppn=0x99)

    def body():
        physical = yield from tlb.translate((0x12 << 12) | 0x345)
        return physical

    assert sim.run_process(body()) == (0x99 << 12) | 0x345
    assert tlb.stats.counter("hits").value == 1


def test_tlb_miss_without_handler_raises_page_fault():
    sim, tlb = _tlb()

    def body():
        yield from tlb.translate(0xDEAD000)

    sim.process(body())
    with pytest.raises(PageFault):
        sim.run()


def test_tlb_fault_handler_fills_and_charges_penalty():
    sim, tlb = _tlb(fault_penalty_cycles=100)
    tlb.set_fault_handler(lambda vpn: vpn + 1)

    def body():
        start = sim.now
        physical = yield from tlb.translate(0x5000)
        return physical, sim.now - start

    physical, elapsed = sim.run_process(body())
    assert physical == 0x6000
    assert elapsed >= 100.0
    assert 0x5 in tlb
    # Second access hits without the penalty.

    def body2():
        start = sim.now
        yield from tlb.translate(0x5008)
        return sim.now - start

    assert sim.run_process(body2()) < 10.0


def test_tlb_fault_handler_can_kill_the_accelerator():
    sim, tlb = _tlb()
    tlb.set_fault_handler(lambda vpn: None)

    def body():
        yield from tlb.translate(0x7000)

    sim.process(body())
    with pytest.raises(PageFault):
        sim.run()


def test_tlb_capacity_eviction_and_identity_map():
    sim, tlb = _tlb(capacity=4)
    tlb.identity_map(0x10000, 4 * tlb.page_size)
    assert len(tlb) == 4
    tlb.install(0x999, 0x111)
    assert len(tlb) == 4  # one entry evicted
    tlb.invalidate()
    assert len(tlb) == 0


# --------------------------------------------------------------------------- #
# Register specs / layout
# --------------------------------------------------------------------------- #
def test_register_spec_validation_and_downgrade():
    spec = RegisterSpec(0, RegisterKind.CPU_BOUND_FIFO, "results", depth=4)
    assert spec.kind.is_shadowed
    downgraded = spec.downgraded()
    assert downgraded.kind is RegisterKind.NORMAL
    assert downgraded.index == 0
    with pytest.raises(ValueError):
        RegisterSpec(-1, RegisterKind.PLAIN)
    with pytest.raises(ValueError):
        RegisterSpec(0, RegisterKind.PLAIN, depth=0)


def test_register_layout_rejects_duplicates_and_finds_by_name():
    layout = RegisterLayout([
        RegisterSpec(0, RegisterKind.PLAIN, "a"),
        RegisterSpec(1, RegisterKind.TOKEN_FIFO, "b"),
    ])
    assert layout.by_name("b").index == 1
    assert len(layout) == 2
    with pytest.raises(KeyError):
        layout.by_name("missing")
    with pytest.raises(ValueError):
        RegisterLayout([RegisterSpec(0, RegisterKind.PLAIN), RegisterSpec(0, RegisterKind.PLAIN)])
    with pytest.raises(ValueError):
        RegisterLayout([
            RegisterSpec(0, RegisterKind.PLAIN, "x"),
            RegisterSpec(1, RegisterKind.PLAIN, "x"),
        ])
