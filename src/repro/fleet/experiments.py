"""The cluster experiment: ``fleet_scaling``.

One cell is one fleet deployment serving the thinned traffic of a large
closed-loop client population (default one million clients on 50 ms think
time ≈ 20 M offered rps, thinned 50:1 to 400 krps — Palm–Khintchine:
superposing a million sparse renewal streams is Poisson, so the thinned
stream keeps the arrival statistics at a tractable simulated rate).  The
grid sweeps

* placement policy (``hash`` / ``least_loaded`` / ``affinity``),
* static node count (2 / 4 / 8),
* autoscaling on/off (off = the static fleet; on = start at one node,
  grow toward the same ``nodes`` cap as load ramps, shrink as it fades),

and reports cost (``node_us``: cost-weighted node-microseconds powered on)
against p99 latency and goodput — :func:`fleet_scaling_summary` reduces
the grid to the cost/tail pareto front plus the two pinned comparisons the
acceptance tests assert:

* at equal node count, **affinity placement beats consistent-hash on p99**
  (hash ignores bitstream identity, so nodes host mixed accelerators and
  thrash on reconfiguration — the cluster-level replay of the PR 5
  FCFS-vs-affinity result);
* **autoscaling tracks the load ramp**, matching the static fleet's
  peak-epoch goodput while spending fewer node-microseconds overall.

Cells are module-level and seed-deterministic (picklable for the runner's
process executor).  This module must not import :mod:`repro.api` — the
registry imports *us*.  Inside the runner's process pool, cells keep the
default ``node_executor="serial"`` (no nested pools); the process-parallel
node fan-out is exercised directly via :func:`repro.fleet.cluster.run_fleet`
in ``tests/test_fleet.py``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.fleet.autoscaler import AutoscalerConfig
from repro.fleet.cluster import FleetConfig, run_fleet
from repro.serve.traffic import ClientPopulation, TenantSpec

DEFAULT_SEED = 2023

#: The fleet tenant mix: eight open-loop services over the four catalog
#: bitstreams, heavier on the cheap accelerators (realistic skew).  All
#: Poisson so the placement axis — not arrival shape — drives the result.
FLEET_TENANTS: Tuple[TenantSpec, ...] = (
    TenantSpec(name="search", accelerator="popcount", weight=0.22, slo_ns=40_000.0),
    TenantSpec(name="feed", accelerator="popcount", weight=0.14, slo_ns=40_000.0),
    TenantSpec(name="rank", accelerator="sort64", weight=0.16, slo_ns=60_000.0),
    TenantSpec(name="dedup", accelerator="sort64", weight=0.10, slo_ns=60_000.0),
    TenantSpec(name="geo", accelerator="tangent", weight=0.13, slo_ns=40_000.0),
    TenantSpec(name="render", accelerator="tangent", weight=0.09, slo_ns=40_000.0),
    TenantSpec(name="routes", accelerator="dijkstra", weight=0.10, slo_ns=80_000.0),
    TenantSpec(name="social", accelerator="dijkstra", weight=0.06, slo_ns=80_000.0),
)

#: Per-epoch multipliers on the thinned rate: a ramp up to the peak and
#: back down — the shape the autoscaler earns its keep on.
DEFAULT_RATE_PROFILE: Tuple[float, ...] = (0.25, 0.5, 1.0, 1.0, 0.5, 0.25)


def fleet_scaling_cell(
    placement: str,
    nodes: int,
    autoscale: bool,
    policy: str = "fcfs",
    clients: int = 1_000_000,
    think_ms: float = 50.0,
    thin_factor: float = 50.0,
    epochs: int = len(DEFAULT_RATE_PROFILE),
    epoch_us: float = 400.0,
    fabrics_per_node: int = 1,
    migrate_watermark: float = 8.0,
    power: bool = False,
    node_executor: str = "serial",
    workers: Optional[int] = None,
    seed: int = DEFAULT_SEED,
) -> List[Dict[str, Any]]:
    population = ClientPopulation(clients=clients, think_ms=think_ms,
                                  thin_factor=thin_factor)
    profile = DEFAULT_RATE_PROFILE
    if epochs != len(profile):
        # Resample the ramp onto the requested epoch count.
        profile = tuple(
            DEFAULT_RATE_PROFILE[min(
                int(index * len(DEFAULT_RATE_PROFILE) / epochs),
                len(DEFAULT_RATE_PROFILE) - 1)]
            for index in range(epochs))
    config = FleetConfig(
        nodes=nodes,
        placement=placement,
        policy=policy,
        fabrics_per_node=fabrics_per_node,
        epochs=epochs,
        epoch_us=epoch_us,
        migrate_watermark=migrate_watermark,
        # Epochs are coarse (one scaling decision per epoch), so the grow
        # watermark sits low — by the time a queue sustains 0.75 deep for a
        # whole epoch the next ramp step will bury the node.
        autoscaler=AutoscalerConfig(
            enabled=autoscale, mode="nodes", min_nodes=1, max_nodes=nodes,
            up_queue_depth=0.75, cooldown_epochs=0),
        power=power,
        node_executor=node_executor,
        workers=workers,
    )
    outcome = run_fleet(
        config, FLEET_TENANTS, total_rate_rps=population.thinned_rps,
        rate_profile=profile, seed=seed,
        extra_columns={
            "placement": placement,
            "nodes": nodes,
            "autoscale": autoscale,
            "policy": policy,
            "clients": clients,
            "offered_mrps": population.offered_rps / 1e6,
            "thinned_krps": population.thinned_rps / 1e3,
        },
    )
    for row in outcome.rows:
        row["scale_events"] = len(outcome.autoscaler.events)
    return outcome.rows


def fleet_scaling_summary(rows: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Reduce the grid to pinned comparisons and the cost/tail pareto front."""
    aggregates = [row for row in rows if row.get("tenant") == "__all__"]
    summary: Dict[str, Any] = {}

    static = [row for row in aggregates if not row.get("autoscale")]
    for count in sorted({row["nodes"] for row in static}):
        cell = {row["placement"]: row for row in static
                if row["nodes"] == count}
        hash_row, affinity = cell.get("hash"), cell.get("affinity")
        if hash_row and affinity and hash_row["p99_latency_us"] > 0:
            summary[f"affinity_p99_vs_hash[{count}n]"] = (
                affinity["p99_latency_us"] / hash_row["p99_latency_us"])
        if hash_row and affinity and hash_row["goodput_krps"] > 0:
            summary[f"affinity_goodput_vs_hash[{count}n]"] = (
                affinity["goodput_krps"] / hash_row["goodput_krps"])

    for row in aggregates:
        if not row.get("autoscale"):
            continue
        peer = next((r for r in static
                     if r["nodes"] == row["nodes"]
                     and r["placement"] == row["placement"]), None)
        if peer is None or peer["node_us"] <= 0 or peer["goodput_krps"] <= 0:
            continue
        label = f"{row['placement']}@{row['nodes']}n"
        summary[f"autoscale_node_us_vs_static[{label}]"] = (
            row["node_us"] / peer["node_us"])
        summary[f"autoscale_goodput_vs_static[{label}]"] = (
            row["goodput_krps"] / peer["goodput_krps"])

    front = pareto_front(aggregates)
    summary["pareto_front"] = [
        f"{row['placement']}@{row['nodes']}n"
        f"{'+as' if row.get('autoscale') else ''}:"
        f" {row['node_us']:.0f}us, p99 {row['p99_latency_us']:.1f}us,"
        f" {row['goodput_krps']:.1f}krps"
        for row in front
    ]
    return summary


def pareto_front(aggregates: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Configurations not dominated on (node_us ↓, p99 ↓, goodput ↑).

    Sorted by cost so the front reads as a curve.  A point is dominated
    when some other point is no worse on all three axes and strictly
    better on at least one.
    """
    def dominates(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
        no_worse = (a["node_us"] <= b["node_us"]
                    and a["p99_latency_us"] <= b["p99_latency_us"]
                    and a["goodput_krps"] >= b["goodput_krps"])
        better = (a["node_us"] < b["node_us"]
                  or a["p99_latency_us"] < b["p99_latency_us"]
                  or a["goodput_krps"] > b["goodput_krps"])
        return no_worse and better

    front = [row for row in aggregates
             if not any(dominates(other, row) for other in aggregates
                        if other is not row)]
    return sorted(front, key=lambda row: (row["node_us"],
                                          row["p99_latency_us"]))
