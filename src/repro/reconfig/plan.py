"""Region-grid provisioning: size one shared fabric for a design set.

Whole-fabric serving gives every accelerator its own minimal device and
reprograms all of it on a switch.  Region-granular serving instead carves
**one shared fabric** into K equal column-band regions and co-locates
designs on contiguous spans.  The sizing question is: how big must a
region be so the design set actually fits?

:meth:`RegionPlan.build` answers it exactly: the minimal per-region tile
capacity ``c*`` such that the sum of per-design span counts
``Σ ceil(tiles_i / c)`` fits in K regions.  That sum is monotone
non-increasing in ``c``, so a binary search finds ``c*``; when even one
region per design cannot fit (more designs than regions) the fallback is
``ceil(max_tiles / K)`` — the whole grid can always hold the biggest
design, and the rest hot-swap through LRU eviction.  A
``fabric_scale < 1`` deliberately under-provisions (capacity pressure →
eviction/fragmentation, the experiment axis), floored so the widest
design still spans at most K regions.

The resulting grid is deterministic in (design set, K, scale): equal
capacities, near-square geometry, and one regioned
:class:`~repro.fpga.bitstream.Bitstream` per design whose
:meth:`~repro.fpga.bitstream.Bitstream.for_regions` slices are what a
hot swap actually transfers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.fpga.bitstream import Bitstream
from repro.fpga.fabric import FabricInstance, FabricSpec
from repro.reconfig.placement import PlacementError


def minimal_region_capacity(tiles: Dict[str, int], regions: int) -> int:
    """Smallest per-region tile capacity fitting the whole design set.

    Returns the minimal ``c`` with ``Σ ceil(tiles_i / c) <= regions``, or
    ``ceil(max_tiles / regions)`` when no ``c`` achieves it (more designs
    than regions) — the grid then holds any *single* design and the rest
    rotate through eviction.
    """
    if not tiles:
        raise PlacementError("cannot provision a region grid for zero designs")
    if regions < 1:
        raise PlacementError(f"need at least one region, got {regions}")
    if any(count < 1 for count in tiles.values()):
        raise PlacementError(f"tile counts must be positive: {tiles}")
    biggest = max(tiles.values())

    def spans(capacity: int) -> int:
        return sum(-(-count // capacity) for count in tiles.values())

    if spans(biggest) > regions:
        return -(-biggest // regions)
    low, high = 1, biggest
    while low < high:
        mid = (low + high) // 2
        if spans(mid) <= regions:
            high = mid
        else:
            low = mid + 1
    return low


@dataclass(frozen=True)
class RegionPlan:
    """One shared fabric carved into K equal regions, plus per-design images."""

    regions: int
    fabric: FabricInstance
    #: Tiles per region (equal by construction).
    capacities: Tuple[int, ...]
    #: Regioned full-fabric image per design (``for_regions`` cuts partials).
    images: Dict[str, Bitstream]
    #: Tile footprint per design (what the allocator bins).
    tiles: Dict[str, int]
    fabric_scale: float

    @property
    def region_capacity(self) -> int:
        return self.capacities[0]

    def span_needed(self, name: str) -> int:
        """Contiguous regions design ``name`` occupies on this grid."""
        return max(1, -(-self.tiles[name] // self.region_capacity))

    @classmethod
    def build(cls, accelerators: Dict[str, "object"], regions: int,
              fabric_scale: float = 1.0,
              spec: FabricSpec = None) -> "RegionPlan":
        """Provision the shared grid for materialized accelerators.

        ``accelerators`` maps name → an object with ``tiles_needed`` and
        ``spec.design`` (a :class:`~repro.serve.catalog.ServedAccelerator`);
        keeping the contract structural avoids a serve ↔ reconfig import
        cycle.
        """
        if regions < 2:
            raise PlacementError(
                f"a region plan needs >= 2 regions, got {regions} "
                "(regions=1 is the whole-fabric path)")
        if fabric_scale <= 0:
            raise PlacementError(
                f"fabric_scale must be positive, got {fabric_scale}")
        spec = spec or FabricSpec()
        tiles = {name: acc.tiles_needed for name, acc in accelerators.items()}
        ideal = minimal_region_capacity(tiles, regions)
        # The widest design must span at most the whole grid, whatever the
        # scale — otherwise it could never be served at all.
        floor = -(-max(tiles.values()) // regions)
        capacity = max(math.ceil(ideal * fabric_scale), floor)
        # Near-square geometry: rows ~ sqrt of the total tile budget, then
        # whole columns per band so region bits stay tile-aligned.
        rows = max(1, math.ceil(math.sqrt(capacity * regions)))
        cols_per_band = max(1, -(-capacity // rows))
        fabric = FabricInstance(spec, columns=regions * cols_per_band, rows=rows)
        capacities = fabric.region_tile_capacities(regions)
        assert len(set(capacities)) == 1 and capacities[0] >= capacity
        images = {
            name: Bitstream.generate(acc.spec.design, fabric, regions=regions)
            for name, acc in accelerators.items()
        }
        return cls(regions=regions, fabric=fabric, capacities=capacities,
                   images=images, tiles=tiles, fabric_scale=fabric_scale)
