"""repro.reconfig — region-granular partial reconfiguration.

PRGA-style region grids: one shared fabric carved into K equal column-band
regions with per-region configuration chains.  :class:`RegionPlan` sizes
the grid for a design set, :class:`RegionAllocator` places designs on
contiguous spans (first fit, LRU eviction, pin counts), and the serve
layer hot-swaps individual spans through the real
:meth:`~repro.core.control_hub.ControlHub.program` path — paying only for
the changed regions' bits.  See ``docs/reconfig.md``.

The ``reconfig`` experiment lives in :mod:`repro.reconfig.experiments`
(imported by the registry, not here, mirroring :mod:`repro.chaos`).
"""

from repro.reconfig.placement import (
    Placement,
    PlacementError,
    RegionAllocator,
    pack_designs,
    sort_key,
)
from repro.reconfig.plan import RegionPlan, minimal_region_capacity

__all__ = [
    "Placement",
    "PlacementError",
    "RegionAllocator",
    "RegionPlan",
    "minimal_region_capacity",
    "pack_designs",
    "sort_key",
]
