"""Exception handler: timeout and parity monitoring of eFPGA outputs.

"The exception handler employs timeout and parity checks to monitor eFPGA
outputs.  When an exception is detected, e.g. due to an RTL or software bug,
it asserts an error code and deactivates all Memory Hubs in the same Duet
Adapter.  Once deactivated, the Memory Hubs stop accepting any memory
requests from the eFPGA, but the Proxy Caches remain functional [...] This
mechanism prevents accelerator bugs from halting the system at the
micro-architecture level." (Sec. II-B)
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional

from repro.sim import ClockDomain, Simulator, StatSet


class DuetError(RuntimeError):
    """Raised by software-facing APIs when the adapter is in an error state."""


class ErrorCode(enum.IntEnum):
    """Error codes latched by the exception handler (0 means no error)."""

    NONE = 0
    TIMEOUT = 1
    PARITY = 2
    BITSTREAM_CORRUPT = 3
    PAGE_FAULT_FATAL = 4
    PROTOCOL = 5


class ExceptionHandler:
    """Monitors eFPGA-originated traffic and latches the first error seen."""

    def __init__(
        self,
        sim: Simulator,
        domain: ClockDomain,
        name: str = "exc",
        timeout_cycles: int = 20_000,
    ) -> None:
        self.sim = sim
        self.domain = domain
        self.name = name
        self.timeout_cycles = timeout_cycles
        self.error_code = ErrorCode.NONE
        self.error_time_ns: Optional[float] = None
        self._on_error: List[Callable[[ErrorCode], None]] = []
        self.stats = StatSet(f"{name}.stats")

    # ------------------------------------------------------------------ #
    # Configuration and observation
    # ------------------------------------------------------------------ #
    @property
    def timeout_ns(self) -> float:
        return self.timeout_cycles * self.domain.period_ns

    def set_timeout_cycles(self, cycles: int) -> None:
        if cycles <= 0:
            raise ValueError("timeout must be positive")
        self.timeout_cycles = cycles

    def on_error(self, callback: Callable[[ErrorCode], None]) -> None:
        """Register a callback fired once when an error is latched."""
        self._on_error.append(callback)

    @property
    def has_error(self) -> bool:
        return self.error_code is not ErrorCode.NONE

    def clear(self) -> None:
        """Clear a previously-logged error code (feature-switch action)."""
        self.error_code = ErrorCode.NONE
        self.error_time_ns = None

    # ------------------------------------------------------------------ #
    # Checks
    # ------------------------------------------------------------------ #
    def raise_error(self, code: ErrorCode) -> None:
        """Latch ``code`` (first error wins) and notify observers."""
        self.stats.counter(f"error_{code.name.lower()}").increment()
        if self.has_error:
            return
        self.error_code = code
        self.error_time_ns = self.sim.now
        for callback in self._on_error:
            callback(code)

    def check_parity(self, payload) -> bool:
        """Parity check on an eFPGA output; latches PARITY on failure.

        The behavioural model flags corruption explicitly: any payload with
        a truthy ``corrupt`` attribute or dictionary entry fails the check.
        """
        corrupt = False
        if isinstance(payload, dict):
            corrupt = bool(payload.get("corrupt", False))
        else:
            corrupt = bool(getattr(payload, "corrupt", False))
        if corrupt:
            self.raise_error(ErrorCode.PARITY)
            return False
        return True

    def guard(self, event, timeout_cycles: Optional[int] = None):
        """Wait for ``event`` but latch TIMEOUT if it takes too long.

        Returns the event's value, or ``None`` after a timeout.  Used by the
        Memory Hub around responses it expects from the eFPGA and by the
        CPU-bound blocking FIFO reads.
        """
        cycles = timeout_cycles if timeout_cycles is not None else self.timeout_cycles
        deadline = self.sim.now + cycles * self.domain.period_ns
        timer = self.sim.event(f"{self.name}.timer")
        self.sim.schedule_at(deadline, lambda: None if timer.triggered else timer.succeed(None))
        race = self.sim.event(f"{self.name}.race")

        def _finish(value, source):
            if not race.triggered:
                race.succeed((source, value))

        event.add_callback(lambda value: _finish(value, "event"))
        timer.add_callback(lambda value: _finish(value, "timeout"))
        source, value = yield race
        if source == "timeout":
            self.raise_error(ErrorCode.TIMEOUT)
            return None
        return value
