"""Transaction-level mesh network with per-link contention.

Each directed link carries one flit per NoC cycle and serves messages in
arrival order; each of the three planes has its own set of link resources.
A message of ``F`` flits crossing ``H`` hops therefore takes roughly
``H * (router_latency + F)`` cycles when the network is idle, and longer
under contention — enough fidelity for the bandwidth and scalability studies
of Sec. V-C without simulating individual flits.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.noc.message import MessagePlane, NocMessage
from repro.noc.topology import Mesh2D
from repro.sim import ClockDomain, Delay, Event, Simulator, StatSet

#: Signature of an endpoint's message handler.
MessageHandler = Callable[[NocMessage], None]


class NocEndpoint:
    """Mixin-ish helper describing what the network expects from an endpoint."""

    def handle_noc_message(self, message: NocMessage) -> None:  # pragma: no cover
        raise NotImplementedError


class MeshNetwork:
    """A 2D-mesh NoC in the system (fast) clock domain.

    Endpoints attach a handler per node; :meth:`send` injects a message and
    returns an :class:`Event` that fires at delivery time (most senders
    ignore it).  Delivery calls the destination handler synchronously at the
    delivery instant, so handlers should only enqueue work or spawn
    processes, never block.
    """

    def __init__(
        self,
        sim: Simulator,
        domain: ClockDomain,
        width: int,
        height: int,
        router_latency_cycles: int = 1,
        name: str = "noc",
    ) -> None:
        self.sim = sim
        self.domain = domain
        self.topology = Mesh2D(width, height)
        self.router_latency_cycles = router_latency_cycles
        self.name = name
        self._handlers: Dict[int, MessageHandler] = {}
        # (plane, src, dst) -> time the link becomes free
        self._link_free_at: Dict[Tuple[int, int, int], float] = {}
        self.stats = StatSet(f"{name}.stats")
        # The per-message stat objects, resolved once instead of per send.
        self._messages_sent = self.stats.counter("messages_sent")
        self._flits_sent = self.stats.counter("flits_sent")
        self._link_wait_ns = self.stats.histogram("link_wait_ns")
        self._message_latency_ns = self.stats.histogram("message_latency_ns")

    # ------------------------------------------------------------------ #
    # Endpoint management
    # ------------------------------------------------------------------ #
    def attach(self, node: int, handler: MessageHandler) -> None:
        """Register the message handler for ``node`` (exactly one per node)."""
        self.topology._check_node(node)
        if node in self._handlers:
            raise ValueError(f"node {node} already has a handler attached")
        self._handlers[node] = handler

    def detach(self, node: int) -> None:
        self._handlers.pop(node, None)

    # ------------------------------------------------------------------ #
    # Message injection
    # ------------------------------------------------------------------ #
    def send(self, message: NocMessage) -> Event:
        """Inject ``message``; returns an event fired at delivery."""
        if message.dst not in self._handlers:
            raise ValueError(f"no handler attached at destination node {message.dst}")
        delivered = Event(self.sim, "delivered")
        message.stamp("injected", self.sim.now)
        self._messages_sent.value += 1
        self._flits_sent.value += message.flits
        self.sim.process(self._transfer(message, delivered), name="noc-xfer")
        return delivered

    def _transfer(self, message: NocMessage, delivered: Event):
        sim = self.sim
        cycle = self.domain.period_ns
        link_free_at = self._link_free_at
        route = self.topology.route(message.src, message.dst)
        # Injection is aligned to the NoC clock even for local (same-tile)
        # delivery: the endpoint's NoC interface still clocks the packet in.
        yield self.domain.align()
        transfer_ns = (self.router_latency_cycles + message.flits) * cycle
        plane = int(message.plane)
        for src, dst in route:
            key = (plane, src, dst)
            # Reserve the link in arrival order: the message occupies the link
            # from the later of "now" and "link free", for its serialization
            # time.  Reserving before waiting keeps per-link FIFO order even
            # when many messages are queued behind the same link.
            now = sim.now
            start = link_free_at.get(key, 0.0)
            if start > now:
                self._link_wait_ns.record(start - now)
            else:
                start = now
            link_free_at[key] = start + transfer_ns
            yield Delay(start + transfer_ns - now)
        if not route:
            # Local delivery still pays one router traversal.
            yield Delay(self.router_latency_cycles * cycle)
        message.stamp("delivered", sim.now)
        self._message_latency_ns.record(message.noc_latency())
        handler = self._handlers.get(message.dst)
        if handler is None:
            raise RuntimeError(f"handler for node {message.dst} detached mid-flight")
        handler(message)
        delivered.succeed(sim.now)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def node_count(self) -> int:
        return self.topology.node_count

    def mean_latency_ns(self) -> float:
        return self.stats.histogram("message_latency_ns").mean

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MeshNetwork {self.topology.width}x{self.topology.height} @{self.domain.freq_mhz}MHz>"
