"""Kernel-semantics tests for the fast-path simulator.

These pin down the ordering invariants the immediate-run deque and the
integer-picosecond timeline must preserve (see docs/architecture.md):
same-timestamp FIFO across heap and deque, event waiter ordering,
``stop_when`` firing between zero-delay callbacks, explicit failure
propagation, and a golden-file determinism check on fig9.
"""

import json
import os

import pytest

from repro.sim import Delay, Event, SimulationError, Simulator

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")


# --------------------------------------------------------------------------- #
# Same-instant ordering
# --------------------------------------------------------------------------- #
def test_mixed_heap_and_immediate_keep_global_fifo_order():
    """Heap entries at the current instant interleave with zero-delay
    callbacks exactly in the order the schedule calls were made."""
    sim = Simulator()
    order = []

    def at_five():
        # Runs first at t=5: its zero-delay work must run *after* h1..h3,
        # which were scheduled (and therefore sequenced) earlier.
        order.append("cb")
        sim.schedule(0.0, order.append, "z1")
        sim.schedule(0.0, order.append, "z2")

    sim.schedule(5.0, at_five)
    sim.schedule(5.0, order.append, "h1")
    sim.schedule(5.0, order.append, "h2")
    sim.schedule(5.0, order.append, "h3")
    sim.run()
    assert order == ["cb", "h1", "h2", "h3", "z1", "z2"]


def test_zero_delay_schedule_at_matches_schedule_zero():
    sim = Simulator()
    order = []

    def kick():
        sim.schedule(0.0, order.append, "a")
        sim.schedule_at(sim.now, order.append, "b")
        sim.schedule(0.0, order.append, "c")

    sim.schedule(1.0, kick)
    sim.run()
    assert order == ["a", "b", "c"]


def test_event_waiters_fire_in_registration_order():
    sim = Simulator()
    event = sim.event("go")
    order = []

    def waiter(tag):
        value = yield event
        order.append((tag, value))

    # Mix plain callbacks and process waiters; registration order must hold.
    sim.process(waiter("p1"))
    sim.run()  # p1 reaches its yield and registers
    event.add_callback(lambda value: order.append(("cb", value)))
    sim.process(waiter("p2"))
    sim.run()  # p2 registers after the plain callback
    event.succeed(7)
    sim.run()
    assert order == [("p1", 7), ("cb", 7), ("p2", 7)]


def test_triggered_event_wakes_later_waiters_immediately():
    sim = Simulator()
    event = sim.event()
    event.succeed("late")

    def waiter():
        value = yield event
        return value

    process = sim.process(waiter())
    sim.run()
    assert process.done.value == "late"


def test_stop_when_fires_between_immediate_callbacks():
    """stop_when is evaluated after *every* callback, including zero-delay
    ones drained from the immediate deque within a single instant."""
    sim = Simulator()
    seen = []
    for tag in ("a", "b", "c", "d"):
        sim.schedule(0.0, seen.append, tag)
    sim.run(stop_when=lambda: len(seen) == 2)
    assert seen == ["a", "b"]
    assert sim.pending_events == 2
    sim.run()
    assert seen == ["a", "b", "c", "d"]


def test_until_does_not_run_future_events_but_drains_current_instant():
    sim = Simulator()
    seen = []

    def spawner():
        seen.append("start")
        sim.schedule(0.0, seen.append, "same-instant")
        yield Delay(10.0)
        seen.append("future")

    sim.process(spawner())
    sim.run(until=5.0)
    assert seen == ["start", "same-instant"]
    assert sim.now == 5.0
    sim.run()
    assert seen == ["start", "same-instant", "future"]
    assert sim.now == 10.0


# --------------------------------------------------------------------------- #
# Integer-picosecond timeline
# --------------------------------------------------------------------------- #
def test_now_ps_tracks_now_in_integer_picoseconds():
    sim = Simulator()
    sim.schedule(1.5, lambda: None)
    sim.run()
    assert sim.now == 1.5
    assert sim.now_ps == 1500

    sim.schedule(0.001, lambda: None)  # one picosecond
    sim.run()
    assert sim.now_ps == 1501
    assert sim.now == pytest.approx(1.501)


def test_float_ns_precision_preserved_through_the_api():
    """Sub-picosecond float structure of the model arithmetic survives: the
    kernel must not quantize the times it reports."""
    sim = Simulator()
    period = 1000.0 / 282.0  # an irrational-ish accelerator period
    times = []
    for cycle in range(1, 4):
        sim.schedule_at(cycle * period, lambda: times.append(sim.now))
    sim.run()
    assert times == [period, 2 * period, 3 * period]


def test_sub_picosecond_events_keep_distinct_order():
    sim = Simulator()
    order = []
    base = 5.0
    just_after = 5.0 + 5e-13  # same picosecond, later float time
    sim.schedule_at(just_after, order.append, "late")
    sim.schedule_at(base, order.append, "early")
    sim.run()
    assert order == ["early", "late"]


# --------------------------------------------------------------------------- #
# Failure propagation
# --------------------------------------------------------------------------- #
def test_unsupported_command_fails_done_and_raises():
    sim = Simulator()

    def bad():
        yield "not-a-command"

    process = sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()
    assert process.finished
    assert process.failed
    assert process.done.failed
    assert isinstance(process.done.value, SimulationError)


def test_waiter_of_failed_process_gets_exception_thrown_not_returned():
    sim = Simulator()
    witnessed = []

    def bad():
        yield "not-a-command"

    def waiter(child):
        try:
            value = yield child
            witnessed.append(("value", value))
        except SimulationError as error:
            witnessed.append(("raised", type(error).__name__))

    child = sim.process(bad())
    sim.process(waiter(child))
    with pytest.raises(SimulationError):
        sim.run()
    sim.run()  # deliver the failure to the waiter
    assert witnessed == [("raised", "SimulationError")]


def test_registered_waiter_consumes_failure_without_aborting_run():
    """When somebody is already waiting on a process's done event, its
    failure is delivered to the waiter only — run() keeps going and the
    exception is not raised a second time."""
    sim = Simulator()
    outcome = []

    def child():
        yield Delay(5.0)
        raise ValueError("boom")

    def parent(child_process):
        try:
            yield child_process.done
            outcome.append("no error")
        except ValueError as error:
            outcome.append(f"caught {error}")
        yield Delay(1.0)
        return "recovered"

    child_process = sim.process(child())
    parent_process = sim.process(parent(child_process))
    sim.run()  # must not raise: the parent consumes the failure
    assert outcome == ["caught boom"]
    assert parent_process.done.value == "recovered"
    assert child_process.failed and child_process.done.failed


def test_generator_exception_fails_done_event():
    sim = Simulator()

    def boom():
        yield Delay(1.0)
        raise ValueError("boom")

    process = sim.process(boom())
    with pytest.raises(ValueError):
        sim.run()
    assert process.failed
    assert isinstance(process.done.value, ValueError)


def test_event_fail_throws_into_waiting_process():
    sim = Simulator()
    event = sim.event("doomed")
    outcome = []

    def waiter():
        try:
            yield event
        except RuntimeError as error:
            outcome.append(str(error))
            return "handled"

    process = sim.process(waiter())
    sim.run()
    event.fail(RuntimeError("hardware error"))
    sim.run()
    assert outcome == ["hardware error"]
    assert process.done.value == "handled"
    assert not process.failed  # the process recovered


def test_event_fail_requires_an_exception_and_is_one_shot():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")
    event.fail(RuntimeError("x"))
    assert event.triggered and event.failed and not event.ok
    with pytest.raises(RuntimeError):
        event.succeed(1)


def test_run_process_reraises_failure():
    sim = Simulator()

    def bad():
        yield "garbage"

    with pytest.raises(SimulationError):
        sim.run_process(bad())


# --------------------------------------------------------------------------- #
# Determinism golden: fig9 must be bit-identical to the recorded seed run
# --------------------------------------------------------------------------- #
def test_fig9_results_match_golden_file():
    """Guards the integer-picosecond switch (and any future kernel change):
    the full fig9 grid must reproduce the seed kernel's output exactly."""
    from repro.api.runner import Runner

    with open(os.path.join(DATA_DIR, "fig9_golden.json")) as handle:
        golden = json.load(handle)
    rows = Runner().run("fig9").to_dicts()
    normalized = json.loads(json.dumps(rows, sort_keys=True))
    assert normalized == golden


def test_multicore_coherence_is_hash_seed_independent():
    """Invalidation fan-out order must not depend on PYTHONHASHSEED: the
    directory sorts its sharer set before sending Inv messages."""
    from repro.workloads import bfs
    from repro.workloads.common import WorkloadParams

    first = bfs.run_cpu(WorkloadParams(num_processors=4))
    second = bfs.run_cpu(WorkloadParams(num_processors=4))
    assert first.runtime_ns == second.runtime_ns
    assert first.correct and second.correct
