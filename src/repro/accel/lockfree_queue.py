"""Hardware lock-free frontier queues for parallel BFS (hardware augmentation).

Sec. V-D: "multiple hardware, lock-free queues ... alleviate the
synchronization overhead in parallel Breadth-First Search.  The processors
traverse the graph in barrier-synchronized steps and use the queues to store
the current and next search frontiers."  The processor-only baseline
arbitrates its shared frontier arrays with locks; with the widget, a push or
pop is a single MMIO access to a shadow-register FIFO and never bounces a
lock cache line between cores.

Protocol:
* processors push discovered vertices into the *next* frontier with a write
  to the FPGA-bound FIFO;
* at the end of a level, core 0 writes ``SWAP_COMMAND``; the widget swaps
  the two queues and streams the new *current* frontier into the CPU-bound
  FIFO, terminated by one ``END_OF_FRONTIER`` sentinel per participating
  core (so every core's final blocking read completes);
* an empty frontier after a swap is reported by sending only sentinels, and
  the total number of streamed vertices is mirrored in a plain register so
  software can detect termination without popping.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.core.registers import RegisterKind, RegisterSpec
from repro.fpga.accelerator import SoftAccelerator
from repro.fpga.synthesis import AcceleratorDesign

STOP_COMMAND = (1 << 62)
SWAP_COMMAND = (1 << 61)
END_OF_FRONTIER = (1 << 60)

REG_PUSH = 0        # FPGA-bound FIFO: vertex ids for the next frontier / commands
REG_POP = 1         # CPU-bound FIFO: current-frontier vertex ids + sentinels
REG_LEVEL_SIZE = 2  # plain: number of vertices streamed at the last swap
REG_NUM_CORES = 3   # plain: how many cores participate (sentinel count)


def register_layout() -> List[RegisterSpec]:
    return [
        RegisterSpec(REG_PUSH, RegisterKind.FPGA_BOUND_FIFO, "push", depth=128),
        RegisterSpec(REG_POP, RegisterKind.CPU_BOUND_FIFO, "pop", depth=128),
        RegisterSpec(REG_LEVEL_SIZE, RegisterKind.PLAIN, "level_size"),
        RegisterSpec(REG_NUM_CORES, RegisterKind.PLAIN, "num_cores"),
    ]


class FrontierQueueAccelerator(SoftAccelerator):
    """Double-buffered hardware frontier queues for level-synchronous BFS."""

    DESIGN = AcceleratorDesign(
        name="bfs",
        luts=1100,
        ffs=1500,
        bram_kbits=96,
        dsps=0,
        logic_depth=8,
        routing_pressure=0.3,
        mem_ports=0,
        description="Hardware lock-free current/next frontier queues for BFS",
    )

    #: Cycles per queue operation (BRAM pointer update).
    QUEUE_CYCLES = 1

    def __init__(self, name: str = "bfs-queues") -> None:
        super().__init__(name)
        self.pushes = 0
        self.swaps = 0

    def behavior(self):
        next_frontier: Deque[int] = deque()
        while True:
            command = yield from self.regs.pop_request(REG_PUSH)
            yield self.cycles(self.QUEUE_CYCLES)
            if command == STOP_COMMAND:
                return self.pushes
            if command == SWAP_COMMAND:
                self.swaps += 1
                num_cores = yield from self.regs.read(REG_NUM_CORES)
                num_cores = max(1, num_cores)
                current = next_frontier
                next_frontier = deque()
                yield from self.regs.write(REG_LEVEL_SIZE, len(current))
                while current:
                    vertex = current.popleft()
                    yield self.cycles(self.QUEUE_CYCLES)
                    yield from self.regs.push_response(REG_POP, vertex)
                for _ in range(num_cores):
                    yield from self.regs.push_response(REG_POP, END_OF_FRONTIER)
                self.stats.counter("swaps").increment()
            else:
                next_frontier.append(command)
                self.pushes += 1
                self.stats.counter("pushes").increment()
