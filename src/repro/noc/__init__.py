"""Network-on-chip substrate.

Dolly (Sec. IV of the paper) is built on the OpenPiton P-Mesh NoC: a 2D mesh
with XY routing, three physical planes (request / forward-response / data in
the original), and point-to-point ordered delivery — a property the Proxy
Cache's no-acknowledgement protocol explicitly relies on.  This package
provides a transaction-level model of that network: deterministic XY routes,
per-link serialization for contention, per-plane resources, and in-order
delivery between any (source, destination) pair.
"""

from repro.noc.message import NocMessage, MessagePlane
from repro.noc.topology import Mesh2D
from repro.noc.network import MeshNetwork, NocEndpoint
from repro.noc.port import NocPort, TileRouter

__all__ = [
    "NocMessage",
    "MessagePlane",
    "Mesh2D",
    "MeshNetwork",
    "NocEndpoint",
    "NocPort",
    "TileRouter",
]
