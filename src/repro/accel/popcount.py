"""Popcount accelerator (Dolly-P1M1, fine-grained acceleration).

Counts the ones in a 512-bit vector.  The Ariane core lacks the RISC-V
BitManip extension, so the processor-only baseline uses a byte lookup table;
the accelerator is hand-written Verilog in the paper and uses one Memory Hub
to load the bit vector from coherent memory.  Software passes the vector's
base address through a plain shadow register and kicks the accelerator
through an FPGA-bound FIFO; the count returns through a CPU-bound FIFO.
"""

from __future__ import annotations

from typing import List

from repro.core.registers import RegisterKind, RegisterSpec
from repro.fpga.accelerator import SoftAccelerator
from repro.fpga.synthesis import AcceleratorDesign

#: Vector length in bits and the derived memory footprint.
VECTOR_BITS = 512
VECTOR_BYTES = VECTOR_BITS // 8
WORD_BYTES = 8
LINE_BYTES = 16

STOP_COMMAND = (1 << 62)

REG_COMMAND = 0      # FPGA-bound FIFO: vector index to count (or STOP_COMMAND)
REG_RESULT = 1       # CPU-bound FIFO: popcount result
REG_BASE_ADDR = 2    # plain shadow register: base address of vector 0
REG_STRIDE = 3       # plain shadow register: byte stride between vectors


def register_layout() -> List[RegisterSpec]:
    return [
        RegisterSpec(REG_COMMAND, RegisterKind.FPGA_BOUND_FIFO, "command"),
        RegisterSpec(REG_RESULT, RegisterKind.CPU_BOUND_FIFO, "result"),
        RegisterSpec(REG_BASE_ADDR, RegisterKind.PLAIN, "base_addr"),
        RegisterSpec(REG_STRIDE, RegisterKind.PLAIN, "stride"),
    ]


class PopcountAccelerator(SoftAccelerator):
    """Loads a 512-bit vector through its Memory Hub and counts the ones."""

    DESIGN = AcceleratorDesign(
        name="popcount",
        luts=2200,
        ffs=2600,
        bram_kbits=64,
        dsps=0,
        logic_depth=12,
        routing_pressure=0.35,
        mem_ports=1,
        description="512-bit popcount over coherent memory (hand-written Verilog)",
    )

    #: Adder-tree latency once all words have arrived.
    REDUCE_CYCLES = 3

    def __init__(self, name: str = "popcount") -> None:
        super().__init__(name)
        self.processed = 0

    def behavior(self):
        while True:
            command = yield from self.regs.pop_request(REG_COMMAND)
            if command == STOP_COMMAND:
                return self.processed
            base = yield from self.regs.read(REG_BASE_ADDR)
            stride = yield from self.regs.read(REG_STRIDE)
            vector_addr = base + command * (stride or VECTOR_BYTES)
            count = 0
            # Pipelined line loads: issue all four line requests back to back,
            # then reduce as the data returns.
            pending = []
            for line_offset in range(0, VECTOR_BYTES, LINE_BYTES):
                event = yield from self.mem.issue("load_line", vector_addr + line_offset)
                pending.append(event)
            for event in pending:
                words = yield from self.mem.wait(event)
                for word in words:
                    count += bin(word & 0xFFFF_FFFF_FFFF_FFFF).count("1")
                yield self.cycles(1)
            yield self.cycles(self.REDUCE_CYCLES)
            yield from self.regs.push_response(REG_RESULT, count)
            self.processed += 1
            self.stats.counter("vectors").increment()
