"""Performance benchmarks and the tracked perf baseline (``BENCH_kernel.json``).

``python -m repro perf`` runs this suite, writes the report, and —
given ``--baseline`` — fails on gated regressions.  See
``docs/performance.md`` for the workflow and schema.
"""

from repro.perf.harness import (
    DEFAULT_GATES,
    DEFAULT_TOLERANCE,
    SCHEMA,
    BenchSpec,
    Comparison,
    compare_reports,
    format_comparisons,
    has_gated_regression,
    load_report,
    run_suite,
    write_report,
)
from repro.perf import endtoend, micro

#: Default output filename for the tracked baseline artifact.
BENCH_FILENAME = "BENCH_kernel.json"

#: The standard suite, in execution order.  ``kernel_events_per_sec`` is the
#: headline (and CI-gated) number.
SUITE = [
    # The microbenchmarks keep identical problem sizes in quick mode (only
    # the repeat count drops) so a --quick CI run compares apples-to-apples
    # against a committed full-mode baseline.
    BenchSpec(
        name="kernel_events_per_sec",
        fn=micro.kernel_throughput,
        unit="events/s",
        params={"iterations": 30_000},
        repeats=5,
        quick_repeats=3,
    ),
    BenchSpec(
        name="kernel_zero_delay_events_per_sec",
        fn=micro.kernel_zero_delay_throughput,
        unit="events/s",
        params={"iterations": 50_000},
        repeats=5,
        quick_repeats=3,
    ),
    BenchSpec(
        name="kernel_timed_events_per_sec",
        fn=micro.kernel_timed_throughput,
        unit="events/s",
        params={"iterations": 30_000, "processes": 4},
        repeats=5,
        quick_repeats=3,
    ),
    BenchSpec(
        name="channel_handoff_items_per_sec",
        fn=micro.channel_handoff,
        unit="items/s",
        params={"items": 20_000},
    ),
    BenchSpec(
        name="noc_hop_messages_per_sec",
        fn=micro.noc_hop_throughput,
        unit="messages/s",
        params={"messages": 2_000},
    ),
    # The gated NoC number: serialized messages across the 8x8 mesh
    # diagonal (14 hops), the configuration the batched link reservation
    # was sized against.  The per-topology variants below track the same
    # workload on the other fabrics (informational).
    BenchSpec(
        name="noc_messages_per_sec",
        fn=micro.noc_message_throughput,
        unit="messages/s",
        params={"messages": 2_000, "width": 8, "height": 8, "topology": "mesh"},
    ),
    # The gated hooks-on twin of noc_messages_per_sec: identical workload
    # with a live PowerProbe attached, so the energy hooks' hot-path cost
    # is measured (and gated) directly.  BENCH_power.json (CI artifact)
    # collects this and energy_samples_per_sec.
    BenchSpec(
        name="noc_messages_per_sec_hooks_on",
        fn=micro.noc_message_throughput,
        unit="messages/s",
        params={"messages": 2_000, "width": 8, "height": 8, "topology": "mesh",
                "power_hooks": True},
    ),
    BenchSpec(
        name="energy_samples_per_sec",
        fn=micro.energy_sample_rate,
        unit="samples/s",
        params={"samples": 20_000},
    ),
    # The gated serving number: requests served per wall second through the
    # admission queue, affinity policy, programming engine and eFPGA clock
    # domain on the duo tenant mix (BENCH_serve.json CI artifact).
    BenchSpec(
        name="serve_requests_per_sec",
        fn=micro.serve_request_throughput,
        unit="requests/s",
        params={"duration_us": 4_000.0, "arrival_rate_krps": 250.0,
                "policy": "affinity"},
    ),
    # The gated tracing-on twin of serve_requests_per_sec: identical
    # workload with a live repro.obs Tracer attached, so the lifecycle
    # hooks' hot-path cost is measured (and gated) directly — same
    # pattern as noc_messages_per_sec_hooks_on (BENCH_obs.json CI
    # artifact).
    BenchSpec(
        name="serve_requests_per_sec_tracing_on",
        fn=micro.serve_request_throughput,
        unit="requests/s",
        params={"duration_us": 4_000.0, "arrival_rate_krps": 250.0,
                "policy": "affinity", "tracing": True},
    ),
    # The gated region-granular serving number: the duo workload on one
    # shared 4-region fabric under the affinity policy — allocator, span
    # hot swaps and partial-image programming on the measured path
    # (BENCH_reconfig.json CI artifact).
    BenchSpec(
        name="reconfig_requests_per_sec",
        fn=micro.reconfig_request_throughput,
        unit="requests/s",
        params={"duration_us": 4_000.0, "arrival_rate_krps": 250.0,
                "policy": "affinity", "regions": 4},
    ),
    # The gated fleet number: requests served per wall second through the
    # cluster layer — placement, the epoch driver, per-node serving and
    # the deterministic merge (BENCH_fleet.json CI artifact).
    BenchSpec(
        name="fleet_requests_per_sec",
        fn=micro.fleet_request_throughput,
        unit="requests/s",
        params={"nodes": 4, "epochs": 3, "epoch_us": 400.0,
                "rate_krps": 400.0, "placement": "affinity"},
        repeats=3,
        quick_repeats=1,
    ),
    # The gated monitor-on twin of fleet_requests_per_sec: identical
    # workload with live 100us telemetry windows on every node and the
    # default alert rules evaluated on the merged stream each epoch —
    # the observability layer's hot-path cost, gated like the tracing-on
    # and power hooks-on twins (BENCH_obs.json CI artifact).
    BenchSpec(
        name="fleet_requests_per_sec_monitor_on",
        fn=micro.fleet_request_throughput,
        unit="requests/s",
        params={"nodes": 4, "epochs": 3, "epoch_us": 400.0,
                "rate_krps": 400.0, "placement": "affinity",
                "monitoring": True},
        repeats=3,
        quick_repeats=1,
    ),
    # The gated chaos number: the fleet path under injected faults with
    # recovery on — spare promotion, failover re-placement, replay bursts
    # and image scrubbing included (BENCH_chaos.json CI artifact).
    BenchSpec(
        name="chaos_requests_per_sec",
        fn=micro.chaos_request_throughput,
        unit="requests/s",
        params={"nodes": 3, "spares": 1, "epochs": 4, "epoch_us": 400.0,
                "rate_krps": 300.0, "fault_rate": 2.0},
        repeats=3,
        quick_repeats=1,
    ),
    BenchSpec(
        name="noc_messages_per_sec_torus",
        fn=micro.noc_message_throughput,
        unit="messages/s",
        params={"messages": 2_000, "width": 8, "height": 8, "topology": "torus"},
    ),
    BenchSpec(
        name="noc_messages_per_sec_ring",
        fn=micro.noc_message_throughput,
        unit="messages/s",
        params={"messages": 2_000, "width": 8, "height": 8, "topology": "ring"},
    ),
    BenchSpec(
        name="noc_messages_per_sec_crossbar",
        fn=micro.noc_message_throughput,
        unit="messages/s",
        params={"messages": 2_000, "width": 8, "height": 8, "topology": "crossbar"},
    ),
    BenchSpec(
        name="fig9_wall_seconds",
        fn=endtoend.fig9_wall_seconds,
        unit="s",
        direction="lower",
        repeats=2,
        quick_repeats=1,
        quick_params={"mechanisms": ("shadow_reg",), "frequencies": (100.0,)},
    ),
    BenchSpec(
        name="fig11_wall_seconds",
        fn=endtoend.fig11_wall_seconds,
        unit="s",
        direction="lower",
        repeats=2,
        quick_repeats=1,
        quick_params={"processors": (1, 2), "accesses_per_processor": 8},
    ),
]

__all__ = [
    "BENCH_FILENAME",
    "SUITE",
    "BenchSpec",
    "Comparison",
    "DEFAULT_GATES",
    "DEFAULT_TOLERANCE",
    "SCHEMA",
    "compare_reports",
    "format_comparisons",
    "has_gated_regression",
    "load_report",
    "run_suite",
    "write_report",
]
