"""Soft Cache: an optional, eFPGA-emulated cache in front of a Memory Hub.

Each Proxy Cache "can be configured at eFPGA programming time to support an
optional, bi-directionally coherent, soft cache built out of eFPGA
resources" (Sec. II-C).  The soft cache is tightly integrated into the
accelerator datapath (hits cost one eFPGA cycle), must be write-through
(write buffering allowed), and receives invalidations, line fills and write
acks in order from the Proxy Cache — but never acknowledges them, which is
what keeps the slow clock domain off the coherence critical path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.exceptions import DuetError
from repro.fpga.accelerator import FpgaMemoryPort
from repro.mem.cache_store import SetAssociativeCache
from repro.mem.protocol import CoherenceState
from repro.sim import ClockDomain, Event, Simulator, StatSet


@dataclass
class SoftCacheConfig:
    """Geometry and policy of one soft cache."""

    size_bytes: int = 4096
    assoc: int = 2
    line_bytes: int = 16
    word_bytes: int = 8
    hit_cycles: int = 1
    write_allocate: bool = True
    write_buffer_depth: int = 4
    #: Forward pending buffered writes to subsequent reads of the same word.
    read_after_write_forwarding: bool = True
    #: Virtually-indexed, virtually-tagged organization (Sec. II-D).
    virtual_tags: bool = False

    @property
    def bram_kbits(self) -> int:
        return (self.size_bytes * 8) // 1024


class SoftCache(FpgaMemoryPort):
    """A write-through, optionally write-buffered cache in the FPGA domain."""

    def __init__(
        self,
        sim: Simulator,
        domain: ClockDomain,
        base_port: FpgaMemoryPort,
        config: Optional[SoftCacheConfig] = None,
        name: str = "softcache",
    ) -> None:
        self.sim = sim
        self.domain = domain
        self.base_port = base_port
        self.config = config or SoftCacheConfig()
        self.name = name
        self.tags = SetAssociativeCache(
            self.config.size_bytes, self.config.line_bytes, self.config.assoc, name=f"{name}.store"
        )
        # Functional word values per resident line.
        self._line_words: Dict[int, Dict[int, int]] = {}
        self._write_buffer: Deque[Tuple[int, int]] = deque()
        self._write_space: Optional[Event] = None
        self._write_kick: Optional[Event] = None
        self.stats = StatSet(f"{name}.stats")
        self.sim.process(self._drain_writes(), name=f"{name}.write-drain")

    # ------------------------------------------------------------------ #
    # Geometry helpers
    # ------------------------------------------------------------------ #
    def _line_of(self, addr: int) -> int:
        return addr - (addr % self.config.line_bytes)

    def _word_of(self, addr: int) -> int:
        return addr - (addr % self.config.word_bytes)

    # ------------------------------------------------------------------ #
    # FpgaMemoryPort interface
    # ------------------------------------------------------------------ #
    def load(self, addr: int):
        line = self._line_of(addr)
        word = self._word_of(addr)
        yield self.domain.wait_cycles(self.config.hit_cycles)
        if self.config.read_after_write_forwarding:
            for buffered_addr, buffered_value in reversed(self._write_buffer):
                if self._word_of(buffered_addr) == word:
                    self.stats.counter("raw_forwards").increment()
                    return buffered_value
        entry = self.tags.lookup(line)
        if entry is not None and word in self._line_words.get(line, {}):
            self.stats.counter("hits").increment()
            return self._line_words[line][word]
        self.stats.counter("misses").increment()
        words = yield from self.base_port.load_line(line)
        self._install(line, words)
        return self._line_words[line].get(word, 0)

    def load_line(self, addr: int) -> List[int]:
        line = self._line_of(addr)
        yield self.domain.wait_cycles(self.config.hit_cycles)
        entry = self.tags.lookup(line)
        if entry is not None and line in self._line_words:
            self.stats.counter("hits").increment()
            return self._words_as_list(line)
        self.stats.counter("misses").increment()
        words = yield from self.base_port.load_line(line)
        self._install(line, words)
        return list(words)

    def store(self, addr: int, value: int):
        """Write-through store: buffered locally, pushed to the hub in order."""
        line = self._line_of(addr)
        word = self._word_of(addr)
        yield self.domain.wait_cycles(self.config.hit_cycles)
        if self.config.write_allocate or self.tags.peek(line) is not None:
            if self.tags.peek(line) is None:
                self._install(line, [])
            self._line_words.setdefault(line, {})[word] = value
        while len(self._write_buffer) >= self.config.write_buffer_depth:
            self._write_space = self.sim.event(f"{self.name}.wb-space")
            yield self._write_space
        self._write_buffer.append((addr, value))
        self.stats.counter("stores").increment()
        if self._write_kick is not None and not self._write_kick.triggered:
            self._write_kick.succeed()
        return None

    def amo(self, addr: int, fn):
        """Atomics bypass the soft cache and go straight to the Proxy Cache."""
        yield self.domain.wait_cycles(self.config.hit_cycles)
        self.invalidate_line(self._line_of(addr))
        old = yield from self.base_port.amo(addr, fn)
        return old

    # ------------------------------------------------------------------ #
    # Invalidation input (from the Proxy Cache, no acknowledgement)
    # ------------------------------------------------------------------ #
    def invalidate_line(self, line_addr: int) -> None:
        line = self._line_of(line_addr)
        if self.tags.invalidate(line) is not None:
            self.stats.counter("invalidations").increment()
        self._line_words.pop(line, None)

    def flush(self) -> None:
        """Drop every cached line (used around reconfiguration)."""
        self.tags.invalidate_all()
        self._line_words.clear()

    # ------------------------------------------------------------------ #
    # Write-buffer drain
    # ------------------------------------------------------------------ #
    def _drain_writes(self):
        while True:
            while not self._write_buffer:
                self._write_kick = self.sim.event(f"{self.name}.wb-kick")
                yield self._write_kick
            addr, value = self._write_buffer.popleft()
            if self._write_space is not None and not self._write_space.triggered:
                self._write_space.succeed()
            yield from self.base_port.store(addr, value)

    @property
    def pending_writes(self) -> int:
        return len(self._write_buffer)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _install(self, line: int, words: List[int]) -> None:
        victim = self.tags.insert(line, CoherenceState.SHARED)
        if victim is not None:
            self._line_words.pop(victim.line_addr, None)
        word_map = {}
        for offset, value in enumerate(words):
            word_map[line + offset * self.config.word_bytes] = value
        self._line_words[line] = word_map

    def _words_as_list(self, line: int) -> List[int]:
        count = self.config.line_bytes // self.config.word_bytes
        word_map = self._line_words.get(line, {})
        return [word_map.get(line + i * self.config.word_bytes, 0) for i in range(count)]

    @property
    def hit_rate(self) -> float:
        return self.tags.hit_rate
