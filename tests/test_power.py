"""Tests for the ``repro.power`` subsystem: energy accounting, probe hooks,
DVFS governors and the power experiments."""

import pytest

from repro.api.registry import get_experiment
from repro.api.runner import Runner
from repro.platform.config import DollyConfig, SystemKind
from repro.platform.dolly import build_system
from repro.power import (
    EnergyCapGovernor,
    EnergyModel,
    FixedGovernor,
    LadderGovernor,
    PowerConfig,
    PowerProbe,
)
from repro.power.experiments import (
    GOVERNOR_KINDS,
    dvfs_policy_cell,
    power_efficiency_cell,
    run_bursty,
)
from repro.power.model import EpochSample
from repro.sim import Delay, Simulator
from repro.workloads import popcount
from repro.workloads.common import WorkloadParams


# --------------------------------------------------------------------------- #
# PowerConfig
# --------------------------------------------------------------------------- #
def test_power_config_disabled_by_default():
    assert not PowerConfig().enabled
    assert not DollyConfig.dolly(1, 1).power.enabled


def test_power_config_validation():
    with pytest.raises(ValueError, match="nominal_mhz"):
        PowerConfig(nominal_mhz=0)
    with pytest.raises(ValueError, match="voltages"):
        PowerConfig(vdd_min_v=-0.1)
    with pytest.raises(ValueError, match="cannot exceed"):
        PowerConfig(vdd_min_v=1.2, vdd_nominal_v=1.0)
    with pytest.raises(ValueError, match="leakage"):
        PowerConfig(leakage_mw_per_mm2=-1.0)


def test_voltage_frequency_curve():
    config = PowerConfig(vdd_nominal_v=1.0, vdd_min_v=0.6, nominal_mhz=1000.0)
    assert config.vdd_at(1000.0) == pytest.approx(1.0)
    assert config.vdd_at(0.0) == pytest.approx(0.6)
    assert config.vdd_at(500.0) == pytest.approx(0.8)
    # Clamped above nominal.
    assert config.vdd_at(2000.0) == pytest.approx(1.0)
    # Dynamic scales quadratically, static linearly.
    assert config.dynamic_scale(500.0) == pytest.approx(0.64)
    assert config.static_scale(500.0) == pytest.approx(0.8)
    # Lower frequency can never cost more per event.
    assert config.dynamic_scale(100.0) < config.dynamic_scale(900.0)


# --------------------------------------------------------------------------- #
# Probe hooks: default-off, attached when enabled
# --------------------------------------------------------------------------- #
def test_hooks_are_none_by_default():
    system = build_system(DollyConfig.dolly(1, 1))
    assert system.energy is None
    assert system.network.power_probe is None
    assert system.memory.power_probe is None
    assert all(core.power_probe is None for core in system.cores)
    assert all(core.cache.power_probe is None for core in system.cores)
    assert all(d.power_probe is None for d in system.directories)


def test_enabled_system_shares_one_probe_everywhere():
    config = DollyConfig.dolly(2, 2, power=PowerConfig(enabled=True))
    system = build_system(config)
    assert isinstance(system.energy, EnergyModel)
    probe = system.energy.probe
    assert system.network.power_probe is probe
    assert system.memory.power_probe is probe
    for core in system.cores:
        assert core.power_probe is probe
        assert core.cache.power_probe is probe
    for directory in system.directories:
        assert directory.power_probe is probe
    for hub in system.adapter.memory_hubs:
        assert hub.cache.power_probe is probe


def test_timing_is_bit_identical_with_power_enabled():
    """The accounting layer must observe, never perturb: same workload,
    power on vs off, identical simulated runtime and results."""
    baseline = popcount.run(SystemKind.DUET, WorkloadParams(seed=7), vectors=6)
    powered = popcount.run(
        SystemKind.DUET, WorkloadParams(seed=7, power=PowerConfig(enabled=True)),
        vectors=6)
    assert powered.runtime_ns == baseline.runtime_ns
    assert powered.checksum == baseline.checksum
    assert "energy_nj" not in baseline.extra
    assert powered.extra["energy_nj"] > 0


def test_probe_counts_events_when_enabled():
    result = popcount.run(
        SystemKind.DUET, WorkloadParams(power=PowerConfig(enabled=True)), vectors=4)
    assert result.extra["energy_nj"] > 0
    breakdown = result.extra["energy_breakdown_nj"]
    # Every accounting category shows up; the busy ones are non-zero.
    for category in ("core", "cache", "directory", "dram", "noc", "fpga",
                     "clock", "static"):
        assert category in breakdown
    for category in ("cache", "noc", "fpga", "clock", "static"):
        assert breakdown[category] > 0, category
    assert sum(breakdown.values()) == pytest.approx(result.extra["energy_nj"])


# --------------------------------------------------------------------------- #
# EnergyModel accounting
# --------------------------------------------------------------------------- #
def _bare_model(**config_kwargs) -> EnergyModel:
    sim = Simulator()
    model = EnergyModel(PowerConfig(enabled=True, **config_kwargs), sim)
    from repro.sim import ClockDomain
    model.sys_domain = ClockDomain(sim, 1000.0)
    model.num_tiles = 2
    model.core_area_mm2 = 2.0
    return model


def test_energy_model_integrates_dynamic_events():
    model = _bare_model(leakage_mw_per_mm2=0.0, sys_clock_tree_pj=0.0)
    sim = model.sim

    def work():
        model.probe.cache_accesses += 10
        yield Delay(100.0)
        sample = model.sample()
        assert sample.energy_pj["cache"] == pytest.approx(
            10 * model.config.cache_access_pj)
        assert sample.elapsed_ns == pytest.approx(100.0)

    sim.run_process(work())
    assert model.total_pj == pytest.approx(10 * model.config.cache_access_pj)


def test_energy_model_static_energy_scales_with_area_and_time():
    model = _bare_model(sys_clock_tree_pj=0.0)
    sim = model.sim

    def work():
        yield Delay(1000.0)
        sample = model.sample()
        expected_mw = 2.0 * model.config.leakage_mw_per_mm2  # area x density
        assert sample.energy_pj["static"] == pytest.approx(expected_mw * 1000.0)

    sim.run_process(work())


def test_energy_model_power_trace_lands_in_stats():
    model = _bare_model()
    sim = model.sim

    def work():
        for _ in range(3):
            yield Delay(50.0)
            model.sample()

    sim.run_process(work())
    trace = model.stats.series("power_mw")
    assert trace.count == 3
    assert all(value > 0 for value in trace.values)
    assert trace.times == [50.0, 100.0, 150.0]


def test_window_accounting_brackets_the_run():
    model = _bare_model()
    sim = model.sim

    def work():
        yield Delay(100.0)   # outside the window
        model.begin_window()
        model.probe.cache_accesses += 5
        yield Delay(200.0)
        model.end_window()
        yield Delay(100.0)   # outside again

    sim.run_process(work())
    assert model.last_window_pj > 0
    # The pre-window epoch accrued (static) energy too, so the window is a
    # strict subset of the lifetime total.
    assert model.last_window_pj < model.total_pj
    assert sum(model.last_window_breakdown.values()) == pytest.approx(
        model.last_window_pj)


def test_end_window_without_begin_raises():
    model = _bare_model()
    with pytest.raises(RuntimeError, match="without begin_window"):
        model.end_window()


# --------------------------------------------------------------------------- #
# Governors
# --------------------------------------------------------------------------- #
def _epoch(utilization=0.0, power_mw=1.0, fpga_mhz=400.0) -> EpochSample:
    return EpochSample(
        t_start_ns=0.0, t_end_ns=1000.0,
        energy_pj={"static": power_mw * 1000.0}, total_pj=power_mw * 1000.0,
        fpga_freq_mhz=fpga_mhz, fpga_active_cycles=int(utilization * 400),
        fpga_utilization=utilization,
    )


def test_ladder_governor_boosts_on_activity_and_eases_down():
    governor = LadderGovernor(freqs_mhz=(50, 100, 200, 400), patience=2)
    # Busy -> top rung.
    assert governor.decide(_epoch(utilization=0.5)) == 400.0
    # One idle epoch: patience holds the rung.
    assert governor.decide(_epoch(utilization=0.0)) is None
    # Second consecutive idle epoch: step down.
    assert governor.decide(_epoch(utilization=0.0)) == 200.0
    assert governor.decide(_epoch(utilization=0.0)) == 100.0
    # Activity resets the descent immediately.
    assert governor.decide(_epoch(utilization=0.9)) == 400.0
    assert governor.decide(_epoch(utilization=0.0)) is None


def test_ladder_hysteresis_resets_on_any_non_idle_epoch():
    """A mid-band epoch (between the thresholds) restarts the consecutive-
    idle count — non-consecutive idle epochs never add up to a step-down."""
    governor = LadderGovernor(freqs_mhz=(50, 100, 200, 400), patience=2,
                              up_threshold=0.02, down_threshold=0.002)
    assert governor.decide(_epoch(utilization=0.5)) == 400.0
    assert governor.decide(_epoch(utilization=0.0)) is None     # idle #1
    assert governor.decide(_epoch(utilization=0.01)) is None    # mid-band: reset
    assert governor.decide(_epoch(utilization=0.0)) is None     # idle #1 again
    assert governor.decide(_epoch(utilization=0.0)) == 200.0    # idle #2: step


def test_governor_does_not_spam_retunes_above_fmax():
    """A ladder rung above the accelerator's Fmax clamps; repeating the
    clamped request on every busy epoch must not count as a retune."""
    config = DollyConfig.dolly(1, 1, power=PowerConfig(enabled=True))
    system = build_system(config)
    from repro.power.experiments import BurstComputeAccelerator, _burst_registers
    system.install_accelerator(BurstComputeAccelerator(), registers=_burst_registers())
    fmax = system.adapter.clock_generator.max_mhz
    governor = LadderGovernor(freqs_mhz=(fmax + 100.0,), epoch_ns=100.0)
    governor.attach(system)
    assert system.adapter.fpga_domain.freq_mhz == pytest.approx(fmax)
    # A single-rung ladder above Fmax re-requests the clamped top on every
    # patience-expired idle epoch; none of those repeats is a retune.
    system.sim.run(until=1000.0)
    assert governor.retunes == 0


def test_window_series_excludes_setup_and_drain():
    model = _bare_model()
    sim = model.sim
    from repro.sim import ClockDomain
    model.fpga_domain = ClockDomain(sim, 100.0)

    def work():
        yield Delay(100.0)
        model.sample()            # setup epoch (outside window)
        model.begin_window()      # t=100
        yield Delay(100.0)
        model.sample()            # in-window epoch, t=200
        yield Delay(100.0)
        model.end_window()        # closes the final in-window epoch, t=300
        yield Delay(100.0)
        model.sample()            # drain epoch (outside window), t=400

    sim.run_process(work())
    full = model.stats.series("fpga_mhz")
    window = model.window_series("fpga_mhz")
    assert full.count == 4
    assert window.count == 2      # t=200 and end_window's t=300 epoch
    assert window.times == [200.0, 300.0]


def test_ladder_governor_validation():
    with pytest.raises(ValueError, match="ladder must be positive"):
        LadderGovernor(freqs_mhz=(0, 100))
    with pytest.raises(ValueError, match="patience"):
        LadderGovernor(patience=0)
    with pytest.raises(ValueError, match="down_threshold"):
        LadderGovernor(up_threshold=0.1, down_threshold=0.5)


def test_energy_cap_governor_tracks_budget():
    governor = EnergyCapGovernor(budget_mw=3.0, freqs_mhz=(50, 100, 200, 400),
                                 headroom=0.8)
    assert governor.decide(_epoch(power_mw=4.0)) == 200.0   # over budget
    assert governor.decide(_epoch(power_mw=3.5)) == 100.0   # still over
    assert governor.decide(_epoch(power_mw=2.9)) is None    # inside the band
    assert governor.decide(_epoch(power_mw=1.0)) == 200.0   # well under


def test_energy_cap_never_exceeds_budget_on_bursty_workload():
    """Whatever (reachable) budget the EnergyCap governor is given, the
    measured-window average power of the bursty workload stays at or under
    it, and the governor genuinely throttles to get there."""
    for budget_mw in (2.8, 3.2, 4.0):
        governor = EnergyCapGovernor(budget_mw=budget_mw, epoch_ns=500.0)
        row = run_bursty("energy_cap", governor=governor)
        assert row["correct"]
        assert row["avg_power_mw"] <= budget_mw
    # At the preset budget (binding during bursts) the governor actually
    # steps below the top rung rather than meeting the cap vacuously.
    row = run_bursty("energy_cap")
    assert row["avg_power_mw"] <= 3.2
    assert row["fpga_mhz_min"] < row["fpga_mhz_max"]
    assert row["retunes"] >= 1


def test_energy_cap_degrades_gracefully_at_unreachable_cap():
    """A budget below the platform's leakage floor cannot be met; the
    governor must settle at the bottom rung — a monotone descent, no
    hunting — and the workload must still complete correctly, just slower
    than an uncapped run."""
    from repro.power.governor import DEFAULT_LADDER

    governor = EnergyCapGovernor(budget_mw=0.1, epoch_ns=500.0)
    row = run_bursty("energy_cap", governor=governor)
    assert row["correct"]
    assert row["fpga_mhz_min"] == DEFAULT_LADDER[0]
    # One retune per rung on the way down; once at the floor there is
    # nothing left to do, so the count never grows past the descent.
    assert row["retunes"] == len(DEFAULT_LADDER) - 1
    fixed_max = run_bursty("fixed_max")
    assert row["runtime_ns"] > fixed_max["runtime_ns"]


def test_governor_requires_power_modeling():
    system = build_system(DollyConfig.dolly(1, 1))
    with pytest.raises(RuntimeError, match="without power modeling"):
        FixedGovernor().attach(system)


def test_fixed_governor_pins_frequency_through_retune_path():
    config = DollyConfig.dolly(1, 1, power=PowerConfig(enabled=True))
    system = build_system(config)
    from repro.power.experiments import BurstComputeAccelerator, _burst_registers
    system.install_accelerator(BurstComputeAccelerator(), registers=_burst_registers())
    FixedGovernor(freq_mhz=123.0).attach(system)
    assert system.adapter.fpga_domain.freq_mhz == pytest.approx(123.0)


# --------------------------------------------------------------------------- #
# The experiments (acceptance criteria)
# --------------------------------------------------------------------------- #
def test_dvfs_ladder_beats_fixed_mid_on_energy_at_equal_or_better_runtime():
    """The headline DVFS demonstration: on the bursty workload the ladder
    governor uses less energy than the fixed mid-frequency choice *and*
    finishes no later (race-to-idle wins both axes)."""
    ladder = run_bursty("ladder")
    fixed_mid = run_bursty("fixed_mid")
    assert ladder["correct"] and fixed_mid["correct"]
    assert ladder["energy_nj"] < fixed_mid["energy_nj"]
    assert ladder["runtime_ns"] <= fixed_mid["runtime_ns"]
    # It also undercuts the fixed maximum on energy (at a small runtime cost).
    fixed_max = run_bursty("fixed_max")
    assert ladder["energy_nj"] < fixed_max["energy_nj"]
    assert ladder["edp_nj_ms"] < fixed_max["edp_nj_ms"] * 1.1


def test_dvfs_policy_rows_are_deterministic():
    first = dvfs_policy_cell("ladder")
    second = dvfs_policy_cell("ladder")
    assert first == second


def test_power_efficiency_rows_are_deterministic_and_complete():
    first = power_efficiency_cell("duet", "1x1", 100.0, vectors=4)
    second = power_efficiency_cell("duet", "1x1", 100.0, vectors=4)
    assert first == second
    row = first[0]
    for column in ("energy_nj", "edp_nj_ms", "perf_per_watt", "avg_power_mw",
                   "runtime_ns", "correct"):
        assert column in row
    assert row["correct"]
    assert row["energy_nj"] > 0 and row["edp_nj_ms"] > 0 and row["perf_per_watt"] > 0


def test_power_efficiency_cpu_rows_ignore_fpga_clock():
    # The CPU-only baseline runs once, at the anchor clock of the sweep...
    row = power_efficiency_cell("cpu", "1x1", 50.0, vectors=4)[0]
    assert row["fpga_mhz"] is None
    assert row["fpga_mhz_requested"] is None
    # ...and skips the other (identical) grid points instead of
    # re-simulating and duplicating the row.
    assert power_efficiency_cell("cpu", "1x1", 100.0, vectors=4) == []
    assert power_efficiency_cell("cpu", "1x1", 100.0, vectors=4,
                                 cpu_anchor_mhz=100.0) != []


def test_power_efficiency_emits_one_cpu_row_per_shape():
    results = Runner().run("power_efficiency", use_cache=False,
                           system="cpu", pm="1x1", vectors=4)
    assert len(results) == 1


def test_experiments_are_registered():
    power_spec = get_experiment("power_efficiency")
    assert set(power_spec.grid) == {"system", "pm", "fpga_mhz"}
    dvfs_spec = get_experiment("dvfs_policy")
    assert dvfs_spec.grid["governor"] == GOVERNOR_KINDS


def test_dvfs_policy_runs_through_the_runner_with_summary():
    results = Runner().run("dvfs_policy", use_cache=False,
                           governor=("fixed_mid", "ladder"),
                           bursts=2, items_per_burst=3, idle_ns=8000.0)
    assert len(results) == 2
    assert 0 < results.summary["ladder_energy_vs_fixed_mid"] < 1.0
    assert results.summary["ladder_runtime_vs_fixed_mid"] <= 1.0


def test_power_efficiency_runs_through_the_runner(tmp_path):
    results = Runner().run("power_efficiency", use_cache=False,
                           system="duet", pm="1x1", fpga_mhz=(50.0, 150.0),
                           vectors=4)
    assert len(results) == 2
    by_mhz = {row["fpga_mhz"]: row for row in results.rows}
    assert set(by_mhz) == {50.0, 150.0}
    # Higher clock -> faster; the sweep exists to expose the energy trade.
    assert by_mhz[150.0]["runtime_ns"] < by_mhz[50.0]["runtime_ns"]


def test_probe_snapshot_and_repr():
    probe = PowerProbe()
    probe.cache_accesses += 2
    snap = probe.snapshot()
    assert snap["cache_accesses"] == 2
    assert set(snap) == set(PowerProbe.__slots__)
